"""Section III's speedtest argument.

'If the clock had been set based on the length of the original critical
path (in the absence of faults), then the circuit will behave
incorrectly when the single stuck fault exists.'

Regenerated: the carry cone clocks at 8; with gate10 stuck at 0 the
(logically correct!) circuit needs 11 -- a fault invisible to logic
testing at slow speed but fatal at the designed clock.  The KMS output
has no such fault, so no speedtest is required.
"""

from conftest import once
from repro.atpg import collapsed_faults, inject, SatAtpg, stem_fault
from repro.circuits import fig4_c2_cone
from repro.core import kms
from repro.timing import viability_delay


def test_faulty_circuit_misses_the_clock(benchmark):
    def run():
        cone = fig4_c2_cone()
        clock = viability_delay(cone).delay
        faulty = inject(
            cone, stem_fault(cone.find_gate("gate10"), 0)
        )
        return clock, viability_delay(faulty).delay

    clock, faulty_delay = once(benchmark, run)
    print()
    print(
        f"clock set at {clock} (paper: 8); faulty circuit needs "
        f"{faulty_delay} (paper: 11)"
    )
    assert clock == 8.0
    assert faulty_delay == 11.0
    assert faulty_delay > clock  # the speedtest hazard


def test_kms_output_needs_no_speedtest(benchmark):
    """Every remaining fault in the KMS output is logically testable,
    and no single stuck-at fault pushes the delay past the clock."""

    def run():
        cone = fig4_c2_cone()
        irr = kms(cone).circuit
        clock = viability_delay(irr).delay
        worst = 0.0
        engine = SatAtpg(irr)
        for fault in collapsed_faults(irr):
            assert engine.is_testable(fault)
            faulty = inject(irr, fault)
            worst = max(worst, viability_delay(faulty).delay)
        return clock, worst

    clock, worst_faulty = once(benchmark, run)
    print()
    print(
        f"irredundant cone: clock {clock}, worst single-fault delay "
        f"{worst_faulty}"
    )
    # a fault may still slow the circuit, but being testable it is
    # caught by ordinary stuck-at testing -- no speedtest needed
    assert worst_faulty <= 11.0
