"""A/B: hierarchical vs flat timing inside the KMS loop.

Per circuit, KMS runs twice -- ``hier=True`` (the partition-graph
engine, :mod:`repro.timing.hier`) and ``hier=False`` (the flat
dirty-cone oracle, both incremental).  The claims under test:

* **bit-identical results** -- same final fingerprint, delay,
  iteration count, and path work on every row: interface models are an
  exact regrouping of the flat path sums, never an approximation;
* **work reduction** -- on the repeated-block rows (ripple-carry, one
  hinted partition per bit slice) the flat engine performs at least 5x
  more arrival relaxations than the hierarchical one;
* **model sharing** -- repeated blocks hit the content-addressed model
  store instead of re-extracting: ``model_cache_hits >= partitions -
  distinct fingerprints``, with only a handful of distinct models per
  design family;
* the deterministic work counters and (non-gating) wall times land in
  ``BENCH_timing_hier.json`` for the ``timing_hier`` row of the
  matrix-driven ``perf-gate`` CI job (baseline:
  ``benchmarks/baselines/BENCH_timing_hier_baseline.json``).

The carry-skip row rides along for coverage of the paper's star
workload; its ratio is structurally lower (KMS grows duplicated chains
*outside* the hinted blocks, so mutations sweep the whole critical
path) and it is deliberately not part of the 5x claim.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.circuits import carry_skip_adder, ripple_carry_adder
from repro.core import kms
from repro.engine.hashing import circuit_fingerprint
from repro.timing import HierSTA, ModelStore, UnitDelayModel, topological_delay

MODEL = UnitDelayModel(use_arrival_times=False)

#: (name, factory, part of the 5x repeated-block claim?)
WORKLOADS = [
    ("rca 64", lambda: ripple_carry_adder(64), True),
    ("rca 128", lambda: ripple_carry_adder(128), True),
    ("csa 8.4", lambda: carry_skip_adder(8, 4), False),
]

#: Counters whose totals the CI perf gate protects against regression.
GATED_COUNTERS = (
    "arrival_relaxations",
    "dist_relaxations",
    "models_extracted",
    "model_relaxations",
    "arcs_evaluated",
)

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _ab_row(name, factory, repeated):
    row = {"name": name, "suites": ["repeated"] if repeated else ["csa"]}
    for key, hier in (("hier", True), ("flat", False)):
        circuit = factory()
        start = time.perf_counter()
        result = kms(circuit, mode="static", model=MODEL, hier=hier)
        row[key] = {
            "seconds": time.perf_counter() - start,
            "iterations": result.iterations,
            "fingerprint": circuit_fingerprint(result.circuit),
            "delay": topological_delay(result.circuit, MODEL),
            "counters": {k: int(v) for k, v in result.counters.items()},
        }
    row["identical"] = (
        row["hier"]["fingerprint"] == row["flat"]["fingerprint"]
        and row["hier"]["delay"] == row["flat"]["delay"]
        and row["hier"]["iterations"] == row["flat"]["iterations"]
    )
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["identical"], (
        f"hierarchical KMS diverged from the flat oracle on {row['name']}"
    )
    for key in ("paths_enumerated", "paths_capped",
                "viability_checks_exact"):
        assert (row["hier"]["counters"][key]
                == row["flat"]["counters"][key])
    assert row["flat"]["counters"]["models_extracted"] == 0


@pytest.mark.parametrize(
    "name,factory,repeated", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_kms_hier_ab(benchmark, name, factory, repeated):
    _assert_row(once(benchmark, lambda: _ab_row(name, factory, repeated)))


def test_model_sharing_on_repeated_blocks():
    """The content-addressed store collapses repeated blocks to a few
    distinct models (the issue's sharing bound, checked at STA level
    where the partition count is visible)."""
    for circuit, max_distinct in (
        (ripple_carry_adder(128), 2),
        (carry_skip_adder(8, 4), 4),
    ):
        sta = HierSTA(circuit, MODEL, store=ModelStore())
        parts = sta.partitions
        distinct = len({p.fingerprint for p in parts})
        assert sta.model_cache_hits >= len(parts) - distinct
        assert distinct <= max_distinct
        assert sta.models_extracted == distinct


def test_zz_emit_bench_json_and_relaxation_claim():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    totals = {}
    for key in ("hier", "flat"):
        totals[key] = {
            "seconds": sum(r[key]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(r[key]["counters"].get(name, 0) for r in _ROWS)
                for name in GATED_COUNTERS
            },
        }
    payload = {
        "suite": "timing-hier",
        "result_key": "hier",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    repeated = [r for r in _ROWS if "repeated" in r["suites"]]
    if repeated:
        claims = {}
        for counter in ("arrival_relaxations", "dist_relaxations"):
            flat = sum(r["flat"]["counters"][counter] for r in repeated)
            hier = sum(r["hier"]["counters"][counter] for r in repeated)
            claims[f"flat_{counter}"] = flat
            claims[f"hier_{counter}"] = hier
            claims[f"{counter}_ratio"] = flat / max(1, hier)
            assert flat >= 5 * hier, (
                f"interface models must save >=5x {counter} on "
                f"repeated-block designs: flat={flat} hier={hier}"
            )
        payload["repeated_blocks"] = claims
    if len(_ROWS) == len(WORKLOADS):
        # the whole suite, carry-skip row included
        for counter in ("arrival_relaxations", "dist_relaxations"):
            flat = totals["flat"]["counters"][counter]
            hier = totals["hier"]["counters"][counter]
            assert flat >= 5 * hier, (
                f"suite-total {counter} must stay >=5x below flat: "
                f"flat={flat} hier={hier}"
            )
    out_path = os.environ.get(
        "BENCH_TIMING_HIER_JSON", "BENCH_timing_hier.json"
    )
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    claims = payload.get("repeated_blocks", {})
    ratio = claims.get("arrival_relaxations_ratio")
    note = f", repeated-block arrival ratio {ratio:.1f}x" if ratio else ""
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
