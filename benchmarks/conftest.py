"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and asserts the *shape* claims -- who is
faster, what is redundant, what the algorithm does -- rather than
absolute numbers.  Run with

    pytest benchmarks/ --benchmark-only -s

to see the regenerated tables.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Every test in this directory is a tier-2 bench: mark it so CI can
    select tiers explicitly (``-m bench`` / ``-m "not bench"``) and the
    tier-1 suite under ``tests/`` stays fast."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def once(benchmark, fn):
    """Run a workload exactly once under pytest-benchmark timing.

    These are algorithm-reproduction benches, not microbenchmarks; one
    round is the honest measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
