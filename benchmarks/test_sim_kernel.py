"""A/B: compiled event-driven fault simulation vs full resimulation.

Per circuit, the same fault-coverage run is graded twice --
``fault_coverage(...)`` on the compiled kernel (event-driven fanout
cones + fault dropping, :mod:`repro.sim.kernel`) and
``fault_coverage(..., compiled=False)`` on the interpreted
full-resimulation oracle.  The claims under test:

* **identical coverage** -- same detected count and the same undetected
  fault list: the kernel is an optimization, never an approximation;
* **work reduction** -- over the Table I suite the legacy path performs
  at least 5x more faulty-circuit gate evaluations than the
  event-driven cones (the legacy cost is analytical: every still-active
  fault resimulates every non-PI gate once per pattern block, a number
  the bit-identical drop progression lets us replay exactly);
* the deterministic work counters and (non-gating) wall times land in
  ``BENCH_sim.json``, which the ``sim`` row of the matrix-driven
  ``perf-gate`` CI job compares against
  ``benchmarks/baselines/BENCH_sim_baseline.json`` via
  ``benchmarks/compare_baseline.py``.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.atpg import collapsed_faults, fault_coverage, random_vectors
from repro.circuits import MCNC_NAMES, carry_skip_adder, mcnc_circuit
from repro.engine.sweep import CSA_SIZES, SCALING_SIZES
from repro.sim.kernel import (
    CompiledCircuit,
    SimWorkTracker,
    WORK_COUNTERS,
)
from repro.sim.parallel import pack_vectors

#: Union of the Table I and scaling carry-skip configurations; each row
#: is computed once and tagged with the suites it belongs to.
CSA_UNION = sorted(set(CSA_SIZES) | set(SCALING_SIZES))

#: Random-pattern budget per circuit; several 64-wide blocks so fault
#: dropping and per-block good-sim reuse both show up in the counters.
N_VECTORS = 256
SEED = 5
BLOCK = 64

#: Counters whose totals the CI perf gate protects against regression
#: (cone_cutoffs and faults_dropped are reported, not gated: a *better*
#: cone cutoff heuristic lowers them legitimately).
GATED_COUNTERS = ("gate_evals_good", "gate_evals_faulty")

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _legacy_work(circuit, faults, vectors):
    """Analytical gate evaluations of the interpreted path.

    ``simulate_fault_packed`` re-evaluates every non-PI gate per still
    active fault per block, and ``simulate_packed`` does the same once
    per block for the good circuit.  The drop progression is replayed
    on a private kernel (bit-identical to both public paths), so the
    count is exact, not an estimate.
    """
    kern = CompiledCircuit(circuit)
    per_sim = kern.num_eval_gates()
    good = 0
    faulty = 0
    remaining = list(faults)
    for start in range(0, len(vectors), BLOCK):
        packed, width = pack_vectors(circuit, vectors[start:start + BLOCK])
        good += per_sim
        faulty += len(remaining) * per_sim
        good_words = kern.evaluate_words(packed, width)
        remaining = [
            f for f in remaining
            if not kern.detecting_word(f, good_words, width)
        ]
        if not remaining:
            break
    return good, faulty


def _ab_row(name, suites, circuit):
    faults = collapsed_faults(circuit)
    vectors = random_vectors(circuit, N_VECTORS, seed=SEED)
    row = {
        "name": name,
        "suites": list(suites),
        "faults": len(faults),
        "vectors": len(vectors),
    }

    tracker = SimWorkTracker()
    start = time.perf_counter()
    fast = fault_coverage(circuit, faults, vectors, block=BLOCK)
    row["kernel"] = {
        "seconds": time.perf_counter() - start,
        "coverage": fast.coverage,
        "detected": fast.detected,
        "counters": dict(tracker.counters),
    }

    start = time.perf_counter()
    slow = fault_coverage(
        circuit, faults, vectors, block=BLOCK, compiled=False
    )
    legacy_good, legacy_faulty = _legacy_work(circuit, faults, vectors)
    row["legacy"] = {
        "seconds": time.perf_counter() - start,
        "coverage": slow.coverage,
        "detected": slow.detected,
        "counters": {
            "gate_evals_good": legacy_good,
            "gate_evals_faulty": legacy_faulty,
        },
    }
    row["identical"] = (
        fast.detected == slow.detected
        and fast.undetected_faults == slow.undetected_faults
    )
    row["faulty_eval_ratio"] = legacy_faulty / max(
        1, row["kernel"]["counters"]["gate_evals_faulty"]
    )
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["identical"], (
        f"kernel fault grading diverged from the interpreted oracle "
        f"on {row['name']}"
    )
    kern = row["kernel"]["counters"]
    assert kern["gate_evals_faulty"] <= (
        row["legacy"]["counters"]["gate_evals_faulty"]
    )
    assert set(WORK_COUNTERS) == set(kern)


@pytest.mark.parametrize("nbits,block", CSA_UNION)
def test_sim_kernel_csa(benchmark, nbits, block):
    suites = ["table1"] if (nbits, block) in CSA_SIZES else []
    if (nbits, block) in SCALING_SIZES:
        suites.append("scaling")

    def run():
        circuit = carry_skip_adder(nbits, block)
        return _ab_row(f"csa {nbits}.{block}", suites, circuit)

    _assert_row(once(benchmark, run))


@pytest.mark.parametrize("name", MCNC_NAMES)
def test_sim_kernel_mcnc(benchmark, name):
    def run():
        return _ab_row(name, ["table1"], mcnc_circuit(name))

    _assert_row(once(benchmark, run))


def test_zz_emit_bench_json_and_speedup_claim():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    totals = {}
    for key in ("kernel", "legacy"):
        names = WORK_COUNTERS if key == "kernel" else GATED_COUNTERS
        totals[key] = {
            "seconds": sum(r[key]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(r[key]["counters"].get(name, 0) for r in _ROWS)
                for name in names
            },
        }
    payload = {
        "suite": "sim-kernel",
        "result_key": "kernel",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    table1 = [r for r in _ROWS if "table1" in r["suites"]]
    expected_table1 = len(CSA_SIZES) + len(MCNC_NAMES)
    if len(table1) == expected_table1:
        legacy = sum(
            r["legacy"]["counters"]["gate_evals_faulty"] for r in table1
        )
        kernel = sum(
            r["kernel"]["counters"]["gate_evals_faulty"] for r in table1
        )
        payload["table1"] = {
            "legacy_gate_evals_faulty": legacy,
            "kernel_gate_evals_faulty": kernel,
            "faulty_eval_ratio": legacy / max(1, kernel),
        }
        assert legacy >= 5 * kernel, (
            f"event-driven cones must save >=5x faulty gate evals on "
            f"the Table I fault-coverage run: legacy={legacy} "
            f"kernel={kernel}"
        )
    out_path = os.environ.get("BENCH_SIM_JSON", "BENCH_sim.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    ratio = payload.get("table1", {}).get("faulty_eval_ratio")
    note = f", table1 faulty-eval ratio {ratio:.1f}x" if ratio else ""
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
