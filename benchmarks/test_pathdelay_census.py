"""Conclusions: path-delay-fault testability around KMS.

"It is also worth noting that techniques for removing untestable
path-delay-faults, such as [20], are also likely to increase the delay
of such circuits ... It would be interesting to discover if the
techniques described in this paper could be generalized to the removal
of path-delay-fault redundancies without degrading circuit performance."

Regenerated measurement: the carry-skip cone's longest-path PDFs are
robust-untestable (they are false paths); KMS removes the stuck-at
redundancy and its output's longest paths carry robustly testable PDFs
-- evidence for the conclusion's conjecture on this family.
"""

from conftest import once
from repro.atpg import pdf_census
from repro.circuits import fig4_c2_cone, ripple_carry_adder
from repro.core import kms


def test_pdf_census_before_and_after_kms(benchmark):
    def run():
        cone = fig4_c2_cone()
        before = pdf_census(cone, max_paths=5)
        after_circuit = kms(cone).circuit
        after = pdf_census(after_circuit, max_paths=5)
        return before, after

    before, after = once(benchmark, run)
    print()
    print(
        f"Fig.4 longest-path PDFs robustly testable: "
        f"{before.testable}/{before.total} before KMS, "
        f"{after.testable}/{after.total} after"
    )
    # the false longest paths of the redundant cone are untestable PDFs
    assert before.coverage < 0.5
    # KMS removes the skip's false paths, lifting long-path coverage
    # (robust coverage below 1.0 remains normal: XOR decompositions have
    # classically non-robust paths even in irredundant logic)
    assert after.coverage > before.coverage


def test_ripple_carry_reference(benchmark):
    """The irredundant ripple adder's long-path PDFs are mostly
    robustly testable (the exceptions are the classic XOR-leg paths) --
    the baseline the carry-skip trades away."""

    def run():
        return pdf_census(ripple_carry_adder(2), max_paths=6)

    report = once(benchmark, run)
    print()
    print(
        f"rca2 longest-path PDFs: {report.testable}/{report.total} "
        f"robustly testable"
    )
    assert report.coverage >= 0.7
