"""Load benchmark of the ``repro.serve`` daemon: concurrency, dedup,
and crash recovery under fire.

Two rows land in ``BENCH_serve.json`` for the ``serve-perf-gate`` CI
job (via the shared ``benchmarks/compare_baseline.py``):

* **mixed load 50x5** -- 50 concurrent submissions spread over 5
  distinct Table I circuits against a 2-worker daemon.  The dedup
  contract is counter-verified: exactly 5 executions are created and
  exactly 5 kms stage runs happen (45 of 50 submissions coalesce), and
  every response's netlist is *bit-identical* (BLIF text and content
  fingerprint) to the one-shot in-process pipeline for its circuit.
  Throughput and p50/p99 latency ride along informationally.
* **killed worker mid-job** -- a real ``SIGKILL`` to the worker
  process while it is mid-job.  The supervisor must respawn the worker
  and retry, and the client's request completes with the same
  bit-identical result -- no dropped request, counter-verified
  (``retried`` = 1, ``failed`` = 0).

The gated counters are exact functions of the workload (submission
counts, execution counts, stage runs), so a gate failure means the
scheduling/dedup logic changed, never runner jitter; wall clock is
informational only.
"""

import json
import os
import signal
import threading
import time

import pytest

from conftest import once
from repro.circuits import named_circuit
from repro.engine import StageCall, run_pipeline
from repro.engine.hashing import circuit_fingerprint
from repro.engine.serialize import circuit_from_dict
from repro.io import write_blif
from repro.serve import InProcessServer, ServeClient, ServeConfig
from repro.serve.protocol import DEFAULT_MODEL

#: The mixed workload: 5 distinct Table I circuits, 10 submissions each.
CIRCUITS = ["csa2.2", "csa4.2", "csa8.2", "rca8", "cla8"]
SUBMISSIONS_PER_CIRCUIT = 10
TOTAL = len(CIRCUITS) * SUBMISSIONS_PER_CIRCUIT

#: Deterministic scheduling/dedup counters the CI gate protects.
GATED_COUNTERS = (
    "submissions",
    "executions_created",
    "coalesced_total",
    "kms_executions",
    "failed",
    "timeout",
    "retried",
)

_ROWS = []


def _oracle(name):
    """The one-shot in-process result the daemon must match bit-for-bit
    (the same expansion ``repro kms`` and a served ``kms`` job use)."""
    result = run_pipeline(
        named_circuit(name),
        [StageCall("kms", {"model": DEFAULT_MODEL, "mode": "static"})],
        keep_final=True,
    )
    assert result.ok, f"oracle pipeline failed on {name}: {result.error}"
    final = circuit_from_dict(result.final_circuit)
    return {
        "fingerprint": circuit_fingerprint(final),
        "blif": write_blif(final),
    }


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def _serve_counters(stats):
    counters = stats["counters"]
    return {
        "submissions": counters["submissions"],
        "executions_created": counters["executions_created"],
        "coalesced_total": counters["coalesced_total"],
        "kms_executions": stats["stage_executions"].get("kms", 0),
        "failed": counters["failed"],
        "timeout": counters["timeout"],
        "cancelled": counters["cancelled"],
        "done": counters["done"],
        "retried": stats["pool"]["retried"],
    }


def _mixed_load_row():
    oracles = {name: _oracle(name) for name in CIRCUITS}
    workload = CIRCUITS * SUBMISSIONS_PER_CIRCUIT
    responses = [None] * TOTAL
    latencies = [None] * TOTAL
    errors = []
    barrier = threading.Barrier(TOTAL)

    config = ServeConfig(workers=2, retries=1, job_timeout=300.0)
    start = time.perf_counter()
    with InProcessServer(config) as server:
        client = ServeClient(port=server.port)

        def submit(i, name):
            try:
                barrier.wait(timeout=60)
                t0 = time.perf_counter()
                job = client.submit_builtin(name, pipeline="kms")
                responses[i] = client.wait(job["job_id"], timeout=280)
                responses[i]["_circuit"] = name
                latencies[i] = time.perf_counter() - t0
            except Exception as exc:
                errors.append((i, name, repr(exc)))

        threads = [
            threading.Thread(target=submit, args=(i, name))
            for i, name in enumerate(workload)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - start
        stats = client.stats()

    assert not errors, f"dropped/errored requests: {errors[:5]}"
    assert all(r is not None and r["state"] == "done" for r in responses)

    identical = all(
        r["result"]["final_fingerprint"]
        == oracles[r["_circuit"]]["fingerprint"]
        and r["result"]["blif"] == oracles[r["_circuit"]]["blif"]
        for r in responses
    )
    counters = _serve_counters(stats)
    # the acceptance contract: 50 submissions, at most one execution
    # (and one kms run) per distinct circuit
    assert counters["submissions"] == TOTAL
    assert counters["executions_created"] <= len(CIRCUITS)
    assert counters["kms_executions"] <= len(CIRCUITS)
    assert counters["coalesced_total"] == TOTAL - counters[
        "executions_created"]
    assert counters["failed"] == 0 and counters["timeout"] == 0

    return {
        "name": f"mixed load {TOTAL}x{len(CIRCUITS)}",
        "identical": identical,
        "serve": {
            "seconds": elapsed,
            "counters": counters,
            "throughput_jobs_per_s": TOTAL / elapsed,
            "latency_p50_s": _percentile(latencies, 0.50),
            "latency_p99_s": _percentile(latencies, 0.99),
            "dedup_hit_rate": counters["coalesced_total"]
            / counters["submissions"],
        },
    }


def _killed_worker_row():
    oracle = _oracle("csa4.2")
    config = ServeConfig(workers=1, retries=1, debug=True,
                         job_timeout=300.0)
    start = time.perf_counter()
    with InProcessServer(config) as server:
        client = ServeClient(port=server.port)
        # the spin keeps attempt 1 alive long enough to be murdered
        # before its kms stage runs, so the retry does the only real work
        job = client.submit_builtin(
            "csa4.2", pipeline="kms", debug={"spin": 2.0}
        )
        victim = None
        deadline = time.monotonic() + 30
        while victim is None:
            assert time.monotonic() < deadline, "job never reached a worker"
            for worker in client.stats()["pool"]["workers"]:
                if worker["job"] == job["exec_id"] and worker["pid"]:
                    victim = worker["pid"]
            time.sleep(0.02)
        os.kill(victim, signal.SIGKILL)
        response = client.wait(job["job_id"], timeout=280)
        elapsed = time.perf_counter() - start
        stats = client.stats()

    assert response["state"] == "done", response
    assert response["result"]["ok"] is True
    assert response["result"]["attempt"] == 2, "expected one retry"
    identical = (
        response["result"]["final_fingerprint"] == oracle["fingerprint"]
        and response["result"]["blif"] == oracle["blif"]
    )
    counters = _serve_counters(stats)
    assert counters["retried"] == 1
    assert counters["failed"] == 0 and counters["done"] == 1

    return {
        "name": "killed worker mid-job",
        "identical": identical,
        "serve": {"seconds": elapsed, "counters": counters},
    }


def test_mixed_load_dedup_and_identity(benchmark):
    row = once(benchmark, _mixed_load_row)
    _ROWS.append(row)
    assert row["identical"], (
        "served results diverged from the one-shot pipeline"
    )


def test_killed_worker_mid_job_recovers(benchmark):
    row = once(benchmark, _killed_worker_row)
    _ROWS.append(row)
    assert row["identical"], (
        "post-retry result diverged from the one-shot pipeline"
    )


def test_zz_emit_bench_json():
    """Artifact emitter; named to sort last.  Tolerates partial
    collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no serve load rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    totals = {
        "seconds": sum(r["serve"]["seconds"] for r in _ROWS),
        "counters": {
            name: sum(r["serve"]["counters"].get(name, 0) for r in _ROWS)
            for name in GATED_COUNTERS
        },
    }
    payload = {
        "suite": "serve-load",
        "result_key": "serve",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    out_path = os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    mixed = next((r for r in _ROWS if r["name"].startswith("mixed")), None)
    note = ""
    if mixed is not None:
        note = (
            f", {mixed['serve']['throughput_jobs_per_s']:.1f} jobs/s, "
            f"p99 {mixed['serve']['latency_p99_s']:.2f}s, dedup "
            f"{mixed['serve']['dedup_hit_rate']:.0%}"
        )
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
