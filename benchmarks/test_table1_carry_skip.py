"""Table I, carry-skip rows (csa 2.2 / 4.4 / 8.2 / 8.4).

Paper reference values:

    name     red  initial  final
    csa 2.2    2       22     21
    csa 4.4    2       40     43
    csa 8.2    8       88     88
    csa 8.4    4       80     87

Shape claims reproduced here (absolute gate counts differ by the one
extra MUX inverter per block our decomposition keeps):

* redundancy counts match the paper exactly (2, 2, 8, 4);
* KMS output is irredundant and functionally equivalent;
* the measured (sensitizable) delay never increases -- the paper notes
  it *decreases by 2 gate delays* on every csa under unit delay;
* final area stays within a few gates of the initial area.
"""

import pytest

from conftest import once
from repro.atpg import is_irredundant
from repro.bench import PAPER_TABLE1, carry_skip_rows, render
from repro.circuits import carry_skip_adder
from repro.core import kms
from repro.sat import check_equivalence
from repro.timing import UnitDelayModel

MODEL = UnitDelayModel(use_arrival_times=False)


@pytest.mark.parametrize("nbits,block", [(2, 2), (4, 4), (8, 2), (8, 4)])
def test_csa_row(benchmark, nbits, block):
    name = f"csa {nbits}.{block}"

    def run():
        return carry_skip_rows([(nbits, block)], MODEL)[0]

    row = once(benchmark, run).row
    print()
    paper_red, paper_init, paper_final = PAPER_TABLE1[name]
    print(
        f"{name}: red {row.redundancies} (paper {paper_red}), gates "
        f"{row.gates_initial}->{row.gates_final} (paper {paper_init}->"
        f"{paper_final}), delay {row.delay_initial}->{row.delay_final}"
    )
    # redundancy counts match the paper exactly
    assert row.redundancies == paper_red
    # delay contract: never slower; the paper reports -2 on csa circuits
    assert row.delay_final <= row.delay_initial
    assert row.delay_initial - row.delay_final == 2.0
    # area stays in the paper's ballpark (|final - initial| small)
    assert abs(row.gates_final - row.gates_initial) <= 8


def test_csa_results_verified_end_to_end(benchmark):
    """Equivalence + irredundancy of every csa KMS output."""

    def run():
        results = {}
        for nbits, block in [(2, 2), (4, 4), (8, 4)]:
            c = carry_skip_adder(nbits, block)
            results[(nbits, block)] = (c, kms(c, model=MODEL).circuit)
        return results

    results = once(benchmark, run)
    for (nbits, block), (before, after) in results.items():
        assert check_equivalence(before, after).equivalent
        assert is_irredundant(after)


def test_render_table(benchmark):
    """Print the regenerated csa block of Table I."""

    def run():
        return carry_skip_rows([(2, 2), (4, 4)], MODEL)

    rows = once(benchmark, run)
    print()
    print(render(rows, "Table I -- carry-skip rows (subset)"))
