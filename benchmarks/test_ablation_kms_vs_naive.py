"""Ablation: KMS vs straightforward redundancy removal (Sections II-III).

'In almost all cases the straightforward removal of these redundancies
does not affect the speed of the circuit.  However, in the case of the
carry-skip adder ... removing the attendant redundancy in the design
slows the circuit down.'

Regenerated on the carry cone and on multi-block adders: naive removal
that takes the skip redundancy first degrades the computed delay; KMS
never does.
"""

import pytest

from conftest import once
from repro.atpg import remove_fault, remove_redundancies, stem_fault
from repro.circuits import carry_skip_adder, fig4_c2_cone
from repro.core import kms
from repro.sat import check_equivalence
from repro.timing import UnitDelayModel, viability_delay


def _skip_first_removal(circuit, skip_gates):
    """The textbook removal: tie the skip ANDs' untestable s-a-0 first."""
    work = circuit.copy()
    for gid in skip_gates:
        remove_fault(work, stem_fault(gid, 0))
    return remove_redundancies(work).circuit


def test_cone_naive_slower_kms_not(benchmark):
    def run():
        cone = fig4_c2_cone()
        before = viability_delay(cone).delay
        naive = _skip_first_removal(cone, [cone.find_gate("gate10")])
        kms_out = kms(cone).circuit
        return {
            "before": before,
            "naive": viability_delay(naive).delay,
            "kms": viability_delay(kms_out).delay,
            "cone": cone,
            "naive_circuit": naive,
            "kms_circuit": kms_out,
        }

    r = once(benchmark, run)
    print()
    print(
        f"carry cone: before {r['before']}, naive removal "
        f"{r['naive']}, KMS {r['kms']}"
    )
    # both removals preserve function...
    assert check_equivalence(r["cone"], r["naive_circuit"]).equivalent
    assert check_equivalence(r["cone"], r["kms_circuit"]).equivalent
    # ...but only naive removal slows the circuit down
    assert r["naive"] > r["before"]
    assert r["kms"] <= r["before"]


@pytest.mark.parametrize("nbits,block", [(4, 2), (8, 4)])
def test_multiblock_adders(benchmark, nbits, block):
    """With a late carry-in, killing the skip chain naively costs the
    cascaded blocks their bypass."""
    model = UnitDelayModel()

    def run():
        c = carry_skip_adder(nbits, block, cin_arrival=5.0)
        before = viability_delay(c, model).delay
        kms_out = kms(c, model=model).circuit
        return before, viability_delay(kms_out, model).delay

    before, after = once(benchmark, run)
    print()
    print(f"csa {nbits}.{block} (late cin): {before} -> KMS {after}")
    assert after <= before
