"""Fig. 1 + Section III: the redundant 2-b carry-skip adder block.

Claims regenerated:

* with c0 arriving at t = 5, AND/OR = 1, XOR/MUX = 2: the critical path
  of the carry cone is a0 -> gates 1,6,7,9,11 -> MUX at 8 gate delays;
* the longest (topological) path c0 -> 6,7,9,11 -> MUX is 11 and is not
  statically sensitizable (a false path);
* gate 10's output s-a-0 is untestable and is the block's signature
  redundancy (2 untestable collapsed faults total);
* the exact event-driven oracle confirms the true delay of the cone
  is 8.
"""

from conftest import once
from repro.atpg import SatAtpg, count_redundancies, stem_fault
from repro.circuits import fig1_carry_skip_block, fig4_c2_cone
from repro.sim import true_delay
from repro.timing import (
    longest_paths,
    statically_sensitizable,
    topological_delay,
    viability_delay,
)


def test_fig1_timing_claims(benchmark):
    def run():
        block = fig1_carry_skip_block()
        cone = fig4_c2_cone()
        return {
            "topo": topological_delay(block),
            "cone_viability": viability_delay(cone).delay,
            "cone_true": true_delay(cone),
            "longest": longest_paths(block)[0],
            "block": block,
        }

    result = once(benchmark, run)
    print()
    print(
        f"Fig.1: longest path {result['topo']} (paper: 11), "
        f"carry-cone computed delay {result['cone_viability']} "
        f"(paper: 8), event-driven true delay {result['cone_true']}"
    )
    assert result["topo"] == 11.0
    assert result["cone_viability"] == 8.0
    assert result["cone_true"] == 8.0
    block = result["block"]
    path = result["longest"]
    names = [block.gates[g].name for g in path.gates]
    assert names[:4] == ["gate6", "gate7", "gate9", "gate11"]
    assert statically_sensitizable(block, path) is None  # false path


def test_fig1_redundancy_claims(benchmark):
    def run():
        block = fig1_carry_skip_block()
        engine = SatAtpg(block)
        g10 = block.find_gate("gate10")
        return {
            "sa0_testable": engine.is_testable(stem_fault(g10, 0)),
            "sa1_testable": engine.is_testable(stem_fault(g10, 1)),
            "redundancies": count_redundancies(block),
        }

    result = once(benchmark, run)
    print()
    print(
        f"Fig.1: gate10 s-a-0 testable={result['sa0_testable']} "
        f"(paper: untestable), redundancies={result['redundancies']} "
        f"(paper: 2 per block)"
    )
    assert not result["sa0_testable"]
    assert result["sa1_testable"]
    assert result["redundancies"] == 2
