"""A/B: fraig-first vs CNF-miter equivalence on the Table I suite.

Per circuit, both engines verify the KMS output against the original.
The claims under test:

* **verdict parity** -- both engines say "equivalent" on every row;
* **SAT budget** -- the fraig path issues strictly fewer solve calls
  over the suite (zero per row in practice: structural hashing,
  simulation, or the capped BDD decide before SAT);
* the measured wall times and call counts land in ``BENCH_fraig.json``
  for the CI telemetry artifact.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.bench import optimized_mcnc
from repro.circuits import MCNC_NAMES, carry_skip_adder
from repro.core import kms
from repro.sat import SolveCallTracker, check_equivalence
from repro.timing import UnitDelayModel

CSA_SIZES = [(2, 2), (4, 4), (8, 2), (8, 4)]
CSA_MODEL = UnitDelayModel(use_arrival_times=False)
MCNC_MODEL = UnitDelayModel()

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _ab_row(name, original, optimized):
    tracker = SolveCallTracker()
    row = {"name": name}
    for method in ("fraig", "cnf"):
        tracker.reset()
        start = time.perf_counter()
        result = check_equivalence(original, optimized, method=method)
        row[method] = {
            "equivalent": result.equivalent,
            "sat_calls": tracker.calls,
            "seconds": time.perf_counter() - start,
        }
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["fraig"]["equivalent"] is True
    assert row["cnf"]["equivalent"] is True
    assert row["fraig"]["sat_calls"] <= row["cnf"]["sat_calls"]


@pytest.mark.parametrize("nbits,block", CSA_SIZES)
def test_fraig_vs_cnf_csa(benchmark, nbits, block):
    def run():
        circuit = carry_skip_adder(nbits, block)
        out = kms(circuit, mode="static", model=CSA_MODEL).circuit
        return _ab_row(f"csa {nbits}.{block}", circuit, out)

    _assert_row(once(benchmark, run))


@pytest.mark.parametrize("name", MCNC_NAMES)
def test_fraig_vs_cnf_mcnc(benchmark, name):
    def run():
        original = optimized_mcnc(name, late_arrival=6.0, model=MCNC_MODEL)
        out = kms(original, mode="static", model=MCNC_MODEL).circuit
        return _ab_row(name, original, out)

    _assert_row(once(benchmark, run))


def test_zz_emit_bench_json_and_strict_budget():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    fraig_total = sum(r["fraig"]["sat_calls"] for r in _ROWS)
    cnf_total = sum(r["cnf"]["sat_calls"] for r in _ROWS)
    assert fraig_total < cnf_total, (
        f"fraig path must beat the CNF baseline: {fraig_total} vs {cnf_total}"
    )
    payload = {
        "suite": "table1",
        "rows": _ROWS,
        "totals": {
            "fraig_sat_calls": fraig_total,
            "cnf_sat_calls": cnf_total,
            "fraig_seconds": sum(r["fraig"]["seconds"] for r in _ROWS),
            "cnf_seconds": sum(r["cnf"]["seconds"] for r in _ROWS),
        },
    }
    out_path = os.environ.get("BENCH_FRAIG_JSON", "BENCH_fraig.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {out_path}: fraig {fraig_total} vs cnf {cnf_total} calls")
