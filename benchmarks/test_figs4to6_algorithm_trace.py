"""Figs. 4-6: Section 6.3's walk of the algorithm on the c2 cone.

Fig. 4  the single-output carry cone; longest path c0 -> gate6 ->
        gate7 -> gate9 -> gate11 -> MUX, length 11, not statically
        sensitizable; no gate on it has fanout > 1, so no duplication.
Fig. 5  after the first edge (c0 -> gate6) is tied to 0: the longest
        path is now sensitizable and two s-a-1 redundancies remain.
Fig. 6  after removing the remaining redundancies in any order: fully
        testable, no slower.
"""

from conftest import once
from repro.atpg import count_redundancies, is_irredundant
from repro.circuits import (
    fig4_c2_cone,
    fig5_after_first_edge,
    fig6_final,
)
from repro.core import kms
from repro.sat import check_equivalence
from repro.timing import (
    sensitizable_delay,
    topological_delay,
    viability_delay,
)


def test_algorithm_trace_matches_figures(benchmark):
    def run():
        fig4 = fig4_c2_cone()
        result = kms(fig4, checked=True, trace=True)
        return fig4, result

    fig4, result = once(benchmark, run)
    print()
    for event in result.events:
        print(
            f"  iter {event.iteration}: {event.path} "
            f"-> tie {event.constant_value}, "
            f"{event.duplicated_gates} duplicated, "
            f"{event.gates_after} gates left"
        )
    # Fig. 4 -> Fig. 5 in exactly one iteration, no duplication
    assert result.iterations == 1
    assert result.duplicated_gates == 0
    event = result.events[0]
    assert "c0" in event.path and "gate6" in event.path
    assert event.constant_value == 0
    # the traced intermediate circuit is Fig. 5
    fig5 = fig5_after_first_edge()
    assert check_equivalence(event.snapshot, fig5).equivalent
    # the final circuit is Fig. 6: irredundant, equivalent, no slower
    assert is_irredundant(result.circuit)
    assert check_equivalence(fig4, result.circuit).equivalent
    assert (
        viability_delay(result.circuit).delay
        <= viability_delay(fig4).delay
    )


def test_fig5_properties(benchmark):
    def run():
        return fig5_after_first_edge()

    fig5 = once(benchmark, run)
    print()
    print(
        f"Fig.5: delay {topological_delay(fig5)}, sensitizable "
        f"{sensitizable_delay(fig5).delay}, redundancies "
        f"{count_redundancies(fig5)}"
    )
    # longest path sensitizable now (Section 6.3)
    assert (
        sensitizable_delay(fig5).delay == topological_delay(fig5)
    )
    # the remaining redundancies of the paper's Fig. 5
    assert count_redundancies(fig5) >= 1


def test_fig6_properties(benchmark):
    def run():
        return fig6_final()

    fig6 = once(benchmark, run)
    print()
    print(
        f"Fig.6: {fig6.num_gates()} gates, delay "
        f"{viability_delay(fig6).delay}"
    )
    assert is_irredundant(fig6)
    assert check_equivalence(fig4_c2_cone(), fig6).equivalent
    assert viability_delay(fig6).delay <= 8.0
