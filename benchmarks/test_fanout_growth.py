"""Section 6.2: the fanout cost of duplication.

'In the 2-b carry-skip adder, after removing redundancies, there is an
increase in fan out of at most one for any gate, and no modification of
the circuit is required to accommodate the higher fan out.'

Regenerated: per-gate fanout growth through KMS, plus the delay impact
under a fanout-sensitive delay model (the paper's answer -- cell
resizing -- corresponds to bounding this delta).
"""

from conftest import once
from repro.circuits import carry_skip_adder, fig1_carry_skip_block
from repro.core import kms
from repro.timing import (
    AsBuiltDelayModel,
    FanoutDelayModel,
    topological_delay,
)


def _max_fanout(circuit):
    return max(
        (len(g.fanout) for g in circuit.gates.values()), default=0
    )


def test_fig1_fanout_growth_at_most_one(benchmark):
    def run():
        fig1 = fig1_carry_skip_block()
        result = kms(fig1)
        return fig1, result.circuit

    before, after = once(benchmark, run)
    print()
    print(
        f"Fig.1 max fanout: {_max_fanout(before)} -> "
        f"{_max_fanout(after)}"
    )
    assert _max_fanout(after) <= _max_fanout(before) + 1


def test_fanout_sensitive_delay_impact(benchmark):
    """Even charging 0.2 units per extra fanout, the KMS output stays
    at or below the original circuit's fanout-aware delay."""
    model = FanoutDelayModel(AsBuiltDelayModel(), load_per_fanout=0.2)

    def run():
        c = carry_skip_adder(2, 2, cin_arrival=5.0)
        result = kms(c)
        return (
            topological_delay(c, model),
            topological_delay(result.circuit, model),
        )

    before, after = once(benchmark, run)
    print()
    print(f"fanout-aware topological delay: {before:.2f} -> {after:.2f}")
    assert after <= before + 1e-9
