"""CI perf gate: compare a fresh BENCH_serve.json against the committed
baseline and fail on scheduling/dedup counter regressions.

Usage::

    python benchmarks/compare_serve_baseline.py BENCH_serve.json \
        benchmarks/baselines/BENCH_serve_baseline.json [--tolerance 0.10]

The gate is on the *deterministic* scheduling counters of the serve
daemon under the fixed load-test workload (``submissions``,
``executions_created``, ``coalesced_total``, ``kms_executions``,
``failed``, ``timeout``, ``retried``) -- exact functions of the
workload, so a failure means the dedup/supervision logic changed, never
runner jitter.  The ``identical`` flag covers bit-identity of every
served netlist against the one-shot pipeline.  Mechanics (tolerance,
slack, missing/new-row policy, informational wall clock) live in the
shared :mod:`compare_baseline` helper used by all perf gates.

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import sys

import compare_baseline

DEFAULT_GATED = [
    "submissions",
    "executions_created",
    "coalesced_total",
    "kms_executions",
    "failed",
    "timeout",
    "retried",
]


def main(argv=None) -> int:
    return compare_baseline.main(
        argv,
        description=__doc__.splitlines()[0],
        result_key="serve",
        default_gated=DEFAULT_GATED,
        identical_message=(
            "served results no longer bit-identical to the "
            "one-shot pipeline"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
