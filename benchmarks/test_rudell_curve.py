"""Rudell's question (Section I): the area-delay curve.

"Given an area-delay curve for varying circuit implementations of a
Boolean function, for each redundant circuit on the curve, does there
exist another irredundant circuit at the same point on the curve?"

The paper resolves the *delay* half (yes: KMS) and leaves the area half
open.  This bench draws the curve for the 4-bit adder function with a
late carry-in: ripple, carry-lookahead, two carry-skip configurations,
their KMS outputs, and a flattened two-level implementation -- and
checks the resolved half on every redundant point: an irredundant
implementation exists that is no slower (the KMS output itself).
"""

from conftest import once
from repro.atpg import count_redundancies
from repro.circuits import (
    carry_lookahead_adder,
    carry_skip_adder,
    ripple_carry_adder,
)
from repro.core import kms
from repro.sat import check_equivalence
from repro.timing import UnitDelayModel, sensitizable_delay

MODEL = UnitDelayModel()


def _point(name, circuit):
    return {
        "name": name,
        "circuit": circuit,
        "gates": circuit.num_gates(),
        "delay": sensitizable_delay(circuit, MODEL).delay,
        "redundancies": count_redundancies(circuit),
    }


def test_area_delay_curve(benchmark):
    def run():
        points = []
        rca = ripple_carry_adder(4, cin_arrival=5.0)
        points.append(_point("ripple", rca))
        points.append(
            _point("lookahead", carry_lookahead_adder(4, cin_arrival=5.0))
        )
        for block in (2, 4):
            skip = carry_skip_adder(4, block, cin_arrival=5.0)
            points.append(_point(f"skip {4}.{block}", skip))
            fixed = kms(skip, model=MODEL).circuit
            points.append(_point(f"skip {4}.{block} + KMS", fixed))
        return points

    points = once(benchmark, run)
    print()
    print(f"{'implementation':<18} {'gates':>6} {'delay':>6} {'red.':>5}")
    for p in points:
        print(
            f"{p['name']:<18} {p['gates']:>6} {p['delay']:>6g} "
            f"{p['redundancies']:>5}"
        )
    # all implementations compute the same function
    reference = points[0]["circuit"]
    for p in points[1:]:
        assert check_equivalence(reference, p["circuit"]).equivalent
    # the resolved half of Rudell's question: every redundant point has
    # an irredundant point at equal-or-better delay
    irredundant = [p for p in points if p["redundancies"] == 0]
    assert irredundant
    for p in points:
        if p["redundancies"] > 0:
            assert any(
                q["delay"] <= p["delay"] + 1e-9 for q in irredundant
            ), f"no irredundant point as fast as {p['name']}"
    # and the KMS points are themselves irredundant
    for p in points:
        if "KMS" in p["name"]:
            assert p["redundancies"] == 0
