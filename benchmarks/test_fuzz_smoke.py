"""The fuzz smoke corpus as a CI-gated benchmark.

Runs the deterministic ``fuzz_smoke`` corpus (30 seeded planted-redundancy
scenarios, ``repro.engine.sweep.fuzz_smoke_jobs``'s spec list) through
the differential grading harness, asserting per scenario:

* 100% planted-redundancy recall with the incremental ProofEngine,
  bit-identical to the from-scratch oracle;
* zero false removals (KMS output fraig-equivalent to the pre-insertion
  base) and no delay regression (delay-neutral plants additionally pin
  the final topological delay at or below the original base's);
* the KMS output is irredundant.

Each row lands in ``BENCH_fuzz.json`` with the deterministic proof/KMS
work counters; the blocking ``fuzz-smoke-gate`` CI job compares them
against ``benchmarks/baselines/BENCH_fuzz_baseline.json`` via the shared
``benchmarks/compare_baseline.py``, so grading a scenario can never
silently get slower or start disagreeing with the oracle.
"""

import json
import os

import pytest

from conftest import once
from repro.engine.sweep import FUZZ_SMOKE_COUNT, FUZZ_SMOKE_SEED
from repro.fuzz import campaign_specs, grade_scenario

#: Deterministic work counters the CI gate protects (prefixes from
#: repro.fuzz.grade: proof_* = ProofEngine classification of the planted
#: list, kms_* = the KMS run over the planted circuit).
GATED_COUNTERS = (
    "proof_podem_calls",
    "proof_podem_backtracks",
    "proof_sat_proofs",
    "proof_tseitin_builds",
    "proof_faults_requalified",
    "kms_iterations",
    "kms_podem_calls",
    "kms_sat_proofs",
    "kms_tseitin_builds",
    "kms_paths_enumerated",
    "kms_viability_checks_exact",
)

SPECS = campaign_specs(FUZZ_SMOKE_COUNT, seed=FUZZ_SMOKE_SEED)

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _grade_row(spec):
    payload = grade_scenario(spec)
    row = {
        "name": spec.name,
        "identical": payload["ok"],
        "mismatches": payload["mismatches"],
        "recall": payload["recall"],
        "fuzz": {
            "seconds": payload["seconds"],
            "counters": {
                k: int(v) for k, v in payload["counters"].items()
            },
        },
    }
    _ROWS.append(row)
    return row


@pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
def test_fuzz_smoke_scenario(benchmark, spec):
    row = once(benchmark, lambda: _grade_row(spec))
    assert row["identical"], (
        f"fuzz scenario {row['name']} failed grading: "
        f"{row['mismatches']}"
    )
    assert row["recall"] == 1.0


def test_zz_emit_bench_json():
    """Artifact emitter; named to sort after the row tests and tolerant
    of partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no fuzz rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    totals = {
        "fuzz": {
            "seconds": sum(r["fuzz"]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(r["fuzz"]["counters"].get(name, 0)
                          for r in _ROWS)
                for name in GATED_COUNTERS
            },
        }
    }
    payload = {
        "suite": "fuzz-smoke",
        "result_key": "fuzz",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    out_path = os.environ.get("BENCH_FUZZ_JSON", "BENCH_fuzz.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {out_path}: {len(_ROWS)} rows, "
          f"recall 100% on {sum(len(r['mismatches']) == 0 for r in _ROWS)}"
          f"/{len(_ROWS)} scenarios")
