"""Shared CI perf-gate engine: compare a fresh BENCH_*.json against a
committed baseline and fail on work-counter regressions.

Every row of the matrix-driven ``perf-gate`` job in
``.github/workflows/ci.yml`` (manifest: ``benchmarks/gates.json``) runs
this one script; the per-gate differences live in the *baseline
payload*, not here:

* every bench row names a workload and carries, under the payload's
  ``result_key``, a ``counters`` dict of *deterministic* work counters
  plus informational ``seconds``;
* each gated counter (payload ``gated_counters``) may grow by at most
  ``tolerance`` (relative) plus an absolute slack of 2 for near-zero
  counts;
* a baseline row missing from the fresh results fails the gate; new
  rows are reported but pass (extending a suite should not require a
  simultaneous baseline bump to land);
* a row whose ``identical`` flag went false fails the gate -- the
  optimized engine must keep matching its from-scratch oracle;
* wall-clock seconds are printed for context but never gate (they ride
  along as a CI artifact instead);
* a markdown counter-vs-baseline table is appended to
  ``$GITHUB_STEP_SUMMARY`` when set (CI), else echoed to stderr
  (local runs).

Usage::

    python benchmarks/compare_baseline.py BENCH_kms.json \
        benchmarks/baselines/BENCH_kms_baseline.json [--tolerance 0.10]

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

#: Absolute slack so a 1 -> 2 jump on a tiny counter is not a "100%
#: regression"; real regressions move the big counters by far more.
ABSOLUTE_SLACK = 2

#: Fallbacks for baselines predating the self-describing payload format
#: (every committed baseline now carries ``result_key`` and
#: ``gated_counters``, so these only matter for stale local files).
DEFAULT_RESULT_KEY = "incremental"
DEFAULT_GATED = [
    "faults_requalified",
    "verdicts_carried",
    "witness_drops",
    "sat_proofs",
    "tseitin_builds",
    "podem_calls",
]
DEFAULT_IDENTICAL_MESSAGE = (
    "result no longer matches its from-scratch oracle"
)


def load_rows(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "rows" not in data:
        raise ValueError(f"{path}: not a bench-rows json payload")
    return data, {row["name"]: row for row in data["rows"]}


def write_summary(lines: List[str]) -> None:
    """Append markdown to the GitHub Actions job summary, or echo it to
    stderr when running outside CI."""
    text = "\n".join(lines) + "\n"
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, file=sys.stderr)


def compare(
    current_path: str,
    baseline_path: str,
    tolerance: float = 0.10,
    result_key: str = DEFAULT_RESULT_KEY,
    default_gated: Optional[List[str]] = None,
    identical_message: str = DEFAULT_IDENTICAL_MESSAGE,
) -> int:
    """Run the gate; returns a process exit status (0 pass, 1 fail)."""
    current_data, current = load_rows(current_path)
    baseline_data, baseline = load_rows(baseline_path)
    result_key = baseline_data.get("result_key", result_key)
    gated = baseline_data.get(
        "gated_counters",
        default_gated if default_gated is not None else DEFAULT_GATED,
    )

    suite = baseline_data.get("suite", os.path.basename(current_path))
    table = [
        f"### perf gate: {suite} "
        f"({tolerance:.0%} tolerance on `{result_key}` counters)",
        "",
        "| row | counter | baseline | current | status |",
        "| --- | --- | ---: | ---: | --- |",
    ]
    failures = []
    for name, base_row in sorted(baseline.items()):
        cur_row = current.get(name)
        if cur_row is None:
            failures.append(f"{name}: row missing from current results")
            table.append(f"| {name} | — | — | — | missing ❌ |")
            continue
        if not cur_row.get("identical", False):
            failures.append(f"{name}: {identical_message}")
            table.append(
                f"| {name} | identical | true | false | diverged ❌ |"
            )
        base_counters = base_row[result_key]["counters"]
        cur_counters = cur_row[result_key]["counters"]
        for counter in gated:
            base_value = base_counters.get(counter, 0)
            cur_value = cur_counters.get(counter, 0)
            limit = base_value * (1.0 + tolerance) + ABSOLUTE_SLACK
            marker = ""
            status = "changed"
            if cur_value > limit:
                failures.append(
                    f"{name}: {counter} regressed "
                    f"{base_value} -> {cur_value} "
                    f"(limit {limit:.1f} at {tolerance:.0%} tolerance)"
                )
                marker = "  <-- REGRESSION"
                status = "regressed ❌"
            if cur_value != base_value:
                print(f"{name}: {counter} {base_value} -> {cur_value}"
                      f"{marker}")
                table.append(
                    f"| {name} | {counter} | {base_value} | {cur_value} "
                    f"| {status} |"
                )

    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: new row (no baseline; passes)")
        table.append(f"| {name} | — | — | — | new row (passes) |")

    base_secs = sum(r[result_key]["seconds"] for r in baseline.values())
    cur_secs = sum(
        r[result_key]["seconds"]
        for n, r in current.items() if n in baseline
    )
    print(f"wall clock (informational, not gated): "
          f"baseline {base_secs:.1f}s, current {cur_secs:.1f}s")

    if len(table) == 4:
        table.append("| — | *all gated counters* | — | — | unchanged ✅ |")
    table += [
        "",
        f"Wall clock (informational, never gates): baseline "
        f"{base_secs:.1f}s, current {cur_secs:.1f}s.",
        "",
        (f"**FAIL**: {len(failures)} regression(s)." if failures
         else f"**OK**: {len(baseline)} baseline rows within "
              f"{tolerance:.0%} counter tolerance."),
        "",
    ]
    write_summary(table)

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(baseline)} rows within "
          f"{tolerance:.0%} counter tolerance")
    return 0


def main(
    argv=None,
    description: Optional[str] = None,
    result_key: str = DEFAULT_RESULT_KEY,
    default_gated: Optional[List[str]] = None,
    identical_message: str = DEFAULT_IDENTICAL_MESSAGE,
) -> int:
    parser = argparse.ArgumentParser(
        description=description or __doc__.splitlines()[0]
    )
    parser.add_argument("current", help="freshly produced bench json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed relative counter growth (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)
    return compare(
        args.current,
        args.baseline,
        tolerance=args.tolerance,
        result_key=result_key,
        default_gated=default_gated,
        identical_message=identical_message,
    )


if __name__ == "__main__":
    sys.exit(main())
