"""Shared CI perf-gate engine: compare a fresh BENCH_*.json against a
committed baseline and fail on work-counter regressions.

All perf gates (``compare_kms_baseline.py``, ``compare_sim_baseline.py``
and the atpg gate, which uses this module directly) share the same
mechanics:

* every bench row names a workload and carries, under ``result_key``, a
  ``counters`` dict of *deterministic* work counters plus informational
  ``seconds``;
* each gated counter may grow by at most ``tolerance`` (relative) plus
  an absolute slack of 2 for near-zero counts;
* a baseline row missing from the fresh results fails the gate; new
  rows are reported but pass (extending a suite should not require a
  simultaneous baseline bump to land);
* a row whose ``identical`` flag went false fails the gate -- the
  incremental engine must keep matching its from-scratch oracle;
* wall-clock seconds are printed for context but never gate (they ride
  along as a CI artifact instead).

The gated counter list is read from the baseline payload's
``gated_counters`` key, so tightening or extending a gate is a baseline
edit, not a script edit; a per-gate default covers old baselines.  The
result key is likewise read from ``result_key`` (payload) with a
per-gate default.

Usage (the atpg gate calls this file directly)::

    python benchmarks/compare_baseline.py BENCH_atpg.json \
        benchmarks/baselines/BENCH_atpg_baseline.json [--tolerance 0.10]

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

#: Absolute slack so a 1 -> 2 jump on a tiny counter is not a "100%
#: regression"; real regressions move the big counters by far more.
ABSOLUTE_SLACK = 2

#: Defaults for direct invocation (the atpg proof-engine gate).
DEFAULT_RESULT_KEY = "incremental"
DEFAULT_GATED = [
    "faults_requalified",
    "verdicts_carried",
    "witness_drops",
    "sat_proofs",
    "tseitin_builds",
    "podem_calls",
]
DEFAULT_IDENTICAL_MESSAGE = (
    "incremental result no longer matches the from-scratch oracle"
)


def load_rows(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "rows" not in data:
        raise ValueError(f"{path}: not a bench-rows json payload")
    return data, {row["name"]: row for row in data["rows"]}


def compare(
    current_path: str,
    baseline_path: str,
    tolerance: float = 0.10,
    result_key: str = DEFAULT_RESULT_KEY,
    default_gated: Optional[List[str]] = None,
    identical_message: str = DEFAULT_IDENTICAL_MESSAGE,
) -> int:
    """Run the gate; returns a process exit status (0 pass, 1 fail)."""
    current_data, current = load_rows(current_path)
    baseline_data, baseline = load_rows(baseline_path)
    result_key = baseline_data.get("result_key", result_key)
    gated = baseline_data.get(
        "gated_counters",
        default_gated if default_gated is not None else DEFAULT_GATED,
    )

    failures = []
    for name, base_row in sorted(baseline.items()):
        cur_row = current.get(name)
        if cur_row is None:
            failures.append(f"{name}: row missing from current results")
            continue
        if not cur_row.get("identical", False):
            failures.append(f"{name}: {identical_message}")
        base_counters = base_row[result_key]["counters"]
        cur_counters = cur_row[result_key]["counters"]
        for counter in gated:
            base_value = base_counters.get(counter, 0)
            cur_value = cur_counters.get(counter, 0)
            limit = base_value * (1.0 + tolerance) + ABSOLUTE_SLACK
            marker = ""
            if cur_value > limit:
                failures.append(
                    f"{name}: {counter} regressed "
                    f"{base_value} -> {cur_value} "
                    f"(limit {limit:.1f} at {tolerance:.0%} tolerance)"
                )
                marker = "  <-- REGRESSION"
            if cur_value != base_value:
                print(f"{name}: {counter} {base_value} -> {cur_value}"
                      f"{marker}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: new row (no baseline; passes)")

    base_secs = sum(r[result_key]["seconds"] for r in baseline.values())
    cur_secs = sum(
        r[result_key]["seconds"]
        for n, r in current.items() if n in baseline
    )
    print(f"wall clock (informational, not gated): "
          f"baseline {base_secs:.1f}s, current {cur_secs:.1f}s")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(baseline)} rows within "
          f"{tolerance:.0%} counter tolerance")
    return 0


def main(
    argv=None,
    description: Optional[str] = None,
    result_key: str = DEFAULT_RESULT_KEY,
    default_gated: Optional[List[str]] = None,
    identical_message: str = DEFAULT_IDENTICAL_MESSAGE,
) -> int:
    parser = argparse.ArgumentParser(
        description=description or __doc__.splitlines()[0]
    )
    parser.add_argument("current", help="freshly produced bench json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed relative counter growth (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)
    return compare(
        args.current,
        args.baseline,
        tolerance=args.tolerance,
        result_key=result_key,
        default_gated=default_gated,
        identical_message=identical_message,
    )


if __name__ == "__main__":
    sys.exit(main())
