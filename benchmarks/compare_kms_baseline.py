"""CI perf gate: compare a fresh BENCH_kms.json against the committed
baseline and fail on work-counter regressions.

Usage::

    python benchmarks/compare_kms_baseline.py BENCH_kms.json \
        benchmarks/baselines/BENCH_kms_baseline.json [--tolerance 0.10]

The gate is on the *deterministic* counters of the incremental KMS
engine (``arrival_relaxations``, ``dist_relaxations``,
``paths_enumerated``, ``viability_checks_exact``) -- exact functions of
circuit + seed, so a failure means an algorithmic regression, never
runner jitter.  Mechanics (tolerance, slack, missing/new-row policy,
informational wall clock) live in the shared
:mod:`compare_baseline` helper used by all perf gates.

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import sys

import compare_baseline

DEFAULT_GATED = [
    "arrival_relaxations",
    "dist_relaxations",
    "paths_enumerated",
    "viability_checks_exact",
]


def main(argv=None) -> int:
    return compare_baseline.main(
        argv,
        description=__doc__.splitlines()[0],
        result_key="incremental",
        default_gated=DEFAULT_GATED,
        identical_message=(
            "incremental result no longer matches the "
            "full-recompute oracle"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
