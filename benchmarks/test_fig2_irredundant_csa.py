"""Fig. 2: the paper's novel irredundant 2-b carry-skip adder.

Claims regenerated:

* functionally identical to Fig. 1 (only gate9's carry pin was rewired
  to primary input b0);
* fully single-stuck-at testable -- no speedtest needed;
* no slower than Fig. 1 under the viability model;
* zero area overhead.
"""

from conftest import once
from repro.atpg import is_irredundant
from repro.circuits import fig1_carry_skip_block, fig2_irredundant_block
from repro.core import verify_transformation


def test_fig2_claims(benchmark):
    def run():
        fig1 = fig1_carry_skip_block()
        fig2 = fig2_irredundant_block()
        return verify_transformation(fig1, fig2)

    report = once(benchmark, run)
    print()
    print(
        f"Fig.2 vs Fig.1: equivalent={report.equivalent}, "
        f"irredundant={report.irredundant}, "
        f"delay {report.delays_before.viability} -> "
        f"{report.delays_after.viability}, gates "
        f"{report.gates_before} -> {report.gates_after}"
    )
    assert report.equivalent
    assert report.irredundant
    assert report.delay_preserved
    assert report.gates_after == report.gates_before
    assert report.redundancies_before == 2
    assert report.redundancies_after == 0


def test_kms_discovers_an_equivalent_answer(benchmark):
    """Running the algorithm on Fig. 1 yields another irredundant,
    no-slower block -- the paper notes the multi-output run returns 'a
    different version ... that has the same number of gates and is also
    no slower'."""
    from repro.core import kms

    def run():
        fig1 = fig1_carry_skip_block()
        result = kms(fig1)
        return fig1, result

    fig1, result = once(benchmark, run)
    report = verify_transformation(fig1, result.circuit)
    print()
    print(
        f"KMS on Fig.1: {result.iterations} iterations, "
        f"{result.duplicated_gates} gates duplicated, gates "
        f"{report.gates_before} -> {report.gates_after}"
    )
    assert report.ok
    assert is_irredundant(result.circuit)
    assert result.duplicated_gates >= 1  # gate7 fans out to the sum logic
