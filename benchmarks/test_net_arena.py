"""A/B: arena-backed vs object-graph KMS (``REPRO_NET_LEGACY=1``).

Per circuit, KMS runs twice -- once with the struct-of-arrays
:mod:`repro.net.arena` attached (the default) and once with
``REPRO_NET_LEGACY=1`` forcing the verbatim object-graph path.  The
claims under test:

* **bit-identical results** -- same event sequence, final circuit
  fingerprint and delay on every row: the arena is a representation
  change, never an algorithm change;
* **rebuild-work reduction** -- over the scaling suite the legacy path
  performs at least 5x more compiled-schedule rebuild work
  (``compile_rebuilds``) than the arena path (whose zero-copy view only
  pays ``arena_full_builds`` full constructions and otherwise counts
  ``compile_rebuilds_avoided``);
* the deterministic arena work counters and (non-gating) wall times
  land in ``BENCH_arena.json``, which the ``arena`` row of the
  matrix-driven ``perf-gate`` CI job compares against
  ``benchmarks/baselines/BENCH_arena_baseline.json`` via
  ``benchmarks/compare_baseline.py``.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.bench import optimized_mcnc
from repro.circuits import MCNC_NAMES, carry_skip_adder
from repro.core import kms
from repro.engine.hashing import circuit_fingerprint
from repro.engine.sweep import CSA_SIZES, MCNC_LATE_ARRIVAL, SCALING_SIZES
from repro.net import LEGACY_ENV
from repro.sim.kernel import sim_work_counters
from repro.timing import UnitDelayModel, topological_delay

CSA_MODEL = UnitDelayModel(use_arrival_times=False)
MCNC_MODEL = UnitDelayModel()

#: Union of the Table I and scaling carry-skip configurations; each row
#: is computed once and tagged with the suites it belongs to.
CSA_UNION = sorted(set(CSA_SIZES) | set(SCALING_SIZES))

#: Counters whose totals the CI perf gate protects against regression
#: (all from the arena run; the legacy run rides along as the oracle).
GATED_COUNTERS = (
    "arena_compactions",
    "array_ops_inplace",
    "compile_rebuilds_avoided",
    "fingerprint_rehashes",
)

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _run_once(circuit, model, legacy):
    """One timed KMS run under the requested representation.

    ``compile_rebuilds`` is a process-global simulation work counter
    (every ``CompiledCircuit._compile`` bumps it), so the rebuild work
    of each run is its delta.
    """
    saved = os.environ.get(LEGACY_ENV)
    try:
        if legacy:
            os.environ[LEGACY_ENV] = "1"
        else:
            os.environ.pop(LEGACY_ENV, None)
        rebuilds_before = sim_work_counters()["compile_rebuilds"]
        start = time.perf_counter()
        result = kms(circuit, mode="static", model=model)
        seconds = time.perf_counter() - start
        rebuilds = sim_work_counters()["compile_rebuilds"] - rebuilds_before
    finally:
        if saved is None:
            os.environ.pop(LEGACY_ENV, None)
        else:
            os.environ[LEGACY_ENV] = saved
    return result, seconds, rebuilds


def _ab_row(name, suites, circuit, model):
    row = {"name": name, "suites": list(suites)}
    events = {}
    for key, legacy in (("arena", False), ("legacy", True)):
        result, seconds, rebuilds = _run_once(circuit, model, legacy)
        counters = {k: int(v) for k, v in result.counters.items()}
        counters["compile_rebuilds"] = rebuilds
        row[key] = {
            "seconds": seconds,
            "iterations": result.iterations,
            "fingerprint": circuit_fingerprint(result.circuit),
            "delay": topological_delay(result.circuit, model),
            "counters": counters,
        }
        events[key] = [
            (e.path, e.constant_value, e.duplicated_gates, e.gates_after)
            for e in result.events
        ]
    row["identical"] = (
        row["arena"]["fingerprint"] == row["legacy"]["fingerprint"]
        and row["arena"]["delay"] == row["legacy"]["delay"]
        and events["arena"] == events["legacy"]
    )
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["identical"], (
        f"arena-backed KMS diverged from the object-graph oracle "
        f"on {row['name']}"
    )
    # shared algorithm counters must not shift with the representation
    for key in ("paths_enumerated", "viability_checks_exact",
                "arrival_relaxations", "dist_relaxations"):
        assert (row["arena"]["counters"][key]
                == row["legacy"]["counters"][key]), key


@pytest.mark.parametrize("nbits,block", CSA_UNION)
def test_arena_ab_csa(benchmark, nbits, block):
    suites = ["table1"] if (nbits, block) in CSA_SIZES else []
    if (nbits, block) in SCALING_SIZES:
        suites.append("scaling")

    def run():
        circuit = carry_skip_adder(nbits, block)
        return _ab_row(f"csa {nbits}.{block}", suites, circuit, CSA_MODEL)

    _assert_row(once(benchmark, run))


@pytest.mark.parametrize("name", MCNC_NAMES)
def test_arena_ab_mcnc(benchmark, name):
    def run():
        circuit = optimized_mcnc(
            name, late_arrival=MCNC_LATE_ARRIVAL, model=MCNC_MODEL
        )
        return _ab_row(name, ["table1"], circuit, MCNC_MODEL)

    _assert_row(once(benchmark, run))


def test_zz_emit_bench_json_and_rebuild_claim():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    scaling = [r for r in _ROWS if "scaling" in r["suites"]]
    totals = {}
    for key in ("arena", "legacy"):
        totals[key] = {
            "seconds": sum(r[key]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(r[key]["counters"].get(name, 0) for r in _ROWS)
                for name in GATED_COUNTERS + ("compile_rebuilds",
                                              "arena_full_builds")
            },
        }
    payload = {
        "suite": "net-arena",
        "result_key": "arena",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    if len(scaling) == len(SCALING_SIZES):
        # rebuild work: legacy pays a full schedule compile per stale
        # kernel hit; the arena pays only its full array builds and
        # otherwise refreshes the zero-copy view in place.
        legacy_work = sum(
            r["legacy"]["counters"]["compile_rebuilds"] for r in scaling
        )
        arena_work = sum(
            r["arena"]["counters"]["compile_rebuilds"]
            + r["arena"]["counters"].get("arena_full_builds", 0)
            for r in scaling
        )
        avoided = sum(
            r["arena"]["counters"]["compile_rebuilds_avoided"]
            for r in scaling
        )
        payload["scaling"] = {
            "legacy_compile_rebuilds": legacy_work,
            "arena_rebuild_work": arena_work,
            "compile_rebuilds_avoided": avoided,
            "rebuild_ratio": legacy_work / max(1, arena_work),
        }
        assert legacy_work >= 5 * arena_work, (
            f"the arena view must save >=5x compiled-schedule rebuilds "
            f"on the scaling suite: legacy={legacy_work} "
            f"arena={arena_work}"
        )
    out_path = os.environ.get("BENCH_ARENA_JSON", "BENCH_arena.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    ratio = payload.get("scaling", {}).get("rebuild_ratio")
    note = f", scaling rebuild ratio {ratio:.1f}x" if ratio else ""
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
