"""A/B: persistent proof engine vs from-scratch funnel for redundancy
removal.

Per circuit, ``remove_redundancies`` runs twice -- ``incremental=True``
(the persistent :class:`repro.atpg.proofengine.ProofEngine`: verdict
carry-over across removals, one assumption-gated epoch SAT solver,
witness feedback through the compiled kernel) and ``incremental=False``
(the from-scratch oracle).  The claims under test:

* **bit-identical results** -- the same removal steps in the same
  order and the same final circuit fingerprint on every row: the proof
  engine is an optimization, never an approximation;
* **work reduction** -- on the SAT-funnel stress suite (Table I
  carry-skip adders and friends driven with a single-pattern random
  prefilter, so every qualification goes through a complete prover) the
  oracle issues at least 5x more complete-prover invocations
  (``podem_calls + sat_proofs + tseitin_builds``) than the engine;
* the deterministic proof-work counters and (non-gating) wall times
  land in ``BENCH_atpg.json``, which the ``atpg-perf-gate`` CI job
  compares against ``benchmarks/baselines/BENCH_atpg_baseline.json``
  via the shared ``benchmarks/compare_baseline.py``.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.atpg import remove_redundancies
from repro.circuits import (
    carry_skip_adder,
    mcnc_circuit,
    random_redundant_circuit,
)
from repro.engine.hashing import circuit_fingerprint

#: Counters whose totals the CI perf gate protects against regression
#: (work counters only: carry-over and witness-drop counts *growing*
#: would be an improvement, so they ride along ungated).
GATED_COUNTERS = (
    "faults_requalified",
    "podem_calls",
    "podem_backtracks",
    "sat_proofs",
    "tseitin_builds",
)

#: Default-configuration rows: the honest Table I cleanup setting.
IDENTITY_ROWS = [
    ("csa 2.2", lambda: carry_skip_adder(2, 2)),
    ("csa 4.2", lambda: carry_skip_adder(4, 2)),
    ("csa 8.2", lambda: carry_skip_adder(8, 2)),
    ("randred 5x15 s0",
     lambda: random_redundant_circuit(num_inputs=5, num_gates=15, seed=0)),
    ("randred 6x20 s3",
     lambda: random_redundant_circuit(num_inputs=6, num_gates=20, seed=3)),
    ("clip", lambda: mcnc_circuit("clip")),
    ("misex1", lambda: mcnc_circuit("misex1")),
    ("rd73", lambda: mcnc_circuit("rd73")),
    ("sao2", lambda: mcnc_circuit("sao2")),
    ("z4ml", lambda: mcnc_circuit("z4ml")),
]

#: SAT-funnel stress rows: a one-vector random prefilter leaves every
#: testable suspect to the complete provers, which is where verdict
#: carry-over and witness feedback pay off.
SATFUNNEL_ROWS = [
    ("csa 4.2 satfunnel", lambda: carry_skip_adder(4, 2)),
    ("csa 8.2 satfunnel", lambda: carry_skip_adder(8, 2)),
    ("randred 6x20 s3 satfunnel",
     lambda: random_redundant_circuit(num_inputs=6, num_gates=20, seed=3)),
    ("clip satfunnel", lambda: mcnc_circuit("clip")),
    ("f51m satfunnel", lambda: mcnc_circuit("f51m")),
]

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _prover_invocations(counters):
    return (counters["podem_calls"] + counters["sat_proofs"]
            + counters["tseitin_builds"])


def _ab_row(name, suites, circuit, patterns=64):
    row = {"name": name, "suites": list(suites)}
    for key, incremental in (("incremental", True), ("full", False)):
        start = time.perf_counter()
        result = remove_redundancies(
            circuit, incremental=incremental, patterns=patterns
        )
        row[key] = {
            "seconds": time.perf_counter() - start,
            "removed": result.removed,
            "steps": [[s.fault.kind, s.fault.site, s.fault.value]
                      for s in result.steps],
            "fingerprint": circuit_fingerprint(result.circuit),
            "counters": {k: int(v) for k, v in result.counters.items()},
        }
    row["identical"] = (
        row["incremental"]["steps"] == row["full"]["steps"]
        and row["incremental"]["fingerprint"]
        == row["full"]["fingerprint"]
    )
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["identical"], (
        f"proof engine diverged from the from-scratch oracle "
        f"on {row['name']}"
    )


@pytest.mark.parametrize(
    "name,build", IDENTITY_ROWS, ids=[r[0] for r in IDENTITY_ROWS]
)
def test_proofengine_ab_default(benchmark, name, build):
    def run():
        return _ab_row(name, ["identity"], build())

    _assert_row(once(benchmark, run))


@pytest.mark.parametrize(
    "name,build", SATFUNNEL_ROWS, ids=[r[0] for r in SATFUNNEL_ROWS]
)
def test_proofengine_ab_satfunnel(benchmark, name, build):
    def run():
        return _ab_row(name, ["satfunnel"], build(), patterns=1)

    _assert_row(once(benchmark, run))


def test_zz_emit_bench_json_and_speedup_claim():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    totals = {}
    for key in ("incremental", "full"):
        totals[key] = {
            "seconds": sum(r[key]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(r[key]["counters"].get(name, 0) for r in _ROWS)
                for name in GATED_COUNTERS
            },
        }
    payload = {
        "suite": "atpg-proofengine",
        "result_key": "incremental",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    satfunnel = [r for r in _ROWS if "satfunnel" in r["suites"]]
    if len(satfunnel) == len(SATFUNNEL_ROWS):
        full = sum(_prover_invocations(r["full"]["counters"])
                   for r in satfunnel)
        inc = sum(_prover_invocations(r["incremental"]["counters"])
                  for r in satfunnel)
        payload["satfunnel"] = {
            "full_prover_invocations": full,
            "incremental_prover_invocations": inc,
            "prover_ratio": full / max(1, inc),
        }
        assert full >= 5 * inc, (
            f"the proof engine must save >=5x complete-prover "
            f"invocations on the SAT-funnel suite: full={full} "
            f"incremental={inc}"
        )
    out_path = os.environ.get("BENCH_ATPG_JSON", "BENCH_atpg.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    ratio = payload.get("satfunnel", {}).get("prover_ratio")
    note = f", satfunnel prover ratio {ratio:.1f}x" if ratio else ""
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
