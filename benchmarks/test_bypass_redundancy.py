"""The paper's opening premise, end to end.

"experience has shown that performance optimizations can, and do in
practice, introduce single stuck-at-fault redundancies into designs.
Are these redundancies necessary to increase performance or are they
only an unnecessary by-product?"

Workload: a single-output rd73 cone restructured with the Shannon
bypass transform (the original cone kept next to a flat cofactor --
heavily redundant, like real bypass/select logic).  KMS answers the
title question constructively: the redundancies go, the delay does not
come back, and the area collapses.
"""

from conftest import once
from repro.atpg import count_redundancies, is_irredundant
from repro.circuits import mcnc_circuit
from repro.core import kms, verify_transformation
from repro.network.transform import sweep
from repro.synth import generalized_bypass
from repro.timing import UnitDelayModel

MODEL = UnitDelayModel()


def _bypassed_cone():
    c = mcnc_circuit("rd73")
    for name in c.output_names()[:-1]:
        c.remove_gate(c.find_output(name))
    sweep(c)
    c.input_arrival[c.inputs[0]] = 8.0
    generalized_bypass(c, c.output_names()[0], "x0", model=MODEL)
    return c


def test_bypass_then_kms(benchmark):
    def run():
        circuit = _bypassed_cone()
        red = count_redundancies(circuit)
        result = kms(circuit, model=MODEL)
        report = verify_transformation(circuit, result.circuit, MODEL)
        return red, result, report

    red, result, report = once(benchmark, run)
    print()
    print(
        f"bypassed rd73 cone: {red} redundancies, gates "
        f"{report.gates_before} -> {report.gates_after}, delay "
        f"{report.delays_before.sensitizable:g} -> "
        f"{report.delays_after.sensitizable:g}"
    )
    # optimization introduced many redundancies...
    assert red >= 10
    # ...and none of them was necessary for performance
    assert report.ok
    assert is_irredundant(result.circuit)
    assert report.gates_after < report.gates_before
    assert (
        report.delays_after.sensitizable
        <= report.delays_before.sensitizable
    )
