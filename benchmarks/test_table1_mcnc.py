"""Table I, MCNC rows (on the stand-in suite -- see DESIGN.md).

The paper's flow: area-optimize, then delay-optimize in MIS-II, then run
the algorithm.  Our flow: espresso-lite + factoring, then `speed_up`
under an input-arrival skew, then KMS.

Shape claims (absolute numbers are tied to the original PLA contents and
the exact MIS-II scripts, which we do not have):

* the optimized circuits split into the paper's two classes -- either
  every longest path is statically sensitizable (class 2) or the longest
  paths are false (class 1, like the carry-skip adder);
* redundancy counts are small, and class-1 circuits here are typically
  irredundant (the paper observed exactly this, "this may appear
  counter-intuitive");
* KMS never increases the measured delay and never increases area on
  irredundant inputs (cleanup-only rows keep their gate count).
"""

import pytest

from conftest import once
from repro.atpg import is_irredundant
from repro.bench import (
    classify_longest_paths,
    optimized_mcnc,
    run_circuit_row,
    render,
)
from repro.core import kms
from repro.sat import check_equivalence
from repro.timing import UnitDelayModel

MODEL = UnitDelayModel()
FAST_NAMES = ["5xp1", "clip", "misex1", "rd73", "sao2", "z4ml"]
SLOW_NAMES = ["duke2", "f51m", "misex2"]


@pytest.mark.parametrize("name", FAST_NAMES)
def test_mcnc_row(benchmark, name):
    def run():
        circuit = optimized_mcnc(name, late_arrival=6.0, model=MODEL)
        row = run_circuit_row(name, circuit, MODEL)
        return circuit, row

    circuit, item = once(benchmark, run)
    row = item.row
    label = classify_longest_paths(circuit, MODEL)
    print()
    print(
        f"{name}: {label}, red {row.redundancies}, gates "
        f"{row.gates_initial}->{row.gates_final}, delay "
        f"{row.delay_initial}->{row.delay_final}"
    )
    assert row.delay_final <= row.delay_initial + 1e-9
    assert label in ("class1", "class2")
    if row.redundancies == 0:
        # nothing to remove: area must not change
        assert row.gates_final == row.gates_initial


@pytest.mark.parametrize("name", SLOW_NAMES)
def test_mcnc_row_large(benchmark, name):
    """The three larger circuits (hundreds of gates / 22-25 inputs)."""

    def run():
        circuit = optimized_mcnc(name, late_arrival=6.0, model=MODEL)
        return circuit, run_circuit_row(name, circuit, MODEL)

    circuit, item = once(benchmark, run)
    row = item.row
    print()
    print(
        f"{name}: red {row.redundancies}, gates "
        f"{row.gates_initial}->{row.gates_final}, delay "
        f"{row.delay_initial}->{row.delay_final}  ({item.seconds:.0f}s)"
    )
    assert row.delay_final <= row.delay_initial + 1e-9
    assert row.gates_final <= row.gates_initial


def test_kms_verified_on_one_redundant_mcnc(benchmark):
    """z4ml under arrival skew picks up a bypass redundancy; KMS removes
    it with full verification."""

    def run():
        circuit = optimized_mcnc("z4ml", late_arrival=6.0, model=MODEL)
        result = kms(circuit, model=MODEL)
        return circuit, result.circuit

    before, after = once(benchmark, run)
    assert check_equivalence(before, after).equivalent
    assert is_irredundant(after)


def test_render_mcnc_table(benchmark):
    from repro.bench import mcnc_rows

    def run():
        return mcnc_rows(["misex1", "rd73", "z4ml"], 6.0, MODEL)

    rows = once(benchmark, run)
    print()
    print(render(rows, "Table I -- MCNC-like rows (subset)"))
