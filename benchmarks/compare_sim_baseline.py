"""CI perf gate: compare a fresh BENCH_sim.json against the committed
baseline and fail on work-counter regressions.

Usage::

    python benchmarks/compare_sim_baseline.py BENCH_sim.json \
        benchmarks/baselines/BENCH_sim_baseline.json [--tolerance 0.10]

The gate is on the *deterministic* counters of the compiled simulation
kernel (``gate_evals_good``, ``gate_evals_faulty``) -- exact functions
of circuit + fault list + seed, so a failure means an algorithmic
regression (a cone that stopped cutting off, a schedule evaluated
twice), never runner jitter.  ``cone_cutoffs`` / ``faults_dropped``
ride along in the artifact but do not gate, and wall-clock seconds are
printed for context only.

Per baseline row, each gated counter of the kernel run may grow by at
most ``tolerance`` (relative) plus a small absolute slack of 2 for
near-zero counts.  A baseline row missing from the fresh results fails
the gate; new rows are reported but pass (extending the suite should
not require a simultaneous baseline bump to land).

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Absolute slack so a 1 -> 2 jump on a tiny counter is not a "100%
#: regression"; real regressions move the big counters by far more.
ABSOLUTE_SLACK = 2


def load_rows(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "rows" not in data:
        raise ValueError(f"{path}: not a BENCH_sim.json payload")
    return data, {row["name"]: row for row in data["rows"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced BENCH_sim.json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed relative counter growth (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)

    current_data, current = load_rows(args.current)
    baseline_data, baseline = load_rows(args.baseline)
    gated = baseline_data.get(
        "gated_counters", ["gate_evals_good", "gate_evals_faulty"]
    )

    failures = []
    for name, base_row in sorted(baseline.items()):
        cur_row = current.get(name)
        if cur_row is None:
            failures.append(f"{name}: row missing from current results")
            continue
        if not cur_row.get("identical", False):
            failures.append(
                f"{name}: kernel coverage no longer matches the "
                f"interpreted full-resimulation oracle"
            )
        base_counters = base_row["kernel"]["counters"]
        cur_counters = cur_row["kernel"]["counters"]
        for counter in gated:
            base_value = base_counters.get(counter, 0)
            cur_value = cur_counters.get(counter, 0)
            limit = base_value * (1.0 + args.tolerance) + ABSOLUTE_SLACK
            marker = ""
            if cur_value > limit:
                failures.append(
                    f"{name}: {counter} regressed "
                    f"{base_value} -> {cur_value} "
                    f"(limit {limit:.1f} at {args.tolerance:.0%} tolerance)"
                )
                marker = "  <-- REGRESSION"
            if cur_value != base_value:
                print(f"{name}: {counter} {base_value} -> {cur_value}"
                      f"{marker}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: new row (no baseline; passes)")

    base_secs = sum(r["kernel"]["seconds"] for r in baseline.values())
    cur_secs = sum(
        r["kernel"]["seconds"]
        for n, r in current.items() if n in baseline
    )
    print(f"wall clock (informational, not gated): "
          f"baseline {base_secs:.1f}s, current {cur_secs:.1f}s")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(baseline)} rows within "
          f"{args.tolerance:.0%} counter tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
