"""CI perf gate: compare a fresh BENCH_sim.json against the committed
baseline and fail on work-counter regressions.

Usage::

    python benchmarks/compare_sim_baseline.py BENCH_sim.json \
        benchmarks/baselines/BENCH_sim_baseline.json [--tolerance 0.10]

The gate is on the *deterministic* counters of the compiled simulation
kernel (``gate_evals_good``, ``gate_evals_faulty``) -- exact functions
of circuit + fault list + seed, so a failure means an algorithmic
regression (a cone that stopped cutting off, a schedule evaluated
twice), never runner jitter.  ``cone_cutoffs`` / ``faults_dropped``
ride along in the artifact but do not gate.  Mechanics (tolerance,
slack, missing/new-row policy, informational wall clock) live in the
shared :mod:`compare_baseline` helper used by all perf gates.

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import sys

import compare_baseline

DEFAULT_GATED = ["gate_evals_good", "gate_evals_faulty"]


def main(argv=None) -> int:
    return compare_baseline.main(
        argv,
        description=__doc__.splitlines()[0],
        result_key="kernel",
        default_gated=DEFAULT_GATED,
        identical_message=(
            "kernel coverage no longer matches the "
            "interpreted full-resimulation oracle"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
