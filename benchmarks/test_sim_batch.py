"""A/B: cross-circuit batched simulation vs per-circuit dispatch.

The batch kernel's claim (the PR-9 issue): fusing every sweep member's
good-circuit simulation into one ragged dispatch per (level, opcode)
group removes the per-circuit python dispatch work -- one python-level
loop iteration per gate per circuit -- without moving a single result
bit.  Per suite, the sweep-level prefilter is built twice:

* **batch** -- one :class:`repro.engine.batchsim.BatchPrefilter` build,
  i.e. one ``batch_fault_coverage`` call fusing every member circuit;
* **percircuit** -- the identical (circuit, universe, vectors) items
  graded through plain per-circuit ``fault_coverage`` calls, the
  ``REPRO_SIM_BATCH=0`` execution shape.

The claims under test:

* **bit-identical verdicts** -- every prefilter lookup equals the
  per-circuit grading on every row, and a full ``run_jobs`` scaling
  sweep has identical result fingerprints with ``batch_sim`` on and
  off;
* **dispatch-work reduction** -- over the suites, the per-circuit path
  performs at least 5x more python-level dispatch iterations
  (``gate_evals_good``: one per gate per circuit) than the batched path
  (``group_dispatches``: one per ragged (level, opcode) group);
* the deterministic batch work counters land in ``BENCH_batch.json``,
  which the ``batch`` row of the matrix-driven ``perf-gate`` CI job
  compares against ``benchmarks/baselines/BENCH_batch_baseline.json``
  via ``benchmarks/compare_baseline.py``.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.atpg import collapsed_faults, fault_coverage
from repro.atpg.faultsim import random_vectors
from repro.engine import (
    BatchPrefilter,
    EngineConfig,
    circuit_fingerprint,
    random_jobs,
    run_jobs,
    scaling_jobs,
)
from repro.engine.batchsim import (
    PREFILTER_PATTERNS,
    PREFILTER_SEED,
    prefilter_items,
)
from repro.engine.sweep import fuzz_smoke_jobs
from repro.sim.kernel import SimWorkTracker

#: Counters whose totals the CI perf gate protects against regression
#: (all from the batched run; the per-circuit run rides along as the
#: oracle).  ``group_dispatches`` is the python-level loop count of the
#: batched path -- the number the whole optimization exists to shrink.
GATED_COUNTERS = (
    "batch_dispatches",
    "circuits_per_dispatch",
    "gate_evals_batched",
    "group_dispatches",
    "prefilter_faults_graded",
)

#: rows accumulate across tests; the emitter test runs last.
_ROWS = []


def _deduped(items):
    """Mirror ``BatchPrefilter.build``'s fingerprint dedup so the
    per-circuit oracle grades exactly the batched work."""
    keyed = []
    seen = set()
    for circuit, extra in items:
        fp = circuit_fingerprint(circuit)
        if fp in seen:
            continue
        seen.add(fp)
        universe = collapsed_faults(circuit)
        if extra:
            known = set(universe)
            universe.extend(f for f in extra if f not in known)
        keyed.append((circuit, universe))
    return keyed


def _batch_counters(tracker, seconds, extra=None):
    counters = {
        name: value
        for name, value in tracker.counters.items()
        if value
    }
    counters["group_dispatches"] = counters.get(
        "gate_evals_batched", 0
    ) - counters.get("python_loop_iters_saved", 0)
    if extra:
        counters.update(extra)
    return {"seconds": seconds, "counters": counters}


def _prefilter_row(name, jobs):
    items = _deduped(prefilter_items(jobs))
    vectors = [
        random_vectors(c, PREFILTER_PATTERNS, PREFILTER_SEED)
        for c, _u in items
    ]

    tracker = SimWorkTracker()
    start = time.perf_counter()
    pre = BatchPrefilter.build(items)
    batch = _batch_counters(
        tracker, time.perf_counter() - start, extra=pre.counters
    )

    tracker = SimWorkTracker()
    start = time.perf_counter()
    reports = [
        fault_coverage(circuit, universe, vecs)
        for (circuit, universe), vecs in zip(items, vectors)
    ]
    percircuit = _batch_counters(tracker, time.perf_counter() - start)
    percircuit["counters"]["percircuit_dispatches"] = len(items)

    identical = True
    for (circuit, universe), vecs, report in zip(items, vectors, reports):
        undetected = set(report.undetected_faults)
        want = [f for f in universe if f not in undetected]
        if pre.lookup(circuit, vecs, universe) != want:
            identical = False
    row = {
        "name": name,
        "circuits": len(items),
        "batch": batch,
        "percircuit": percircuit,
        "identical": identical,
    }
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["identical"], (
        f"batched prefilter diverged from per-circuit grading "
        f"on {row['name']}"
    )
    batch = row["batch"]["counters"]
    assert batch["batch_dispatches"] >= 1
    assert batch["group_dispatches"] < batch["gate_evals_batched"], (
        "batching must fuse at least some rows per dispatch group"
    )


def test_prefilter_ab_scaling(benchmark):
    _assert_row(once(
        benchmark, lambda: _prefilter_row("prefilter scaling",
                                          scaling_jobs())
    ))


def test_prefilter_ab_random(benchmark):
    _assert_row(once(
        benchmark, lambda: _prefilter_row("prefilter random8",
                                          random_jobs(count=8))
    ))


def test_prefilter_ab_fuzz_smoke(benchmark):
    _assert_row(once(
        benchmark, lambda: _prefilter_row("prefilter fuzz_smoke",
                                          fuzz_smoke_jobs())
    ))


def test_sweep_ab_scaling(benchmark):
    """Full engine A/B: the scaling sweep end to end, batch sim on
    vs off, result fingerprints bit-identical."""

    def run():
        jobs = scaling_jobs()
        on = run_jobs(jobs, EngineConfig(jobs=1, batch_sim=True))
        start = time.perf_counter()
        off = run_jobs(jobs, EngineConfig(jobs=1, batch_sim=False))
        off_seconds = time.perf_counter() - start

        pre = [
            r for r in on.telemetry.records
            if r.stage == "batch_prefilter"
        ]
        counters = dict(pre[0].counters) if pre else {}
        counters["group_dispatches"] = counters.get(
            "gate_evals_batched", 0
        ) - counters.get("python_loop_iters_saved", 0)
        row = {
            "name": "sweep scaling",
            "circuits": len(jobs),
            "batch": {
                "seconds": pre[0].seconds if pre else 0.0,
                "counters": counters,
            },
            "percircuit": {"seconds": off_seconds, "counters": {}},
            "identical": (
                on.ok and off.ok
                and [(r.name, r.fingerprint) for r in on.results]
                == [(r.name, r.fingerprint) for r in off.results]
            ),
        }
        _ROWS.append(row)
        return row

    row = once(benchmark, run)
    assert row["identical"], (
        "batch-sim scaling sweep results diverged from the "
        "REPRO_SIM_BATCH=0 oracle"
    )
    assert row["batch"]["counters"]["prefilter_hits"] > 0, (
        "the sweep's proof engines never consumed the pre-pass"
    )


def test_zz_emit_bench_json_and_dispatch_claim():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    totals = {}
    for key in ("batch", "percircuit"):
        names = set()
        for row in _ROWS:
            names.update(row[key]["counters"])
        totals[key] = {
            "seconds": sum(r[key]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(
                    r[key]["counters"].get(name, 0) for r in _ROWS
                )
                for name in sorted(names)
            },
        }
    payload = {
        "suite": "sim-batch",
        "result_key": "batch",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    prefilter_rows = [r for r in _ROWS if "percircuit_dispatches"
                      in r["percircuit"]["counters"]]
    if len(prefilter_rows) >= 3:
        # dispatch work: the per-circuit path runs one python loop
        # iteration per gate per circuit (gate_evals_good); the batched
        # path runs one vectorized dispatch per ragged (level, opcode)
        # group.  The suites fused together must save >=5x.
        percircuit_work = sum(
            r["percircuit"]["counters"].get("gate_evals_good", 0)
            for r in prefilter_rows
        )
        batch_work = sum(
            r["batch"]["counters"]["group_dispatches"]
            for r in prefilter_rows
        )
        payload["dispatch"] = {
            "percircuit_python_iters": percircuit_work,
            "batch_group_dispatches": batch_work,
            "dispatch_ratio": percircuit_work / max(1, batch_work),
        }
        assert percircuit_work >= 5 * batch_work, (
            f"batching must save >=5x python dispatch iterations over "
            f"the sweep suites: percircuit={percircuit_work} "
            f"batch={batch_work}"
        )
    out_path = os.environ.get("BENCH_BATCH_JSON", "BENCH_batch.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    ratio = payload.get("dispatch", {}).get("dispatch_ratio")
    note = f", dispatch ratio {ratio:.1f}x" if ratio else ""
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
