"""Section 6.2: design styles -- KMS on technology-mapped circuits.

The paper addresses fanout growth "by transistor sizing in custom
designs, and by cell selection in standard cell or gate-array designs".
This bench runs the whole story in gate-array form: map the carry-skip
block to 2-input NANDs, confirm the redundancy survives mapping, run
KMS on the mapped netlist, verify the contract there too.
"""

from conftest import once
from repro.atpg import count_redundancies, is_irredundant
from repro.circuits import fig4_c2_cone
from repro.core import kms
from repro.sat import check_equivalence
from repro.synth import map_to_nand
from repro.timing import viability_delay


def test_kms_on_gate_array_netlist(benchmark):
    def run():
        cone = fig4_c2_cone()
        mapped = map_to_nand(cone)
        red = count_redundancies(mapped)
        result = kms(mapped)
        return cone, mapped, red, result

    cone, mapped, red, result = once(benchmark, run)
    print()
    print(
        f"gate-array csa cone: {mapped.num_gates()} NAND/NOT cells, "
        f"{red} redundancies, KMS -> {result.circuit.num_gates()} "
        f"cells, delay {viability_delay(mapped).delay:g} -> "
        f"{viability_delay(result.circuit).delay:g}"
    )
    # the redundancy is a property of the function+structure, not the
    # cell library: it survives mapping
    assert red >= 1
    assert check_equivalence(mapped, result.circuit).equivalent
    assert is_irredundant(result.circuit)
    assert (
        viability_delay(result.circuit).delay
        <= viability_delay(mapped).delay + 1e-9
    )
