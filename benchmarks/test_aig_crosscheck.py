"""Cross-check: KMS outputs carry zero redundant AIG edges (Table I).

Theorem 7.1 says the algorithm's output is irredundant.  The repo's
ATPG already asserts this in the network fault model; this harness
re-asserts it in a *different* formalism -- stuck-at faults on the
fanin edges of a structurally-hashed AIG, proved by an independent
engine (:mod:`repro.aig.redundancy`, the Teslenko--Dubrova funnel).
Agreement across fault models is a much stronger check than either
alone.

The pre-KMS carry-skip adder is the control: its known skip-path
redundancy (the paper's Figure 1 motivation) must be *flagged*.
"""

import pytest

from conftest import once
from repro.aig import circuit_to_aig, redundant_edges
from repro.bench import optimized_mcnc
from repro.circuits import MCNC_NAMES, carry_skip_adder
from repro.core import kms
from repro.timing import UnitDelayModel

CSA_SIZES = [(2, 2), (4, 4), (8, 2), (8, 4)]
CSA_MODEL = UnitDelayModel(use_arrival_times=False)
MCNC_MODEL = UnitDelayModel()


def _assert_zero_redundant(circuit, label):
    aig, _ = circuit_to_aig(circuit)
    edges = redundant_edges(aig)
    assert edges == [], (
        f"{label}: KMS output has redundant AIG edges: "
        f"{[e.describe(aig) for e in edges]}"
    )


@pytest.mark.parametrize("nbits,block", CSA_SIZES)
def test_kms_csa_output_zero_redundant_edges(benchmark, nbits, block):
    def run():
        circuit = carry_skip_adder(nbits, block)
        return kms(circuit, mode="static", model=CSA_MODEL).circuit

    out = once(benchmark, run)
    _assert_zero_redundant(out, f"csa {nbits}.{block}")


@pytest.mark.parametrize("name", MCNC_NAMES)
def test_kms_mcnc_output_zero_redundant_edges(benchmark, name):
    def run():
        circuit = optimized_mcnc(name, late_arrival=6.0, model=MCNC_MODEL)
        return kms(circuit, mode="static", model=MCNC_MODEL).circuit

    out = once(benchmark, run)
    _assert_zero_redundant(out, name)


@pytest.mark.parametrize("nbits,block", CSA_SIZES)
def test_pre_kms_carry_skip_redundancy_is_flagged(benchmark, nbits, block):
    """The control arm: before KMS, the carry-skip structure IS
    redundant, and the AIG checker must say so."""
    def run():
        aig, _ = circuit_to_aig(carry_skip_adder(nbits, block))
        return redundant_edges(aig)

    edges = once(benchmark, run)
    assert len(edges) > 0
