"""Runtime scaling of the full KMS pipeline with circuit size.

Not a table in the paper (1990 runtimes are not comparable anyway) but
standard reproduction hygiene: the algorithm's cost is dominated by the
number of non-sensitizable longest paths (Section 6.2's remark), which
grows with the number of carry-skip blocks.
"""

import pytest

from conftest import once
from repro.circuits import carry_skip_adder
from repro.core import kms
from repro.timing import UnitDelayModel

MODEL = UnitDelayModel(use_arrival_times=False)


@pytest.mark.parametrize("nbits,block", [(2, 2), (4, 2), (8, 4), (8, 2)])
def test_kms_scaling(benchmark, nbits, block):
    circuit = carry_skip_adder(nbits, block)

    def run():
        return kms(circuit, model=MODEL)

    result = once(benchmark, run)
    print()
    print(
        f"csa {nbits}.{block}: {circuit.num_gates()} gates, "
        f"{result.iterations} iterations, "
        f"{result.duplicated_gates} duplicated"
    )
    assert result.circuit.num_gates() > 0


@pytest.mark.parametrize("nbits,block", [(4, 2), (8, 2)])
def test_atpg_scaling(benchmark, nbits, block):
    """Redundancy identification cost (the paper's 'slow ATPG' concern
    from the repro notes): SAT-based identification on csa adders."""
    from repro.atpg import count_redundancies

    circuit = carry_skip_adder(nbits, block)

    def run():
        return count_redundancies(circuit)

    red = once(benchmark, run)
    assert red == nbits  # 2 per 2-bit block
