"""Runtime scaling of the full KMS pipeline with circuit size.

Not a table in the paper (1990 runtimes are not comparable anyway) but
standard reproduction hygiene: the algorithm's cost is dominated by the
number of non-sensitizable longest paths (Section 6.2's remark), which
grows with the number of carry-skip blocks.
"""

import pytest

from conftest import once
from repro.circuits import carry_skip_adder
from repro.core import kms
from repro.timing import UnitDelayModel

MODEL = UnitDelayModel(use_arrival_times=False)


@pytest.mark.parametrize("nbits,block", [(2, 2), (4, 2), (8, 4), (8, 2)])
def test_kms_scaling(benchmark, nbits, block):
    circuit = carry_skip_adder(nbits, block)

    def run():
        return kms(circuit, model=MODEL)

    result = once(benchmark, run)
    print()
    print(
        f"csa {nbits}.{block}: {circuit.num_gates()} gates, "
        f"{result.iterations} iterations, "
        f"{result.duplicated_gates} duplicated"
    )
    assert result.circuit.num_gates() > 0


@pytest.mark.parametrize("nbits,block", [(1024, 4)])
def test_sta_scaling_xlarge(benchmark, nbits, block):
    """The ~100x tier (roughly 13k gates vs the 114-gate csa 8.x rows).

    Full KMS is PODEM-cleanup-bound out here, so this tier exercises
    what the hierarchical engine actually changes: analysis build plus
    a KMS-shaped mutation replay (constant-setting + dirty refresh).
    Only the hierarchical path runs it -- flat build rides along once
    for the agreement check and the ratio printout, but the flat
    mutation replay would dominate the perf-gate budget for no claim.
    """
    from repro.network.transform import set_connection_constant
    from repro.timing import HierSTA, IncrementalSTA, hier_enabled

    if not hier_enabled():
        pytest.skip("hierarchical timing disabled (REPRO_TIMING_HIER=0)")
    circuit = carry_skip_adder(nbits, block)
    flat = IncrementalSTA(circuit, MODEL)

    def run():
        work = circuit.copy()
        sta = HierSTA(work, MODEL)
        # KMS-shaped replay: tie a skip-AND input to constant 0 per
        # sampled block (the Fig. 3 move that makes csa ripple again)
        for gid in list(work.gates)[:: max(1, len(work.gates) // 8)]:
            gate = work.gates.get(gid)
            if gate is None or not gate.fanin or gate.gtype.name != "AND":
                continue
            _, touched = set_connection_constant(work, gate.fanin[0], 0)
            sta.refresh(touched)
        return sta

    sta = once(benchmark, run)
    assert sta.delay > 0.0
    hier_build = HierSTA(circuit, MODEL)
    assert hier_build.delay == flat.delay
    assert hier_build.num_longest_paths() == flat.num_longest_paths()
    relax = hier_build.arrival_relaxations + hier_build.dist_relaxations
    flat_relax = flat.arrival_relaxations + flat.dist_relaxations
    assert flat_relax >= 5 * relax
    print()
    print(
        f"csa {nbits}.{block}: {circuit.num_gates()} gates, "
        f"{len(hier_build.partitions)} partitions, "
        f"{hier_build.models_extracted} models extracted, "
        f"build relaxations {flat_relax} -> {relax} "
        f"({flat_relax / max(1, relax):.1f}x)"
    )


@pytest.mark.parametrize("nbits,block", [(4, 2), (8, 2)])
def test_atpg_scaling(benchmark, nbits, block):
    """Redundancy identification cost (the paper's 'slow ATPG' concern
    from the repro notes): SAT-based identification on csa adders."""
    from repro.atpg import count_redundancies

    circuit = carry_skip_adder(nbits, block)

    def run():
        return count_redundancies(circuit)

    red = once(benchmark, run)
    assert red == nbits  # 2 per 2-bit block
