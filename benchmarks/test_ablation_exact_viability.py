"""Ablation: exact McGeer-Brayton viability vs the production
approximation vs static sensitization (Sections V / 6.1).

The paper: "viability analysis provides the tightest upper bound on the
delay among the approaches presented so far", and the practical
implementation trades it for static sensitization.  This bench measures
all the estimates on the paper's circuits and on random logic, checking
the ordering the theory demands:

    sensitizable <= exact viable <= approximate viable <= topological
"""

from conftest import once
from repro.circuits import (
    carry_skip_adder,
    fig1_carry_skip_block,
    fig4_c2_cone,
    random_circuit,
)
from repro.timing import (
    exact_viability_delay,
    sensitizable_delay,
    topological_delay,
    viability_delay,
)


def test_delay_estimate_ladder(benchmark):
    def run():
        rows = []
        workloads = [
            ("fig4 cone", fig4_c2_cone()),
            ("fig1 block", fig1_carry_skip_block()),
            ("csa 4.2", carry_skip_adder(4, 2, cin_arrival=5.0)),
        ]
        for seed in (3, 7):
            workloads.append(
                (
                    f"random#{seed}",
                    random_circuit(
                        num_inputs=5, num_gates=14, seed=seed,
                        max_arrival=3.0,
                    ),
                )
            )
        for name, circuit in workloads:
            rows.append(
                (
                    name,
                    sensitizable_delay(circuit).delay,
                    exact_viability_delay(circuit, max_inputs=12).delay,
                    viability_delay(circuit).delay,
                    topological_delay(circuit),
                )
            )
        return rows

    rows = once(benchmark, run)
    print()
    print(f"{'circuit':<12} {'sens':>6} {'exact':>6} {'approx':>6} {'topo':>6}")
    for name, sens, exact, approx, topo in rows:
        print(f"{name:<12} {sens:>6g} {exact:>6g} {approx:>6g} {topo:>6g}")
        assert sens <= exact + 1e-9
        assert exact <= approx + 1e-9
        assert approx <= topo + 1e-9


def test_carry_skip_gap(benchmark):
    """On the carry-skip family the topological estimate is strictly
    pessimistic while all the sensitization-aware estimates agree --
    the signature of the paper's one real false-path family."""

    def run():
        cone = fig4_c2_cone()
        return (
            sensitizable_delay(cone).delay,
            exact_viability_delay(cone).delay,
            viability_delay(cone).delay,
            topological_delay(cone),
        )

    sens, exact, approx, topo = once(benchmark, run)
    print()
    print(
        f"fig4: sens {sens}, exact-viable {exact}, approx-viable "
        f"{approx}, topological {topo}"
    )
    assert sens == exact == approx == 8.0
    assert topo == 11.0
