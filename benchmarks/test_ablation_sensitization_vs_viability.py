"""Ablation: static sensitization vs viability as the loop condition.

Section 6.1: 'The user may choose whether viability or static
sensitization is used ... the only penalty for this tradeoff occurs if
an unnecessary duplication is performed because a path is not
statically sensitizable, but is viable.'

Regenerated: both modes give equivalent, irredundant, no-slower
outputs; the viability mode never does *more* work (iterations or
duplication) than the static mode.
"""

import pytest

from conftest import once
from repro.atpg import is_irredundant
from repro.circuits import (
    carry_skip_adder,
    fig1_carry_skip_block,
    fig4_c2_cone,
)
from repro.core import kms
from repro.sat import check_equivalence
from repro.timing import UnitDelayModel, viability_delay


@pytest.mark.parametrize(
    "label,make,model",
    [
        ("fig4 cone", fig4_c2_cone, None),
        ("fig1 block", fig1_carry_skip_block, None),
        (
            "csa 4.2",
            lambda: carry_skip_adder(4, 2, cin_arrival=5.0),
            UnitDelayModel(),
        ),
    ],
)
def test_both_modes_safe(benchmark, label, make, model):
    def run():
        circuit = make()
        static = kms(circuit, mode="static", model=model)
        viability = kms(circuit, mode="viability", model=model)
        return circuit, static, viability

    circuit, static, viability = once(benchmark, run)
    print()
    print(
        f"{label}: static iters={static.iterations} "
        f"dup={static.duplicated_gates}; viability "
        f"iters={viability.iterations} dup={viability.duplicated_gates}"
    )
    for result in (static, viability):
        assert check_equivalence(circuit, result.circuit).equivalent
        assert is_irredundant(result.circuit)
        assert (
            viability_delay(result.circuit, model).delay
            <= viability_delay(circuit, model).delay + 1e-9
        )
    # viability is the weaker loop condition: never more iterations
    assert viability.iterations <= static.iterations
