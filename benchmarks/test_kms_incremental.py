"""A/B: incremental vs full-recompute timing inside the KMS loop.

Per circuit, KMS runs twice -- ``incremental=True`` (the default
dirty-cone engine, :mod:`repro.timing.incremental`) and
``incremental=False`` (the from-scratch oracle).  The claims under test:

* **bit-identical results** -- same final circuit fingerprint and the
  same delay on every row: the incremental engine is an optimization,
  never an approximation;
* **work reduction** -- over the scaling suite the full recompute does
  at least 5x more ``arrival_relaxations`` than the dirty-cone engine;
* the deterministic work counters and (non-gating) wall times land in
  ``BENCH_kms.json``, which the ``kms`` row of the matrix-driven
  ``perf-gate`` CI job compares against
  ``benchmarks/baselines/BENCH_kms_baseline.json`` via
  ``benchmarks/compare_baseline.py``.
"""

import json
import os
import time

import pytest

from conftest import once
from repro.bench import optimized_mcnc
from repro.circuits import MCNC_NAMES, carry_skip_adder
from repro.core import kms
from repro.engine.hashing import circuit_fingerprint
from repro.engine.sweep import CSA_SIZES, MCNC_LATE_ARRIVAL, SCALING_SIZES
from repro.timing import UnitDelayModel, topological_delay

CSA_MODEL = UnitDelayModel(use_arrival_times=False)
MCNC_MODEL = UnitDelayModel()

#: Union of the Table I and scaling carry-skip configurations; each row
#: is computed once and tagged with the suites it belongs to.
CSA_UNION = sorted(set(CSA_SIZES) | set(SCALING_SIZES))

#: Counters whose totals the CI perf gate protects against regression.
GATED_COUNTERS = (
    "arrival_relaxations",
    "dist_relaxations",
    "paths_enumerated",
    "viability_checks_exact",
)

#: rows accumulate across parametrized tests; the emitter test runs last.
_ROWS = []


def _ab_row(name, suites, circuit, model):
    row = {"name": name, "suites": list(suites)}
    for key, incremental in (("incremental", True), ("full", False)):
        start = time.perf_counter()
        result = kms(circuit, mode="static", model=model,
                     incremental=incremental)
        row[key] = {
            "seconds": time.perf_counter() - start,
            "iterations": result.iterations,
            "fingerprint": circuit_fingerprint(result.circuit),
            "delay": topological_delay(result.circuit, model),
            "counters": {k: int(v) for k, v in result.counters.items()},
        }
    row["identical"] = (
        row["incremental"]["fingerprint"] == row["full"]["fingerprint"]
        and row["incremental"]["delay"] == row["full"]["delay"]
    )
    _ROWS.append(row)
    return row


def _assert_row(row):
    assert row["identical"], (
        f"incremental KMS diverged from the full oracle on {row['name']}"
    )
    for key in ("paths_enumerated", "paths_capped"):
        assert (row["incremental"]["counters"][key]
                == row["full"]["counters"][key])


@pytest.mark.parametrize("nbits,block", CSA_UNION)
def test_kms_incremental_csa(benchmark, nbits, block):
    suites = ["table1"] if (nbits, block) in CSA_SIZES else []
    if (nbits, block) in SCALING_SIZES:
        suites.append("scaling")

    def run():
        circuit = carry_skip_adder(nbits, block)
        return _ab_row(f"csa {nbits}.{block}", suites, circuit, CSA_MODEL)

    _assert_row(once(benchmark, run))


@pytest.mark.parametrize("name", MCNC_NAMES)
def test_kms_incremental_mcnc(benchmark, name):
    def run():
        circuit = optimized_mcnc(
            name, late_arrival=MCNC_LATE_ARRIVAL, model=MCNC_MODEL
        )
        return _ab_row(name, ["table1"], circuit, MCNC_MODEL)

    _assert_row(once(benchmark, run))


def test_zz_emit_bench_json_and_speedup_claim():
    """Aggregate claim + artifact.  Named to sort after the row tests;
    tolerates partial collection (-k) by only requiring what ran."""
    if not _ROWS:
        pytest.skip("no A/B rows collected in this session")
    assert all(r["identical"] for r in _ROWS)
    scaling = [r for r in _ROWS if "scaling" in r["suites"]]
    totals = {}
    for key in ("incremental", "full"):
        totals[key] = {
            "seconds": sum(r[key]["seconds"] for r in _ROWS),
            "counters": {
                name: sum(r[key]["counters"].get(name, 0) for r in _ROWS)
                for name in GATED_COUNTERS
            },
        }
    payload = {
        "suite": "kms-incremental",
        "result_key": "incremental",
        "gated_counters": list(GATED_COUNTERS),
        "rows": _ROWS,
        "totals": totals,
    }
    if len(scaling) == len(SCALING_SIZES):
        full = sum(r["full"]["counters"]["arrival_relaxations"]
                   for r in scaling)
        inc = sum(r["incremental"]["counters"]["arrival_relaxations"]
                  for r in scaling)
        payload["scaling"] = {
            "full_arrival_relaxations": full,
            "incremental_arrival_relaxations": inc,
            "relaxation_ratio": full / max(1, inc),
        }
        assert full >= 5 * inc, (
            f"dirty-cone STA must save >=5x relaxations on the scaling "
            f"suite: full={full} incremental={inc}"
        )
    out_path = os.environ.get("BENCH_KMS_JSON", "BENCH_kms.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    ratio = payload.get("scaling", {}).get("relaxation_ratio")
    note = f", scaling relaxation ratio {ratio:.1f}x" if ratio else ""
    print(f"\nwrote {out_path}: {len(_ROWS)} rows{note}")
