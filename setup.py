"""Thin shim so legacy (non-PEP-517) editable installs work offline.

The environment ships setuptools but not the ``wheel`` package, so
``pip install -e .`` falls back to ``setup.py develop`` via this file.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
