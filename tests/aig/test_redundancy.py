"""Stuck-at redundancy identification and removal on AIG edges."""

from repro.aig import (
    Aig,
    circuit_to_aig,
    redundant_edges,
    remove_redundancies,
)
from repro.circuits import carry_skip_adder, fig2_irredundant_block
from repro.core import kms
from repro.sat import assert_equivalent
from repro.aig import aig_to_circuit
from repro.timing import UnitDelayModel


def _plant_and(aig, f0, f1):
    """Append an AND node bypassing hashing and rewriting (tests need
    redundancy the builder would otherwise fold away)."""
    from repro.aig import lit_make

    node = aig.num_nodes()
    aig._fanin0.append(min(f0, f1))
    aig._fanin1.append(max(f0, f1))
    return lit_make(node)


def _redundant_aig():
    """o = (a & b) | (a & b & c): absorption makes the whole second term
    redundant -- its edges are stuck-at-redundant once planted behind
    the hasher's back."""
    from repro.aig import lit_neg

    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    ab = aig.add_and(a, b)
    abc = _plant_and(aig, ab, c)
    o = lit_neg(_plant_and(aig, lit_neg(ab), lit_neg(abc)))
    aig.add_output("o", o)
    return aig


def test_detects_planted_redundancy():
    aig = _redundant_aig()
    edges = redundant_edges(aig)
    assert edges, "planted absorption redundancy must be found"
    described = [e.describe(aig) for e in edges]
    assert any("stuck-at-1" in d for d in described)


def test_pre_kms_carry_skip_has_redundant_edges():
    """The known carry-skip redundancy (the paper's Figure 1 shape)
    survives conversion: the pre-KMS csa AIG is NOT irredundant."""
    aig, _ = circuit_to_aig(carry_skip_adder(2, 2))
    assert len(redundant_edges(aig)) > 0


def test_kms_output_has_zero_redundant_edges():
    """Theorem 7.1 cross-check, quick row (full suite: benchmarks)."""
    circuit = carry_skip_adder(2, 2)
    model = UnitDelayModel(use_arrival_times=False)
    out = kms(circuit, mode="static", model=model).circuit
    aig, _ = circuit_to_aig(out)
    assert redundant_edges(aig) == []


def test_irredundant_block_is_clean():
    aig, _ = circuit_to_aig(fig2_irredundant_block())
    assert redundant_edges(aig) == []


def test_remove_redundancies_preserves_function():
    aig = _redundant_aig()
    cleaned, removed = remove_redundancies(aig)
    assert removed
    assert redundant_edges(cleaned) == []
    assert_equivalent(aig_to_circuit(aig), aig_to_circuit(cleaned))


def test_conflict_limited_run_is_conservative():
    aig = _redundant_aig()
    # a zero-conflict budget cannot prove anything redundant
    assert redundant_edges(aig, conflict_limit=0) == []
