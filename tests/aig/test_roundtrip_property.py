"""Property test: Circuit -> AIG -> Circuit round-trips preserve function.

200 seeded random circuits (:mod:`repro.circuits.random_logic`) each
round-trip through the AIG and must agree with the original on 64
random patterns of 2-valued bit-parallel simulation.  Seeds are fixed,
so a failure is a deterministic repro case, not flake.
"""

import random

import pytest

from repro.aig import aig_to_circuit, circuit_to_aig
from repro.circuits import random_circuit, random_redundant_circuit
from repro.sim import simulate_packed

N_CIRCUITS = 200
PATTERNS = 64


def _packed_outputs(circuit, patterns_by_name, width):
    packed = {
        gid: patterns_by_name[circuit.gates[gid].name]
        for gid in circuit.inputs
    }
    values = simulate_packed(circuit, packed, width)
    return {
        circuit.gates[gid].name: values[gid] for gid in circuit.outputs
    }


def _assert_roundtrip_equal(circuit, seed):
    aig, _ = circuit_to_aig(circuit)
    back = aig_to_circuit(aig)
    rng = random.Random(seed * 7919 + 17)
    patterns = {
        circuit.gates[gid].name: rng.getrandbits(PATTERNS)
        for gid in circuit.inputs
    }
    want = _packed_outputs(circuit, patterns, PATTERNS)
    got = _packed_outputs(back, patterns, PATTERNS)
    assert got == want, f"round-trip diverged for seed {seed}"


@pytest.mark.parametrize("seed", range(N_CIRCUITS))
def test_random_circuit_roundtrip(seed):
    circuit = random_circuit(
        num_inputs=4 + seed % 5,
        num_gates=10 + seed % 21,
        num_outputs=1 + seed % 4,
        seed=seed,
    )
    _assert_roundtrip_equal(circuit, seed)


@pytest.mark.parametrize("seed", range(0, N_CIRCUITS, 10))
def test_random_redundant_circuit_roundtrip(seed):
    """The redundant generator exercises the folding rules hardest:
    whole cones can hash away, and the round-trip must still agree."""
    circuit = random_redundant_circuit(seed=seed)
    _assert_roundtrip_equal(circuit, seed)
