"""Core AIG invariants: literals, folding, rewriting, hashing, sim."""

import random

import pytest

from repro.aig import (
    LIT_FALSE,
    LIT_TRUE,
    Aig,
    AigError,
    lit_make,
    lit_neg,
    lit_node,
    lit_phase,
)


def test_literal_encoding():
    assert lit_make(3) == 6
    assert lit_make(3, 1) == 7
    assert lit_node(7) == 3
    assert lit_phase(7) == 1
    assert lit_phase(6) == 0
    assert lit_neg(6) == 7
    assert lit_neg(7) == 6
    assert lit_neg(LIT_FALSE) == LIT_TRUE


def test_constant_folding():
    aig = Aig()
    a = aig.add_input("a")
    assert aig.add_and(a, LIT_FALSE) == LIT_FALSE
    assert aig.add_and(LIT_FALSE, a) == LIT_FALSE
    assert aig.add_and(a, LIT_TRUE) == a
    assert aig.add_and(LIT_TRUE, a) == a
    assert aig.add_and(a, a) == a
    assert aig.add_and(a, lit_neg(a)) == LIT_FALSE
    assert aig.num_ands() == 0


def test_structural_hash_shares_nodes():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    n1 = aig.add_and(a, b)
    n2 = aig.add_and(b, a)  # commuted: same node
    assert n1 == n2
    assert aig.num_ands() == 1


def test_one_level_containment_and_contradiction():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    ab = aig.add_and(a, b)
    # containment: a & (a & b) = a & b
    assert aig.add_and(a, ab) == ab
    # contradiction: !a & (a & b) = 0
    assert aig.add_and(lit_neg(a), ab) == LIT_FALSE
    # x & !(x & b) = x & !b (substitution)
    assert aig.add_and(a, lit_neg(ab)) == aig.add_and(a, lit_neg(b))


def test_absorption_folds_structurally():
    """a | (a & b) = a -- the shape redundancy removal leaves behind."""
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    assert aig.add_or(a, aig.add_and(a, b)) == a
    aig.add_output("o", aig.add_or(a, aig.add_and(a, b)))
    assert aig.num_ands(live_only=True) == 0


def test_two_level_sharing_rule():
    """(a & b) & !(a & c) simplifies to (a & b) & !c."""
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    ab = aig.add_and(a, b)
    ac = aig.add_and(a, c)
    assert aig.add_and(ab, lit_neg(ac)) == aig.add_and(ab, lit_neg(c))
    # complementary grandchildren: (a & b) & (!a & c) = 0
    nac = aig.add_and(lit_neg(a), c)
    assert aig.add_and(ab, nac) == LIT_FALSE


def test_xor_and_or_connectives():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    aig.add_output("xor", aig.add_xor(a, b))
    aig.add_output("or", aig.add_or(a, b))
    for va in (0, 1):
        for vb in (0, 1):
            out = aig.evaluate({"a": va, "b": vb})
            assert out["xor"] == va ^ vb
            assert out["or"] == va | vb


def test_simulate_packed_matches_single_patterns():
    rng = random.Random(11)
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    f = aig.add_or(aig.add_and(a, b), aig.add_xor(b, lit_neg(c)))
    aig.add_output("f", f)
    width = 32
    patterns = aig.random_patterns(width, rng)
    values = aig.simulate(patterns, width)
    mask = (1 << width) - 1
    packed = aig.lit_value(values, f, mask)
    for bit in range(width):
        single = aig.evaluate({
            aig.input_name(node): (patterns[node] >> bit) & 1
            for node in aig.inputs
        })
        assert single["f"] == (packed >> bit) & 1


def test_cone_is_topological_and_live_only():
    aig = Aig()
    a = aig.add_input("a")
    b = aig.add_input("b")
    live = aig.add_and(a, b)
    aig.add_and(lit_neg(a), lit_neg(b))  # dangling
    aig.add_output("o", live)
    cone = aig.cone()
    assert cone == sorted(cone)
    assert lit_node(live) in cone
    assert aig.num_ands() == 2
    assert aig.num_ands(live_only=True) == 1


def test_levels():
    aig = Aig()
    lits = [aig.add_input(f"i{k}") for k in range(4)]
    aig.add_output("o", aig.add_and_many(lits))
    assert aig.levels() == 3  # balanced-free chain: 3 ANDs deep


def test_unknown_literal_raises():
    aig = Aig()
    a = aig.add_input("a")
    with pytest.raises(AigError):
        aig.add_and(a, lit_make(99))
    with pytest.raises(AigError):
        aig.add_output("o", lit_make(99))
    with pytest.raises(AigError):
        aig.fanins(lit_node(a))  # inputs have no fanins
