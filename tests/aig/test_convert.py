"""Circuit <-> AIG conversion: losslessness over the full gate vocabulary."""

import pytest

from repro.aig import aig_to_circuit, circuit_to_aig, miter_aig
from repro.network import Builder, GateType
from repro.sat import assert_equivalent, check_equivalence
from repro.sim import outputs_equal_exhaustive


def _all_gate_types_circuit():
    """One circuit exercising every convertible gate type."""
    b = Builder("everything")
    x = b.input("x")
    y = b.input("y")
    z = b.input("z")
    b.output("o_and", b.and_(x, y, z))
    b.output("o_nand", b.nand(x, y))
    b.output("o_or", b.or_(x, y, z))
    b.output("o_nor", b.nor(y, z))
    b.output("o_xor", b.xor(x, y, z))
    b.output("o_xnor", b.xnor(x, z))
    b.output("o_not", b.not_(x))
    b.output("o_buf", b.buf(y))
    b.output("o_c0", b.const(0))
    b.output("o_c1", b.const(1))
    return b.done()


def test_every_gate_type_roundtrips():
    circuit = _all_gate_types_circuit()
    aig, _ = circuit_to_aig(circuit)
    back = aig_to_circuit(aig)
    assert outputs_equal_exhaustive(circuit, back)


def test_aig_evaluate_matches_circuit():
    from repro.sim import simulate_cube_by_name

    circuit = _all_gate_types_circuit()
    aig, _ = circuit_to_aig(circuit)
    names = [circuit.gates[g].name for g in circuit.inputs]
    po_gid = {circuit.gates[g].name: g for g in circuit.outputs}
    for pattern in range(1 << len(names)):
        assignment = {
            name: (pattern >> k) & 1 for k, name in enumerate(names)
        }
        expected = simulate_cube_by_name(circuit, assignment)
        got = aig.evaluate(assignment)
        for po_name, value in got.items():
            assert value == expected[po_gid[po_name]], (po_name, assignment)


def test_roundtrip_preserves_interface_names():
    circuit = _all_gate_types_circuit()
    back = aig_to_circuit(circuit_to_aig(circuit)[0])
    assert (
        sorted(back.gates[g].name for g in back.inputs)
        == sorted(circuit.gates[g].name for g in circuit.inputs)
    )
    assert (
        sorted(back.gates[g].name for g in back.outputs)
        == sorted(circuit.gates[g].name for g in circuit.outputs)
    )
    # and the equivalence checkers accept the pair directly
    assert_equivalent(circuit, back)


def test_roundtrip_gate_vocabulary_is_and_not_only():
    back = aig_to_circuit(circuit_to_aig(_all_gate_types_circuit())[0])
    kinds = {back.gates[g].gtype for g in back.gates}
    assert kinds <= {
        GateType.INPUT, GateType.OUTPUT, GateType.AND, GateType.NOT,
        GateType.CONST0, GateType.CONST1,
    }


def test_shared_encoding_merges_common_cones():
    b = Builder("left")
    x, y = b.input("x"), b.input("y")
    b.output("o", b.and_(x, y))
    left = b.done()
    b = Builder("right")
    x, y = b.input("x"), b.input("y")
    b.output("o", b.not_(b.nand(x, y)))
    right = b.done()
    aig, pairs = miter_aig(left, right)
    la, lb = pairs["o"]
    assert la == lb  # hashing merged the two AND cones
    assert aig.num_inputs() == 2


def test_miter_rejects_interface_mismatch():
    b = Builder("a")
    b.output("o", b.not_(b.input("x")))
    a = b.done()
    b2 = Builder("b")
    b2.output("o", b2.not_(b2.input("DIFFERENT")))
    with pytest.raises(ValueError):
        miter_aig(a, b2.done())


def test_constant_output_circuit():
    b = Builder("consts")
    x = b.input("x")
    b.output("tautology", b.or_(x, b.not_(x)))
    circuit = b.done()
    aig, _ = circuit_to_aig(circuit)
    (name, lit), = [p for p in aig.outputs if p[0] == "tautology"]
    assert lit == 1  # folded to constant true at build time
    back = aig_to_circuit(aig)
    assert check_equivalence(circuit, back).equivalent
