"""SAT sweeping: the SweepSolver oracle and the fraig loop."""

from repro.aig import (
    Aig,
    SweepSolver,
    circuit_to_aig,
    fraig,
    lit_neg,
)
from repro.circuits import carry_skip_adder, random_redundant_circuit
from repro.sat import SolveCallTracker


def _xor_two_ways():
    """One AIG computing x^y twice through different structures."""
    aig = Aig()
    x = aig.add_input("x")
    y = aig.add_input("y")
    direct = aig.add_xor(x, y)
    # (x | y) & !(x & y): same function, different shape
    other = aig.add_and(
        aig.add_or(x, y), lit_neg(aig.add_and(x, y))
    )
    aig.add_output("direct", direct)
    aig.add_output("other", other)
    return aig, direct, other


def test_sweep_solver_proves_equivalence():
    aig, direct, other = _xor_two_ways()
    sweeper = SweepSolver(aig)
    verdict, cex = sweeper.prove_equal(direct, other)
    assert verdict is True
    assert cex is None


def test_sweep_solver_refutes_with_pattern():
    aig = Aig()
    x = aig.add_input("x")
    y = aig.add_input("y")
    a = aig.add_and(x, y)
    o = aig.add_or(x, y)
    aig.add_output("a", a)
    aig.add_output("o", o)
    sweeper = SweepSolver(aig)
    verdict, cex = sweeper.prove_equal(a, o)
    assert verdict is False
    # the pattern genuinely separates the two literals
    values = aig.simulate(cex, 1)
    assert aig.lit_value(values, a, 1) != aig.lit_value(values, o, 1)


def test_solve_any_distinct_over_equal_pairs_is_one_call():
    aig, direct, other = _xor_two_ways()
    sweeper = SweepSolver(aig)
    tracker = SolveCallTracker()
    distinct, pattern = sweeper.solve_any_distinct(
        [(direct, other), (direct, direct)]
    )
    assert distinct is False and pattern is None
    assert tracker.calls == 1


def test_fraig_merges_equivalent_cones():
    aig, direct, other = _xor_two_ways()
    result = fraig(aig, conflict_limit=None)
    assert result.map_lit(direct) == result.map_lit(other)
    assert result.stats.sat_proved >= 1
    # both outputs now point at one cone
    (la, lb) = [lit for _, lit in result.aig.outputs]
    assert la == lb


def test_fraig_preserves_function():
    circuit = random_redundant_circuit(seed=3)
    aig, _ = circuit_to_aig(circuit)
    result = fraig(aig, conflict_limit=None)
    import random

    rng = random.Random(99)
    width = 64
    patterns = {
        name: rng.getrandbits(width) for name in aig.input_names()
    }
    mask = (1 << width) - 1
    old_vals = aig.simulate(
        {n: patterns[aig.input_name(n)] for n in aig.inputs}, width
    )
    new = result.aig
    new_vals = new.simulate(
        {n: patterns[new.input_name(n)] for n in new.inputs}, width
    )
    old_out = {
        name: aig.lit_value(old_vals, lit, mask)
        for name, lit in aig.outputs
    }
    new_out = {
        name: new.lit_value(new_vals, lit, mask)
        for name, lit in new.outputs
    }
    assert old_out == new_out


def test_fraig_shrinks_redundant_adder():
    aig, _ = circuit_to_aig(carry_skip_adder(4, 4))
    before = aig.num_ands(live_only=True)
    result = fraig(aig, conflict_limit=None)
    assert result.aig.num_ands(live_only=True) <= before
    assert result.stats.sat_refuted >= 0  # counters populated
    assert result.stats.patterns >= 128


def test_fraig_counterexample_feedback_refines_classes():
    """A refuted merge must not be re-proposed: refutations are recorded
    as appended simulation patterns, so each inequivalent pair costs at
    most one SAT call."""
    circuit = random_redundant_circuit(seed=5, num_gates=25)
    aig, _ = circuit_to_aig(circuit)
    # words=0 degenerates to 64 all-random bits -> many false classes
    result = fraig(aig, seed=1, words=1, conflict_limit=None)
    assert result.stats.sat_refuted == result.stats.patterns - 64
