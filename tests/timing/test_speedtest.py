"""Speedtest generation (the Section III open problem)."""

import pytest

from repro.atpg import collapsed_faults, stem_fault
from repro.circuits import fig4_c2_cone
from repro.core import kms
from repro.network import Builder
from repro.sim.events import output_waveforms, sample_waveform
from repro.timing import (
    find_speedtest,
    is_tau_redundant,
    speedtest_report,
    tau_detects,
)


class TestWaveforms:
    def test_chain_waveform(self, chain_circuit):
        c = chain_circuit
        x = c.find_input("x")
        waves = output_waveforms(c, {x: 0}, {x: 1})
        y = c.find_output("y")
        assert waves[y][0] == (0.0, 0)
        # the double inversion follows x: settles to 1 after 2+3 units
        assert waves[y][-1] == (5.0, 1)
        assert sample_waveform(waves[y], 10.0) == 1

    def test_sampling_before_settling(self, chain_circuit):
        c = chain_circuit
        x = c.find_input("x")
        waves = output_waveforms(c, {x: 0}, {x: 1})
        y = c.find_output("y")
        # before the path delay (5.0) the old value is still visible
        assert sample_waveform(waves[y], 4.9) == 0
        assert sample_waveform(waves[y], 5.0) == 1


class TestPaperHazard:
    def test_gate10_fault_is_speedtestable_at_8(self):
        """The logically untestable skip fault breaks the 8-unit clock."""
        cone = fig4_c2_cone()
        fault = stem_fault(cone.find_gate("gate10"), 0)
        st = find_speedtest(cone, fault, tau=8.0)
        assert st is not None
        # the transition must raise both propagate bits and toggle c0
        names = {cone.gates[g].name: st.after[g] for g in cone.inputs}
        assert names["a0"] != names["b0"]  # p0 = 1
        assert names["a1"] != names["b1"]  # p1 = 1

    def test_gate10_fault_tau_redundant_at_ripple_speed(self):
        """Clocked at the ripple delay (11) the faulty part works --
        the hazard only exists because the clock was set at 8."""
        cone = fig4_c2_cone()
        fault = stem_fault(cone.find_gate("gate10"), 0)
        assert is_tau_redundant(cone, fault, tau=11.0)

    def test_kms_output_needs_no_speedtest(self):
        """The algorithm's selling point, executable."""
        cone = fig4_c2_cone()
        irredundant = kms(cone).circuit
        from repro.timing import viability_delay

        tau = viability_delay(irredundant).delay
        report = speedtest_report(irredundant, tau=tau)
        assert not report.needs_speedtest
        assert len(report.testable) == len(
            collapsed_faults(irredundant)
        )


class TestGuards:
    def test_too_many_inputs(self):
        b = Builder()
        bus = b.input_bus("x", 12)
        b.output("o", b.or_(*bus))
        c = b.done()
        with pytest.raises(ValueError):
            find_speedtest(c, stem_fault(c.inputs[0], 0), tau=1.0)

    def test_statically_detectable_fault_also_tau_detected(self):
        """A plain testable fault is caught by sampling late."""
        b = Builder()
        x, y = b.inputs("x", "y")
        g = b.and_(x, y, name="g")
        b.output("o", g)
        c = b.done()
        st = find_speedtest(c, stem_fault(c.find_gate("g"), 0), tau=10.0)
        assert st is not None


class TestTauDetects:
    def test_explicit_transition(self):
        cone = fig4_c2_cone()
        from repro.atpg import inject

        fault = stem_fault(cone.find_gate("gate10"), 0)
        faulty = inject(cone, fault)
        # p0 = p1 = 1 and c0 rising: skip path must deliver at t=7
        before = {}
        after = {}
        values = {"a0": 1, "b0": 0, "a1": 1, "b1": 0}
        for name, v in values.items():
            gid = cone.find_input(name)
            before[gid] = v
            after[gid] = v
        c0 = cone.find_input("c0")
        before[c0] = 0
        after[c0] = 1
        assert tau_detects(cone, faulty, before, after, tau=8.0) is not None
