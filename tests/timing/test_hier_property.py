"""Property suite: hierarchical STA is bit-identical to the flat engine.

The hierarchical engine (:mod:`repro.timing.hier`) regroups the same
path sums the flat :class:`~repro.timing.sta.IncrementalSTA` computes;
with the repo's integer-valued float delays the regrouping is exact, so
every comparison here is ``==`` on floats -- no tolerance.  Layers:

* **build agreement** -- 200 random circuits, each analyzed under the
  default single-output-cone partitioner AND a randomly generated
  partition set (random groups are allowed to be invalid -- too small,
  overlapping, touching IO markers -- the partitioner must drop them,
  never wobble a value);
* **mutation agreement** -- after every mutation in a randomized
  KMS-shaped sequence (constant-setting + propagation, sweeps, chain
  duplications, arrival changes), ``refresh(touched)`` must reproduce
  the from-scratch state exactly, dirty partitions re-fingerprinted or
  lazily flattened;
* **cache paths** -- a model served from the in-memory store or re-read
  from the disk cache yields the same analysis as cold extraction;
* **KMS outputs** -- ``kms(..., hier=True)`` and the flat oracle
  produce bit-identical iteration counts, fingerprints, and path work;
* **witnesses** -- every pin-to-out arc re-expands to a connected
  connection chain whose delay sum equals the model entry exactly;
* **hints** -- generator-emitted partition hints survive the engine's
  JSON round-trip and grade as shared models on repeated-block adders.
"""

import random
import tempfile

import pytest

from repro.circuits import (
    carry_skip_adder,
    random_circuit,
    random_redundant_circuit,
    ripple_carry_adder,
)
from repro.core import kms
from repro.engine.cache import ResultCache
from repro.engine.hashing import circuit_fingerprint
from repro.engine.serialize import circuit_from_dict, circuit_to_dict
from repro.network import GateType
from repro.network.transform import (
    duplicate_chain,
    propagate_constants,
    set_connection_constant,
    sweep,
)
from repro.timing import (
    AsBuiltDelayModel,
    HierSTA,
    IncrementalSTA,
    ModelStore,
    iter_paths_longest_first,
    partition_circuit,
)

MODEL = AsBuiltDelayModel()

BATCHES = 8
CIRCUITS_PER_BATCH = 25


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #

def _assert_matches_flat(hier, circuit):
    """Exact agreement with a from-scratch flat pass, all gates."""
    flat = IncrementalSTA(circuit, MODEL)
    assert hier.delay == flat.delay
    assert hier.num_longest_paths() == flat.num_longest_paths()
    hier.materialize_all()
    assert hier.arrival == flat.arrival
    assert hier.dist_to_po == flat.dist_to_po
    assert hier.npaths_to_po == flat.npaths_to_po
    mine = [
        (p.gates, p.conns, p.length)
        for p in iter_paths_longest_first(
            circuit, MODEL, hier.annotation(), max_paths=25
        )
    ]
    oracle = [
        (p.gates, p.conns, p.length)
        for p in iter_paths_longest_first(
            circuit, MODEL, flat.annotation(), max_paths=25
        )
    ]
    assert mine == oracle


def _random_groups(circuit, rng):
    """Random partition groups, deliberately allowed to be sloppy:
    overlapping, undersized, or touching IO markers.  The engine must
    drop what it can't model and stay exact regardless."""
    gids = sorted(circuit.gates)
    groups = []
    for _ in range(rng.randint(1, 4)):
        size = rng.randint(2, 8)
        start = rng.randrange(len(gids))
        groups.append(gids[start:start + size])
    if rng.random() < 0.3 and groups:
        groups.append(rng.sample(gids, min(4, len(gids))))
    return groups


def _random_subject(rng, index):
    if index % 2:
        return random_redundant_circuit(
            num_inputs=rng.randint(3, 6),
            num_gates=rng.randint(8, 18),
            seed=rng.randint(0, 10**6),
        )
    return random_circuit(
        num_inputs=rng.randint(3, 6),
        num_gates=rng.randint(10, 25),
        num_outputs=rng.randint(1, 3),
        seed=rng.randint(0, 10**6),
        max_arrival=rng.choice([0.0, 3.0]),
    )


# ---------------------------------------------------------------------- #
# build agreement: cones and random partitions
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("batch", range(BATCHES))
def test_hier_build_matches_flat(batch):
    rng = random.Random(7000 + batch)
    for index in range(CIRCUITS_PER_BATCH):
        circuit = _random_subject(rng, index)
        _assert_matches_flat(HierSTA(circuit, MODEL), circuit)
        _assert_matches_flat(
            HierSTA(circuit, MODEL,
                    partitions=_random_groups(circuit, rng)),
            circuit,
        )


def test_hier_on_hinted_adders():
    for circuit in (ripple_carry_adder(8), carry_skip_adder(8, 4),
                    carry_skip_adder(4, 2)):
        assert circuit.partition_hints, "generators must emit hints"
        hier = HierSTA(circuit, MODEL)
        _assert_matches_flat(hier, circuit)
        parts = hier.partitions
        distinct = len({p.fingerprint for p in parts})
        # the repeated-block guarantee the issue gates on
        assert hier.model_cache_hits >= len(parts) - distinct
        assert distinct < len(parts)


# ---------------------------------------------------------------------- #
# mutation agreement (the KMS-shaped sequences)
# ---------------------------------------------------------------------- #

def _mutate_constant(circuit, rng):
    candidates = [
        cid
        for cid, conn in circuit.conns.items()
        if circuit.gates[conn.dst].gtype is not GateType.OUTPUT
        and circuit.gates[conn.src].gtype
        not in (GateType.CONST0, GateType.CONST1)
    ]
    if not candidates:
        return None
    _, touched = set_connection_constant(
        circuit, rng.choice(candidates), rng.randint(0, 1)
    )
    _, propagated = propagate_constants(circuit)
    return touched | propagated


def _mutate_sweep(circuit, rng):
    _, touched = sweep(circuit, collapse_buffers=True)
    return touched


def _mutate_duplicate(circuit, rng):
    paths = list(iter_paths_longest_first(circuit, MODEL, max_paths=8))
    if not paths:
        return None
    path = rng.choice(paths)
    branch_points = [
        j
        for j, gid in enumerate(path.gates)
        if len(circuit.gates[gid].fanout) > 1
    ]
    if not branch_points:
        return None
    j = rng.choice(branch_points)
    chain = list(path.gates[: j + 1])
    chain_conns = list(path.conns[: j + 1])
    edge = path.conns[j + 1]
    mapping, _dup_conns, touched = duplicate_chain(
        circuit, chain, chain_conns
    )
    n = chain[-1]
    touched |= {n, mapping[n], circuit.conns[edge].dst}
    circuit.move_connection_source(edge, mapping[n])
    return touched


def _mutate_arrival(circuit, rng):
    if not circuit.inputs:
        return None
    pi = rng.choice(circuit.inputs)
    circuit.input_arrival[pi] = float(rng.randint(0, 5))
    return {pi}


MUTATIONS = [
    _mutate_constant,
    _mutate_sweep,
    _mutate_duplicate,
    _mutate_arrival,
]


@pytest.mark.parametrize("batch", range(6))
def test_hier_refresh_tracks_mutation_sequences(batch):
    rng = random.Random(8000 + batch)
    for index in range(12):
        circuit = _random_subject(rng, index)
        hier = HierSTA(
            circuit, MODEL,
            partitions=(
                None if index % 3 else _random_groups(circuit, rng)
            ),
        )
        _assert_matches_flat(hier, circuit)
        for _step in range(rng.randint(2, 6)):
            mutate = rng.choice(MUTATIONS)
            touched = mutate(circuit, rng)
            if touched is None:
                continue
            hier.refresh(touched)
            _assert_matches_flat(hier, circuit)


def test_hier_refresh_flattens_hot_partitions():
    """A partition mutated past ``flatten_after`` dissolves to flat
    gates -- and the analysis stays exact through the transition."""
    circuit = carry_skip_adder(4, 2)
    hier = HierSTA(circuit, MODEL, flatten_after=1)
    target = hier.partitions[0]
    member = target.gates[0]
    pid = target.pid
    cid = circuit.gates[member].fanin[0]
    _, touched = set_connection_constant(circuit, cid, 0)
    _, propagated = propagate_constants(circuit)
    hier.refresh(touched | propagated)
    assert hier.partition_of(member) is None, "partition must dissolve"
    assert all(p.pid != pid for p in hier.partitions)
    _assert_matches_flat(hier, circuit)


# ---------------------------------------------------------------------- #
# cache paths: memory hits and disk round-trips
# ---------------------------------------------------------------------- #

def test_memory_cache_hit_identical_to_cold_extraction():
    rng = random.Random(42)
    for index in range(10):
        circuit = _random_subject(rng, index)
        cold = HierSTA(circuit, MODEL, store=ModelStore())
        shared = ModelStore()
        HierSTA(circuit, MODEL, store=shared)
        warm = HierSTA(circuit, MODEL, store=shared)
        assert warm.models_extracted == 0
        assert warm.model_cache_hits == len(warm.partitions)
        cold.materialize_all()
        warm.materialize_all()
        assert warm.arrival == cold.arrival
        assert warm.dist_to_po == cold.dist_to_po
        assert warm.npaths_to_po == cold.npaths_to_po
        assert warm.delay == cold.delay
        assert warm.arcs_evaluated == cold.arcs_evaluated


def test_disk_cache_round_trip_identical_to_cold_extraction():
    circuit = carry_skip_adder(8, 4)
    cold = HierSTA(circuit, MODEL, store=ModelStore())
    with tempfile.TemporaryDirectory() as tmp:
        disk = ResultCache(tmp)
        HierSTA(circuit, MODEL, store=ModelStore(cache=disk))
        # fresh in-memory store, same disk cache: every model re-loads
        warm_store = ModelStore(cache=disk)
        warm = HierSTA(circuit, MODEL, store=warm_store)
        assert warm.models_extracted == 0
        assert warm_store.disk_hits > 0
        cold.materialize_all()
        warm.materialize_all()
        assert warm.arrival == cold.arrival
        assert warm.dist_to_po == cold.dist_to_po
        assert warm.npaths_to_po == cold.npaths_to_po
        assert warm.delay == cold.delay


# ---------------------------------------------------------------------- #
# KMS end-to-end: hier vs flat oracle
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("seed", range(8))
def test_kms_hier_bit_identical_random(seed):
    circuit = random_redundant_circuit(
        num_inputs=5, num_gates=15, seed=seed
    )
    hier = kms(circuit, model=MODEL, hier=True)
    flat = kms(circuit, model=MODEL, hier=False)
    assert hier.iterations == flat.iterations
    assert circuit_fingerprint(hier.circuit) == circuit_fingerprint(
        flat.circuit
    )
    for key in ("paths_enumerated", "paths_capped",
                "viability_checks_exact"):
        assert hier.counters[key] == flat.counters[key]


def test_kms_hier_bit_identical_carry_skip():
    circuit = carry_skip_adder(4, 2)
    hier = kms(circuit, model=MODEL, hier=True)
    flat = kms(circuit, model=MODEL, hier=False)
    assert hier.iterations == flat.iterations
    assert circuit_fingerprint(hier.circuit) == circuit_fingerprint(
        flat.circuit
    )
    assert hier.counters["models_extracted"] > 0
    assert flat.counters["models_extracted"] == 0


# ---------------------------------------------------------------------- #
# witnesses
# ---------------------------------------------------------------------- #

def test_witness_expansion_delay_sum_invariant():
    rng = random.Random(99)
    subjects = [carry_skip_adder(4, 2), ripple_carry_adder(6)]
    subjects += [_random_subject(rng, i) for i in range(6)]
    checked = 0
    for circuit in subjects:
        hier = HierSTA(circuit, MODEL)
        for inst in hier.partitions:
            for (pin, qi), _steps in sorted(inst.model.witnesses.items()):
                cids = hier.critical_arc_path(inst.pid, pin, qi)
                assert cids, "witness must include the crossing edge"
                assert cids[0] == inst.pins[pin]
                total = 0.0
                prev_dst = None
                for cid in cids:
                    conn = circuit.conns[cid]
                    if prev_dst is not None:
                        assert conn.src == prev_dst, "chain must connect"
                    total += MODEL.conn_delay(circuit, cid)
                    total += MODEL.gate_delay(circuit, conn.dst)
                    prev_dst = conn.dst
                assert prev_dst == inst.gates[
                    inst.model.out_locals[qi]
                ]
                expected = inst.model.fwd[pin][
                    inst.model.out_locals[qi]
                ]
                assert total == expected
                checked += 1
    assert checked > 20


# ---------------------------------------------------------------------- #
# partition hints: generators, serialization, partitioner
# ---------------------------------------------------------------------- #

def test_hints_survive_engine_serialization():
    circuit = carry_skip_adder(8, 2)
    clone = circuit_from_dict(circuit_to_dict(circuit))
    assert clone.partition_hints == circuit.partition_hints
    assert circuit_fingerprint(clone) == circuit_fingerprint(circuit)
    # absent key parses as no hints (pre-existing cached payloads)
    data = circuit_to_dict(ripple_carry_adder(2))
    data.pop("hints")
    assert circuit_from_dict(data).partition_hints == []


def test_hints_survive_copy():
    circuit = ripple_carry_adder(4)
    clone = circuit.copy()
    assert clone.partition_hints == circuit.partition_hints
    clone.partition_hints[0].append(999)
    assert clone.partition_hints != circuit.partition_hints


def test_partitioner_prefers_valid_hints_falls_back_to_cones():
    circuit = carry_skip_adder(8, 4)
    hinted = partition_circuit(circuit)
    assert hinted == [sorted(h) for h in circuit.partition_hints]
    # stale/duplicate members are dropped, the group survives
    circuit.partition_hints[0].append(10**9)
    circuit.partition_hints[1].append(circuit.partition_hints[0][0])
    assert partition_circuit(circuit) == hinted
    # no hints at all: single-output cones
    cones = partition_circuit(circuit, hints=[])
    assert cones != hinted
    assert all(
        len(g) >= 3 and g == sorted(g) for g in cones
    )
