"""Static timing analysis, including the paper's Section III numbers."""

import pytest

from repro.circuits import fig1_carry_skip_block, fig4_c2_cone
from repro.network import Builder, GateType
from repro.timing import (
    UnitDelayModel,
    analyze,
    critical_connections,
    topological_delay,
)


class TestArrival:
    def test_chain(self, chain_circuit):
        ann = analyze(chain_circuit)
        y = chain_circuit.find_output("y")
        assert ann.arrival[y] == 5.0
        assert ann.delay == 5.0

    def test_input_arrival_offsets(self):
        b = Builder()
        x = b.input("x", arrival=5.0)
        b.output("o", b.not_(x, delay=1.0))
        c = b.done()
        assert topological_delay(c) == 6.0

    def test_connection_delay_counts(self):
        b = Builder()
        x = b.input("x")
        g = b.circuit.add_gate(GateType.NOT, 1.0)
        b.circuit.connect(x, g, delay=2.0)
        b.output("o", g)
        assert topological_delay(b.done()) == 3.0

    def test_constants_never_arrive(self):
        b = Builder()
        x = b.input("x")
        g = b.or_(x, b.const(0), delay=1.0)
        b.output("o", g)
        c = b.done()
        ann = analyze(c)
        assert ann.delay == 1.0

    def test_all_constant_output_has_zero_delay(self):
        b = Builder()
        b.input("x")
        b.output("o", b.const(1))
        c = b.done()
        assert topological_delay(c) == 0.0


class TestRequiredAndSlack:
    def test_slack_zero_on_critical_path(self, chain_circuit):
        ann = analyze(chain_circuit)
        for gid in (
            chain_circuit.find_gate("n1"),
            chain_circuit.find_gate("n2"),
        ):
            assert ann.slack[gid] == 0.0

    def test_positive_slack_off_critical(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        slow = b.not_(b.not_(x, delay=3.0), delay=3.0, name="slow")
        fast = b.buf(y, delay=1.0, name="fast")
        b.output("o", b.and_(slow, fast, delay=1.0))
        c = b.done()
        ann = analyze(c)
        assert ann.slack[c.find_gate("fast")] == pytest.approx(5.0)
        assert ann.slack[c.find_gate("slow")] == 0.0


class TestCriticalConnections:
    def test_single_critical_path(self, chain_circuit):
        crit = critical_connections(chain_circuit)
        assert len(crit) == 3  # x->n1, n1->n2, n2->output


class TestPaperNumbers:
    """Section III: c0 arrives at 5, AND/OR delay 1, XOR/MUX delay 2."""

    def test_fig1_longest_path_is_11(self):
        assert topological_delay(fig1_carry_skip_block()) == 11.0

    def test_fig1_sum_path_is_9(self):
        c = fig1_carry_skip_block()
        ann = analyze(c)
        assert ann.arrival[c.find_output("s1")] == 9.0

    def test_fig1_s0_is_fast(self):
        c = fig1_carry_skip_block()
        ann = analyze(c)
        # s0 = p0 xor c0: 5 + 2 = 7? c0 arrives 5, the XOR adds 2
        assert ann.arrival[c.find_output("s0")] == 7.0

    def test_fig4_cone_matches_fig1_carry(self):
        c = fig4_c2_cone()
        ann = analyze(c)
        assert ann.arrival[c.find_output("c2")] == 11.0

    def test_unit_model_ignores_stored_delays(self):
        c = fig4_c2_cone()
        unit = UnitDelayModel(use_arrival_times=False)
        # every logic gate costs 1: longest structural chain decides
        assert topological_delay(c, unit) == c.depth()
