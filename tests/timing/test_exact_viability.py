"""Exact (McGeer-Brayton) viability vs the production approximation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import fig4_c2_cone, random_circuit
from repro.network import Builder
from repro.sim import true_delay
from repro.timing import (
    exact_viability_delay,
    longest_paths,
    path_viable_exact,
    sensitizable_delay,
    topological_delay,
    viability_delay,
    viable_lengths_under,
)


class TestSandwich:
    """sensitizable <= exact viable <= approx viable <= topological,
    and true delay <= exact viable."""

    @given(seed=st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_orderings(self, seed):
        c = random_circuit(
            num_inputs=4, num_gates=10, seed=seed, max_arrival=3.0
        )
        topo = topological_delay(c)
        approx = viability_delay(c).delay
        exact = exact_viability_delay(c).delay
        sens = sensitizable_delay(c).delay
        assert sens <= exact + 1e-9
        assert exact <= approx + 1e-9
        assert approx <= topo + 1e-9

    @given(seed=st.integers(0, 30))
    @settings(max_examples=12, deadline=None)
    def test_exact_upper_bounds_true_delay(self, seed):
        c = random_circuit(num_inputs=4, num_gates=9, seed=seed)
        assert true_delay(c) <= exact_viability_delay(c).delay + 1e-9


class TestPaperExample:
    def test_fig4_exact_is_8(self):
        """All three false-path-aware measures agree on the carry cone."""
        cone = fig4_c2_cone()
        report = exact_viability_delay(cone)
        assert report.delay == 8.0
        assert report.witness is not None

    def test_fig4_longest_path_not_viable_exactly(self):
        cone = fig4_c2_cone()
        path = longest_paths(cone)[0]
        n = len(cone.inputs)
        for bits in range(1 << n):
            minterm = {
                g: (bits >> i) & 1 for i, g in enumerate(cone.inputs)
            }
            assert not path_viable_exact(cone, path, minterm)


class TestViableLengths:
    def test_chain(self, chain_circuit):
        c = chain_circuit
        x = c.find_input("x")
        lengths = viable_lengths_under(c, {x: 0})
        y = c.find_output("y")
        assert lengths[y] == frozenset({5.0})

    def test_constants_carry_no_events(self):
        b = Builder()
        x = b.input("x")
        g = b.or_(x, b.const(0), delay=1.0)
        b.output("o", g)
        c = b.done()
        lengths = viable_lengths_under(c, {c.find_input("x"): 1})
        o = c.find_output("o")
        assert lengths[o] == frozenset({1.0})

    def test_controlling_side_input_blocks(self):
        """An early controlling side input kills the path; the exact
        analysis sees it per-minterm."""
        b = Builder()
        fast = b.input("fast")
        slow = b.input("slow")
        delayed = b.not_(b.not_(slow, delay=2.0), delay=2.0)
        g = b.and_(delayed, fast, delay=1.0)
        b.output("o", g)
        c = b.done()
        f, s = c.find_input("fast"), c.find_input("slow")
        # fast = 0 is controlling and settles at t=0 < 4: the slow path
        # is not viable under that minterm
        lengths0 = viable_lengths_under(c, {f: 0, s: 0})
        o = c.find_output("o")
        assert 5.0 not in lengths0[o]
        # fast = 1 is noncontrolling: the slow path is viable
        lengths1 = viable_lengths_under(c, {f: 1, s: 0})
        assert 5.0 in lengths1[o]

    def test_guard(self):
        c = random_circuit(num_inputs=13, num_gates=5, seed=0)
        with pytest.raises(ValueError):
            exact_viability_delay(c, max_inputs=12)

    def test_xor_rejected(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", b.xor(x, y))
        c = b.done()
        with pytest.raises(ValueError):
            viable_lengths_under(c, {g: 0 for g in c.inputs})
