"""Path objects and longest-first enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import fig1_carry_skip_block, random_circuit
from repro.timing import (
    analyze,
    iter_paths_longest_first,
    longest_paths,
    path_length,
)


class TestEnumeration:
    def test_lengths_nonincreasing(self):
        c = random_circuit(num_inputs=4, num_gates=15, seed=3)
        lengths = [
            p.length for p in iter_paths_longest_first(c, max_paths=200)
        ]
        assert lengths == sorted(lengths, reverse=True)

    def test_stored_length_matches_recomputation(self):
        c = random_circuit(num_inputs=4, num_gates=15, seed=4)
        for p in iter_paths_longest_first(c, max_paths=100):
            assert p.length == pytest.approx(path_length(c, p))

    def test_paths_are_structurally_valid(self):
        c = random_circuit(num_inputs=4, num_gates=15, seed=5)
        for p in iter_paths_longest_first(c, max_paths=50):
            assert len(p.conns) == len(p.gates) + 1
            prev = p.source
            for i, cid in enumerate(p.conns):
                conn = c.conns[cid]
                assert conn.src == prev
                prev = conn.dst
            assert prev == p.sink

    def test_first_path_achieves_topological_delay(self):
        c = random_circuit(num_inputs=5, num_gates=20, seed=6)
        ann = analyze(c)
        first = next(iter_paths_longest_first(c))
        assert first.length == pytest.approx(ann.delay)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_enumeration_is_exhaustive_and_distinct(self, seed):
        """On small circuits the enumerator yields every IO-path exactly
        once (cross-checked by DFS)."""
        c = random_circuit(num_inputs=3, num_gates=8, seed=seed)
        enumerated = {
            (p.source, p.conns) for p in iter_paths_longest_first(c)
        }
        # brute-force DFS count
        def count_paths(gid):
            gate = c.gates[gid]
            if gate.gtype.value == "output":
                return 1
            total = 0
            for cid in gate.fanout:
                total += count_paths(c.conns[cid].dst)
            return total

        expected = sum(count_paths(pi) for pi in c.inputs)
        assert len(enumerated) == expected

    def test_max_paths_truncates(self):
        c = random_circuit(num_inputs=5, num_gates=25, seed=7)
        assert (
            len(list(iter_paths_longest_first(c, max_paths=5))) <= 5
        )


class TestPathApi:
    def test_fig1_longest_path_identity(self):
        c = fig1_carry_skip_block()
        paths = longest_paths(c)
        assert len(paths) == 1
        p = paths[0]
        assert c.gates[p.source].name == "c0"
        names = [c.gates[g].name for g in p.gates]
        assert names == [
            "gate6",
            "gate7",
            "gate9",
            "gate11",
            "mux_and0",
            "mux_or",
        ]
        assert p.length == 11.0

    def test_first_edge(self):
        c = fig1_carry_skip_block()
        p = longest_paths(c)[0]
        conn = c.conns[p.first_edge]
        assert c.gates[conn.src].name == "c0"
        assert c.gates[conn.dst].name == "gate6"

    def test_last_multifanout_gate(self):
        c = fig1_carry_skip_block()
        p = longest_paths(c)[0]
        n = p.last_multifanout_gate(c)
        # gate7 feeds gate8's xor legs and gate9 in the full block
        assert c.gates[n].name == "gate7"

    def test_event_times(self):
        c = fig1_carry_skip_block()
        p = longest_paths(c)[0]
        taus = p.event_times(c)
        # event reaches gate6 at t=5 (c0 arrival), gate7 at 6, gate9 at 7,
        # gate11 at 8, mux_and0 at 9, mux_or at 9 (and0 has delay 0)
        assert taus == [5.0, 6.0, 7.0, 8.0, 9.0, 9.0]

    def test_describe_mentions_endpoints(self):
        c = fig1_carry_skip_block()
        text = longest_paths(c)[0].describe(c)
        assert "c0" in text and "c2" in text
