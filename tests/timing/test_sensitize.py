"""Static sensitization (Definition 4.11)."""

import pytest

from repro.circuits import fig1_carry_skip_block, fig4_c2_cone
from repro.network import Builder
from repro.sim import simulate3
from repro.timing import (
    SensitizationChecker,
    longest_paths,
    side_inputs,
    statically_sensitizable,
)


class TestSideInputs:
    def test_and_or_chain(self, and_or_circuit):
        c = and_or_circuit
        paths = longest_paths(c)
        path = paths[0]
        sis = side_inputs(c, path)
        # g1 has one side input (value 1 for AND), g2 one (value 0 for OR)
        values = sorted(si.value for si in sis)
        assert values == [0, 1]

    def test_not_gates_have_no_side_inputs(self, chain_circuit):
        path = longest_paths(chain_circuit)[0]
        assert side_inputs(chain_circuit, path) == []

    def test_xor_rejected(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", b.xor(x, y))
        c = b.done()
        path = longest_paths(c)[0]
        with pytest.raises(ValueError):
            side_inputs(c, path)


class TestSensitizability:
    def test_fig4_longest_path_not_sensitizable(self):
        """Section VI-6.3: requires p0 = p1 = 1 at the AND side-inputs
        but the MUX then selects c0 -- contradiction."""
        c = fig4_c2_cone()
        path = longest_paths(c)[0]
        assert statically_sensitizable(c, path) is None

    def test_fig1_longest_path_not_sensitizable(self):
        c = fig1_carry_skip_block()
        path = longest_paths(c)[0]
        assert statically_sensitizable(c, path) is None

    def test_sensitizing_cube_is_genuine(self, and_or_circuit):
        """The returned cube must actually set every side input to its
        noncontrolling value."""
        c = and_or_circuit
        path = longest_paths(c)[0]
        cube = statically_sensitizable(c, path)
        assert cube is not None
        values = simulate3(c, cube)
        for si in side_inputs(c, path):
            assert values[c.conns[si.cid].src] == si.value

    def test_conflicting_requirements_unsat(self):
        """y = (x AND a) OR a: the path through the AND needs a = 1 at
        the AND but a = 0 at the OR -- never sensitizable."""
        b = Builder()
        x, a = b.inputs("x", "a")
        g1 = b.and_(x, a, name="g1")
        g2 = b.or_(g1, a, name="g2")
        b.output("y", g2)
        c = b.done()
        path = next(
            p
            for p in longest_paths(c)
            if p.source == c.find_input("x")
        )
        assert statically_sensitizable(c, path) is None

    def test_checker_reuse_across_paths(self):
        c = fig1_carry_skip_block()
        checker = SensitizationChecker(c)
        results = set()
        from repro.timing import iter_paths_longest_first

        for path in iter_paths_longest_first(c, max_paths=20):
            results.add(checker.is_sensitizable(path))
        assert results == {True, False}
