"""Directed tests for the incremental timing engine.

The randomized agreement guarantees live in
``test_incremental_property.py``; here each moving part is exercised in
isolation: dirty-cone relaxation counts, the packed-simulation witness
prefilter, the fingerprint-keyed cube cache, and the
``paths_capped`` warning on truncated path enumeration.
"""

import warnings

import pytest

from repro.circuits import carry_skip_adder, ripple_carry_adder
from repro.core import kms
from repro.network.transform import set_connection_constant
from repro.sim import simulate_packed
from repro.timing import (
    IncrementalSTA,
    IncrementalTiming,
    SensitizationChecker,
    UnitDelayModel,
    ViabilityChecker,
    analyze,
    iter_paths_longest_first,
)

MODEL = UnitDelayModel(use_arrival_times=False)


# ---------------------------------------------------------------------- #
# dirty-cone STA
# ---------------------------------------------------------------------- #

def test_incremental_sta_relaxes_only_the_dirty_cone():
    circuit = ripple_carry_adder(8)
    sta = IncrementalSTA(circuit, MODEL)
    rebuild_cost = sta.arrival_relaxations
    assert rebuild_cost == len(circuit.gates)

    cid = next(iter(circuit.gates[circuit.inputs[-1]].fanout))
    _, touched = set_connection_constant(circuit, cid, 0)
    sta.refresh(touched)

    delta = sta.arrival_relaxations - rebuild_cost
    assert 0 < delta < len(circuit.gates)
    ann = analyze(circuit, MODEL)
    assert sta.arrival == ann.arrival
    assert sta.dist_to_po == ann.dist_to_po
    assert sta.delay == ann.delay


def test_incremental_sta_annotation_is_a_snapshot():
    circuit = carry_skip_adder(2, 2)
    sta = IncrementalSTA(circuit, MODEL)
    before = sta.annotation()
    cid = next(iter(circuit.gates[circuit.inputs[0]].fanout))
    _, touched = set_connection_constant(circuit, cid, 1)
    sta.refresh(touched)
    after = sta.annotation()
    assert before.arrival != after.arrival or before.delay != after.delay
    assert before.arrival is not after.arrival


# ---------------------------------------------------------------------- #
# check_path: prefilter -> cube cache -> exact SAT
# ---------------------------------------------------------------------- #

def _timing_and_paths(mode):
    circuit = carry_skip_adder(2, 2)
    timing = IncrementalTiming(circuit, MODEL, mode=mode)
    timing.begin_iteration()
    paths = list(iter_paths_longest_first(
        circuit, MODEL, timing.annotation(), max_paths=50
    ))
    return circuit, timing, paths


def test_check_path_agrees_with_sensitization_checker():
    circuit, timing, paths = _timing_and_paths("static")
    checker = SensitizationChecker(circuit)
    for path in paths:
        assert timing.check_path(path) == checker.is_sensitizable(path)
    assert timing.viability_checks_exact > 0 or (
        timing.viability_checks_prefiltered == len(paths)
    )


def test_check_path_agrees_with_viability_checker():
    circuit, timing, paths = _timing_and_paths("viability")
    checker = ViabilityChecker(circuit, MODEL)
    for path in paths:
        assert timing.check_path(path) == checker.is_viable(path)


def test_prefilter_witness_cube_is_sound():
    circuit, timing, paths = _timing_and_paths("static")
    witnessed = 0
    for path in paths:
        cube = timing.witness_cube(path)
        if cube is None:
            continue
        witnessed += 1
        packed = {gid: cube[gid] & 1 for gid in circuit.inputs}
        values = simulate_packed(circuit, packed, 1)
        for src, required in timing.path_constraints(path):
            assert values[src] & 1 == required
    assert witnessed > 0, "expected the 64-pattern prefilter to hit"


def test_cube_cache_serves_repeated_checks():
    circuit, timing, paths = _timing_and_paths("static")
    checker = SensitizationChecker(circuit)
    hard = [p for p in paths if not checker.is_sensitizable(p)]
    assert hard, "carry-skip adders have false paths"
    path = hard[0]
    assert timing.check_path(path) is False
    exact_after_first = timing.viability_checks_exact
    assert exact_after_first == 1
    assert timing.check_path(path) is False
    assert timing.viability_checks_exact == exact_after_first
    assert timing.cube_cache_hits == 1
    # a fresh iteration re-randomizes patterns but keeps the cache
    timing.begin_iteration()
    assert timing.check_path(path) is False
    assert timing.viability_checks_exact == exact_after_first
    assert timing.cube_cache_hits == 2


def test_cube_cache_survives_untouched_cone_mutations():
    circuit, timing, paths = _timing_and_paths("static")
    checker = SensitizationChecker(circuit)
    hard = [p for p in paths if not checker.is_sensitizable(p)]
    path = hard[0]
    timing.check_path(path)
    # touch a cone disjoint from the path's side inputs: re-fingerprint,
    # then the same constraint key must still hit
    keys_before = set(timing.cube_cache)
    timing.refresh(set())
    timing.begin_iteration()
    timing.check_path(path)
    assert timing.cube_cache_hits >= 1
    assert keys_before <= set(timing.cube_cache)


# ---------------------------------------------------------------------- #
# paths_capped telemetry + warning
# ---------------------------------------------------------------------- #

def test_kms_warns_when_path_enumeration_is_capped():
    circuit = carry_skip_adder(4, 2)
    with pytest.warns(UserWarning, match="capped at 1 paths"):
        result = kms(circuit, model=MODEL, max_longest_paths=1)
    assert result.counters["paths_capped"] >= 1


def test_kms_uncapped_run_emits_no_cap_warning():
    circuit = carry_skip_adder(2, 2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = kms(circuit, model=MODEL)
    assert result.counters["paths_capped"] == 0


# ---------------------------------------------------------------------- #
# backward-seed tightening (PR 10)
# ---------------------------------------------------------------------- #

def test_backward_seed_skips_parents_when_parent_visible_state_unchanged():
    """Refreshing a touched gate whose delay, fanin edges, and dist are
    all unchanged must relax that gate alone -- not fan out to every
    fanin source the way the old unconditional parent seeding did."""
    circuit = ripple_carry_adder(4)
    sta = IncrementalSTA(circuit, MODEL)
    gid = next(
        g
        for g, gate in circuit.gates.items()
        if len(gate.fanin) >= 2 and gate.fanout
    )
    base_fwd = sta.arrival_relaxations
    base_bwd = sta.dist_relaxations
    sta.refresh({gid})
    # forward: the gate plus the early-cutoff visit of its fanouts;
    # backward: exactly the seed, no parent fan-out.
    assert sta.arrival_relaxations - base_fwd >= 1
    assert sta.dist_relaxations - base_bwd == 1
    ann = analyze(circuit, MODEL)
    assert sta.arrival == ann.arrival
    assert sta.dist_to_po == ann.dist_to_po


def test_backward_seed_still_reaches_parents_on_edge_delay_change():
    """An in-edge delay change leaves the touched gate's own dist alone
    but moves its parents' -- the memo key must catch it."""
    from repro.network import Builder
    from repro.timing import AsBuiltDelayModel

    b = Builder("seed")
    x, y = b.inputs("x", "y")
    g = b.and_(x, y, delay=1.0)
    b.output("o", g)
    circuit = b.done()
    model = AsBuiltDelayModel()
    sta = IncrementalSTA(circuit, model)
    assert sta.dist_to_po[x] == 1.0
    cid = circuit.gates[g].fanin[0]  # the x -> g edge
    circuit.set_connection_delay(cid, 5.0)
    sta.refresh({g})  # transform contract: the edge's dst is touched
    ann = analyze(circuit, model)
    assert sta.dist_to_po == ann.dist_to_po
    assert sta.dist_to_po[x] == 6.0
    assert sta.dist_to_po[y] == 1.0


def test_backward_seed_still_reaches_parents_on_gate_delay_change():
    from repro.network import Builder
    from repro.timing import AsBuiltDelayModel

    b = Builder("seed2")
    x, y = b.inputs("x", "y")
    inner = b.or_(x, y, delay=1.0)
    g = b.and_(inner, y, delay=1.0)
    b.output("o", g)
    circuit = b.done()
    model = AsBuiltDelayModel()
    sta = IncrementalSTA(circuit, model)
    circuit.set_gate_delay(g, 4.0)
    sta.refresh({g})
    ann = analyze(circuit, model)
    assert sta.arrival == ann.arrival
    assert sta.dist_to_po == ann.dist_to_po
    assert sta.dist_to_po[inner] == 4.0
