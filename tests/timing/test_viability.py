"""Viability analysis: upper-bound ordering and paper claims."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    fig1_carry_skip_block,
    fig4_c2_cone,
    random_circuit,
)
from repro.sim import true_delay
from repro.timing import (
    ViabilityChecker,
    longest_paths,
    sensitizable_delay,
    topological_delay,
    viability_delay,
)


class TestOrdering:
    """topological >= viability >= sensitizable and viability >= true."""

    @given(seed=st.integers(0, 60), arrivals=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_delay_measure_sandwich(self, seed, arrivals):
        c = random_circuit(
            num_inputs=4,
            num_gates=12,
            seed=seed,
            max_arrival=4.0 if arrivals else 0.0,
        )
        topo = topological_delay(c)
        via = viability_delay(c).delay
        sens = sensitizable_delay(c).delay
        assert topo + 1e-9 >= via >= sens - 1e-9

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_viability_upper_bounds_true_delay(self, seed):
        """The soundness that justifies clocking at the viability delay
        (Section V)."""
        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        assert viability_delay(c).delay + 1e-9 >= true_delay(c)


class TestPaperClaims:
    def test_fig4_viability_delay_is_8(self):
        """The c2 cone's computed delay is 8 -- the 11-unit path is not
        viable (its early side inputs cannot all be noncontrolling)."""
        report = viability_delay(fig4_c2_cone())
        assert report.delay == 8.0
        assert report.path is not None
        assert report.cube is not None

    def test_fig4_longest_path_not_viable(self):
        c = fig4_c2_cone()
        checker = ViabilityChecker(c)
        path = longest_paths(c)[0]
        assert not checker.is_viable(path)

    def test_fig1_viability_delay_is_9(self):
        # the s1 sum path (9 units) is viable in the 3-output block
        assert viability_delay(fig1_carry_skip_block()).delay == 9.0

    def test_static_sensitization_implies_viable(self):
        """Section V: 'if a path is statically sensitizable then it is
        viable'."""
        c = fig1_carry_skip_block()
        from repro.timing import (
            SensitizationChecker,
            iter_paths_longest_first,
        )

        sens = SensitizationChecker(c)
        via = ViabilityChecker(c)
        for path in iter_paths_longest_first(c, max_paths=40):
            if sens.is_sensitizable(path):
                assert via.is_viable(path)


class TestEarlyLateClassification:
    def test_early_side_inputs_of_late_path_are_constrained(self):
        c = fig4_c2_cone()
        checker = ViabilityChecker(c)
        path = longest_paths(c)[0]  # the c0 path, event times 5..9
        early = checker.early_side_inputs(path)
        # all side inputs settle by t=4 < 5, so all are early
        from repro.timing import side_inputs

        assert len(early) == len(side_inputs(c, path))

    def test_late_side_inputs_are_smoothed(self):
        """On the critical (a0) path, the c0-side inputs arrive late and
        are smoothed, which is why the path is viable."""
        c = fig4_c2_cone()
        checker = ViabilityChecker(c)
        report = viability_delay(c)
        early = checker.early_side_inputs(report.path)
        from repro.timing import side_inputs

        assert len(early) < len(side_inputs(c, report.path))


class TestReports:
    def test_exhausted_flag_falls_back_to_topological(self):
        c = fig4_c2_cone()
        report = viability_delay(c, max_paths=1)
        assert report.exhausted
        assert report.delay == topological_delay(c)

    def test_all_constant_circuit(self):
        from repro.network import Builder

        b = Builder()
        b.input("x")
        b.output("o", b.const(1))
        report = viability_delay(b.done())
        assert report.delay == 0.0
        assert report.path is None
