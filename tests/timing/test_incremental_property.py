"""Property suite: the incremental timing engine tracks the full oracle.

Two layers of bit-identical agreement over randomized inputs:

* **STA state** -- after every mutation in a randomized sequence of KMS
  transforms (constant-setting + propagation, sweeps, chain
  duplications, arrival-time changes), a dirty-cone
  :class:`~repro.timing.sta.IncrementalSTA` refreshed with the
  transforms' touched-gate sets must hold exactly the arrival times,
  ``dist_to_po``, longest-path counts, delay, and longest-path *sets*
  that a from-scratch pass computes -- ``==`` on floats, no tolerance:
  both engines share the same per-gate arithmetic, so any difference is
  a dirty-cone bookkeeping bug.
* **KMS outputs** -- ``kms(..., incremental=True)`` and the full oracle
  produce bit-identical final circuits (same content fingerprint) and
  SAT-equivalent networks on random redundant circuits.

250 random circuits in batches (kept small so each test stays well
under CI's per-test timeout).
"""

import random

import pytest

from repro.circuits import random_circuit, random_redundant_circuit
from repro.core import kms
from repro.engine.hashing import circuit_fingerprint
from repro.network import GateType
from repro.network.transform import (
    duplicate_chain,
    propagate_constants,
    set_connection_constant,
    sweep,
)
from repro.sat import check_equivalence
from repro.timing import (
    AsBuiltDelayModel,
    IncrementalSTA,
    analyze,
    iter_paths_longest_first,
)

MODEL = AsBuiltDelayModel()

BATCHES = 10
CIRCUITS_PER_BATCH = 25


def _assert_matches_oracle(sta, circuit):
    """Exact agreement between maintained state and from-scratch passes."""
    fresh = IncrementalSTA(circuit, MODEL)
    assert sta.arrival == fresh.arrival
    assert sta.dist_to_po == fresh.dist_to_po
    assert sta.npaths_to_po == fresh.npaths_to_po
    assert sta.delay == fresh.delay
    assert sta.num_longest_paths() == fresh.num_longest_paths()
    ann = analyze(circuit, MODEL)
    assert sta.arrival == ann.arrival
    assert sta.dist_to_po == ann.dist_to_po
    assert sta.delay == ann.delay
    mine = [
        (p.gates, p.conns, p.length)
        for p in iter_paths_longest_first(
            circuit, MODEL, sta.annotation(), max_paths=25
        )
    ]
    oracle = [
        (p.gates, p.conns, p.length)
        for p in iter_paths_longest_first(circuit, MODEL, ann, max_paths=25)
    ]
    assert mine == oracle


def _mutate_constant(circuit, rng):
    candidates = [
        cid
        for cid, conn in circuit.conns.items()
        if circuit.gates[conn.dst].gtype is not GateType.OUTPUT
        and circuit.gates[conn.src].gtype
        not in (GateType.CONST0, GateType.CONST1)
    ]
    if not candidates:
        return None
    _, touched = set_connection_constant(
        circuit, rng.choice(candidates), rng.randint(0, 1)
    )
    _, propagated = propagate_constants(circuit)
    return touched | propagated


def _mutate_sweep(circuit, rng):
    _, touched = sweep(circuit, collapse_buffers=True)
    return touched


def _mutate_duplicate(circuit, rng):
    """The Fig. 3 duplication move: copy a path prefix up to a
    multi-fanout gate and re-source one of its fanout edges onto the
    duplicate (exactly what the KMS loop does per iteration)."""
    paths = list(iter_paths_longest_first(circuit, MODEL, max_paths=8))
    if not paths:
        return None
    path = rng.choice(paths)
    branch_points = [
        j
        for j, gid in enumerate(path.gates)
        if len(circuit.gates[gid].fanout) > 1
    ]
    if not branch_points:
        return None
    j = rng.choice(branch_points)
    chain = list(path.gates[: j + 1])
    chain_conns = list(path.conns[: j + 1])
    edge = path.conns[j + 1]
    mapping, _dup_conns, touched = duplicate_chain(
        circuit, chain, chain_conns
    )
    n = chain[-1]
    touched |= {n, mapping[n], circuit.conns[edge].dst}
    circuit.move_connection_source(edge, mapping[n])
    return touched


def _mutate_arrival(circuit, rng):
    if not circuit.inputs:
        return None
    pi = rng.choice(circuit.inputs)
    circuit.input_arrival[pi] = float(rng.randint(0, 5))
    return {pi}


MUTATIONS = [
    _mutate_constant,
    _mutate_sweep,
    _mutate_duplicate,
    _mutate_arrival,
]


def _random_subject(rng, index):
    if index % 2:
        return random_redundant_circuit(
            num_inputs=rng.randint(3, 6),
            num_gates=rng.randint(8, 18),
            seed=rng.randint(0, 10**6),
        )
    return random_circuit(
        num_inputs=rng.randint(3, 6),
        num_gates=rng.randint(10, 25),
        num_outputs=rng.randint(1, 3),
        seed=rng.randint(0, 10**6),
        max_arrival=rng.choice([0.0, 3.0]),
    )


@pytest.mark.parametrize("batch", range(BATCHES))
def test_incremental_sta_tracks_full_recompute(batch):
    rng = random.Random(1000 + batch)
    for index in range(CIRCUITS_PER_BATCH):
        circuit = _random_subject(rng, index)
        sta = IncrementalSTA(circuit, MODEL)
        _assert_matches_oracle(sta, circuit)
        for _step in range(rng.randint(2, 6)):
            mutate = rng.choice(MUTATIONS)
            touched = mutate(circuit, rng)
            if touched is None:
                continue
            sta.refresh(touched)
            _assert_matches_oracle(sta, circuit)


@pytest.mark.parametrize("seed", range(12))
def test_kms_incremental_bit_identical_random(seed):
    circuit = random_redundant_circuit(
        num_inputs=5, num_gates=15, seed=seed
    )
    inc = kms(circuit, model=MODEL, incremental=True)
    full = kms(circuit, model=MODEL, incremental=False)
    assert inc.iterations == full.iterations
    assert circuit_fingerprint(inc.circuit) == circuit_fingerprint(
        full.circuit
    )
    assert check_equivalence(inc.circuit, full.circuit).equivalent
    assert check_equivalence(circuit, inc.circuit).equivalent
    for key in ("paths_enumerated", "paths_capped"):
        assert inc.counters[key] == full.counters[key]
