"""Delay model strategies."""

import pytest

from repro.network import Builder, GateType
from repro.timing import (
    AsBuiltDelayModel,
    FanoutDelayModel,
    LibraryDelayModel,
    PAPER_SECTION3_TABLE,
    UnitDelayModel,
    topological_delay,
)


def _one_gate():
    b = Builder()
    x, y = b.inputs("x", "y")
    g = b.and_(x, y, delay=3.5, name="g")
    b.output("o", g)
    return b.done(), g


def test_as_built_uses_stored_delays():
    c, g = _one_gate()
    assert AsBuiltDelayModel().gate_delay(c, g) == 3.5
    assert topological_delay(c) == 3.5


def test_unit_model_flattens_delays():
    c, g = _one_gate()
    m = UnitDelayModel()
    assert m.gate_delay(c, g) == 1.0
    assert topological_delay(c, m) == 1.0


def test_unit_model_buffers_free():
    b = Builder()
    x = b.input("x")
    b.output("o", b.buf(x, delay=9.0))
    c = b.done()
    assert topological_delay(c, UnitDelayModel()) == 0.0


def test_unit_model_arrival_switch():
    b = Builder()
    x = b.input("x", arrival=5.0)
    b.output("o", b.not_(x))
    c = b.done()
    assert topological_delay(c, UnitDelayModel()) == 6.0
    assert (
        topological_delay(c, UnitDelayModel(use_arrival_times=False)) == 1.0
    )


def test_library_model_table_lookup():
    c, g = _one_gate()
    m = LibraryDelayModel({GateType.AND: 0.7})
    assert m.gate_delay(c, g) == pytest.approx(0.7)


def test_library_model_falls_back_to_stored():
    c, g = _one_gate()
    m = LibraryDelayModel({GateType.OR: 0.7})
    assert m.gate_delay(c, g) == 3.5


def test_paper_table_values():
    assert PAPER_SECTION3_TABLE[GateType.AND] == 1.0
    assert PAPER_SECTION3_TABLE[GateType.XOR] == 2.0


def test_fanout_model_charges_extra_fanout(two_output_circuit):
    c = two_output_circuit
    shared = c.find_gate("shared")
    inv = c.find_gate("inv")
    m = FanoutDelayModel(AsBuiltDelayModel(), load_per_fanout=0.25)
    # shared drives 2 sinks -> +0.25; inv drives 1 -> +0
    assert m.gate_delay(c, shared) == pytest.approx(
        c.gates[shared].delay + 0.25
    )
    assert m.gate_delay(c, inv) == pytest.approx(c.gates[inv].delay)
