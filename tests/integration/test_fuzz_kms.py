"""KMS torture: randomized circuits across design styles and models.

Each case runs the full verification triangle -- SAT-miter equivalence,
irredundancy, delay non-increase under the viability model -- on inputs
chosen to stress different code paths: arrival skews (late side-input
classification), guaranteed-redundant structures (cleanup phase),
NAND/NOR-mapped netlists (inverting-gate chains and duplication through
them), and both loop modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import is_irredundant
from repro.circuits import (
    carry_skip_adder,
    random_circuit,
    random_redundant_circuit,
)
from repro.core import kms
from repro.sat import check_equivalence
from repro.synth import map_to_nand, map_to_nor
from repro.timing import UnitDelayModel, viability_delay


def _verify(before, after, model=None):
    assert check_equivalence(before, after).equivalent
    assert is_irredundant(after)
    assert (
        viability_delay(after, model).delay
        <= viability_delay(before, model).delay + 1e-9
    )


@given(
    seed=st.integers(0, 10_000),
    arrivals=st.sampled_from([0.0, 3.0, 7.5]),
    mode=st.sampled_from(["static", "viability"]),
)
@settings(max_examples=15, deadline=None)
def test_random_circuits_all_modes(seed, arrivals, mode):
    circuit = random_circuit(
        num_inputs=4, num_gates=11, seed=seed, max_arrival=arrivals
    )
    result = kms(circuit, mode=mode)
    _verify(circuit, result.circuit)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_redundant_circuits_cleanup_path(seed):
    circuit = random_redundant_circuit(
        num_inputs=4, num_gates=9, seed=seed
    )
    result = kms(circuit)
    _verify(circuit, result.circuit)


@given(seed=st.integers(0, 10_000), style=st.sampled_from(["nand", "nor"]))
@settings(max_examples=8, deadline=None)
def test_mapped_netlists(seed, style):
    base = random_circuit(
        num_inputs=4, num_gates=9, seed=seed, max_arrival=2.0
    )
    mapped = (map_to_nand if style == "nand" else map_to_nor)(base)
    result = kms(mapped)
    _verify(mapped, result.circuit)


@given(
    nbits=st.sampled_from([2, 4]),
    block=st.sampled_from([2]),
    cin_arrival=st.sampled_from([0.0, 5.0]),
)
@settings(max_examples=6, deadline=None)
def test_carry_skip_matrix(nbits, block, cin_arrival):
    model = UnitDelayModel()
    circuit = carry_skip_adder(nbits, block, cin_arrival=cin_arrival)
    result = kms(circuit, model=model)
    assert check_equivalence(circuit, result.circuit).equivalent
    assert is_irredundant(result.circuit)
    assert (
        viability_delay(result.circuit, model).delay
        <= viability_delay(circuit, model).delay + 1e-9
    )


@given(seed=st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_checked_mode_never_trips(seed):
    """checked=True raises on any internal invariant violation; the
    fuzzer's job is to make it trip (it must not)."""
    circuit = random_circuit(
        num_inputs=4, num_gates=12, seed=seed, max_arrival=4.0
    )
    kms(circuit, checked=True)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_idempotence(seed):
    """Running KMS on its own output is a no-op transformation: already
    irredundant, so only the (empty) cleanup phase runs."""
    circuit = random_redundant_circuit(
        num_inputs=4, num_gates=8, seed=seed
    )
    first = kms(circuit)
    second = kms(first.circuit)
    assert second.cleanup_steps == 0
    assert check_equivalence(first.circuit, second.circuit).equivalent
    assert (
        second.circuit.num_gates() <= first.circuit.num_gates()
    )