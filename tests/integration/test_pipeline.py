"""End-to-end flows: the full Section VIII pipeline on small workloads."""

import pytest

from repro.atpg import count_redundancies, is_irredundant
from repro.bench import classify_longest_paths, optimized_mcnc, run_circuit_row
from repro.circuits import carry_skip_adder, mcnc_circuit
from repro.core import kms, verify_transformation
from repro.io import parse_blif, write_blif
from repro.sat import check_equivalence
from repro.synth import speed_up
from repro.timing import UnitDelayModel, viability_delay


class TestMcncFlow:
    """PLA -> espresso -> factor -> speed_up -> KMS -> verify."""

    # The full synthesis + KMS + verify flow legitimately takes tens of
    # seconds on z4ml; override CI's 20s pytest-timeout default.
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("name", ["z4ml", "misex1"])
    def test_full_flow(self, name):
        model = UnitDelayModel()
        optimized = optimized_mcnc(name, late_arrival=6.0, model=model)
        area_only = mcnc_circuit(name)
        # delay optimization preserved function
        area_only.input_arrival[area_only.inputs[0]] = 6.0
        assert check_equivalence(area_only, optimized).equivalent
        # KMS on the optimized circuit
        result = kms(optimized, model=model)
        report = verify_transformation(optimized, result.circuit, model)
        assert report.ok, report.notes

    @pytest.mark.timeout(120)
    def test_z4ml_flow_exhibits_redundancy(self):
        """The arrival-skewed z4ml optimization introduces a bypass
        redundancy -- the Section VIII class-2 phenomenon."""
        model = UnitDelayModel()
        optimized = optimized_mcnc("z4ml", late_arrival=6.0, model=model)
        assert count_redundancies(optimized) >= 1
        result = kms(optimized, model=model)
        assert is_irredundant(result.circuit)

    def test_classify(self):
        model = UnitDelayModel()
        label = classify_longest_paths(
            optimized_mcnc("misex1", 6.0, model), model
        )
        assert label in ("class1", "class2")


class TestCsaFlow:
    def test_table1_row_runner(self):
        model = UnitDelayModel(use_arrival_times=False)
        row = run_circuit_row(
            "csa 2.2", carry_skip_adder(2, 2), model
        )
        assert row.row.redundancies == 2
        assert row.row.gates_final <= row.row.gates_initial
        assert row.row.delay_final <= row.row.delay_initial

    def test_blif_export_of_kms_result(self):
        c = carry_skip_adder(2, 2)
        result = kms(c, model=UnitDelayModel(use_arrival_times=False))
        text = write_blif(result.circuit)
        back = parse_blif(text)
        assert check_equivalence(result.circuit, back).equivalent


class TestDelayContractAcrossFlow:
    def test_speedup_then_kms_never_slower(self):
        """The combined optimize-then-make-testable flow keeps the
        viability delay monotonically non-increasing."""
        model = UnitDelayModel()
        c = mcnc_circuit("rd73")
        c.input_arrival[c.inputs[0]] = 6.0
        d0 = viability_delay(c, model).delay
        fast, _ = speed_up(c, model)
        d1 = viability_delay(fast, model).delay
        result = kms(fast, model=model)
        d2 = viability_delay(result.circuit, model).delay
        assert d1 <= d0 + 1e-9
        assert d2 <= d1 + 1e-9
