"""Sequential BLIF: .latch parsing and round trips."""

import pytest

from repro.io import (
    BlifError,
    parse_blif,
    parse_blif_sequential,
    write_blif_sequential,
)
from repro.seq import accumulator, mod_counter


TOGGLE = """
.model toggle
.inputs
.outputs out
.latch next q 0
.names q next
0 1
.names q out
1 1
.end
"""


class TestParse:
    def test_toggle_machine(self):
        m = parse_blif_sequential(TOGGLE)
        assert m.name == "toggle"
        assert m.primary_inputs() == []
        assert m.primary_outputs() == ["out"]
        outs = [o["out"] for o, _s in m.simulate([{}] * 4)]
        assert outs == [0, 1, 0, 1]

    def test_latch_init_value(self):
        text = TOGGLE.replace(".latch next q 0", ".latch next q 1")
        m = parse_blif_sequential(text)
        outs = [o["out"] for o, _s in m.simulate([{}] * 2)]
        assert outs == [1, 0]

    def test_latch_with_clock_fields(self):
        text = TOGGLE.replace(
            ".latch next q 0", ".latch next q re clk 0"
        )
        m = parse_blif_sequential(text)
        assert m.initial_state() == {"q_latch": 0}

    def test_combinational_parser_rejects_latches(self):
        with pytest.raises(BlifError):
            parse_blif(TOGGLE)

    def test_duplicate_latch_outputs_rejected(self):
        text = TOGGLE + "\n.latch next q 0\n"
        with pytest.raises(BlifError):
            parse_blif_sequential(text)

    def test_combinational_model_still_works(self):
        m = parse_blif_sequential(
            ".model c\n.inputs a\n.outputs y\n.names a y\n1 1\n"
        )
        assert m.latches == []
        outs = [o["y"] for o, _s in m.simulate([{"a": 1}, {"a": 0}])]
        assert outs == [1, 0]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make",
        [lambda: mod_counter(3), lambda: accumulator(2, block_size=2)],
    )
    def test_machines_round_trip(self, make):
        machine = make()
        text = write_blif_sequential(machine)
        back = parse_blif_sequential(text)
        assert len(back.latches) == len(machine.latches)
        assert sorted(back.primary_inputs()) == sorted(
            machine.primary_inputs()
        )
        # behavioral equivalence over a stimulus
        stimulus = []
        for step in range(4):
            vec = {
                name: (step >> (i % 3)) & 1
                for i, name in enumerate(machine.primary_inputs())
            }
            stimulus.append(vec)
        old = [o for o, _s in machine.simulate(stimulus)]
        new = [o for o, _s in back.simulate(stimulus)]
        assert old == new
