"""PLA format and function tabulation."""

import pytest

from repro.io import PlaError, parse_pla, pla_from_function, write_pla


SAMPLE = """# 2-bit AND/OR
.i 2
.o 2
.ilb a b
.ob f g
.p 3
11 10
1- 01
-1 01
.e
"""


class TestParse:
    def test_basic(self):
        pla = parse_pla(SAMPLE, name="sample")
        assert pla.input_names == ["a", "b"]
        assert pla.output_names == ["f", "g"]
        assert sorted(pla.on_sets["f"].minterms()) == [3]
        assert sorted(pla.on_sets["g"].minterms()) == [1, 2, 3]

    def test_default_labels(self):
        pla = parse_pla(".i 1\n.o 1\n1 1\n")
        assert pla.input_names == ["x0"]
        assert pla.output_names == ["y0"]

    def test_missing_io_rejected(self):
        with pytest.raises(PlaError):
            parse_pla("11 1\n")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(PlaError):
            parse_pla(".i 2\n.o 1\n111 1\n")

    def test_dash_outputs_become_dontcares(self):
        pla = parse_pla(".i 1\n.o 1\n.type fd\n1 -\n0 1\n")
        assert sorted(pla.dc_sets["y0"].minterms()) == [1]
        assert sorted(pla.on_sets["y0"].minterms()) == [0]

    def test_joined_row_format(self):
        # some PLA files omit the space between input and output parts
        pla = parse_pla(".i 2\n.o 1\n111\n")
        assert sorted(pla.on_sets["y0"].minterms()) == [3]


class TestWrite:
    def test_roundtrip(self):
        pla = parse_pla(SAMPLE, name="s")
        back = parse_pla(write_pla(pla), name="s2")
        for out in pla.output_names:
            assert sorted(back.on_sets[out].minterms()) == sorted(
                pla.on_sets[out].minterms()
            )


class TestTabulation:
    def test_pla_from_function(self):
        pla = pla_from_function("sq", 3, 6, lambda x: x * x)
        for x in range(8):
            point = [(x >> i) & 1 for i in range(3)]
            word = 0
            for pos, out in enumerate(pla.output_names):
                if pla.on_sets[out].evaluate(point):
                    word |= 1 << pos
            assert word == x * x

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pla_from_function("bad", 2, 1, lambda x: 5)

    def test_too_many_inputs_guarded(self):
        with pytest.raises(ValueError):
            pla_from_function("big", 17, 1, lambda x: 0)


class TestToCircuit:
    def test_circuit_matches_pla(self):
        pla = parse_pla(SAMPLE, name="s")
        circuit = pla.to_circuit()
        for bits in range(4):
            point = [bits & 1, (bits >> 1) & 1]
            assign = {
                circuit.find_input("a"): point[0],
                circuit.find_input("b"): point[1],
            }
            values = circuit.evaluate(assign)
            assert values[circuit.find_output("f")] == int(
                pla.on_sets["f"].evaluate(point)
            )
            assert values[circuit.find_output("g")] == int(
                pla.on_sets["g"].evaluate(point)
            )
