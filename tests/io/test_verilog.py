"""Structural Verilog export."""

import re

from repro.circuits import carry_skip_adder, fig1_carry_skip_block
from repro.io import write_verilog
from repro.network import Builder


def test_module_structure():
    text = write_verilog(fig1_carry_skip_block())
    assert text.startswith("module fig1_csa2(")
    assert "input a0, b0, a1, b1, c0;" in text.replace("  ", " ") or (
        "input" in text
    )
    assert text.rstrip().endswith("endmodule")


def test_all_ports_declared():
    c = carry_skip_adder(2, 2)
    text = write_verilog(c)
    header = text.splitlines()[0]
    for name in c.input_names() + c.output_names():
        assert name in header


def test_primitives_used():
    b = Builder("m")
    x, y = b.inputs("x", "y")
    b.output("o", b.nand(x, y))
    text = write_verilog(b.done())
    assert re.search(r"\bnand u\d+ \(", text)


def test_constants_become_assigns():
    b = Builder("k")
    x = b.input("x")
    b.output("o", b.or_(x, b.const(1)))
    text = write_verilog(b.done())
    assert "assign" in text and "1'b1" in text


def test_name_sanitization():
    b = Builder("weird name!")
    x = b.input("in.0")
    b.output("out-0", b.not_(x))
    text = write_verilog(b.done())
    assert "module weird_name_(" in text
    assert "in_0" in text
    assert "out_0" in text


def test_name_collisions_resolved():
    b = Builder("m")
    x = b.input("sig$a")
    y = b.input("sig.a")  # sanitizes to the same string
    b.output("o", b.and_(x, y))
    text = write_verilog(b.done())
    header = text.splitlines()[0]
    ports = header[header.index("(") + 1 : header.rindex(")")].split(", ")
    assert len(set(ports)) == len(ports)


def test_delay_comments():
    b = Builder("m")
    x = b.input("x")
    b.output("o", b.not_(x, delay=2.5))
    assert "// d=2.5" in write_verilog(b.done())
