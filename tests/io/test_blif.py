"""BLIF parse/write round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    fig1_carry_skip_block,
    random_circuit,
    ripple_carry_adder,
)
from repro.io import BlifError, parse_blif, write_blif
from repro.sat import check_equivalence


SAMPLE = """
# a half adder
.model half
.inputs a b
.outputs s co
.names a b s
10 1
01 1
.names a b co
11 1
.end
"""


class TestParse:
    def test_half_adder(self):
        c = parse_blif(SAMPLE)
        assert c.name == "half"
        assert c.input_names() == ["a", "b"]
        a, b = c.inputs
        assert c.evaluate_outputs({a: 1, b: 0}) == (1, 0)
        assert c.evaluate_outputs({a: 1, b: 1}) == (0, 1)

    def test_zero_phase_table(self):
        text = """.model inv
.inputs a
.outputs y
.names a y
1 0
0 0
"""
        # y is 0 whenever a row matches; rows cover both -> constant 0?
        # standard semantics: 0-phase means y = NOT(cover)
        c = parse_blif(text)
        a = c.inputs[0]
        assert c.evaluate_outputs({a: 0}) == (0,)
        assert c.evaluate_outputs({a: 1}) == (0,)

    def test_constant_tables(self):
        text = """.model k
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
        c = parse_blif(text)
        a = c.inputs[0]
        assert c.evaluate_outputs({a: 0}) == (1, 0)

    def test_out_of_order_tables(self):
        text = """.model o
.inputs a
.outputs y
.names t y
1 1
.names a t
0 1
.end
"""
        c = parse_blif(text)
        a = c.inputs[0]
        assert c.evaluate_outputs({a: 0}) == (1,)

    def test_latch_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.latch a b re clk 0\n.end")

    def test_undriven_output_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a\n.outputs y\n.end")

    def test_undriven_signal_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(
                ".model m\n.inputs a\n.outputs y\n.names ghost y\n1 1\n"
            )

    def test_line_continuation(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n"
        c = parse_blif(text)
        assert c.input_names() == ["a", "b"]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: ripple_carry_adder(2),
            fig1_carry_skip_block,
        ],
    )
    def test_named_circuits(self, make):
        c = make()
        back = parse_blif(write_blif(c))
        assert check_equivalence(c, back).equivalent

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_random_circuits(self, seed):
        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        back = parse_blif(write_blif(c))
        assert check_equivalence(c, back).equivalent

    def test_constants_roundtrip(self):
        from repro.network import Builder

        b = Builder("k")
        x = b.input("x")
        b.output("y", b.or_(x, b.const(1)))
        c = b.done()
        back = parse_blif(write_blif(c))
        assert back.evaluate_outputs({back.inputs[0]: 0}) == (1,)
