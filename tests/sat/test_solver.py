"""CDCL solver: correctness against brute force, assumptions, UNSAT."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CNF, Solver, solve_cnf


def brute_force_sat(cnf: CNF) -> bool:
    n = cnf.num_vars
    for bits in range(1 << n):
        assign = {v: bool((bits >> (v - 1)) & 1) for v in range(1, n + 1)}
        if cnf.evaluate(assign) is True:
            return True
    return False


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(1, 6))
    num_clauses = draw(st.integers(1, 14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(1, 3))
        clause = []
        for _ in range(width):
            var = draw(st.integers(1, num_vars))
            sign = draw(st.booleans())
            clause.append(var if sign else -var)
        clauses.append(clause)
    cnf = CNF()
    cnf.num_vars = num_vars
    for cl in clauses:
        cnf.add_clause(cl)
    return cnf


@given(random_cnf())
@settings(max_examples=200, deadline=None)
def test_solver_matches_brute_force(cnf):
    expected = brute_force_sat(cnf)
    sat, model = solve_cnf(cnf)
    assert sat == expected
    if sat:
        assert cnf.evaluate(model) is True


def test_trivial_sat():
    cnf = CNF()
    cnf.add_clause([1])
    assert solve_cnf(cnf)[0] is True


def test_trivial_unsat():
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([-1])
    assert solve_cnf(cnf)[0] is False


def test_empty_clause_unsat():
    cnf = CNF()
    cnf.add_clause([1, 2])
    cnf.clauses.append(())
    assert solve_cnf(cnf)[0] is False


def test_pigeonhole_2_into_1_unsat():
    # two pigeons, one hole: p1 and p2 both in hole, but not together
    cnf = CNF()
    cnf.add_clause([1])
    cnf.add_clause([2])
    cnf.add_clause([-1, -2])
    assert solve_cnf(cnf)[0] is False


class TestAssumptions:
    def _xor_cnf(self):
        # y = a xor b, vars a=1 b=2 y=3
        cnf = CNF()
        cnf.add_clause([-1, -2, -3])
        cnf.add_clause([1, 2, -3])
        cnf.add_clause([-1, 2, 3])
        cnf.add_clause([1, -2, 3])
        return cnf

    def test_sat_under_assumptions(self):
        solver = Solver(self._xor_cnf())
        assert solver.solve([1, -2]) is True
        model = solver.model()
        assert model[3] is True

    def test_unsat_under_assumptions_but_sat_globally(self):
        solver = Solver(self._xor_cnf())
        assert solver.solve([1, -2, -3]) is False
        # the formula itself is still satisfiable afterwards
        assert solver.solve([]) is True

    def test_contradictory_assumptions(self):
        solver = Solver(self._xor_cnf())
        assert solver.solve([1, -1]) is False

    def test_repeated_queries_reuse_solver(self):
        solver = Solver(self._xor_cnf())
        for a in (1, -1):
            for b in (2, -2):
                assert solver.solve([a, b]) is True
                m = solver.model()
                assert m[3] == ((a > 0) != (b > 0))


@given(random_cnf(), st.integers(1, 6), st.booleans())
@settings(max_examples=100, deadline=None)
def test_assumptions_equal_added_units(cnf, var, sign):
    """solve(assumptions=[l]) must agree with solving cnf + unit l."""
    if var > cnf.num_vars:
        var = cnf.num_vars
    lit = var if sign else -var
    solver = Solver(cnf.copy())
    under_assumption = solver.solve([lit])
    with_unit = cnf.copy()
    with_unit.add_clause([lit])
    assert under_assumption == solve_cnf(with_unit)[0]


class TestBranchingHints:
    def _circuit_cnf(self):
        from repro.circuits import random_circuit
        from repro.sat import encode_circuit

        circuit = random_circuit(num_inputs=5, num_gates=15, seed=11)
        return circuit, encode_circuit(circuit)

    def test_prefer_variables_does_not_change_answers(self):
        circuit, enc = self._circuit_cnf()
        plain = Solver(enc.cnf.copy())
        hinted = Solver(enc.cnf.copy())
        hinted.prefer_variables(enc.var[g] for g in circuit.inputs)
        for gid in circuit.outputs:
            for value in (1, -1):
                lit = value * enc.var[gid]
                assert plain.solve([lit]) == hinted.solve([lit])

    def test_preferred_vars_decided_first(self):
        cnf = CNF()
        # three free variables, no constraints binding them
        cnf.add_clause([1, 2, 3, 4])
        solver = Solver(cnf)
        solver.prefer_variables([4])
        assert solver.solve() is True
        # with everything at activity 0 the preferred var is decided
        # first; with default negative phase the clause forces others,
        # so just verify a model exists and var 4 is assigned
        assert 4 in solver.model()

    def test_bump_variable_raises_priority(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        solver = Solver(cnf)
        solver.bump_variable(2, amount=5.0)
        assert solver.solve() is True
        assert cnf.evaluate(solver.model()) is True
