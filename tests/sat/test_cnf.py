"""CNF container."""

import pytest

from repro.sat import CNF


def test_new_var_monotonic():
    cnf = CNF()
    assert cnf.new_var() == 1
    assert cnf.new_var() == 2
    assert cnf.num_vars == 2


def test_add_clause_grows_vars():
    cnf = CNF()
    cnf.add_clause([3, -5])
    assert cnf.num_vars == 5
    assert len(cnf) == 1


def test_literal_zero_rejected():
    cnf = CNF()
    with pytest.raises(ValueError):
        cnf.add_clause([0])


def test_evaluate_partial_and_total():
    cnf = CNF()
    cnf.add_clause([1, 2])
    cnf.add_clause([-1])
    assert cnf.evaluate({1: False, 2: True}) is True
    assert cnf.evaluate({1: True}) is False
    assert cnf.evaluate({1: False}) is None


def test_dimacs_roundtrip():
    cnf = CNF()
    cnf.add_clause([1, -2, 3])
    cnf.add_unit(-3)
    text = cnf.to_dimacs()
    assert text.startswith("p cnf 3 2")
    back = CNF.from_dimacs(text)
    assert back.clauses == cnf.clauses


def test_copy_is_independent():
    cnf = CNF()
    cnf.add_clause([1, 2])
    other = cnf.copy()
    other.add_clause([-1])
    assert len(cnf) == 1
    assert len(other) == 2
