"""Miter-based equivalence checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.network import Builder
from repro.sat import assert_equivalent, check_equivalence
from repro.sim import outputs_equal_exhaustive


def _two_gate(gate):
    b = Builder()
    x, y = b.inputs("x", "y")
    b.output("o", getattr(b, gate)(x, y))
    return b.done()


def test_identical_circuits_equivalent(and_or_circuit):
    result = check_equivalence(and_or_circuit, and_or_circuit.copy())
    assert result.equivalent
    assert result.counterexample is None


def test_demorgan_equivalence():
    b1 = Builder()
    x, y = b1.inputs("x", "y")
    b1.output("o", b1.nand(x, y))
    b2 = Builder()
    x2, y2 = b2.inputs("x", "y")
    b2.output("o", b2.or_(b2.not_(x2), b2.not_(y2)))
    assert check_equivalence(b1.done(), b2.done()).equivalent


def test_inequivalence_gives_real_counterexample():
    a, b = _two_gate("and_"), _two_gate("or_")
    result = check_equivalence(a, b)
    assert not result.equivalent
    assert result.differing_output == "o"
    cex = result.counterexample
    va = a.evaluate_outputs({a.find_input(k): v for k, v in cex.items()})
    vb = b.evaluate_outputs({b.find_input(k): v for k, v in cex.items()})
    assert va != vb


def test_interface_mismatch_raises(and_or_circuit):
    other = _two_gate("and_")
    with pytest.raises(ValueError):
        check_equivalence(and_or_circuit, other)


def test_assert_equivalent_raises_with_details():
    with pytest.raises(AssertionError):
        assert_equivalent(_two_gate("and_"), _two_gate("nor"))


@given(seed=st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_sat_equivalence_matches_exhaustive(seed):
    a = random_circuit(num_inputs=4, num_gates=10, seed=seed)
    b = random_circuit(num_inputs=4, num_gates=10, seed=seed + 1000)
    # align interfaces by construction (same names)
    expected = outputs_equal_exhaustive(a, b)
    assert check_equivalence(a, b).equivalent == expected
