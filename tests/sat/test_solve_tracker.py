"""Snapshot/delta SAT-call accounting (reset-safe per engine stage)."""

from repro.sat import (
    CNF,
    SolveCallTracker,
    Solver,
    reset_solve_calls,
    solve_calls,
)


def _one_solve():
    cnf = CNF()
    v = cnf.new_var()
    cnf.add_clause((v,))
    Solver(cnf).solve()


def test_tracker_counts_deltas_not_globals():
    _one_solve()  # pre-existing global count must not leak in
    tracker = SolveCallTracker()
    assert tracker.calls == 0
    _one_solve()
    _one_solve()
    assert tracker.calls == 2


def test_tracker_reset_restarts_the_window():
    tracker = SolveCallTracker()
    _one_solve()
    assert tracker.calls == 1
    tracker.reset()
    assert tracker.calls == 0
    _one_solve()
    assert tracker.calls == 1


def test_tracker_survives_global_reset():
    """A mid-window reset_solve_calls() (another stage's cleanup, a
    test's isolation fixture) must not produce negative counts."""
    _one_solve()
    tracker = SolveCallTracker()
    reset_solve_calls()
    assert tracker.calls == 0  # clamped, not negative
    _one_solve()
    tracker.reset()
    _one_solve()
    assert tracker.calls == 1


def test_tracker_as_context_manager():
    _one_solve()
    with SolveCallTracker() as tracker:
        _one_solve()
    assert tracker.calls == 1


def test_global_counter_still_monotonic():
    before = solve_calls()
    _one_solve()
    assert solve_calls() == before + 1
