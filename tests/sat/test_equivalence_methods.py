"""The fraig-first and CNF equivalence engines: verdict parity, budgets."""

import pytest

from repro.circuits import (
    carry_skip_adder,
    fig2_irredundant_block,
    random_circuit,
    random_redundant_circuit,
)
from repro.core import kms
from repro.sat import SolveCallTracker, check_equivalence
from repro.timing import UnitDelayModel


def _kms_pair():
    circuit = carry_skip_adder(2, 2)
    model = UnitDelayModel(use_arrival_times=False)
    return circuit, kms(circuit, mode="static", model=model).circuit


def test_fraig_decides_kms_pair_with_zero_sat_calls():
    a, b = _kms_pair()
    tracker = SolveCallTracker()
    result = check_equivalence(a, b, method="fraig")
    assert result.equivalent
    assert tracker.calls == 0


def test_cnf_baseline_costs_one_call():
    a, b = _kms_pair()
    tracker = SolveCallTracker()
    assert check_equivalence(a, b, method="cnf").equivalent
    assert tracker.calls == 1


@pytest.mark.parametrize("seed", range(12))
def test_methods_agree_on_random_pairs(seed):
    """Same verdicts on perturbed random circuits; the fraig engine
    never spends more SAT calls than the CNF engine."""
    a = random_circuit(seed=seed, num_gates=18)
    b = (
        random_circuit(seed=seed, num_gates=18)
        if seed % 3
        else random_circuit(seed=seed + 1000, num_gates=18)
    )
    try:
        tracker = SolveCallTracker()
        fraig_result = check_equivalence(a, b, method="fraig")
        fraig_calls = tracker.calls
        tracker.reset()
        cnf_result = check_equivalence(a, b, method="cnf")
        cnf_calls = tracker.calls
    except ValueError:
        return  # interface mismatch raises identically on both paths
    assert fraig_result.equivalent == cnf_result.equivalent
    assert fraig_calls <= cnf_calls
    if not fraig_result.equivalent:
        # counterexamples from both engines must be genuine
        for result in (fraig_result, cnf_result):
            va = _eval(a, result.counterexample)
            vb = _eval(b, result.counterexample)
            assert va[result.differing_output] != vb[result.differing_output]


def _eval(circuit, assignment):
    from repro.sim import simulate_cube_by_name

    values = simulate_cube_by_name(circuit, assignment)
    return {
        circuit.gates[g].name: values[g] for g in circuit.outputs
    }


def test_sweep_opt_in_still_correct():
    a = random_redundant_circuit(seed=4)
    b = random_redundant_circuit(seed=4)
    assert check_equivalence(a, b, method="fraig", sweep=True).equivalent


def test_fraig_on_self_is_structural():
    """Same circuit twice: every miter cone hashes together, no engine
    beyond structural identity runs."""
    circuit = fig2_irredundant_block()
    tracker = SolveCallTracker()
    assert check_equivalence(circuit, circuit).equivalent
    assert tracker.calls == 0


def test_unknown_method_rejected():
    a, b = _kms_pair()
    with pytest.raises(ValueError):
        check_equivalence(a, b, method="magic")
