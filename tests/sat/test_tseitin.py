"""Tseitin encoding: CNF models = circuit evaluations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.network import Builder, GateType
from repro.sat import Solver, encode_circuit


@given(seed=st.integers(0, 60), bits=st.integers(0, 31))
@settings(max_examples=60, deadline=None)
def test_encoding_agrees_with_simulation(seed, bits):
    """Forcing PI literals makes every gate variable equal its simulated
    value."""
    circuit = random_circuit(num_inputs=5, num_gates=14, seed=seed)
    enc = encode_circuit(circuit)
    assign = {
        gid: (bits >> i) & 1 for i, gid in enumerate(circuit.inputs)
    }
    assumptions = [enc.lit(gid, v) for gid, v in assign.items()]
    solver = Solver(enc.cnf)
    assert solver.solve(assumptions) is True
    model = solver.model()
    simulated = circuit.evaluate(assign)
    for gid, var in enc.var.items():
        assert int(model.get(var, False)) == simulated[gid], (
            f"gate {gid} mismatch"
        )


def test_xor_gate_encoding():
    b = Builder()
    x, y, z = b.inputs("x", "y", "z")
    g = b.circuit.add_simple(GateType.XOR, [x, y, z], 1.0)
    b.output("o", g)
    c = b.done()
    enc = encode_circuit(c)
    solver = Solver(enc.cnf)
    for bits in range(8):
        assign = {c.inputs[i]: (bits >> i) & 1 for i in range(3)}
        assumptions = [enc.lit(gid, v) for gid, v in assign.items()]
        assert solver.solve(assumptions)
        model = solver.model()
        expected = (bits & 1) ^ ((bits >> 1) & 1) ^ ((bits >> 2) & 1)
        assert int(model[enc.var[g]]) == expected


def test_xnor_gate_encoding():
    b = Builder()
    x, y, z = b.inputs("x", "y", "z")
    g = b.circuit.add_simple(GateType.XNOR, [x, y, z], 1.0)
    b.output("o", g)
    c = b.done()
    enc = encode_circuit(c)
    solver = Solver(enc.cnf)
    for bits in range(8):
        assign = {c.inputs[i]: (bits >> i) & 1 for i in range(3)}
        assert solver.solve([enc.lit(gid, v) for gid, v in assign.items()])
        expected = 1 - ((bits & 1) ^ ((bits >> 1) & 1) ^ ((bits >> 2) & 1))
        assert int(solver.model()[enc.var[g]]) == expected


def test_constants_encoded_as_units():
    b = Builder()
    x = b.input("x")
    b.output("o", b.or_(x, b.const(1)))
    c = b.done()
    enc = encode_circuit(c)
    solver = Solver(enc.cnf)
    assert solver.solve([enc.lit(c.find_input("x"), 0)])
    assert solver.model()[enc.var[c.find_output("o")]] is True


def test_shared_input_vars_for_miters(two_output_circuit):
    from repro.sat import CircuitEncoder

    c = two_output_circuit
    enc = CircuitEncoder()
    var_a = enc.encode(c)
    var_b = enc.encode(
        c, input_vars={gid: var_a[gid] for gid in c.inputs}
    )
    for gid in c.inputs:
        assert var_a[gid] == var_b[gid]
    for gid in c.outputs:
        assert var_a[gid] != var_b[gid]
