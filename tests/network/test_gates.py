"""Gate-type semantics (Definitions 4.9 and the simple-gate vocabulary)."""

import pytest

from repro.network import GateType
from repro.network.gates import (
    SIMPLE_TYPES,
    SOURCE_TYPES,
    controlled_output,
    controlling_value,
    degenerate_single_input_type,
    evaluate,
    has_controlling_value,
    is_simple,
    max_fanin,
    min_fanin,
    noncontrolling_value,
)


class TestControllingValues:
    def test_and_controlling_is_zero(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0

    def test_or_controlling_is_one(self):
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1

    def test_noncontrolling_is_complement(self):
        for t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            assert noncontrolling_value(t) == 1 - controlling_value(t)

    def test_xor_has_no_controlling_value(self):
        assert not has_controlling_value(GateType.XOR)
        with pytest.raises(ValueError):
            controlling_value(GateType.XOR)

    def test_not_has_no_controlling_value(self):
        assert not has_controlling_value(GateType.NOT)

    def test_controlled_output(self):
        assert controlled_output(GateType.AND) == 0
        assert controlled_output(GateType.NAND) == 1
        assert controlled_output(GateType.OR) == 1
        assert controlled_output(GateType.NOR) == 0


class TestEvaluate:
    @pytest.mark.parametrize(
        "gtype,inputs,expected",
        [
            (GateType.AND, [1, 1, 1], 1),
            (GateType.AND, [1, 0, 1], 0),
            (GateType.NAND, [1, 1], 0),
            (GateType.NAND, [0, 1], 1),
            (GateType.OR, [0, 0], 0),
            (GateType.OR, [0, 1], 1),
            (GateType.NOR, [0, 0], 1),
            (GateType.NOR, [1, 0], 0),
            (GateType.XOR, [1, 1, 1], 1),
            (GateType.XOR, [1, 1], 0),
            (GateType.XNOR, [1, 0], 0),
            (GateType.XNOR, [1, 1], 1),
            (GateType.NOT, [0], 1),
            (GateType.NOT, [1], 0),
            (GateType.BUF, [1], 1),
            (GateType.OUTPUT, [0], 0),
        ],
    )
    def test_gate_functions(self, gtype, inputs, expected):
        assert evaluate(gtype, inputs) == expected

    def test_constants(self):
        assert evaluate(GateType.CONST0, []) == 0
        assert evaluate(GateType.CONST1, []) == 1

    def test_input_cannot_evaluate(self):
        with pytest.raises(ValueError):
            evaluate(GateType.INPUT, [])

    def test_single_input_and_or_act_as_buffer(self):
        assert evaluate(GateType.AND, [1]) == 1
        assert evaluate(GateType.AND, [0]) == 0
        assert evaluate(GateType.OR, [1]) == 1


class TestVocabulary:
    def test_simple_types_are_the_kms_alphabet(self):
        assert GateType.AND in SIMPLE_TYPES
        assert GateType.XOR not in SIMPLE_TYPES
        assert is_simple(GateType.NOR)
        assert not is_simple(GateType.XNOR)

    def test_source_types(self):
        assert GateType.INPUT in SOURCE_TYPES
        assert GateType.CONST0 in SOURCE_TYPES
        assert GateType.AND not in SOURCE_TYPES

    def test_fanin_bounds(self):
        assert min_fanin(GateType.INPUT) == 0
        assert max_fanin(GateType.INPUT) == 0
        assert min_fanin(GateType.NOT) == 1
        assert max_fanin(GateType.NOT) == 1
        assert max_fanin(GateType.AND) == float("inf")

    def test_degenerate_types(self):
        assert degenerate_single_input_type(GateType.AND) is GateType.BUF
        assert degenerate_single_input_type(GateType.OR) is GateType.BUF
        assert degenerate_single_input_type(GateType.NAND) is GateType.NOT
        assert degenerate_single_input_type(GateType.NOR) is GateType.NOT
        with pytest.raises(ValueError):
            degenerate_single_input_type(GateType.INPUT)
