"""Circuit container: construction, traversal, evaluation, copying."""

import pytest

from repro.network import Builder, Circuit, CircuitError, GateType


class TestConstruction:
    def test_add_gate_assigns_unique_ids(self):
        c = Circuit()
        g1 = c.add_gate(GateType.INPUT, name="a")
        g2 = c.add_gate(GateType.AND, 1.0)
        assert g1 != g2
        assert c.gates[g1].gtype is GateType.INPUT
        assert c.gates[g2].delay == 1.0

    def test_inputs_and_outputs_track_order(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        g = c.add_simple(GateType.AND, [a, b])
        c.add_output("y", g)
        assert c.inputs == [a, b]
        assert c.input_names() == ["a", "b"]
        assert c.output_names() == ["y"]

    def test_connect_returns_cid_and_updates_lists(self):
        c = Circuit()
        a = c.add_input("a")
        g = c.add_gate(GateType.NOT, 1.0)
        cid = c.connect(a, g)
        assert c.conns[cid].src == a
        assert cid in c.gates[a].fanout
        assert cid in c.gates[g].fanin

    def test_cannot_drive_a_source(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        with pytest.raises(CircuitError):
            c.connect(a, b)

    def test_connect_unknown_gate_raises(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(CircuitError):
            c.connect(a, 999)

    def test_multiple_connections_same_pair(self):
        """Definition 4.2 allows two connections between the same gates
        (e.g. AND(x, x))."""
        c = Circuit()
        a = c.add_input("a")
        g = c.add_gate(GateType.AND, 1.0)
        c.connect(a, g)
        c.connect(a, g)
        assert len(c.gates[g].fanin) == 2
        assert c.evaluate({a: 1})[g] == 1

    def test_input_arrival_defaults_to_zero(self):
        c = Circuit()
        a = c.add_input("a")
        assert c.input_arrival[a] == 0.0
        b = c.add_input("b", arrival=5.0)
        assert c.input_arrival[b] == 5.0


class TestRemoval:
    def test_remove_connection(self, and_or_circuit):
        c = and_or_circuit
        g1 = c.find_gate("g1")
        cid = c.gates[g1].fanin[0]
        c.remove_connection(cid)
        assert cid not in c.conns
        assert cid not in c.gates[g1].fanin

    def test_remove_gate_removes_touching_connections(self, and_or_circuit):
        c = and_or_circuit
        g1 = c.find_gate("g1")
        touching = list(c.gates[g1].fanin) + list(c.gates[g1].fanout)
        c.remove_gate(g1)
        assert g1 not in c.gates
        assert all(cid not in c.conns for cid in touching)

    def test_remove_input_updates_interface(self):
        c = Circuit()
        a = c.add_input("a")
        c.remove_gate(a)
        assert c.inputs == []
        assert a not in c.input_arrival

    def test_move_connection_source(self, and_or_circuit):
        c = and_or_circuit
        g2 = c.find_gate("g2")
        a = c.find_input("a")
        cid = c.gates[g2].fanin[0]  # from g1
        c.move_connection_source(cid, a)
        assert c.conns[cid].src == a
        assert cid in c.gates[a].fanout


class TestTraversal:
    def test_topological_order_respects_edges(self, and_or_circuit):
        c = and_or_circuit
        order = c.topological_order()
        pos = {g: i for i, g in enumerate(order)}
        for conn in c.conns.values():
            assert pos[conn.src] < pos[conn.dst]

    def test_cycle_detection(self):
        c = Circuit()
        a = c.add_input("a")
        g1 = c.add_gate(GateType.AND, 1.0)
        g2 = c.add_gate(GateType.AND, 1.0)
        c.connect(a, g1)
        c.connect(g1, g2)
        c.connect(g2, g1)
        with pytest.raises(CircuitError):
            c.topological_order()

    def test_transitive_fanin_fanout(self, and_or_circuit):
        c = and_or_circuit
        g2 = c.find_gate("g2")
        fanin = c.transitive_fanin([g2])
        assert c.find_input("a") in fanin
        assert c.find_input("c") in fanin
        a = c.find_input("a")
        assert g2 in c.transitive_fanout([a])

    def test_depth_counts_logic_gates_only(self, and_or_circuit):
        assert and_or_circuit.depth() == 2

    def test_fanout_size(self, two_output_circuit):
        c = two_output_circuit
        shared = c.find_gate("shared")
        assert c.fanout_size(shared) == 2


class TestEvaluation:
    def test_and_or(self, and_or_circuit):
        c = and_or_circuit
        a, b, cc = (c.find_input(n) for n in "abc")
        assert c.evaluate_outputs({a: 1, b: 1, cc: 0}) == (1,)
        assert c.evaluate_outputs({a: 1, b: 0, cc: 0}) == (0,)
        assert c.evaluate_outputs({a: 0, b: 0, cc: 1}) == (1,)

    def test_num_gates_excludes_structure(self, and_or_circuit):
        assert and_or_circuit.num_gates() == 2
        assert and_or_circuit.num_gates(logic_only=False) == 6

    def test_stats(self, and_or_circuit):
        stats = and_or_circuit.stats()
        assert stats["gates"] == 2
        assert stats["inputs"] == 3
        assert stats["outputs"] == 1
        assert stats["depth"] == 2


class TestCopy:
    def test_copy_preserves_ids_and_interface(self, and_or_circuit):
        c = and_or_circuit
        d = c.copy()
        assert d.inputs == c.inputs
        assert d.outputs == c.outputs
        assert set(d.gates) == set(c.gates)
        assert set(d.conns) == set(c.conns)

    def test_copy_is_independent(self, and_or_circuit):
        c = and_or_circuit
        d = c.copy()
        d.remove_gate(d.find_gate("g1"))
        assert "g1" in [g.name for g in c.gates.values() if g.name]

    def test_copy_preserves_arrivals(self):
        b = Builder()
        b.input("x", arrival=3.0)
        c = b.done()
        assert c.copy().input_arrival[c.inputs[0]] == 3.0

    def test_find_helpers_raise_keyerror(self, and_or_circuit):
        with pytest.raises(KeyError):
            and_or_circuit.find_input("zz")
        with pytest.raises(KeyError):
            and_or_circuit.find_output("zz")
        with pytest.raises(KeyError):
            and_or_circuit.find_gate("zz")
