"""Structural validation catches each class of corruption."""

import pytest

from repro.network import (
    Circuit,
    CircuitError,
    GateType,
    check,
    collect_errors,
)


def test_valid_circuit_passes(and_or_circuit):
    check(and_or_circuit)
    assert collect_errors(and_or_circuit) == []


def test_dangling_connection_src(and_or_circuit):
    c = and_or_circuit
    cid = next(iter(c.conns))
    c.conns[cid].src = 9999
    assert any("dangling src" in e for e in collect_errors(c))


def test_stale_fanin_list(and_or_circuit):
    c = and_or_circuit
    g2 = c.find_gate("g2")
    c.gates[g2].fanin.append(12345)
    assert any("stale" in e for e in collect_errors(c))


def test_negative_delay(and_or_circuit):
    c = and_or_circuit
    c.gates[c.find_gate("g1")].delay = -1.0
    with pytest.raises(CircuitError):
        check(c)


def test_illegal_arity_not(and_or_circuit):
    c = and_or_circuit
    a = c.find_input("a")
    n = c.add_simple(GateType.NOT, [a], 1.0)
    c.connect(c.find_input("b"), n)
    assert any("arity" in e for e in collect_errors(c))


def test_source_with_fanin():
    c = Circuit()
    a = c.add_input("a")
    b = c.add_input("b")
    # force an illegal edge around the public API
    g = c.add_gate(GateType.AND, 1.0)
    cid = c.connect(a, g)
    c.conns[cid].dst = b
    c.gates[b].fanin.append(cid)
    c.gates[g].fanin.remove(cid)
    errors = collect_errors(c)
    assert errors


def test_duplicate_input_names():
    c = Circuit()
    c.add_input("a")
    c.add_input("a")
    assert any("unique" in e for e in collect_errors(c))


def test_unnamed_input():
    c = Circuit()
    c.add_gate(GateType.INPUT)
    assert any("named" in e for e in collect_errors(c))


def test_output_driving_something(and_or_circuit):
    c = and_or_circuit
    y = c.find_output("y")
    g = c.add_gate(GateType.BUF, 0.0)
    c.gates[y].fanout.append(
        c.connect(c.find_input("a"), g)
    ) if False else None
    # manual corruption: register a fanout on the OUTPUT marker
    cid = c.connect(c.find_input("a"), g)
    c.conns[cid].src = y
    c.gates[c.find_input("a")].fanout.remove(cid)
    c.gates[y].fanout.append(cid)
    assert any("must not drive" in e for e in collect_errors(c))


def test_cycle_reported():
    c = Circuit()
    a = c.add_input("a")
    g1 = c.add_gate(GateType.AND, 1.0)
    g2 = c.add_gate(GateType.AND, 1.0)
    c.connect(a, g1)
    c.connect(g1, g2)
    c.connect(g2, g1)
    assert any("cycle" in e for e in collect_errors(c))
