"""Structural transformations: constants, sweep, duplication, decompose."""

import pytest

from repro.network import (
    Builder,
    GateType,
    add_mux,
    check,
    decompose_complex_gates,
    duplicate_chain,
    propagate_constants,
    relabel_compact,
    set_connection_constant,
    sweep,
)
from repro.network.transform import constant_value
from repro.sim import outputs_equal_exhaustive, truth_table


def _truth(circuit):
    return truth_table(circuit)


class TestSetConnectionConstant:
    def test_only_that_connection_is_tied(self, two_output_circuit):
        c = two_output_circuit
        inv = c.find_gate("inv")
        cid = c.gates[inv].fanin[0]
        const, touched = set_connection_constant(c, cid, 0)
        assert constant_value(c, const) == 0
        assert const in touched and inv in touched
        # shared still drives y0
        a, b = c.inputs
        values = c.evaluate({a: 1, b: 1})
        assert values[c.find_output("y0")] == 1
        assert values[c.find_output("y1")] == 1  # NOT(0)

    def test_rejects_non_binary(self, and_or_circuit):
        cid = next(iter(and_or_circuit.conns))
        with pytest.raises(ValueError):
            set_connection_constant(and_or_circuit, cid, 2)


class TestPropagateConstants:
    def _tie_input(self, c, name, value):
        gid = c.find_input(name)
        for cid in list(c.gates[gid].fanout):
            set_connection_constant(c, cid, value)

    def test_and_controlling_collapses(self, and_or_circuit):
        c = and_or_circuit
        self._tie_input(c, "a", 0)
        propagate_constants(c)
        check(c)
        # y = (0 AND b) OR c = c
        a, b, cc = (c.find_input(n) for n in "abc")
        for bv in (0, 1):
            for cv in (0, 1):
                assert c.evaluate_outputs({a: 0, b: bv, cc: cv}) == (cv,)

    def test_and_noncontrolling_drops_pin(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        g = b.and_(x, y, name="g")
        b.output("o", g)
        c = b.done()
        gid = c.find_gate("g")
        cid = c.gates[gid].fanin[0]
        set_connection_constant(c, cid, 1)
        propagate_constants(c)
        check(c)
        # degenerates to BUF of y with zero delay
        assert c.gates[gid].gtype is GateType.BUF
        assert c.gates[gid].delay == 0.0

    def test_nor_all_noncontrolling_constant(self):
        b = Builder()
        x = b.input("x")
        g = b.nor(x, x, name="g")
        b.output("o", g)
        c = b.done()
        gid = c.find_gate("g")
        for cid in list(c.gates[gid].fanin):
            set_connection_constant(c, cid, 0)
        propagate_constants(c)
        # NOR() over empty remaining inputs = 1
        o = c.find_output("o")
        assert c.evaluate({c.find_input("x"): 0})[o] == 1

    def test_xor_constant_flips_polarity(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        g = b.xor(x, y, name="g")
        b.output("o", g)
        c = b.done()
        gid = c.find_gate("g")
        cid = c.gates[gid].fanin[0]
        set_connection_constant(c, cid, 1)
        propagate_constants(c)
        # 1 xor y = not y
        yv = c.find_input("y")
        o = c.find_output("o")
        assert c.evaluate({c.find_input("x"): 0, yv: 0})[o] == 1
        assert c.evaluate({c.find_input("x"): 0, yv: 1})[o] == 0

    def test_not_of_constant(self):
        b = Builder()
        x = b.input("x")
        n = b.not_(x, name="n")
        b.output("o", n)
        c = b.done()
        cid = c.gates[c.find_gate("n")].fanin[0]
        set_connection_constant(c, cid, 0)
        propagate_constants(c)
        o = c.find_output("o")
        assert c.evaluate({c.find_input("x"): 0})[o] == 1
        assert c.evaluate({c.find_input("x"): 1})[o] == 1

    def test_constant_reaching_output_is_kept(self):
        b = Builder()
        x = b.input("x")
        bf = b.buf(x, name="w")
        b.output("o", bf)
        c = b.done()
        cid = c.gates[c.find_gate("w")].fanin[0]
        set_connection_constant(c, cid, 1)
        propagate_constants(c)
        check(c)
        assert c.evaluate({c.find_input("x"): 0})[c.find_output("o")] == 1


class TestSweep:
    def test_removes_dead_logic(self, and_or_circuit):
        c = and_or_circuit
        # orphan gate
        a = c.find_input("a")
        c.add_simple(GateType.NOT, [a], 1.0)
        removed, touched = sweep(c)
        assert removed == 1
        assert a in touched  # the orphan's source lost a fanout
        check(c)

    def test_keeps_inputs(self):
        b = Builder()
        b.inputs("x", "y")
        z = b.input("z")
        b.output("o", b.buf(z))
        c = b.done()
        sweep(c)
        assert len(c.inputs) == 3

    def test_collapse_buffers_preserves_path_delay(self):
        b = Builder()
        x = b.input("x")
        w = b.buf(x, delay=0.0)
        g = b.not_(w, delay=2.0)
        b.output("o", g)
        c = b.done()
        from repro.timing import topological_delay

        before = topological_delay(c)
        sweep(c, collapse_buffers=True)
        check(c)
        assert topological_delay(c) == before
        assert all(
            g.gtype is not GateType.BUF for g in c.gates.values()
        )


class TestDuplicateChain:
    def test_theorem71_shape(self, two_output_circuit):
        c = two_output_circuit
        shared = c.find_gate("shared")
        inv = c.find_gate("inv")
        # chain = [shared] along the path a -> shared -> inv
        a = c.find_input("a")
        path_conn = next(
            cid for cid in c.gates[shared].fanin
            if c.conns[cid].src == a
        )
        e = next(
            cid for cid in c.gates[shared].fanout
            if c.conns[cid].dst == inv
        )
        mapping, dup_conns, touched = duplicate_chain(c, [shared], [path_conn])
        c.move_connection_source(e, mapping[shared])
        check(c)
        dup = mapping[shared]
        assert dup in touched and a in touched
        assert c.fanout_size(dup) == 1
        assert c.gates[dup].gtype is GateType.AND
        assert len(dup_conns) == 1
        # function unchanged
        av, bv = c.inputs
        values = c.evaluate({av: 1, bv: 1})
        assert values[c.find_output("y0")] == 1
        assert values[c.find_output("y1")] == 0

    def test_chain_and_conns_must_align(self, two_output_circuit):
        c = two_output_circuit
        with pytest.raises(Exception):
            duplicate_chain(c, [c.find_gate("shared")], [])


class TestDecompose:
    def _circuits_equal(self, make):
        a = make()
        b = make()
        decompose_complex_gates(b)
        check(b)
        assert b.is_simple_gate_network()
        assert outputs_equal_exhaustive(a, b)

    def test_xor2(self):
        def make():
            bld = Builder("x2")
            x, y = bld.inputs("x", "y")
            bld.output("o", bld.xor(x, y))
            return bld.done()

        self._circuits_equal(make)

    def test_xor3_and_xnor3(self):
        for gate in ("xor", "xnor"):
            def make(gate=gate):
                bld = Builder("x3")
                x, y, z = bld.inputs("x", "y", "z")
                root = getattr(bld, gate)(x, y, z)
                bld.output("o", root)
                return bld.done()

            self._circuits_equal(make)

    def test_delay_lands_on_last_gate(self):
        bld = Builder()
        x, y = bld.inputs("x", "y")
        bld.output("o", bld.xor(x, y, delay=7.0))
        c = bld.done()
        decompose_complex_gates(c)
        from repro.timing import topological_delay

        assert topological_delay(c) == 7.0

    def test_single_input_xor_becomes_buf(self):
        bld = Builder()
        x = bld.input("x")
        g = bld.circuit.add_simple(GateType.XOR, [x], 2.0)
        bld.output("o", g)
        c = bld.done()
        decompose_complex_gates(c)
        assert c.gates[g].gtype is GateType.BUF

    def test_mux_semantics(self):
        bld = Builder()
        s, a, b_ = bld.inputs("s", "a", "b")
        m = add_mux(bld.circuit, s, a, b_, delay=2.0)
        bld.output("o", m)
        c = bld.done()
        tt = truth_table(c)
        for bits, (out,) in tt.items():
            sv, av, bv = bits
            assert out == (bv if sv else av)


class TestRelabel:
    def test_compact_preserves_function_and_interface(self, and_or_circuit):
        c = and_or_circuit
        c.remove_gate(c.find_gate("g1"))  # leave gaps
        b = Builder("rebuild")  # rebuild a valid circuit instead
        x, y = b.inputs("a", "b")
        b.output("y", b.and_(x, y))
        c = b.done()
        d = relabel_compact(c)
        check(d)
        assert outputs_equal_exhaustive(c, d)
        assert sorted(d.gates) == list(range(len(d.gates)))
