"""DOT export and pretty printing."""

from repro.circuits import fig4_c2_cone
from repro.network import pretty, to_dot
from repro.timing import longest_paths


def test_dot_contains_all_nodes_and_edges(and_or_circuit):
    c = and_or_circuit
    dot = to_dot(c)
    assert dot.startswith('digraph "and_or"')
    for gid in c.gates:
        assert f"n{gid} [" in dot
    assert dot.count("->") == len(c.conns)


def test_dot_highlights_path():
    c = fig4_c2_cone()
    path = longest_paths(c)[0]
    dot = to_dot(c, highlight_conns=path.conns, highlight_gates=path.gates)
    assert "color=red" in dot


def test_dot_shows_delays():
    c = fig4_c2_cone()
    assert "d=2" in to_dot(c)  # the XOR-carrying AND gates
    assert "d=2" not in to_dot(c, show_delays=False)


def test_pretty_levels(and_or_circuit):
    text = pretty(and_or_circuit)
    assert "[0] a = input" in text
    assert "[1] g1 = and(a, b)" in text
    assert "[2] g2 = or(g1, c)" in text


def test_pretty_arrival_notes():
    c = fig4_c2_cone()
    text = pretty(c)
    assert "c0 = input @t=5" in text


def test_pretty_truncation():
    c = fig4_c2_cone()
    text = pretty(c, max_gates=3)
    assert "more)" in text
