"""Builder: the fluent construction API."""

from repro.network import Builder, GateType, check
from repro.sim import truth_table


def test_input_bus_names_lsb_first():
    b = Builder()
    bus = b.input_bus("a", 3)
    c = b.circuit
    assert [c.gates[g].name for g in bus] == ["a0", "a1", "a2"]


def test_output_bus():
    b = Builder()
    x = b.input("x")
    b.output_bus("y", [x, b.not_(x)])
    c = b.done()
    assert c.output_names() == ["y0", "y1"]


def test_gate_factories_build_expected_types():
    b = Builder()
    x, y = b.inputs("x", "y")
    pairs = [
        (b.and_(x, y), GateType.AND),
        (b.or_(x, y), GateType.OR),
        (b.nand(x, y), GateType.NAND),
        (b.nor(x, y), GateType.NOR),
        (b.not_(x), GateType.NOT),
        (b.buf(x), GateType.BUF),
        (b.xor(x, y), GateType.XOR),
        (b.xnor(x, y), GateType.XNOR),
    ]
    for gid, expected in pairs:
        assert b.circuit.gates[gid].gtype is expected


def test_xor_simple_is_three_simple_gates_matching_xor():
    b = Builder()
    x, y = b.inputs("x", "y")
    b.output("o", b.xor_simple(x, y))
    c = b.done()
    check(c)
    assert c.is_simple_gate_network()
    assert c.num_gates() == 3
    tt = truth_table(c)
    for bits, (out,) in tt.items():
        assert out == bits[0] ^ bits[1]


def test_mux_through_builder():
    b = Builder()
    s, p, q = b.inputs("s", "p", "q")
    b.output("o", b.mux(s, p, q))
    c = b.done()
    for bits, (out,) in truth_table(c).items():
        sv, pv, qv = bits
        assert out == (qv if sv else pv)


def test_const():
    b = Builder()
    x = b.input("x")
    b.output("o", b.or_(x, b.const(1)))
    c = b.done()
    assert c.evaluate_outputs({c.find_input("x"): 0}) == (1,)


def test_arrival_passthrough():
    b = Builder()
    x = b.input("late", arrival=4.5)
    b.output("o", b.buf(x))
    c = b.done()
    assert c.input_arrival[c.find_input("late")] == 4.5
