"""BDD variable ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import build_under_order, order_cost, sift_order
from repro.circuits import random_circuit
from repro.network import Builder


def _interleave_sensitive_circuit():
    """f = a0·b0 + a1·b1 + a2·b2: exponential under (a0,a1,a2,b0,b1,b2),
    linear under the interleaved order -- the textbook example."""
    b = Builder("mux_like")
    a_bus = [b.input(f"a{i}") for i in range(3)]
    b_bus = [b.input(f"b{i}") for i in range(3)]
    terms = [b.and_(a_bus[i], b_bus[i]) for i in range(3)]
    b.output("f", b.or_(*terms))
    return b.done()


class TestOrderCost:
    def test_interleaved_beats_blocked(self):
        c = _interleave_sensitive_circuit()
        a = [c.find_input(f"a{i}") for i in range(3)]
        bb = [c.find_input(f"b{i}") for i in range(3)]
        blocked = a + bb
        interleaved = [a[0], bb[0], a[1], bb[1], a[2], bb[2]]
        assert order_cost(c, interleaved) < order_cost(c, blocked)

    def test_bad_order_rejected(self):
        c = _interleave_sensitive_circuit()
        with pytest.raises(ValueError):
            order_cost(c, c.inputs[:-1])


class TestFunctionInvariance:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_any_order_same_function(self, seed):
        import random as rnd

        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        rng = rnd.Random(seed)
        order = list(c.inputs)
        rng.shuffle(order)
        bdd, nodes = build_under_order(c, order)
        var_of = {gid: i for i, gid in enumerate(order)}
        for bits in range(16):
            assignment = {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
            simulated = c.evaluate(assignment)
            bdd_assign = {var_of[g]: assignment[g] for g in c.inputs}
            for po in c.outputs:
                assert bdd.evaluate(nodes[po], bdd_assign) == simulated[po]


class TestSifting:
    def test_sift_finds_interleaved_quality(self):
        c = _interleave_sensitive_circuit()
        a = [c.find_input(f"a{i}") for i in range(3)]
        bb = [c.find_input(f"b{i}") for i in range(3)]
        blocked = a + bb
        interleaved = [a[0], bb[0], a[1], bb[1], a[2], bb[2]]
        _order, cost = sift_order(c, start=blocked)
        assert cost <= order_cost(c, interleaved)

    @given(seed=st.integers(0, 15))
    @settings(max_examples=6, deadline=None)
    def test_sift_never_worse_than_start(self, seed):
        c = random_circuit(num_inputs=5, num_gates=12, seed=seed)
        start_cost = order_cost(c, c.inputs)
        _order, cost = sift_order(c)
        assert cost <= start_cost
