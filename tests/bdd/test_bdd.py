"""ROBDD package: canonicity, connectives, quantification, circuits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, bdd_equivalent, circuit_bdds
from repro.circuits import random_circuit
from repro.network import Builder


class TestBasics:
    def test_terminals(self):
        bdd = BDD()
        assert bdd.ZERO == 0
        assert bdd.ONE == 1

    def test_var_canonical(self):
        bdd = BDD()
        x = bdd.var(0)
        assert bdd.var(0) == x  # hash-consed

    def test_negation_involution(self):
        bdd = BDD()
        x = bdd.var(0)
        assert bdd.negate(bdd.negate(x)) == x

    def test_and_or_idempotent(self):
        bdd = BDD()
        x = bdd.var(0)
        assert bdd.apply_and(x, x) == x
        assert bdd.apply_or(x, x) == x

    def test_xor_with_self_is_zero(self):
        bdd = BDD()
        x = bdd.var(1)
        assert bdd.apply_xor(x, x) == bdd.ZERO

    def test_canonicity_of_equivalent_formulas(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        demorgan_a = bdd.negate(bdd.apply_and(x, y))
        demorgan_b = bdd.apply_or(bdd.negate(x), bdd.negate(y))
        assert demorgan_a == demorgan_b


class TestSemantics:
    @given(st.integers(0, 200), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_random_formula_evaluation(self, seed, point):
        """Build a random 3-var formula both as a BDD and as a Python
        lambda; they must agree on every point."""
        import random

        rng = random.Random(seed)
        bdd = BDD()
        nodes = [bdd.var(i) for i in range(3)]
        funcs = [lambda p, i=i: bool((p >> i) & 1) for i in range(3)]
        for _ in range(6):
            op = rng.choice(["and", "or", "xor", "not"])
            if op == "not":
                i = rng.randrange(len(nodes))
                nodes.append(bdd.negate(nodes[i]))
                funcs.append(lambda p, f=funcs[i]: not f(p))
            else:
                i, j = rng.randrange(len(nodes)), rng.randrange(len(nodes))
                node = {
                    "and": bdd.apply_and,
                    "or": bdd.apply_or,
                    "xor": bdd.apply_xor,
                }[op](nodes[i], nodes[j])
                nodes.append(node)
                fi, fj = funcs[i], funcs[j]
                funcs.append(
                    {
                        "and": lambda p, a=fi, b=fj: a(p) and b(p),
                        "or": lambda p, a=fi, b=fj: a(p) or b(p),
                        "xor": lambda p, a=fi, b=fj: a(p) != b(p),
                    }[op]
                )
        assignment = {i: (point >> i) & 1 for i in range(3)}
        assert bool(bdd.evaluate(nodes[-1], assignment)) == funcs[-1](point)

    def test_restrict(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.apply_and(x, y)
        assert bdd.restrict(f, 0, 1) == y
        assert bdd.restrict(f, 0, 0) == bdd.ZERO

    def test_exists(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.apply_and(x, y)
        assert bdd.exists(f, 0) == y

    def test_count_sat(self):
        bdd = BDD(num_vars=3)
        x, y = bdd.var(0), bdd.var(1)
        assert bdd.count_sat(bdd.apply_and(x, y)) == 2  # z free
        assert bdd.count_sat(bdd.apply_or(x, y)) == 6
        assert bdd.count_sat(bdd.ONE) == 8
        assert bdd.count_sat(bdd.ZERO) == 0

    def test_any_sat(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.apply_and(x, bdd.negate(y))
        model = bdd.any_sat(f)
        assert model[0] == 1 and model[1] == 0
        assert bdd.any_sat(bdd.ZERO) is None

    def test_size(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        assert bdd.size(bdd.apply_and(x, y)) >= 3


class TestCircuitBdds:
    @given(seed=st.integers(0, 40), bits=st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_matches_simulation(self, seed, bits):
        circuit = random_circuit(num_inputs=5, num_gates=12, seed=seed)
        bdd, nodes = circuit_bdds(circuit)
        assign = {g: (bits >> i) & 1 for i, g in enumerate(circuit.inputs)}
        simulated = circuit.evaluate(assign)
        var_assign = {i: assign[g] for i, g in enumerate(circuit.inputs)}
        for po in circuit.outputs:
            assert bdd.evaluate(nodes[po], var_assign) == simulated[po]

    def test_bdd_equivalent_positive(self, and_or_circuit):
        assert bdd_equivalent(and_or_circuit, and_or_circuit.copy())

    def test_bdd_equivalent_negative(self):
        def make(gate):
            b = Builder()
            x, y = b.inputs("x", "y")
            b.output("o", getattr(b, gate)(x, y))
            return b.done()

        assert not bdd_equivalent(make("and_"), make("or_"))

    @given(seed=st.integers(0, 25))
    @settings(max_examples=15, deadline=None)
    def test_bdd_and_sat_equivalence_agree(self, seed):
        from repro.sat import check_equivalence

        a = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        b = random_circuit(num_inputs=4, num_gates=10, seed=seed + 7)
        assert bdd_equivalent(a, b) == check_equivalence(a, b).equivalent
