"""The command-line interface."""

import pytest

from repro.cli import main
from repro.io import parse_blif
from repro.sat import check_equivalence


@pytest.fixture
def csa_blif(tmp_path):
    path = tmp_path / "csa.blif"
    assert main(["generate", "csa2.2", "-o", str(path)]) == 0
    return path


def test_generate_and_roundtrip(csa_blif):
    circuit = parse_blif(csa_blif.read_text())
    assert len(circuit.inputs) == 5
    assert len(circuit.outputs) == 3


def test_generate_figures(tmp_path):
    for name in ("fig1", "fig2", "fig4", "rca2", "cla2", "rd73"):
        out = tmp_path / f"{name}.blif"
        assert main(["generate", name, "-o", str(out)]) == 0
        assert out.read_text().startswith(".model")


def test_generate_unknown():
    assert main(["generate", "c17"]) == 2


def test_kms_command(csa_blif, tmp_path, capsys):
    out = tmp_path / "irr.blif"
    code = main(
        ["kms", str(csa_blif), "-o", str(out), "--zero-arrivals"]
    )
    assert code == 0
    before = parse_blif(csa_blif.read_text())
    after = parse_blif(out.read_text())
    assert check_equivalence(before, after).equivalent


def test_timing_command(csa_blif, capsys):
    assert main(["timing", str(csa_blif), "--paths", "3"]) == 0
    captured = capsys.readouterr().out
    assert "topological delay" in captured
    assert "sensitizable" in captured or "false" in captured


def test_atpg_command(csa_blif, capsys):
    assert main(["atpg", str(csa_blif), "--tests"]) == 0
    captured = capsys.readouterr().out
    assert "redundant faults : 2" in captured
    assert "fault coverage" in captured


def test_table1_quick(capsys):
    assert main(["table1", "--which", "csa", "--quick"]) == 0
    captured = capsys.readouterr().out
    assert "csa 2.2" in captured


def test_generate_verilog(tmp_path):
    out = tmp_path / "fig4.v"
    assert main(
        ["generate", "fig4", "-o", str(out), "--format", "verilog"]
    ) == 0
    text = out.read_text()
    assert text.startswith("module fig4_c2_cone(")
    assert "endmodule" in text


def test_kms_verilog_output(tmp_path):
    blif = tmp_path / "in.blif"
    assert main(["generate", "csa2.2", "-o", str(blif)]) == 0
    out = tmp_path / "out.v"
    assert main(
        [
            "kms",
            str(blif),
            "-o",
            str(out),
            "--zero-arrivals",
            "--format",
            "verilog",
        ]
    ) == 0
    assert "module" in out.read_text()


def test_aig_stats_command(csa_blif, capsys):
    assert main(["aig", "stats", str(csa_blif)]) == 0
    out = capsys.readouterr().out
    assert "and nodes" in out and "live ands" in out


def test_aig_fraig_command(csa_blif, tmp_path, capsys):
    out = tmp_path / "swept.blif"
    assert main(["aig", "fraig", str(csa_blif), "-o", str(out)]) == 0
    original = parse_blif(csa_blif.read_text())
    swept = parse_blif(out.read_text())
    assert check_equivalence(original, swept).equivalent


def test_aig_redundant_command(csa_blif, tmp_path, capsys):
    # pre-KMS carry-skip: redundant edges exist -> exit 1
    assert main(["aig", "redundant", str(csa_blif)]) == 1
    assert "stuck-at" in capsys.readouterr().out
    # after KMS: clean -> exit 0
    irr = tmp_path / "irr.blif"
    assert main(["kms", str(csa_blif), "-o", str(irr)]) == 0
    capsys.readouterr()
    assert main(["aig", "redundant", str(irr)]) == 0
    assert "redundant AIG edges: 0" in capsys.readouterr().out


def test_generate_randred_prints_planted_faults(tmp_path, capsys):
    out = tmp_path / "randred.blif"
    assert main(["generate", "randred", "--seed", "3", "-o", str(out)]) == 0
    assert out.read_text().startswith(".model")
    err = capsys.readouterr().err
    assert "# planted:" in err and "s-a-0" in err


def test_fuzz_gen_command(tmp_path, capsys):
    out = tmp_path / "planted.blif"
    assert main([
        "fuzz", "gen", "--seed", "3", "--plants", "2", "-o", str(out),
    ]) == 0
    assert out.read_text().startswith(".model")
    err = capsys.readouterr().err
    assert err.count("# planted:") == 2


def test_fuzz_grade_command(capsys):
    import json

    assert main(["fuzz", "grade", "--seed", "3", "--plants", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["recall"] == 1.0


def test_fuzz_campaign_command(tmp_path, capsys):
    import json

    report = tmp_path / "campaign.json"
    assert main([
        "fuzz", "campaign", "--count", "3", "--seed", "60",
        "--report", str(report),
    ]) == 0
    assert "0 failures" in capsys.readouterr().out
    assert json.loads(report.read_text())["ok"] is True


def test_fuzz_minimize_command(tmp_path, capsys):
    import json

    # a hand-written failing report whose mismatch does NOT reproduce
    # under the real engine: minimize runs, writes nothing, exits 0
    report = tmp_path / "campaign.json"
    spec = {
        "name": "x", "seed": 5, "plants": 3, "variant": "neutral",
        "base": {"factory": "random",
                 "params": {"num_inputs": 5, "num_gates": 18,
                            "num_outputs": 2, "seed": 42}},
    }
    report.write_text(json.dumps({"scenarios": [{
        "spec": spec, "ok": False,
        "mismatches": [{"kind": "recall_miss", "detail": "stale",
                        "fault": ["conn", 1, 0]}],
    }]}))
    out_dir = tmp_path / "repros"
    assert main([
        "fuzz", "minimize", str(report), "--out", str(out_dir),
    ]) == 0
    assert "minimized 0" in capsys.readouterr().out


def test_bench_fuzz_smoke_suite(capsys):
    assert main([
        "bench", "--suite", "fuzz_smoke", "--jobs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "30 scenarios, 0 failures" in out
    assert "recall 90/90" in out


def test_bench_verify_flag(capsys, tmp_path):
    telemetry = tmp_path / "t.json"
    assert main([
        "bench", "--suite", "table1", "--which", "csa", "--quick",
        "--verify", "fraig", "--telemetry", str(telemetry),
    ]) == 0
    import json

    records = json.loads(telemetry.read_text())["records"]
    verifies = [r for r in records if r["stage"] == "verify"]
    assert verifies
    assert all(r["counters"]["sat_calls"] == 0 for r in verifies)
    assert all(r["counters"]["equivalent"] == 1 for r in verifies)
