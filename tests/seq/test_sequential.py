"""Sequential circuits and the Section I reduction."""

import pytest

from repro.atpg import count_redundancies, is_irredundant
from repro.network import Builder, CircuitError
from repro.sat import check_equivalence
from repro.seq import (
    Latch,
    SequentialCircuit,
    accumulator,
    kms_sequential,
    mod_counter,
)


def _toggle_machine():
    """state <- NOT state; out = state."""
    b = Builder("toggle")
    q = b.input("q")
    b.output("d", b.not_(q))
    b.output("out", b.buf(q))
    core = b.done()
    return SequentialCircuit(
        core, [Latch("ff", data_output="d", state_input="q", init=0)]
    )


class TestModel:
    def test_interface_partition(self):
        m = _toggle_machine()
        assert m.primary_inputs() == []
        assert m.primary_outputs() == ["out"]
        assert m.initial_state() == {"ff": 0}

    def test_validation_catches_bad_wiring(self):
        b = Builder()
        q = b.input("q")
        b.output("d", b.not_(q))
        core = b.done()
        with pytest.raises(CircuitError):
            SequentialCircuit(
                core, [Latch("ff", data_output="nope", state_input="q")]
            )
        with pytest.raises(CircuitError):
            SequentialCircuit(
                core, [Latch("ff", data_output="d", state_input="nope")]
            )

    def test_duplicate_latch_names_rejected(self):
        b = Builder()
        q = b.input("q")
        p = b.input("p")
        b.output("d", b.not_(q))
        b.output("e", b.not_(p))
        core = b.done()
        with pytest.raises(CircuitError):
            SequentialCircuit(
                core,
                [
                    Latch("ff", data_output="d", state_input="q"),
                    Latch("ff", data_output="e", state_input="p"),
                ],
            )


class TestSimulation:
    def test_toggle(self):
        m = _toggle_machine()
        trace = list(m.simulate([{}] * 4))
        outs = [o["out"] for o, _s in trace]
        assert outs == [0, 1, 0, 1]

    def test_counter_counts(self):
        m = mod_counter(3)
        seq = [{"en": 1}] * 9
        states = [s for _o, s in m.simulate(seq)]
        values = [
            s["q0_ff"] + 2 * s["q1_ff"] + 4 * s["q2_ff"] for s in states
        ]
        assert values == [1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_counter_hold(self):
        m = mod_counter(3)
        states = [s for _o, s in m.simulate([{"en": 0}] * 3)]
        assert all(
            s == {"q0_ff": 0, "q1_ff": 0, "q2_ff": 0} for s in states
        )

    def test_accumulator_accumulates(self):
        m = accumulator(4, block_size=2)
        seq = [
            {"b0": 1, "b1": 1, "b2": 0, "b3": 0, "cin": 0},  # +3
            {"b0": 0, "b1": 0, "b2": 1, "b3": 0, "cin": 0},  # +4
        ]
        states = [s for _o, s in m.simulate(seq)]
        def value(s):
            return sum(s[f"r{i}"] << i for i in range(4))
        assert value(states[0]) == 3
        assert value(states[1]) == 7


class TestKmsSequential:
    def test_carry_skip_accumulator(self):
        """The paper's reduction on a machine whose core is redundant."""
        m = accumulator(4, block_size=2)
        core = m.extract_combinational()
        assert count_redundancies(core) == 4  # 2 per skip block
        new_machine, result = kms_sequential(m)
        # cycle time did not grow
        assert new_machine.cycle_time() <= m.cycle_time() + 1e-9
        # core fully testable (full-scan assumption)
        assert is_irredundant(new_machine.core)
        # the machine still computes the same function cycle-for-cycle
        assert check_equivalence(m.core, new_machine.core).equivalent
        seq = [
            {"b0": 1, "b1": 0, "b2": 1, "b3": 0, "cin": 1}
        ] * 3
        old_trace = list(m.simulate(seq))
        new_trace = list(new_machine.simulate(seq))
        assert [o for o, _ in old_trace] == [o for o, _ in new_trace]
        assert [s for _, s in old_trace] == [s for _, s in new_trace]

    def test_counter_core_is_already_irredundant(self):
        m = mod_counter(3)
        _new, result = kms_sequential(m)
        assert result.cleanup_steps == 0


class TestGoldenModels:
    def test_accumulator_matches_python_golden_model(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        # defined inline so hypothesis wraps a closure with fixtures
        @given(
            adds=st.lists(st.integers(0, 15), min_size=1, max_size=8)
        )
        @settings(max_examples=20, deadline=None)
        def run(adds):
            m = accumulator(4, block_size=2)
            stimulus = [
                {
                    "b0": v & 1,
                    "b1": (v >> 1) & 1,
                    "b2": (v >> 2) & 1,
                    "b3": (v >> 3) & 1,
                    "cin": 0,
                }
                for v in adds
            ]
            expected = 0
            for (outs, state), v in zip(m.simulate(stimulus), adds):
                expected = (expected + v) & 0xF
                got = sum(state[f"r{i}"] << i for i in range(4))
                assert got == expected

        run()

    def test_counter_wraps_like_modular_arithmetic(self):
        m = mod_counter(4)
        states = [s for _o, s in m.simulate([{"en": 1}] * 20)]
        values = [
            sum(s[f"q{i}_ff"] << i for i in range(4)) for s in states
        ]
        assert values == [(i + 1) % 16 for i in range(20)]
