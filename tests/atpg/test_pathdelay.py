"""Robust path-delay-fault test generation."""


from repro.atpg import (
    FALLING,
    PathDelayFault,
    RISING,
    RobustPdfAtpg,
    on_path_values,
    pdf_census,
)
from repro.circuits import fig4_c2_cone, ripple_carry_adder
from repro.network import Builder
from repro.sim.events import output_waveforms
from repro.timing import iter_paths_longest_first


class TestOnPathValues:
    def test_inversion_parity(self):
        b = Builder()
        x = b.input("x")
        n = b.not_(x, name="n")
        a = b.and_(n, b.input("y"), name="a")
        b.output("o", a)
        c = b.done()
        path = next(
            p for p in iter_paths_longest_first(c)
            if c.gates[p.source].name == "x"
        )
        # rising at x: arrives rising at the NOT, falling at the AND
        assert on_path_values(c, path, RISING) == [1, 0]
        assert on_path_values(c, path, FALLING) == [0, 1]


class TestRobustGeneration:
    def _and_chain(self):
        b = Builder()
        x, y, z = b.inputs("x", "y", "z")
        g1 = b.and_(x, y, name="g1")
        g2 = b.or_(g1, z, name="g2")
        b.output("o", g2)
        return b.done()

    def test_simple_chain_testable(self):
        c = self._and_chain()
        engine = RobustPdfAtpg(c)
        path = next(
            p for p in iter_paths_longest_first(c)
            if c.gates[p.source].name == "x"
        )
        for direction in (RISING, FALLING):
            test = engine.generate(PathDelayFault(path, direction))
            assert test is not None
            # launch encoded correctly
            src = c.find_input("x")
            want = 1 if direction == RISING else 0
            assert test.v1[src] == 1 - want
            assert test.v2[src] == want
            # side inputs at noncontrolling final values
            assert test.v2[c.find_input("y")] == 1
            assert test.v2[c.find_input("z")] == 0

    def test_robust_test_really_propagates(self):
        """Simulate the returned vector pair: the output transition time
        equals the path length -- the transition really rode the path."""
        c = self._and_chain()
        engine = RobustPdfAtpg(c)
        path = next(
            p for p in iter_paths_longest_first(c)
            if c.gates[p.source].name == "x"
        )
        test = engine.generate(PathDelayFault(path, RISING))
        waves = output_waveforms(c, test.v1, test.v2)
        wave = waves[c.find_output("o")]
        assert wave[-1][0] == path.length

    def test_conflicting_requirements_untestable(self):
        """y = (x AND a) OR a again: the path through the AND needs
        a = 1 at the AND and a = 0 at the OR -- robust-untestable."""
        b = Builder()
        x, a = b.inputs("x", "a")
        g1 = b.and_(x, a, name="g1")
        g2 = b.or_(g1, a, name="g2")
        b.output("y", g2)
        c = b.done()
        engine = RobustPdfAtpg(c)
        path = next(
            p for p in iter_paths_longest_first(c)
            if c.gates[p.source].name == "x"
        )
        assert not engine.is_robustly_testable(
            PathDelayFault(path, RISING)
        )
        assert not engine.is_robustly_testable(
            PathDelayFault(path, FALLING)
        )


class TestCensus:
    def test_carry_skip_long_pdfs_untestable(self):
        """The carry cone's longest paths are false, so their PDFs are
        robust-untestable -- the delay-fault mirror of the paper's
        redundancy story."""
        cone = fig4_c2_cone()
        report = pdf_census(cone, max_paths=1)
        assert report.coverage == 0.0

    def test_ripple_carry_long_pdfs_testable(self):
        rca = ripple_carry_adder(2)
        report = pdf_census(rca, max_paths=4)
        assert report.coverage > 0.5

    def test_census_counts(self):
        cone = fig4_c2_cone()
        report = pdf_census(cone, max_paths=3)
        assert report.total == 6  # 3 paths x 2 directions
        assert report.testable + len(report.untestable_faults) == 6
