"""Test set generation and compaction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    collapsed_faults,
    compact,
    fault_coverage,
    generate_test_set,
)
from repro.circuits import carry_skip_adder, random_circuit


class TestGeneration:
    def test_full_coverage_of_testable_faults(self):
        c = carry_skip_adder(2, 2)
        faults = collapsed_faults(c)
        result = generate_test_set(c, faults)
        assert result.complete
        assert len(result.redundant) == 2  # the skip redundancies
        report = fault_coverage(c, faults, result.vectors)
        assert report.detected == len(faults) - len(result.redundant)
        # the undetected are exactly the redundancies
        assert set(report.undetected_faults) == set(result.redundant)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_random_circuits(self, seed):
        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        result = generate_test_set(c, random_patterns=8)
        assert result.complete
        faults = collapsed_faults(c)
        report = fault_coverage(c, faults, result.vectors)
        assert (
            report.detected == len(faults) - len(result.redundant)
        )


class TestCompaction:
    def test_coverage_preserved(self):
        c = carry_skip_adder(2, 2)
        faults = collapsed_faults(c)
        result = generate_test_set(c, faults, random_patterns=48)
        before = fault_coverage(c, faults, result.vectors)
        small = compact(c, result.vectors, faults)
        after = fault_coverage(c, faults, small)
        assert after.detected == before.detected
        assert len(small) <= len(result.vectors)

    def test_compaction_actually_shrinks_random_heavy_sets(self):
        c = carry_skip_adder(2, 2)
        result = generate_test_set(c, random_patterns=64)
        small = compact(c, result.vectors)
        assert len(small) < len(result.vectors)

    def test_empty_vectors(self):
        c = carry_skip_adder(2, 2)
        assert compact(c, []) == []
