"""PODEM: cross-checked against SAT-ATPG, fault simulation, and
exhaustive analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    Podem,
    SatAtpg,
    Status,
    collapsed_faults,
    detects,
    generate_test,
    stem_fault,
)
from repro.circuits import fig1_carry_skip_block, random_circuit
from repro.network import Builder


class TestBasics:
    def test_simple_testable_fault(self, and_or_circuit):
        c = and_or_circuit
        result = generate_test(c, stem_fault(c.find_gate("g1"), 0))
        assert result.status is Status.TESTABLE
        # pad don't-cares with 0 and confirm detection
        vector = {gid: result.test.get(gid, 0) for gid in c.inputs}
        assert detects(c, stem_fault(c.find_gate("g1"), 0), vector)

    def test_absorption_redundancy(self, redundant_or_circuit):
        """y = a OR (a AND b): inner AND s-a-0 is untestable."""
        c = redundant_or_circuit
        result = generate_test(c, stem_fault(c.find_gate("inner"), 0))
        assert result.status is Status.UNTESTABLE

    def test_constant_site_untestable(self):
        b = Builder()
        x = b.input("x")
        nx = b.not_(x, name="nx")
        dead = b.and_(x, nx, name="dead")
        b.output("o", b.or_(x, dead, name="root"))
        c = b.done()
        assert (
            generate_test(c, stem_fault(c.find_gate("dead"), 0)).status
            is Status.UNTESTABLE
        )
        assert (
            generate_test(c, stem_fault(c.find_gate("dead"), 1)).status
            is Status.TESTABLE
        )

    def test_fig1_gate10(self):
        c = fig1_carry_skip_block()
        g10 = c.find_gate("gate10")
        assert generate_test(c, stem_fault(g10, 0)).status is Status.UNTESTABLE
        r = generate_test(c, stem_fault(g10, 1))
        assert r.status is Status.TESTABLE
        vector = {gid: r.test.get(gid, 0) for gid in c.inputs}
        assert detects(c, stem_fault(g10, 1), vector)


class TestCrossCheck:
    @given(seed=st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_podem_agrees_with_sat_atpg(self, seed):
        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        sat = SatAtpg(c)
        podem = Podem(c)
        for fault in collapsed_faults(c):
            sat_testable = sat.is_testable(fault)
            result = podem.generate(fault)
            assert result.status is not Status.ABORTED
            assert (result.status is Status.TESTABLE) == sat_testable, (
                f"disagree on {fault}"
            )

    @given(seed=st.integers(41, 70))
    @settings(max_examples=15, deadline=None)
    def test_podem_tests_really_detect(self, seed):
        c = random_circuit(num_inputs=5, num_gates=12, seed=seed)
        podem = Podem(c)
        for fault in collapsed_faults(c)[:20]:
            result = podem.generate(fault)
            if result.status is Status.TESTABLE:
                vector = {
                    gid: result.test.get(gid, 0) for gid in c.inputs
                }
                assert detects(c, fault, vector), f"bogus test for {fault}"

    @given(seed=st.integers(0, 15))
    @settings(max_examples=8, deadline=None)
    def test_untestable_means_no_vector_exists(self, seed):
        """Exhaustive confirmation on tiny circuits."""
        c = random_circuit(num_inputs=3, num_gates=7, seed=seed)
        podem = Podem(c)
        for fault in collapsed_faults(c):
            result = podem.generate(fault)
            if result.status is Status.UNTESTABLE:
                for bits in range(8):
                    vector = {
                        g: (bits >> i) & 1
                        for i, g in enumerate(c.inputs)
                    }
                    assert not detects(c, fault, vector)
