"""Bit-parallel fault simulation."""

import logging

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    collapsed_faults,
    detecting_patterns,
    detects,
    fault_coverage,
    inject,
    random_vectors,
    stem_fault,
    validate_vectors,
)
from repro.circuits import random_circuit
from repro.sim import get_compiled, pack_vectors, simulate_packed


@given(seed=st.integers(0, 40), bits=st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_packed_fault_sim_matches_structural_injection(seed, bits):
    """Fault simulation with on-the-fly injection must equal simulating
    the structurally injected circuit."""
    c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
    faults = collapsed_faults(c)
    fault = faults[bits % len(faults)]
    vector = {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
    expected_circuit = inject(c, fault)
    expected = expected_circuit.evaluate(
        {g: vector[g] for g in c.inputs}
    )
    got = detects(c, fault, vector)
    golden = c.evaluate(vector)
    differs = any(
        expected[po] != golden[po] for po in c.outputs
    )
    assert got == differs


def test_detecting_patterns_bitmask(and_or_circuit):
    c = and_or_circuit
    g1 = c.find_gate("g1")
    fault = stem_fault(g1, 0)
    # patterns: (a,b,c) = (1,1,0) detects; (0,0,0) does not
    packed = {
        c.find_input("a"): 0b01,
        c.find_input("b"): 0b01,
        c.find_input("c"): 0b00,
    }
    mask = detecting_patterns(c, fault, packed, 2)
    assert mask == 0b01


def test_fault_coverage_full_on_exhaustive_vectors(and_or_circuit):
    c = and_or_circuit
    vectors = [
        {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
        for bits in range(8)
    ]
    report = fault_coverage(c, collapsed_faults(c), vectors)
    assert report.coverage == 1.0
    assert report.undetected_faults == []


def test_fault_coverage_zero_vectors(and_or_circuit):
    report = fault_coverage(
        and_or_circuit, collapsed_faults(and_or_circuit), []
    )
    assert report.detected == 0
    assert report.coverage < 1.0


def test_coverage_counts_redundant_as_undetected(redundant_or_circuit):
    c = redundant_or_circuit
    vectors = [
        {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
        for bits in range(4)
    ]
    report = fault_coverage(c, collapsed_faults(c), vectors)
    assert report.coverage < 1.0  # the redundant fault is undetectable


def test_random_vectors_deterministic(and_or_circuit):
    a = random_vectors(and_or_circuit, 10, seed=3)
    b = random_vectors(and_or_circuit, 10, seed=3)
    assert a == b


def test_kernel_and_legacy_paths_agree(and_or_circuit):
    """The compiled kernel is a drop-in for the interpreted grader."""
    c = and_or_circuit
    faults = collapsed_faults(c)
    vectors = random_vectors(c, 40, seed=11)
    fast = fault_coverage(c, faults, vectors)
    slow = fault_coverage(c, faults, vectors, compiled=False)
    assert fast.coverage == slow.coverage
    assert fast.undetected_faults == slow.undetected_faults


def test_kernel_and_legacy_paths_agree_random():
    for seed in range(5):
        c = random_circuit(num_inputs=4, num_gates=12, seed=seed)
        faults = collapsed_faults(c)
        vectors = random_vectors(c, 100, seed=seed)
        fast = fault_coverage(c, faults, vectors)
        slow = fault_coverage(c, faults, vectors, compiled=False)
        assert fast.undetected_faults == slow.undetected_faults


def test_detecting_patterns_reuses_good_words(and_or_circuit):
    """Positional good words grade identically to a fresh good sim."""
    c = and_or_circuit
    vectors = random_vectors(c, 16, seed=2)
    packed, width = pack_vectors(c, vectors)
    kern = get_compiled(c)
    good_words = kern.evaluate_words(packed, width)
    good_values = simulate_packed(c, packed, width)
    for fault in collapsed_faults(c):
        via_words = detecting_patterns(
            c, fault, packed, width, good_words=good_words
        )
        via_values = detecting_patterns(
            c, fault, packed, width, good_values=good_values
        )
        fresh = detecting_patterns(c, fault, packed, width, compiled=False)
        assert via_words == via_values == fresh


def test_partial_vectors_warn_once_per_call(and_or_circuit, caplog):
    """Regression: missing PI keys are reported once per call -- and
    grading still treats them as 0, same as an explicit zero."""
    c = and_or_circuit
    a = c.find_input("a")
    partial = [{a: 1} for _ in range(8)]
    explicit = [
        {gid: vec.get(gid, 0) for gid in c.inputs} for vec in partial
    ]
    faults = collapsed_faults(c)
    with caplog.at_level(logging.WARNING, logger="repro.atpg.faultsim"):
        report = fault_coverage(c, faults, partial)
    warnings = [
        r for r in caplog.records
        if "missing primary-input keys" in r.message
    ]
    assert len(warnings) == 1
    assert "8 of 8" in warnings[0].message
    full = fault_coverage(c, faults, explicit)
    assert report.undetected_faults == full.undetected_faults


def test_complete_vectors_do_not_warn(and_or_circuit, caplog):
    c = and_or_circuit
    vectors = random_vectors(c, 8, seed=0)
    with caplog.at_level(logging.WARNING, logger="repro.atpg.faultsim"):
        fault_coverage(c, collapsed_faults(c), vectors)
    assert not caplog.records


def test_validate_vectors_counts_partial(and_or_circuit):
    c = and_or_circuit
    a = c.find_input("a")
    full = {gid: 0 for gid in c.inputs}
    assert validate_vectors(c, [full, {a: 1}, {}]) == 2
    assert validate_vectors(c, []) == 0


def test_pack_vectors_masks_against_pi_set(and_or_circuit):
    """Non-PI keys are ignored and values reduce to their low bit."""
    c = and_or_circuit
    a = c.find_input("a")
    g1 = c.find_gate("g1")  # not a PI: must be ignored
    packed, width = pack_vectors(c, [{a: 1, g1: 1}, {a: 2}, {a: 3}])
    assert width == 3
    assert packed[a] == 0b101  # 2 has a zero low bit
    assert g1 not in packed
    assert set(packed) == set(c.inputs)
