"""Bit-parallel fault simulation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    collapsed_faults,
    detecting_patterns,
    detects,
    fault_coverage,
    inject,
    random_vectors,
    stem_fault,
)
from repro.circuits import random_circuit


@given(seed=st.integers(0, 40), bits=st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_packed_fault_sim_matches_structural_injection(seed, bits):
    """Fault simulation with on-the-fly injection must equal simulating
    the structurally injected circuit."""
    c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
    faults = collapsed_faults(c)
    fault = faults[bits % len(faults)]
    vector = {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
    expected_circuit = inject(c, fault)
    expected = expected_circuit.evaluate(
        {g: vector[g] for g in c.inputs}
    )
    got = detects(c, fault, vector)
    golden = c.evaluate(vector)
    differs = any(
        expected[po] != golden[po] for po in c.outputs
    )
    assert got == differs


def test_detecting_patterns_bitmask(and_or_circuit):
    c = and_or_circuit
    g1 = c.find_gate("g1")
    fault = stem_fault(g1, 0)
    # patterns: (a,b,c) = (1,1,0) detects; (0,0,0) does not
    packed = {
        c.find_input("a"): 0b01,
        c.find_input("b"): 0b01,
        c.find_input("c"): 0b00,
    }
    mask = detecting_patterns(c, fault, packed, 2)
    assert mask == 0b01


def test_fault_coverage_full_on_exhaustive_vectors(and_or_circuit):
    c = and_or_circuit
    vectors = [
        {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
        for bits in range(8)
    ]
    report = fault_coverage(c, collapsed_faults(c), vectors)
    assert report.coverage == 1.0
    assert report.undetected_faults == []


def test_fault_coverage_zero_vectors(and_or_circuit):
    report = fault_coverage(
        and_or_circuit, collapsed_faults(and_or_circuit), []
    )
    assert report.detected == 0
    assert report.coverage < 1.0


def test_coverage_counts_redundant_as_undetected(redundant_or_circuit):
    c = redundant_or_circuit
    vectors = [
        {g: (bits >> i) & 1 for i, g in enumerate(c.inputs)}
        for bits in range(4)
    ]
    report = fault_coverage(c, collapsed_faults(c), vectors)
    assert report.coverage < 1.0  # the redundant fault is undetectable


def test_random_vectors_deterministic(and_or_circuit):
    a = random_vectors(and_or_circuit, 10, seed=3)
    b = random_vectors(and_or_circuit, 10, seed=3)
    assert a == b
