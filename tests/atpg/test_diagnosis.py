"""Fault diagnosis by dictionary matching."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import collapsed_faults, inject
from repro.atpg.diagnosis import FaultDictionary
from repro.atpg.faultsim import random_vectors
from repro.circuits import carry_skip_adder, random_circuit


def _observe(circuit, fault, vectors):
    """Simulate the faulty part over the test set, return its failure
    signature against the good circuit."""
    faulty = inject(circuit, fault)
    observed = set()
    for i, vec in enumerate(vectors):
        assign = {g: vec.get(g, 0) for g in circuit.inputs}
        good = circuit.evaluate(assign)
        bad = faulty.evaluate({g: assign[g] for g in circuit.inputs})
        for po in circuit.outputs:
            if good[po] != bad[po]:
                observed.add((i, po))
    return frozenset(observed)


class TestDictionary:
    @given(seed=st.integers(0, 25), pick=st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_injected_fault_is_diagnosed(self, seed, pick):
        circuit = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        vectors = random_vectors(circuit, 24, seed=seed)
        faults = collapsed_faults(circuit)
        dictionary = FaultDictionary(circuit, vectors, faults)
        fault = faults[pick % len(faults)]
        observed = _observe(circuit, fault, vectors)
        if not observed:
            return  # fault not detected by this set; nothing to match
        result = dictionary.diagnose(observed)
        # the true fault is among the exact candidates (possibly with
        # equivalent siblings)
        assert fault in result.exact

    def test_empty_signature_has_no_candidates(self):
        circuit = carry_skip_adder(2, 2)
        vectors = random_vectors(circuit, 8, seed=1)
        dictionary = FaultDictionary(circuit, vectors)
        assert dictionary.diagnose(frozenset()).unexplained

    def test_timing_only_defect_is_unexplained(self):
        """A fabricated failure at a position no stuck-at fault flips
        matches nothing: the test engineer's cue for a speed problem."""
        circuit = carry_skip_adder(2, 2)
        vectors = random_vectors(circuit, 16, seed=2)
        dictionary = FaultDictionary(circuit, vectors)
        impossible = frozenset(
            {(i, po) for i in range(16) for po in circuit.outputs}
        )
        result = dictionary.diagnose(impossible)
        assert result.exact == []

    def test_diagnose_from_raw_responses(self):
        circuit = carry_skip_adder(2, 2)
        vectors = random_vectors(circuit, 16, seed=3)
        faults = collapsed_faults(circuit)
        dictionary = FaultDictionary(circuit, vectors, faults)
        fault = next(
            f for f in faults if dictionary.signature_of(f)
        )
        faulty = inject(circuit, fault)
        responses = {po: [] for po in circuit.outputs}
        for vec in vectors:
            values = faulty.evaluate(
                {g: vec.get(g, 0) for g in circuit.inputs}
            )
            for po in circuit.outputs:
                responses[po].append(values[po])
        result = dictionary.diagnose_responses(responses)
        assert fault in result.exact
