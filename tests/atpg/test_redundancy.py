"""Baseline (delay-oblivious) redundancy removal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    count_redundancies,
    is_irredundant,
    remove_fault,
    remove_redundancies,
    stem_fault,
)
from repro.circuits import (
    carry_skip_adder,
    fig1_carry_skip_block,
    random_redundant_circuit,
    ripple_carry_adder,
)
from repro.sat import check_equivalence


class TestRemoval:
    def test_absorption(self, redundant_or_circuit):
        c = redundant_or_circuit
        result = remove_redundancies(c)
        assert result.removed >= 1
        assert check_equivalence(c, result.circuit).equivalent
        assert is_irredundant(result.circuit)
        assert result.circuit.num_gates() < c.num_gates()

    def test_original_untouched(self, redundant_or_circuit):
        c = redundant_or_circuit
        before = c.num_gates()
        remove_redundancies(c)
        assert c.num_gates() == before

    def test_irredundant_input_is_noop(self, and_or_circuit):
        result = remove_redundancies(and_or_circuit)
        assert result.removed == 0

    @given(seed=st.integers(0, 25))
    @settings(max_examples=10, deadline=None)
    def test_random_redundant_circuits(self, seed):
        c = random_redundant_circuit(num_inputs=4, num_gates=10, seed=seed)
        assert count_redundancies(c) >= 1
        result = remove_redundancies(c)
        assert check_equivalence(c, result.circuit).equivalent
        assert is_irredundant(result.circuit)

    def test_steps_record_shrinkage(self, redundant_or_circuit):
        result = remove_redundancies(redundant_or_circuit)
        for step in result.steps:
            assert step.gates_after <= step.gates_before
            assert step.description


class TestRemoveFault:
    def test_remove_stem_fault_in_place(self, redundant_or_circuit):
        c = redundant_or_circuit.copy()
        inner = c.find_gate("inner")
        remove_fault(c, stem_fault(inner, 0))
        assert check_equivalence(redundant_or_circuit, c).equivalent


class TestPaperCircuits:
    def test_ripple_carry_is_irredundant(self):
        """Section III: 'a ripple-carry adder is fully testable'."""
        assert is_irredundant(ripple_carry_adder(2))

    def test_carry_skip_redundancy_counts(self):
        """Each block contributes two redundancies (Section VIII)."""
        assert count_redundancies(carry_skip_adder(2, 2)) == 2
        assert count_redundancies(carry_skip_adder(4, 2)) == 4

    def test_fig1_has_two_redundancies(self):
        assert count_redundancies(fig1_carry_skip_block()) == 2

    def test_naive_removal_slows_carry_skip_cone(self):
        """The paper's motivating failure: removing the skip redundancy
        first degrades the c2 cone to ripple speed."""
        from repro.circuits import fig4_c2_cone
        from repro.timing import viability_delay

        c = fig4_c2_cone()
        work = c.copy()
        remove_fault(work, stem_fault(work.find_gate("gate10"), 0))
        cleaned = remove_redundancies(work).circuit
        assert check_equivalence(c, cleaned).equivalent
        assert (
            viability_delay(cleaned).delay > viability_delay(c).delay
        )
