"""Fault model and collapsing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    SatAtpg,
    all_faults,
    collapsed_faults,
    conn_fault,
    inject,
    stem_fault,
)
from repro.circuits import random_circuit
from repro.network import Builder
from repro.sim import outputs_equal_exhaustive


class TestFaultLists:
    def test_all_faults_counts(self, and_or_circuit):
        c = and_or_circuit
        # stems: 3 PIs + 2 gates = 5 sites x2; conns: 5 x2
        assert len(all_faults(c)) == 5 * 2 + 5 * 2

    def test_collapsed_is_smaller(self, and_or_circuit):
        c = and_or_circuit
        assert len(collapsed_faults(c)) < len(all_faults(c))

    def test_collapsed_deterministic(self, and_or_circuit):
        a = collapsed_faults(and_or_circuit)
        b = collapsed_faults(and_or_circuit)
        assert a == b

    def test_constants_excluded(self):
        b = Builder()
        x = b.input("x")
        b.output("o", b.or_(x, b.const(0)))
        c = b.done()
        faults = collapsed_faults(c)
        const_gids = {
            gid
            for gid, g in c.gates.items()
            if g.gtype.value.startswith("const")
        }
        for f in faults:
            if f.kind == "stem":
                assert f.site not in const_gids
            else:
                assert c.conns[f.site].src not in const_gids

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_collapsing_preserves_redundancy_structure(self, seed):
        """Every fault in the full list must be testable iff some member
        of the collapsed list at the same site-class is -- weaker but
        checkable form: the collapsed list detects redundancy iff the
        full list does."""
        c = random_circuit(num_inputs=4, num_gates=8, seed=seed)
        engine = SatAtpg(c)
        full_red = any(
            engine.is_redundant(f) for f in all_faults(c)
        )
        collapsed_red = any(
            engine.is_redundant(f) for f in collapsed_faults(c)
        )
        assert full_red == collapsed_red


class TestInjection:
    def test_conn_injection_changes_function(self, and_or_circuit):
        c = and_or_circuit
        g1 = c.find_gate("g1")
        cid = c.gates[g1].fanin[0]
        faulty = inject(c, conn_fault(cid, 0))
        assert not outputs_equal_exhaustive(c, faulty)

    def test_stem_injection(self, two_output_circuit):
        c = two_output_circuit
        shared = c.find_gate("shared")
        faulty = inject(c, stem_fault(shared, 1))
        a, b = faulty.inputs
        values = faulty.evaluate({a: 0, b: 0})
        assert values[faulty.find_output("y0")] == 1

    def test_injection_does_not_mutate_original(self, and_or_circuit):
        c = and_or_circuit
        before = c.num_gates()
        inject(c, stem_fault(c.find_gate("g1"), 0))
        assert c.num_gates() == before

    def test_describe(self, and_or_circuit):
        c = and_or_circuit
        f = stem_fault(c.find_gate("g1"), 0)
        assert "s-a-0" in f.describe(c)
        cid = c.gates[c.find_gate("g1")].fanin[0]
        assert "s-a-1" in conn_fault(cid, 1).describe(c)


class TestPaperRedundancy:
    def test_gate10_stuck0_redundant_in_fig1(self):
        """Section III: 'the single stuck-at-0 fault on the output of
        the gate 10 is not testable'."""
        from repro.circuits import fig1_carry_skip_block

        c = fig1_carry_skip_block()
        engine = SatAtpg(c)
        g10 = c.find_gate("gate10")
        assert engine.is_redundant(stem_fault(g10, 0))
        assert engine.is_testable(stem_fault(g10, 1))

    def test_faulty_fig1_is_ripple_carry_equivalent(self):
        """'the carry-skip adder becomes a logically equivalent
        ripple-carry adder in the presence of the fault'."""
        from repro.circuits import fig1_carry_skip_block, ripple_carry_adder

        c = fig1_carry_skip_block()
        faulty = inject(c, stem_fault(c.find_gate("gate10"), 0))
        rca = ripple_carry_adder(2, cin_arrival=5.0)
        # rename rca interface to the fig1 names
        renames = {"cin": "c0", "cout": "c2"}
        for gid in list(rca.gates):
            gate = rca.gates[gid]
            if gate.name in renames:
                gate.name = renames[gate.name]
        assert outputs_equal_exhaustive(faulty, rca)
