"""SCOAP testability measures."""


from repro.atpg import (
    INF,
    collapsed_faults,
    compute_scoap,
    rank_faults_by_difficulty,
    stem_fault,
)
from repro.circuits import fig1_carry_skip_block
from repro.network import Builder


class TestControllability:
    def test_primary_inputs_cost_one(self):
        b = Builder()
        x = b.input("x")
        b.output("o", b.buf(x))
        scoap = compute_scoap(b.done())
        assert scoap.cc0[x] == 1.0
        assert scoap.cc1[x] == 1.0

    def test_and_gate(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        g = b.and_(x, y, name="g")
        b.output("o", g)
        c = b.done()
        scoap = compute_scoap(c)
        gid = c.find_gate("g")
        assert scoap.cc1[gid] == 3.0  # both inputs to 1, +1
        assert scoap.cc0[gid] == 2.0  # one input to 0, +1

    def test_not_swaps(self):
        b = Builder()
        x = b.input("x")
        n = b.not_(x, name="n")
        b.output("o", n)
        c = b.done()
        scoap = compute_scoap(c)
        nid = c.find_gate("n")
        assert scoap.cc0[nid] == scoap.cc1[nid] == 2.0

    def test_constants_uncontrollable_other_way(self):
        b = Builder()
        x = b.input("x")
        k = b.const(1)
        b.output("o", b.and_(x, k))
        c = b.done()
        scoap = compute_scoap(c)
        assert scoap.cc1[k] == 0.0
        assert scoap.cc0[k] == INF

    def test_xor_symmetric(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        g = b.xor(x, y, name="g")
        b.output("o", g)
        c = b.done()
        scoap = compute_scoap(c)
        gid = c.find_gate("g")
        assert scoap.cc0[gid] == scoap.cc1[gid] == 3.0


class TestObservability:
    def test_output_is_free(self):
        b = Builder()
        x = b.input("x")
        g = b.not_(x, name="g")
        b.output("o", g)
        c = b.done()
        scoap = compute_scoap(c)
        assert scoap.co[c.find_gate("g")] == 0.0
        assert scoap.co[x] == 1.0

    def test_deeper_is_harder(self):
        b = Builder()
        x, y, z = b.inputs("x", "y", "z")
        g1 = b.and_(x, y, name="g1")
        g2 = b.and_(g1, z, name="g2")
        b.output("o", g2)
        c = b.done()
        scoap = compute_scoap(c)
        assert scoap.co[x] > scoap.co[c.find_gate("g1")]

    def test_dead_logic_unobservable(self):
        b = Builder()
        x = b.input("x")
        b.not_(x, name="dead")  # no fanout
        b.output("o", b.buf(x))
        c = b.done()
        scoap = compute_scoap(c)
        assert scoap.co[c.find_gate("dead")] == INF


class TestRanking:
    def test_redundant_fault_ranks_hard(self):
        """gate10's s-a-0 (the paper's redundancy) should rank in the
        hard tail -- SCOAP smells redundancy without proving it."""
        c = fig1_carry_skip_block()
        faults = collapsed_faults(c)
        ranked = rank_faults_by_difficulty(c, faults)
        difficulties = {f: d for d, f in ranked}
        g10 = c.find_gate("gate10")
        target = stem_fault(g10, 0)
        if target not in difficulties:
            return  # collapsed onto an equivalent representative
        hard_third = [f for _d, f in ranked[: len(ranked) // 3]]
        assert target in hard_third
