"""Property suite: the persistent proof engine is bit-identical to the
from-scratch funnel.

Over hundreds of random circuits (plain and guaranteed-redundant), both
removal drivers must take the same removal steps in the same order and
reach the same irredundancy verdicts; the ``jobs`` sharded classifier
must match the serial one fault for fault.  The circuits are small on
purpose -- the point is breadth of structure (gate mixes, fanout
shapes, constant cones after removal), not depth.
"""

import pytest

from repro.atpg import ProofEngine, remove_redundancies
from repro.atpg.redundancy import is_irredundant
from repro.circuits import random_circuit, random_redundant_circuit
from repro.engine.hashing import circuit_fingerprint

#: 150 plain + 80 guaranteed-redundant = 230 random circuits, batched
#: so the suite stays a handful of pytest items.
PLAIN_SEEDS = range(150)
REDUNDANT_SEEDS = range(80)
BATCH = 25


def _steps(result):
    return [(s.fault.kind, s.fault.site, s.fault.value)
            for s in result.steps]


def _check_ab(circuit, backtrack_limit=100, patterns=64):
    inc = remove_redundancies(
        circuit, incremental=True,
        backtrack_limit=backtrack_limit, patterns=patterns,
    )
    full = remove_redundancies(
        circuit, incremental=False,
        backtrack_limit=backtrack_limit, patterns=patterns,
    )
    assert _steps(inc) == _steps(full), circuit.name
    assert (circuit_fingerprint(inc.circuit)
            == circuit_fingerprint(full.circuit)), circuit.name
    assert is_irredundant(inc.circuit, incremental=True), circuit.name
    assert is_irredundant(full.circuit, incremental=False), circuit.name
    return inc


def _batches(seeds):
    seeds = list(seeds)
    return [seeds[i:i + BATCH] for i in range(0, len(seeds), BATCH)]


@pytest.mark.parametrize("seeds", _batches(PLAIN_SEEDS),
                         ids=lambda s: f"s{s[0]}-{s[-1]}")
def test_random_circuits_bit_identical(seeds):
    for seed in seeds:
        circuit = random_circuit(
            num_inputs=4, num_gates=10 + seed % 5, seed=seed
        )
        _check_ab(circuit)


@pytest.mark.parametrize("seeds", _batches(REDUNDANT_SEEDS),
                         ids=lambda s: f"s{s[0]}-{s[-1]}")
def test_random_redundant_circuits_bit_identical(seeds):
    removed = 0
    for seed in seeds:
        circuit = random_redundant_circuit(
            num_inputs=4, num_gates=10 + seed % 5, seed=seed
        )
        removed += _check_ab(circuit).removed
    # the construction guarantees redundancy, so the batch must have
    # actually exercised the removal path
    assert removed >= len(seeds)


def test_satfunnel_stress_bit_identical():
    """A one-vector prefilter routes every suspect through the complete
    provers, exercising epoch-solver reuse and witness feedback."""
    for seed in range(10):
        circuit = random_redundant_circuit(
            num_inputs=5, num_gates=14, seed=seed
        )
        _check_ab(circuit, patterns=1)
    for seed in range(10):
        circuit = random_circuit(num_inputs=4, num_gates=12, seed=seed)
        _check_ab(circuit, backtrack_limit=0, patterns=1)


def test_sharded_classification_matches_serial():
    """``jobs=4`` shards hard-fault SAT proofs across processes; the
    verdict list must match the serial engine exactly."""
    for seed in (0, 1, 2):
        circuit = random_redundant_circuit(
            num_inputs=5, num_gates=15, seed=seed
        )
        serial = ProofEngine(
            circuit, backtrack_limit=0, patterns=1
        ).redundant_faults()
        sharded = ProofEngine(
            circuit, backtrack_limit=0, patterns=1, jobs=4
        ).redundant_faults()
        assert serial == sharded
