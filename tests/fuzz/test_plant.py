"""The planted-redundancy generator: recipes, soundness, determinism."""

import pytest

from repro.atpg import SatAtpg
from repro.circuits import random_circuit
from repro.engine import circuit_fingerprint
from repro.fuzz import (
    DEGRADING,
    NEUTRAL,
    RECIPES,
    plant_redundancies,
)
from repro.io import write_blif
from repro.network import check
from repro.sat import check_equivalence
from repro.timing import AsBuiltDelayModel, analyze, topological_delay


def _base(seed=7, gates=14):
    return random_circuit(seed=seed, num_gates=gates, num_outputs=2)


def test_deterministic_same_seed():
    base = _base()
    a = plant_redundancies(base, plants=4, seed=11)
    b = plant_redundancies(base, plants=4, seed=11)
    assert write_blif(a.circuit) == write_blif(b.circuit)
    assert a.planted_payload() == b.planted_payload()
    assert [p.to_dict() for p in a.plants] == [p.to_dict() for p in b.plants]


def test_different_seeds_differ():
    base = _base()
    a = plant_redundancies(base, plants=4, seed=1)
    b = plant_redundancies(base, plants=4, seed=2)
    assert (
        circuit_fingerprint(a.circuit) != circuit_fingerprint(b.circuit)
        or a.planted_payload() != b.planted_payload()
    )


def test_input_untouched_and_base_copy():
    base = _base()
    before = circuit_fingerprint(base)
    result = plant_redundancies(base, plants=3, seed=0)
    assert circuit_fingerprint(base) == before
    assert circuit_fingerprint(result.base) == before


def test_planted_circuit_valid_and_equivalent():
    base = _base()
    result = plant_redundancies(base, plants=5, seed=3)
    check(result.circuit)
    assert check_equivalence(base, result.circuit).equivalent


@pytest.mark.parametrize("recipe", RECIPES)
@pytest.mark.parametrize("variant", [NEUTRAL, DEGRADING])
def test_each_recipe_plants_untestable_fault(recipe, variant):
    base = _base()
    result = plant_redundancies(
        base, plants=2, seed=5, variant=variant, recipes=[recipe]
    )
    assert len(result.plants) == 2
    check(result.circuit)
    assert check_equivalence(base, result.circuit).equivalent
    oracle = SatAtpg(result.circuit)
    for plant, fault in zip(result.plants, result.faults):
        assert plant.recipe == recipe
        assert oracle.is_redundant(fault), plant.description


def test_plants_compose_and_stay_untestable():
    base = _base()
    result = plant_redundancies(base, plants=8, seed=2)
    oracle = SatAtpg(result.circuit)
    for fault in result.faults:
        assert oracle.is_redundant(fault)


def test_neutral_variant_preserves_arrivals():
    base = _base()
    model = AsBuiltDelayModel()
    before = analyze(base, model).arrival
    result = plant_redundancies(base, plants=4, seed=9, variant=NEUTRAL)
    after = analyze(result.circuit, model).arrival
    for gid, when in before.items():
        assert after[gid] == when
    assert topological_delay(result.circuit, model) == topological_delay(
        base, model
    )


def test_degrading_variant_adds_delay():
    base = _base()
    result = plant_redundancies(base, plants=4, seed=9, variant=DEGRADING)
    added = [
        result.circuit.gates[gid].delay
        for p in result.plants
        for gid in p.new_gates
    ]
    assert added and all(d >= 1.0 for d in added)


def test_zero_plants():
    base = _base()
    result = plant_redundancies(base, plants=0, seed=0)
    assert result.plants == []
    assert circuit_fingerprint(result.circuit) == circuit_fingerprint(base)


def test_dup_literal_falls_back_without_and_or_gates(chain_circuit):
    # a NOT-chain has no AND/OR-family gate to duplicate into; the
    # seed stream still yields a plant via the blocked_and fallback
    result = plant_redundancies(
        chain_circuit, plants=1, seed=0, recipes=["dup_literal"]
    )
    assert result.plants[0].recipe == "blocked_and"
    assert SatAtpg(result.circuit).is_redundant(result.faults[0])


def test_rejects_unknown_variant_and_recipe():
    base = _base()
    with pytest.raises(ValueError):
        plant_redundancies(base, variant="fast")
    with pytest.raises(ValueError):
        plant_redundancies(base, recipes=["consensus_cube"])
