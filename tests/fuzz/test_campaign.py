"""The seeded campaign driver over the engine runner."""

import json

from repro.fuzz import (
    ScenarioSpec,
    campaign_specs,
    job_for_spec,
    run_campaign,
    summarize,
)


def _strip(payload):
    """Campaign payload minus wall-clock (the only nondeterministic key)."""
    slim = {k: v for k, v in payload.items() if k not in ("seconds",)}
    slim["counters"] = {
        k: v for k, v in payload.get("counters", {}).items()
    }
    return slim


def test_campaign_specs_deterministic_and_mixed():
    a = campaign_specs(6, seed=100)
    b = campaign_specs(6, seed=100)
    assert a == b
    assert [s.variant for s in a] == [
        "neutral", "degrading", "neutral", "degrading", "neutral",
        "degrading",
    ]
    assert [s.seed for s in a] == list(range(100, 106))
    assert all(s.plants == 3 for s in a)  # round(18 * 0.15)
    assert a[0].base["params"]["seed"] == 100 ^ 0x5EED


def test_job_for_spec_shape():
    spec = campaign_specs(1, seed=7)[0]
    job = job_for_spec(spec)
    assert job.factory == "fuzz_planted"
    assert job.params == spec.to_dict()
    assert [c.key for c in job.pipeline] == ["fuzz"]
    assert job.pipeline[0].params["spec"] == spec.to_dict()


def test_small_campaign_all_pass(tmp_path):
    report_path = tmp_path / "campaign.json"
    report = run_campaign(
        campaign_specs(4, seed=200), report_path=str(report_path)
    )
    assert report.ok
    assert report.summary["scenarios"] == 4
    assert report.summary["failures"] == 0
    assert report.summary["recall"] == 1.0
    assert report.summary["planted"] == report.summary["proved"] == 12
    assert report.minimized == []
    on_disk = json.loads(report_path.read_text())
    assert on_disk["ok"] is True
    assert len(on_disk["scenarios"]) == 4


def test_parallel_campaign_matches_serial():
    specs = campaign_specs(4, seed=300)
    serial = run_campaign(specs, jobs=1)
    parallel = run_campaign(specs, jobs=2)
    assert [_strip(p) for p in serial.scenarios] == [
        _strip(p) for p in parallel.scenarios
    ]


def test_campaign_cache_warm_rerun(tmp_path):
    specs = campaign_specs(3, seed=400)
    cache = str(tmp_path / "cache")
    cold = run_campaign(specs, cache_dir=cache)
    warm = run_campaign(specs, cache_dir=cache)
    assert cold.ok and warm.ok
    assert [_strip(p) for p in cold.scenarios] == [
        _strip(p) for p in warm.scenarios
    ]


def test_campaign_surfaces_job_errors():
    bad = ScenarioSpec(
        name="broken",
        base={"factory": "no_such_factory", "params": {}},
        seed=0,
    )
    report = run_campaign([bad])
    assert not report.ok
    assert report.summary["failures"] == 1
    assert "error" in report.scenarios[0]
    assert report.summary["mismatches"]["job_error"] == 1


def test_summarize_mixed_payloads():
    payloads = [
        {"ok": True, "planted": [[1], [2]], "proved": 2, "recall": 1.0,
         "mismatches": [], "seconds": 0.5, "counters": {"sat_calls": 3}},
        {"ok": False, "planted": [[1]], "proved": 0, "recall": 0.0,
         "mismatches": [{"kind": "recall_miss", "detail": "d"}],
         "seconds": 0.5, "counters": {"sat_calls": 2}},
        {"ok": False, "error": "boom", "mismatches": []},
    ]
    summary = summarize(payloads)
    assert summary["scenarios"] == 3
    assert summary["failures"] == 2
    assert summary["planted"] == 3 and summary["proved"] == 2
    assert summary["recall_min"] == 0.0
    assert summary["mismatches"] == {"recall_miss": 1, "job_error": 1}
    assert summary["counters"]["sat_calls"] == 5
