"""Generator property suite over many seeds (ISSUE 7 satellite).

Three properties, each over >= 200 seeds:

* determinism -- same seed rebuilds a byte-identical BLIF and planted
  list;
* soundness -- every planted fault is untestable by the from-scratch
  SAT-ATPG oracle;
* neutrality -- the delay-neutral variant leaves every base gate's STA
  arrival time exactly unchanged.

Scenarios are kept small (12-gate bases, 2 plants) so the whole sweep
stays inside tier-1 budget; breadth comes from the seed count, not the
circuit size.
"""

from repro.atpg import SatAtpg
from repro.circuits import random_circuit
from repro.fuzz import DEGRADING, NEUTRAL, plant_redundancies
from repro.io import write_blif
from repro.timing import AsBuiltDelayModel, analyze

SEEDS = range(200)


def _scenario(seed):
    variant = NEUTRAL if seed % 2 == 0 else DEGRADING
    base = random_circuit(
        seed=seed ^ 0x5EED, num_gates=12, num_outputs=2
    )
    return base, plant_redundancies(
        base, plants=2, seed=seed, variant=variant
    ), variant


def test_determinism_byte_identical_over_seeds():
    for seed in SEEDS:
        base, first, _ = _scenario(seed)
        _, again, _ = _scenario(seed)
        assert write_blif(first.circuit) == write_blif(again.circuit), seed
        assert first.planted_payload() == again.planted_payload(), seed


def test_planted_faults_untestable_by_oracle_over_seeds():
    for seed in SEEDS:
        _, result, _ = _scenario(seed)
        oracle = SatAtpg(result.circuit)
        for fault in result.faults:
            assert oracle.is_redundant(fault), (seed, fault)


def test_neutral_variant_arrival_identical_over_seeds():
    model = AsBuiltDelayModel()
    for seed in SEEDS:
        base, result, variant = _scenario(seed)
        if variant != NEUTRAL:
            continue
        before = analyze(base, model).arrival
        after = analyze(result.circuit, model).arrival
        for gid, when in before.items():
            assert after[gid] == when, (seed, gid)
