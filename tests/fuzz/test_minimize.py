"""Failure minimization: ddmin shrinking and pytest reproducer emission.

The acceptance bar (ISSUE 7): an injected divergence shrinks to a
reproducer of <= 20 gates, and the generated test asserts the CORRECT
behavior -- so it passes under the real (correct) engines here, and
would fail on the broken engine it documents.
"""

import pytest

from repro.atpg import Fault
from repro.fuzz import (
    ScenarioSpec,
    build_scenario,
    grade_scenario,
    minimize_failure,
    predicate_for,
    reproducer_source,
    shrink,
    write_reproducer,
)

#: an engine under test that refuses to prove anything redundant --
#: the injected defect every test here shrinks
REFUSER = lambda circuit, faults: []  # noqa: E731 - test double


def _spec():
    return ScenarioSpec(
        name="inj",
        base={
            "factory": "random",
            "params": {"num_inputs": 5, "num_gates": 18,
                       "num_outputs": 2, "seed": 42},
        },
        seed=5,
        plants=3,
        variant="neutral",
    )


def _injected_failure():
    payload = grade_scenario(_spec(), classifier=REFUSER)
    assert not payload["ok"]
    item = next(
        m for m in payload["mismatches"] if m["kind"] == "recall_miss"
    )
    fkind, site, value = item["fault"]
    return item, Fault(fkind, site, value)


def test_injected_divergence_shrinks_to_20_gates_or_fewer():
    _, fault = _injected_failure()
    predicate = predicate_for(
        "recall_miss", fault=fault, classifier=REFUSER
    )
    circuit = build_scenario(_spec()).circuit
    assert predicate(circuit)
    small = shrink(circuit, predicate)
    assert small.num_gates() <= 20
    assert predicate(small)


def test_shrink_requires_reproducing_input():
    circuit = build_scenario(_spec()).circuit
    with pytest.raises(ValueError):
        shrink(circuit, lambda c: False)


def test_reproducer_passes_under_real_engine(tmp_path):
    item, fault = _injected_failure()
    predicate = predicate_for(
        "recall_miss", fault=fault, classifier=REFUSER
    )
    circuit = build_scenario(_spec()).circuit
    small = shrink(circuit, predicate)
    path = write_reproducer(
        str(tmp_path / "test_repro.py"), small, "recall_miss",
        fault=fault, note="injected refuser",
    )
    # execute the generated module and run its test function directly:
    # it asserts the correct verdict, so the real ProofEngine passes it
    namespace = {}
    with open(path) as handle:
        exec(compile(handle.read(), path, "exec"), namespace)
    namespace["test_fuzz_reproducer_recall_miss"]()


def test_reproducer_source_embeds_fault_and_circuit():
    _, fault = _injected_failure()
    circuit = build_scenario(_spec()).circuit
    source = reproducer_source(circuit, "divergence", fault=fault)
    assert "circuit_from_dict" in source
    assert f"{fault.site!r}" in source
    with pytest.raises(ValueError):
        reproducer_source(circuit, "divergence")  # fault required
    with pytest.raises(ValueError):
        reproducer_source(circuit, "plant_not_neutral")  # no template


def test_kms_shaped_predicates_hold_nowhere_on_clean_scenarios():
    circuit = build_scenario(_spec()).circuit
    for kind in ("false_removal", "delay_regression",
                 "residual_redundancy"):
        assert not predicate_for(kind)(circuit)


def test_minimize_failure_end_to_end(tmp_path):
    item, _ = _injected_failure()
    summary = minimize_failure(
        _spec().to_dict(), item, out_dir=str(tmp_path),
        classifier=REFUSER,
    )
    assert summary is not None
    assert summary["gates_after"] <= 20
    assert summary["gates_after"] <= summary["gates_before"]
    path = summary["path"]
    assert path.endswith("test_fuzz_repro_inj_recall_miss.py")
    namespace = {}
    with open(path) as handle:
        exec(compile(handle.read(), path, "exec"), namespace)
    namespace["test_fuzz_reproducer_recall_miss"]()


def test_minimize_failure_skips_unshrinkable_kinds():
    assert minimize_failure(
        _spec(), {"kind": "plant_not_neutral", "detail": "x"}
    ) is None


def test_minimize_failure_skips_unreproducible_failures():
    # the mismatch claims a recall miss, but the real engine proves the
    # fault fine -- nothing reproduces, nothing to shrink
    item, _ = _injected_failure()
    assert minimize_failure(_spec(), item) is None
