"""The differential grading harness."""

import pytest

from repro.fuzz import MISMATCH_KINDS, ScenarioSpec, build_scenario, grade_scenario


def _spec(seed=5, variant="neutral", plants=3):
    return ScenarioSpec(
        name=f"t-{seed}-{variant}",
        base={
            "factory": "random",
            "params": {"num_inputs": 5, "num_gates": 14,
                       "num_outputs": 2, "seed": 42},
        },
        seed=seed,
        plants=plants,
        variant=variant,
    )


def test_spec_roundtrip():
    spec = _spec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    spec = _spec(variant="degrading")
    spec = ScenarioSpec(
        name=spec.name, base=spec.base, seed=spec.seed,
        plants=spec.plants, variant=spec.variant,
        recipes=["absorb_and", "dup_literal"],
    )
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_build_scenario_deterministic():
    a = build_scenario(_spec())
    b = build_scenario(_spec())
    assert a.planted_payload() == b.planted_payload()


@pytest.mark.parametrize("variant", ["neutral", "degrading"])
def test_clean_grade_passes(variant):
    payload = grade_scenario(_spec(variant=variant))
    assert payload["ok"], payload["mismatches"]
    assert payload["recall"] == 1.0
    assert payload["proved"] == len(payload["planted"]) == 3
    assert payload["oracle_redundant"] == 3
    assert payload["mismatches"] == []
    delay = payload["delay"]
    assert delay["final_sense"] <= delay["planted_sense"]
    assert delay["final_topo"] <= delay["planted_topo"]
    if variant == "neutral":
        assert delay["planted_topo"] == delay["base_topo"]
        assert delay["final_topo"] <= delay["base_topo"]
    assert payload["counters"]
    assert payload["seconds"] > 0


def test_from_scratch_grading_matches_incremental():
    a = grade_scenario(_spec(), incremental=True)
    b = grade_scenario(_spec(), incremental=False)
    assert a["ok"] and b["ok"]
    assert a["recall"] == b["recall"]
    assert a["gates_final"] == b["gates_final"]


def test_broken_classifier_yields_recall_miss_and_divergence():
    refuser = lambda circuit, faults: []  # noqa: E731 - test double
    payload = grade_scenario(_spec(), classifier=refuser)
    assert not payload["ok"]
    assert payload["recall"] == 0.0
    kinds = {m["kind"] for m in payload["mismatches"]}
    assert kinds == {"recall_miss", "divergence"}
    assert kinds <= set(MISMATCH_KINDS)
    # every fault-shaped mismatch carries its fault triple for minimize
    for item in payload["mismatches"]:
        fkind, site, value = item["fault"]
        assert fkind == "conn" and value in (0, 1)


def test_expect_fingerprint_cross_check():
    good = grade_scenario(_spec(), oracle=False, check_irredundant=False)
    ok = grade_scenario(
        _spec(), oracle=False, check_irredundant=False,
        expect=good["fingerprint"],
    )
    assert ok["ok"]
    bad = grade_scenario(
        _spec(), oracle=False, check_irredundant=False, expect="bogus"
    )
    assert not bad["ok"]
    assert bad["mismatches"][0]["kind"] == "generator_nondeterminism"


def test_payload_is_json_able():
    import json

    payload = grade_scenario(_spec(plants=2))
    assert json.loads(json.dumps(payload)) == payload
