"""Shared fixtures: small canonical circuits used across suites."""

from __future__ import annotations

import pytest

from repro.network import Builder, Circuit


@pytest.fixture
def and_or_circuit() -> Circuit:
    """y = (a AND b) OR c -- the smallest interesting network."""
    b = Builder("and_or")
    a, bb, c = b.inputs("a", "b", "c")
    g1 = b.and_(a, bb, name="g1")
    g2 = b.or_(g1, c, name="g2")
    b.output("y", g2)
    return b.done()


@pytest.fixture
def two_output_circuit() -> Circuit:
    """y0 = a AND b, y1 = NOT(a AND b) sharing the AND gate."""
    b = Builder("two_out")
    a, bb = b.inputs("a", "b")
    g = b.and_(a, bb, name="shared")
    n = b.not_(g, name="inv")
    b.output("y0", g)
    b.output("y1", n)
    return b.done()


@pytest.fixture
def redundant_or_circuit() -> Circuit:
    """y = a OR (a AND b): the AND is redundant (absorption)."""
    b = Builder("absorb")
    a, bb = b.inputs("a", "b")
    g1 = b.and_(a, bb, name="inner")
    g2 = b.or_(a, g1, name="outer")
    b.output("y", g2)
    return b.done()


@pytest.fixture
def chain_circuit() -> Circuit:
    """x -> NOT -> NOT -> y with distinct delays for timing tests."""
    b = Builder("chain")
    x = b.input("x")
    n1 = b.not_(x, delay=2.0, name="n1")
    n2 = b.not_(n1, delay=3.0, name="n2")
    b.output("y", n2)
    return b.done()
