"""Directed arena tests: GC, order maintenance, versioning, routing.

The property suite (test_arena_property) covers "everything agrees";
these tests pin the mechanisms themselves: free-list slot reuse,
compaction under live iteration, Pearce-Kelly order repair, the
``Circuit.version`` invalidation edge cases the proof engine depends
on, backend selection, and the env-level legacy switch.
"""

import random

import pytest

from repro.circuits import random_circuit
from repro.circuits.adders import carry_skip_adder
from repro.core import kms
from repro.net import (
    LEGACY_ENV,
    NetArena,
    attach_arena,
    detach_arena,
    get_arena,
    net_enabled,
)
from repro.net import arena as arena_mod
from repro.network import Circuit, GateType
from repro.network.circuit import CircuitError
from repro.sim import get_compiled
from repro.sim.kernel import ArenaCompiledCircuit, CompiledCircuit
from repro.sim import kernel as kernel_mod


def _chain_circuit(n=4):
    c = Circuit("chain")
    a = c.add_input("a")
    b = c.add_input("b")
    g = c.add_simple(GateType.AND, [a, b], 1.0)
    for _ in range(n):
        g = c.add_simple(GateType.NOT, [g], 1.0)
    c.add_output("y", g)
    return c


# ---------------------------------------------------------------------- #
# opcode table alignment (the arena mirrors sim.kernel's encoding)
# ---------------------------------------------------------------------- #

def test_sim_opcode_table_matches_kernel():
    for gtype, op in arena_mod.SIM_OPCODE.items():
        assert op == kernel_mod._OPCODE[gtype], gtype


# ---------------------------------------------------------------------- #
# free list + compaction
# ---------------------------------------------------------------------- #

def test_free_list_reuses_slots():
    c = _chain_circuit()
    arena = attach_arena(c)
    slots_before = len(arena.alive)
    # remove a middle NOT gate and bridge the gap
    mid = [g for g, gate in c.gates.items() if gate.gtype is GateType.NOT][1]
    src = c.fanin_gates(mid)[0]
    dst = c.fanout_gates(mid)[0]
    c.remove_gate(mid)
    freed = list(arena.free_slots)
    assert len(freed) == 1
    c.connect(src, dst, 0.0)
    # a new gate must take the freed slot, not grow the arrays
    new = c.add_simple(GateType.NOT, [src], 1.0)
    assert arena.slot_of[new] == freed[0]
    assert len(arena.alive) == slots_before
    arena.check()


def test_conn_free_list_reuses_slots():
    c = _chain_circuit()
    arena = attach_arena(c)
    cid = next(iter(c.conns))
    conn = c.conns[cid]
    src, dst, delay = conn.src, conn.dst, conn.delay
    cslots_before = len(arena.calive)
    c.remove_connection(cid)
    freed = list(arena.free_cslots)
    new_cid = c.connect(src, dst, delay)
    assert arena.cslot_of[new_cid] == freed[-1]
    assert len(arena.calive) == cslots_before
    arena.check()


def test_compaction_fires_and_preserves_state(monkeypatch):
    """Drive dead slots past the threshold; the arena must collect,
    renumber in topological order, and keep answering identically."""
    monkeypatch.setattr(arena_mod, "COMPACT_MIN_DEAD", 8)
    c = random_circuit(
        num_inputs=4, num_gates=40, num_outputs=2, seed=11
    )
    arena = attach_arena(c)
    fp_before_each_step = []
    removable = [
        gid
        for gid, gate in sorted(c.gates.items())
        if gate.gtype
        not in (GateType.INPUT, GateType.OUTPUT)
    ]
    compactions = 0
    for gid in removable:
        if gid not in c.gates:
            continue
        # only remove gates whose fanout is empty after sweeping deps:
        # simplest safe move is removing sinks-of-nothing repeatedly
        if c.gates[gid].fanout:
            continue
        c.remove_gate(gid)
        compactions = arena.counters["arena_compactions"]
        arena.check()
        fp_before_each_step.append(arena.fingerprint())
    # force the rest dead via sweep until the threshold trips
    from repro.network.transform import sweep

    sweep(c)
    arena.check()
    assert arena.counters["arena_compactions"] >= compactions
    # after an explicit compact the arrays are dense and rank = identity
    arena.compact()
    assert not arena.free_slots
    assert not arena.free_cslots
    assert len(arena.alive) == arena.n_live_gates
    assert [arena.rank[s] for s in arena.sched_order] == list(
        range(arena.n_live_gates)
    )
    arena.check()


def test_compaction_under_live_iteration():
    """Mutating and compacting mid-run must not disturb fingerprints,
    cones, or the simulation view."""
    c = carry_skip_adder(8, 2)
    arena = attach_arena(c)
    from repro.engine.hashing import circuit_fingerprint

    kern = get_compiled(c)
    packed = {gid: 0 for gid in c.inputs}
    before_words = kern.evaluate(packed, 8)
    arena.compact()
    arena.check()
    # same kernel object keeps working (slots renumbered underneath)
    after_words = kern.evaluate(packed, 8)
    assert before_words == after_words
    assert circuit_fingerprint(c) == arena.fingerprint()


# ---------------------------------------------------------------------- #
# Pearce-Kelly order repair
# ---------------------------------------------------------------------- #

def test_pk_repairs_rank_on_backward_edge():
    c = Circuit("pk")
    a = c.add_input("a")
    arena = attach_arena(c)
    g1 = c.add_simple(GateType.NOT, [a], 1.0)
    g2 = c.add_simple(GateType.NOT, [a], 1.0)
    # g2's hook appended it after g1 so rank[g2] > rank[g1]; feeding
    # g2 -> g1 forces a Pearce-Kelly window reorder
    assert arena.rank[arena.slot_of[g2]] > arena.rank[arena.slot_of[g1]]
    c.connect(g2, g1)
    assert arena.rank[arena.slot_of[g2]] < arena.rank[arena.slot_of[g1]]
    assert arena.pk_reorders == 1
    arena.check()


def test_pk_rejects_cycle():
    c = Circuit("cycle")
    a = c.add_input("a")
    g1 = c.add_simple(GateType.BUF, [a], 1.0)
    g2 = c.add_simple(GateType.BUF, [g1], 1.0)
    attach_arena(c)
    with pytest.raises(CircuitError):
        c.connect(g2, g1)


def test_maintained_order_stays_topological_under_random_growth():
    rng = random.Random(5)
    c = random_circuit(num_inputs=4, num_gates=30, num_outputs=2, seed=5)
    arena = attach_arena(c)
    logic = [
        gid
        for gid, gate in sorted(c.gates.items())
        if gate.gtype not in (GateType.INPUT, GateType.OUTPUT)
    ]
    for _ in range(30):
        src, dst = rng.choice(logic), rng.choice(logic)
        if src == dst or dst in c.transitive_fanin([src]):
            continue
        c.connect(src, dst, 0.0)
        arena.check()  # raises if any edge violates the maintained order


# ---------------------------------------------------------------------- #
# Circuit.version invalidation edge cases
# ---------------------------------------------------------------------- #

def test_setters_do_not_bump_version_but_update_arena():
    """Attribute setters mirror plain attribute writes: no version bump
    (the proof engine's epoch solver keys on version), yet the arena
    arrays and fingerprints move."""
    c = _chain_circuit()
    arena = attach_arena(c)
    fp0 = arena.fingerprint()
    v0 = c.version
    av0 = arena.version
    gid = next(
        g for g, gate in c.gates.items() if gate.gtype is GateType.AND
    )
    c.set_gate_delay(gid, 9.0)
    assert c.version == v0, "setter must not bump Circuit.version"
    assert arena.version > av0, "arena must see the edit"
    assert arena.gdelay[arena.slot_of[gid]] == 9.0
    assert arena.fingerprint() != fp0
    c.set_gate_type(gid, GateType.OR)
    c.set_connection_delay(c.gates[gid].fanin[0], 2.5)
    c.set_input_arrival(c.inputs[0], 4.0)
    assert c.version == v0
    arena.check()


def test_structural_primitives_bump_version_with_arena_attached():
    c = _chain_circuit()
    attach_arena(c)
    v0 = c.version
    g = c.add_simple(GateType.NOT, [c.inputs[0]], 1.0)
    assert c.version > v0
    v1 = c.version
    c.remove_gate(g)
    assert c.version > v1


def test_stale_kernel_replaced_when_arena_attaches():
    c = _chain_circuit()
    legacy = get_compiled(c)
    assert isinstance(legacy, CompiledCircuit)
    attach_arena(c)
    view = get_compiled(c)
    assert isinstance(view, ArenaCompiledCircuit)
    detach_arena(c)
    back = get_compiled(c)
    assert isinstance(back, CompiledCircuit)


def test_arena_view_counts_avoided_rebuilds():
    c = _chain_circuit()
    arena = attach_arena(c)
    kern = get_compiled(c)
    base = arena.counters["compile_rebuilds_avoided"]
    packed = {gid: 1 for gid in c.inputs}
    kern.evaluate(packed, 4)  # fresh: nothing avoided
    assert arena.counters["compile_rebuilds_avoided"] == base
    c.add_simple(GateType.NOT, [c.inputs[0]], 1.0)
    kern.evaluate(packed, 4)  # stale circuit: one rebuild avoided
    assert arena.counters["compile_rebuilds_avoided"] == base + 1
    assert kern.refresh({c.inputs[0]}) is True  # touched contract
    assert arena.counters["compile_rebuilds_avoided"] == base + 2
    assert kern.refresh(set()) is False
    assert arena.counters["compile_rebuilds_avoided"] == base + 2


# ---------------------------------------------------------------------- #
# backends and the legacy switch
# ---------------------------------------------------------------------- #

def test_backend_parity_python_vs_numpy():
    numpy = pytest.importorskip("numpy")  # noqa: F841
    c = carry_skip_adder(8, 2)
    a_py = NetArena(c, backend="python")
    a_np = NetArena(c, backend="numpy")
    assert a_py.gt.tolist() == a_np.gt.tolist()
    assert a_py.gdelay.tolist() == a_np.gdelay.tolist()
    assert a_py.cdelay.tolist() == a_np.cdelay.tolist()
    assert a_py.rank.tolist() == a_np.rank.tolist()
    assert a_py.fingerprint() == a_np.fingerprint()


def test_backend_env_selection(monkeypatch):
    monkeypatch.setenv(arena_mod.BACKEND_ENV, "python")
    c = _chain_circuit()
    assert attach_arena(c).backend == "python"
    monkeypatch.setenv(arena_mod.BACKEND_ENV, "bogus")
    with pytest.raises(ValueError):
        NetArena(_chain_circuit())


def test_net_enabled_env_switch(monkeypatch):
    monkeypatch.delenv(LEGACY_ENV, raising=False)
    assert net_enabled()
    monkeypatch.setenv(LEGACY_ENV, "0")
    assert net_enabled()
    monkeypatch.setenv(LEGACY_ENV, "1")
    assert not net_enabled()


def test_kms_attaches_arena_only_when_enabled(monkeypatch):
    c = carry_skip_adder(4, 2)
    from repro.network.transform import decompose_complex_gates

    decompose_complex_gates(c)
    monkeypatch.setenv(LEGACY_ENV, "1")
    legacy = kms(c)
    assert legacy.counters["array_ops_inplace"] == 0
    monkeypatch.delenv(LEGACY_ENV, raising=False)
    backed = kms(c)
    assert backed.counters["array_ops_inplace"] > 0
    assert backed.counters["arena_full_builds"] >= 1
    assert get_arena(backed.circuit) is not None


def test_attach_is_idempotent_and_copy_starts_clean():
    c = _chain_circuit()
    arena = attach_arena(c)
    assert attach_arena(c) is arena
    twin = c.copy()
    assert get_arena(twin) is None


# ---------------------------------------------------------------------- #
# interface mutations (PI/PO index shifts force a full re-hash)
# ---------------------------------------------------------------------- #

def test_pi_removal_shifts_indexes_and_rehashes():
    from repro.engine.hashing import circuit_fingerprint

    c = Circuit("pi-shift")
    a = c.add_input("a")
    b = c.add_input("b")
    g = c.add_simple(GateType.OR, [a, b], 1.0)
    c.add_output("y", g)
    dangling = c.add_input("z")
    arena = attach_arena(c)
    arena.fingerprint()
    c.remove_gate(dangling)  # PI list shrinks; indexes shift
    arena.check()
    assert arena.fingerprint() == circuit_fingerprint(c.copy())


def test_output_marker_removal_rehashes():
    from repro.engine.hashing import circuit_fingerprint

    c = Circuit("po-shift")
    a = c.add_input("a")
    g = c.add_simple(GateType.NOT, [a], 1.0)
    c.add_output("y0", g)
    po1 = c.add_output("y1", g)
    arena = attach_arena(c)
    arena.fingerprint()
    c.remove_gate(po1)
    arena.check()
    assert arena.fingerprint() == circuit_fingerprint(c.copy())
