"""Property suite: the arena mirrors the object graph bit-for-bit.

Randomized circuits put through randomized KMS-shaped mutation
sequences (constant-setting + propagation, sweeps, chain duplication,
arrival edits), with an arena attached to one copy and nothing attached
to the other.  After every mutation step the two worlds must agree on:

* **structure** -- :meth:`NetArena.check` (slot arrays vs gate/conn
  dicts, pin order, maintained topological order);
* **fingerprints** -- the arena's incrementally re-hashed digests equal
  the verbatim object-graph Merkle walk, per gate and whole-circuit;
* **touched sets** -- transforms return identical touched-gate sets
  with and without the arena attached (the hooks must not perturb the
  transforms);
* **STA state** -- an :class:`IncrementalSTA` over the arena-attached
  circuit holds exactly the from-scratch timing state;
* **simulation** -- the zero-copy :class:`ArenaCompiledCircuit` view
  returns the same packed words (and good-eval counts) as the legacy
  compiled schedule and the interpreted simulator;
* **KMS step sequences** -- full ``kms`` runs take identical decisions
  arena-backed vs under ``REPRO_NET_LEGACY=1``.

~200 random circuits across the batches, mirroring
``tests/timing/test_incremental_property.py``.
"""

import random

import pytest

from repro.circuits import random_circuit, random_redundant_circuit
from repro.core import kms
from repro.engine.hashing import (
    SCHEME,
    _digest,
    gate_fingerprint,
)
from repro.net import attach_arena
from repro.network import GateType
from repro.network.transform import (
    duplicate_chain,
    propagate_constants,
    set_connection_constant,
    sweep,
)
from repro.sim import get_compiled, random_packed_inputs, simulate_packed
from repro.sim.kernel import ArenaCompiledCircuit, CompiledCircuit
from repro.timing import (
    AsBuiltDelayModel,
    IncrementalSTA,
    analyze,
    iter_paths_longest_first,
)

MODEL = AsBuiltDelayModel()

BATCHES = 8
CIRCUITS_PER_BATCH = 25


# ---------------------------------------------------------------------- #
# oracles (verbatim object-graph walks, bypassing any arena routing)
# ---------------------------------------------------------------------- #

def _walk_fps(circuit):
    """The legacy Merkle walk of ``engine.hashing.gate_fingerprints``,
    inlined so it never routes through an attached arena."""
    pi_index = {gid: i for i, gid in enumerate(circuit.inputs)}
    po_index = {gid: i for i, gid in enumerate(circuit.outputs)}
    fps = {}
    for gid in circuit.topological_order():
        fps[gid] = gate_fingerprint(circuit, gid, fps, pi_index, po_index)
    return fps


def _walk_circuit_fp(circuit):
    fps = _walk_fps(circuit)
    body = (
        SCHEME,
        len(circuit.gates),
        len(circuit.conns),
        tuple(fps[gid] for gid in circuit.outputs),
        tuple(sorted(fps.values())),
    )
    return _digest(body)


def _assert_arena_matches(circuit, arena):
    arena.check()
    assert arena.gate_fps() == _walk_fps(circuit)
    assert arena.fingerprint() == _walk_circuit_fp(circuit)


def _assert_sta_matches(sta, circuit):
    fresh = IncrementalSTA(circuit, MODEL)
    assert sta.arrival == fresh.arrival
    assert sta.dist_to_po == fresh.dist_to_po
    assert sta.npaths_to_po == fresh.npaths_to_po
    assert sta.delay == fresh.delay
    ann = analyze(circuit, MODEL)
    assert sta.delay == ann.delay


# ---------------------------------------------------------------------- #
# mutations (the KMS loop's moves)
# ---------------------------------------------------------------------- #

def _mutate_constant(circuit, rng):
    candidates = [
        cid
        for cid, conn in sorted(circuit.conns.items())
        if circuit.gates[conn.dst].gtype is not GateType.OUTPUT
        and circuit.gates[conn.src].gtype
        not in (GateType.CONST0, GateType.CONST1)
    ]
    if not candidates:
        return None
    _, touched = set_connection_constant(
        circuit, rng.choice(candidates), rng.randint(0, 1)
    )
    _, propagated = propagate_constants(circuit)
    return touched | propagated


def _mutate_sweep(circuit, rng):
    _, touched = sweep(circuit, collapse_buffers=True)
    return touched


def _mutate_duplicate(circuit, rng):
    paths = list(iter_paths_longest_first(circuit, MODEL, max_paths=8))
    if not paths:
        return None
    path = rng.choice(paths)
    branch_points = [
        j
        for j, gid in enumerate(path.gates)
        if len(circuit.gates[gid].fanout) > 1
    ]
    if not branch_points:
        return None
    j = rng.choice(branch_points)
    chain = list(path.gates[: j + 1])
    chain_conns = list(path.conns[: j + 1])
    edge = path.conns[j + 1]
    mapping, _dup_conns, touched = duplicate_chain(
        circuit, chain, chain_conns
    )
    n = chain[-1]
    touched |= {n, mapping[n], circuit.conns[edge].dst}
    circuit.move_connection_source(edge, mapping[n])
    return touched


def _mutate_arrival(circuit, rng):
    if not circuit.inputs:
        return None
    pi = rng.choice(circuit.inputs)
    circuit.set_input_arrival(pi, float(rng.randint(0, 5)))
    return {pi}


MUTATIONS = [
    _mutate_constant,
    _mutate_sweep,
    _mutate_duplicate,
    _mutate_arrival,
]


def _random_subject(rng, index):
    if index % 2:
        return random_redundant_circuit(
            num_inputs=rng.randint(3, 6),
            num_gates=rng.randint(8, 18),
            seed=rng.randint(0, 10**6),
        )
    return random_circuit(
        num_inputs=rng.randint(3, 6),
        num_gates=rng.randint(10, 25),
        num_outputs=rng.randint(1, 3),
        seed=rng.randint(0, 10**6),
        max_arrival=rng.choice([0.0, 3.0]),
    )


# ---------------------------------------------------------------------- #
# the properties
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("batch", range(BATCHES))
def test_arena_mirrors_object_graph_under_mutation(batch):
    """Structure + fingerprints + touched sets, arena vs bare twin."""
    rng = random.Random(7000 + batch)
    for index in range(CIRCUITS_PER_BATCH):
        base = _random_subject(rng, index)
        seed = rng.randint(0, 10**9)
        steps = rng.randint(2, 6)
        plan = [rng.randrange(len(MUTATIONS)) for _ in range(steps)]

        with_arena = base.copy()
        bare = base.copy()
        arena = attach_arena(with_arena)
        _assert_arena_matches(with_arena, arena)

        rng_a = random.Random(seed)
        rng_b = random.Random(seed)
        for which in plan:
            touched_a = MUTATIONS[which](with_arena, rng_a)
            touched_b = MUTATIONS[which](bare, rng_b)
            assert touched_a == touched_b, "touched sets diverged"
            _assert_arena_matches(with_arena, arena)
        # the twins themselves must still be structurally identical
        assert _walk_circuit_fp(with_arena) == _walk_circuit_fp(bare)


@pytest.mark.parametrize("batch", range(4))
def test_arena_sta_and_simulation_parity(batch):
    """STA state and packed-simulation words on arena-attached circuits."""
    rng = random.Random(8100 + batch)
    for index in range(12):
        circuit = _random_subject(rng, index)
        arena = attach_arena(circuit)
        sta = IncrementalSTA(circuit, MODEL)
        _assert_sta_matches(sta, circuit)
        for _step in range(rng.randint(2, 5)):
            mutate = MUTATIONS[rng.randrange(len(MUTATIONS))]
            touched = mutate(circuit, rng)
            if touched is None:
                continue
            sta.refresh(touched)
            _assert_sta_matches(sta, circuit)
            # simulation: zero-copy view vs legacy schedule vs interpreter
            kern = get_compiled(circuit)
            assert isinstance(kern, ArenaCompiledCircuit)
            packed = random_packed_inputs(
                circuit, 64, random.Random(42 + _step)
            )
            got = kern.evaluate(packed, 64)
            legacy = CompiledCircuit(circuit)
            want = legacy.evaluate(packed, 64)
            assert got == want
            assert got == simulate_packed(circuit, packed, 64)
        arena.check()


@pytest.mark.parametrize("seed", range(10))
def test_kms_arena_bit_identical_to_legacy_oracle(seed, monkeypatch):
    """Full KMS runs: arena-backed vs REPRO_NET_LEGACY=1 object graph."""
    circuit = random_redundant_circuit(num_inputs=5, num_gates=15, seed=seed)
    monkeypatch.delenv("REPRO_NET_LEGACY", raising=False)
    arena_run = kms(circuit, model=MODEL)
    monkeypatch.setenv("REPRO_NET_LEGACY", "1")
    legacy_run = kms(circuit, model=MODEL)
    assert [
        (e.path, e.constant_value, e.duplicated_gates, e.gates_after)
        for e in arena_run.events
    ] == [
        (e.path, e.constant_value, e.duplicated_gates, e.gates_after)
        for e in legacy_run.events
    ]
    assert arena_run.cleanup_steps == legacy_run.cleanup_steps
    assert _walk_circuit_fp(arena_run.circuit) == _walk_circuit_fp(
        legacy_run.circuit
    )
    for key in (
        "paths_enumerated",
        "viability_checks_exact",
        "arrival_relaxations",
        "dist_relaxations",
    ):
        assert arena_run.counters[key] == legacy_run.counters[key], key
