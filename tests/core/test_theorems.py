"""Executable Theorems 7.1 and 7.2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import fig4_c2_cone, random_circuit
from repro.core import duplicate_gate_for_edge, set_path_constant
from repro.network import CircuitError, check
from repro.sat import check_equivalence
from repro.timing import (
    longest_paths,
    topological_delay,
    viability_delay,
)


def _multifanout_sites(circuit):
    for gid, gate in circuit.gates.items():
        if gate.gtype.value in ("input", "output", "const0", "const1"):
            continue
        if len(gate.fanout) > 1:
            for cid in gate.fanout:
                yield gid, cid


class TestTheorem71:
    """Duplication preserves function and every delay measure."""

    @given(seed=st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_duplication_preserves_everything(self, seed):
        c = random_circuit(num_inputs=4, num_gates=12, seed=seed)
        sites = list(_multifanout_sites(c))
        if not sites:
            return
        gid, cid = sites[seed % len(sites)]
        evidence = duplicate_gate_for_edge(c, gid, cid)
        dup = evidence.circuit
        check(dup)
        assert check_equivalence(c, dup).equivalent
        assert topological_delay(dup) == pytest.approx(
            topological_delay(c)
        )
        # the paper's stronger claim: the viability delay is unchanged
        assert viability_delay(dup).delay == pytest.approx(
            viability_delay(c).delay
        )

    def test_duplicate_has_single_fanout(self, two_output_circuit):
        c = two_output_circuit
        shared = c.find_gate("shared")
        cid = c.gates[shared].fanout[0]
        ev = duplicate_gate_for_edge(c, shared, cid)
        assert ev.circuit.fanout_size(ev.duplicate_gate) == 1
        # original lost exactly that one edge
        assert (
            ev.circuit.fanout_size(ev.original_gate)
            == c.fanout_size(shared) - 1
        )

    def test_requires_multifanout(self, chain_circuit):
        n1 = chain_circuit.find_gate("n1")
        cid = chain_circuit.gates[n1].fanout[0]
        with pytest.raises(CircuitError):
            duplicate_gate_for_edge(chain_circuit, n1, cid)

    def test_edge_must_belong_to_gate(self, two_output_circuit):
        c = two_output_circuit
        shared = c.find_gate("shared")
        inv = c.find_gate("inv")
        foreign = c.gates[inv].fanout[0]
        with pytest.raises(CircuitError):
            duplicate_gate_for_edge(c, shared, foreign)


class TestTheorem72:
    """Constant-setting on an unsensitizable single-fanout longest path."""

    def test_fig4_walkthrough(self):
        c = fig4_c2_cone()
        path = longest_paths(c)[0]
        evidence = set_path_constant(c, path, 0)
        after = evidence.circuit
        check(after)
        # function preserved (the fault on the first edge was untestable)
        assert check_equivalence(c, after).equivalent
        # delay did not increase -- in fact it dropped below 8
        assert (
            viability_delay(after).delay
            <= viability_delay(c).delay + 1e-9
        )
        assert topological_delay(after) < topological_delay(c)
        assert evidence.precondition_notes

    def test_precondition_single_fanout_enforced(self):
        from repro.circuits import fig1_carry_skip_block

        c = fig1_carry_skip_block()
        path = longest_paths(c)[0]  # gate7 has multiple fanout here
        with pytest.raises(CircuitError):
            set_path_constant(c, path, 0)

    def test_precondition_longest_enforced(self):
        c = fig4_c2_cone()
        from repro.timing import iter_paths_longest_first

        shorter = None
        delay = topological_delay(c)
        for p in iter_paths_longest_first(c):
            if p.length < delay - 1e-9:
                shorter = p
                break
        assert shorter is not None
        if all(c.fanout_size(g) == 1 for g in shorter.gates):
            with pytest.raises(CircuitError):
                set_path_constant(c, shorter, 0)

    def test_precondition_sensitizable_enforced(self, chain_circuit):
        path = longest_paths(chain_circuit)[0]
        # a NOT chain is trivially sensitizable
        with pytest.raises(CircuitError):
            set_path_constant(chain_circuit, path, 0)

    def test_unchecked_mode_skips_preconditions(self, chain_circuit):
        path = longest_paths(chain_circuit)[0]
        evidence = set_path_constant(
            chain_circuit, path, 0, require_preconditions=False
        )
        # function is NOT preserved here -- that is the point of the
        # preconditions; the circuit must still be structurally valid
        check(evidence.circuit)
