"""The KMS algorithm end to end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import is_irredundant
from repro.circuits import (
    carry_skip_adder,
    fig1_carry_skip_block,
    fig4_c2_cone,
    random_circuit,
    random_redundant_circuit,
)
from repro.core import kms, verify_transformation
from repro.network import check
from repro.sat import check_equivalence
from repro.timing import UnitDelayModel, viability_delay


class TestPaperWalkthrough:
    def test_fig4_single_iteration_no_duplication(self):
        """Section 6.3: 'None of the edges in P have fan out greater
        than 1, hence, no duplication is required.'"""
        result = kms(fig4_c2_cone(), checked=True, trace=True)
        assert result.iterations == 1
        assert result.duplicated_gates == 0
        event = result.events[0]
        assert event.constant_value == 0
        assert "c0" in event.path and "gate6" in event.path

    def test_fig4_result_verifies(self):
        c = fig4_c2_cone()
        result = kms(c)
        report = verify_transformation(c, result.circuit)
        assert report.ok
        assert report.redundancies_after == 0
        assert report.delays_after.viability <= 8.0

    def test_fig1_multioutput_requires_duplication(self):
        """On the full block gate7 fans out to the sum logic, so the
        chain up to gate7 must be duplicated."""
        c = fig1_carry_skip_block()
        result = kms(c, checked=True)
        assert result.duplicated_gates >= 1
        report = verify_transformation(c, result.circuit)
        assert report.ok

    def test_fig1_no_area_explosion(self):
        """The paper's multi-output 2-b result: same gate count ballpark."""
        c = fig1_carry_skip_block()
        result = kms(c)
        assert result.circuit.num_gates() <= c.num_gates()


class TestModes:
    def test_viability_mode_also_safe(self):
        c = fig4_c2_cone()
        result = kms(c, mode="viability", checked=True)
        assert is_irredundant(result.circuit)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            kms(fig4_c2_cone(), mode="psychic")

    def test_complex_gates_rejected(self):
        from repro.network import Builder

        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", b.xor(x, y))
        with pytest.raises(ValueError):
            kms(b.done())

    def test_input_not_mutated(self):
        c = fig4_c2_cone()
        gates_before = c.num_gates()
        kms(c)
        assert c.num_gates() == gates_before


class TestCarrySkipFamily:
    @pytest.mark.parametrize("nbits,block", [(2, 2), (4, 2), (4, 4)])
    def test_small_adders(self, nbits, block):
        model = UnitDelayModel(use_arrival_times=False)
        c = carry_skip_adder(nbits, block)
        result = kms(c, model=model)
        report = verify_transformation(c, result.circuit, model)
        assert report.ok, report.notes
        assert report.redundancies_before >= 2

    def test_late_carry_in(self):
        """With the Section III arrival skew the longest path is false
        and the loop must fire."""
        c = carry_skip_adder(2, 2, cin_arrival=5.0)
        result = kms(c, checked=True)
        report = verify_transformation(c, result.circuit)
        assert report.ok


class TestRandomizedProperties:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_random_circuits(self, seed):
        c = random_circuit(
            num_inputs=4, num_gates=12, seed=seed, max_arrival=3.0
        )
        result = kms(c, checked=True)  # checked raises on any violation
        check(result.circuit)
        assert check_equivalence(c, result.circuit).equivalent
        assert is_irredundant(result.circuit)
        assert (
            viability_delay(result.circuit).delay
            <= viability_delay(c).delay + 1e-9
        )

    @given(seed=st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_random_redundant_circuits(self, seed):
        c = random_redundant_circuit(num_inputs=4, num_gates=10, seed=seed)
        result = kms(c, checked=True)
        assert is_irredundant(result.circuit)
        assert check_equivalence(c, result.circuit).equivalent


class TestTrace:
    def test_snapshots_recorded(self):
        result = kms(fig4_c2_cone(), trace=True)
        assert all(e.snapshot is not None for e in result.events)
        # each snapshot is a valid circuit
        for e in result.events:
            check(e.snapshot)
