"""The verification harness and report formatting."""

from repro.circuits import fig1_carry_skip_block, fig2_irredundant_block
from repro.core import (
    TableRow,
    format_table,
    measure_delays,
    verify_transformation,
)


def test_fig1_to_fig2_report():
    """Fig. 2 is the paper's hand-crafted KMS result: equivalent,
    irredundant, no slower, no area overhead."""
    fig1 = fig1_carry_skip_block()
    fig2 = fig2_irredundant_block()
    report = verify_transformation(fig1, fig2)
    assert report.equivalent
    assert report.irredundant
    assert report.delay_preserved
    assert report.ok
    assert report.redundancies_before == 2
    assert report.redundancies_after == 0
    assert report.gates_after == report.gates_before  # zero overhead


def test_non_equivalent_pair_reported():
    from repro.network import Builder

    def make(gate):
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", getattr(b, gate)(x, y))
        return b.done()

    report = verify_transformation(make("and_"), make("or_"))
    assert not report.equivalent
    assert not report.ok
    assert report.notes


def test_measure_delays_triple():
    triple = measure_delays(fig1_carry_skip_block())
    d = triple.as_dict()
    assert d["topological"] == 11.0
    assert d["viability"] == 9.0
    assert d["sensitizable"] == 9.0


def test_format_table_layout():
    rows = [
        TableRow("csa 2.2", 2, 22, 21, 8.0, 6.0),
        TableRow("rd73", 9, 91, 80, 13.0, 13.0, extra="note"),
    ]
    text = format_table(rows)
    assert "csa 2.2" in text
    assert "note" in text
    lines = text.splitlines()
    assert any("Red." in line for line in lines)
