"""KMS edge cases and guard rails."""

import pytest

from repro.circuits import fig4_c2_cone
from repro.core import KmsError, kms
from repro.network import Builder
from repro.sat import check_equivalence


class TestDegenerateInputs:
    def test_empty_logic(self):
        b = Builder()
        x = b.input("x")
        b.output("o", x)
        c = b.done()
        result = kms(c)
        assert result.iterations == 0
        assert check_equivalence(c, result.circuit).equivalent

    def test_constant_output(self):
        b = Builder()
        b.input("x")
        b.output("o", b.const(1))
        c = b.done()
        result = kms(c)
        assert result.circuit.evaluate_outputs(
            {result.circuit.find_input("x"): 0}
        ) == (1,)

    def test_single_gate(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", b.and_(x, y))
        c = b.done()
        result = kms(c, checked=True)
        assert result.iterations == 0
        assert result.cleanup_steps == 0

    def test_wire_only_paths_are_sensitizable(self):
        """PI -> BUF -> PO: no side inputs, trivially sensitizable, so
        the loop must not fire (firing would tie the output!)."""
        b = Builder()
        x = b.input("x")
        b.output("o", b.buf(x, delay=1.0))
        c = b.done()
        result = kms(c)
        assert result.iterations == 0
        assert check_equivalence(c, result.circuit).equivalent


class TestGuards:
    def test_max_longest_paths_cap_is_safe(self):
        """An absurdly small cap still yields a correct (just possibly
        less lazy) result."""
        c = fig4_c2_cone()
        result = kms(c, max_longest_paths=1)
        assert check_equivalence(c, result.circuit).equivalent

    def test_max_iterations_raises(self):
        c = fig4_c2_cone()
        with pytest.raises(KmsError):
            kms(c, max_iterations=0)

    def test_choose_path_hook(self):
        chosen = []

        def choose(candidates):
            chosen.append(len(candidates))
            return candidates[-1]

        c = fig4_c2_cone()
        result = kms(c, choose_path=choose)
        assert chosen  # the hook ran
        assert check_equivalence(c, result.circuit).equivalent

    def test_trace_off_means_no_snapshots(self):
        c = fig4_c2_cone()
        result = kms(c, trace=False)
        assert all(e.snapshot is None for e in result.events)


def test_max_iterations_zero_ok_when_no_work_needed():
    """A circuit whose longest path is already sensitizable completes
    even with max_iterations=0 (the guard fires only on real work)."""
    b = Builder()
    x, y = b.inputs("x", "y")
    b.output("o", b.and_(x, y))
    c = b.done()
    result = kms(c, max_iterations=0)
    assert result.iterations == 0
