"""Runner semantics: parallel == serial, warm cache, timeout, retry."""


from repro.engine import (
    EngineConfig,
    Job,
    StageCall,
    STAGES,
    StageDef,
    StageOutcome,
    run_jobs,
)
from repro.engine.sweep import CSA_MODEL

#: Three small circuits, mixed families, cheap enough for tier-1.
SMOKE_JOBS = [
    Job(
        name="csa 2.2",
        factory="carry_skip_adder",
        params={"nbits": 2, "block": 2},
        pipeline=[
            StageCall("atpg", {}),
            StageCall("kms", {"model": CSA_MODEL, "mode": "static"}),
        ],
    ),
    Job(
        name="csa 4.2",
        factory="carry_skip_adder",
        params={"nbits": 4, "block": 2},
        pipeline=[
            StageCall("atpg", {}),
            StageCall("kms", {"model": CSA_MODEL, "mode": "static"}),
        ],
    ),
    Job(
        name="rand s3",
        factory="random_redundant",
        params={"seed": 3, "num_inputs": 4, "num_gates": 8},
        pipeline=[
            StageCall("atpg", {}),
            StageCall("kms", {"model": {"kind": "as_built"},
                              "mode": "static"}),
            StageCall("verify", {}),
        ],
    ),
]


def _essence(report):
    """The result payloads, stripped of anything timing-dependent."""
    return [
        (r.name, r.ok, r.fingerprint, r.results)
        for r in report.results
    ]


def test_two_workers_match_serial_path():
    serial = run_jobs(SMOKE_JOBS, EngineConfig(jobs=1))
    parallel = run_jobs(SMOKE_JOBS, EngineConfig(jobs=2))
    assert serial.ok and parallel.ok
    assert _essence(serial) == _essence(parallel)
    assert parallel.results[2].results["verify"] == {
        "equivalent": True, "method": "fraig",
    }
    assert parallel.results[0].results["atpg"]["redundancies"] == 2


def test_warm_cache_skips_kms_and_atpg(tmp_path):
    config = EngineConfig(jobs=2, cache_dir=str(tmp_path / "cache"))
    cold = run_jobs(SMOKE_JOBS, config)
    warm = run_jobs(SMOKE_JOBS, config)
    assert cold.ok and warm.ok
    assert _essence(cold) == _essence(warm)
    executions = warm.telemetry.stage_executions()
    assert executions["kms"] == 0
    assert executions["atpg"] == 0
    assert warm.telemetry.cache_misses == 0
    assert warm.telemetry.cache_hits > 0
    # verify is uncacheable by design: it re-ran
    assert executions["verify"] == 1


def test_cache_shared_between_serial_and_parallel(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_jobs(SMOKE_JOBS, EngineConfig(jobs=1, cache_dir=cache_dir))
    warm = run_jobs(SMOKE_JOBS, EngineConfig(jobs=2, cache_dir=cache_dir))
    assert warm.telemetry.cache_misses == 0
    assert warm.telemetry.stage_executions()["kms"] == 0


def test_failed_job_reports_error_and_others_survive():
    jobs = [
        SMOKE_JOBS[0],
        Job(name="broken", factory="no_such_factory", params={},
            pipeline=[]),
    ]
    report = run_jobs(jobs, EngineConfig(jobs=1))
    assert not report.ok
    assert report.results[0].ok
    assert not report.results[1].ok
    assert "no_such_factory" in report.results[1].error


def _register(name, fn, cacheable=False):
    STAGES[name] = StageDef(name, fn, cacheable=cacheable)


def test_retry_once_recovers_from_flaky_stage():
    calls = {"n": 0}

    def flaky(circuit, params, ctx):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return StageOutcome(circuit, {"attempts": calls["n"]})

    _register("_test_flaky", flaky)
    try:
        job = Job(name="flaky", factory="carry_skip_adder",
                  params={"nbits": 2, "block": 2},
                  pipeline=[StageCall("_test_flaky", {})])
        report = run_jobs([job], EngineConfig(jobs=1))
        assert report.ok
        assert report.results[0].results["_test_flaky"] == {"attempts": 2}
        records = [r for r in report.results[0].records
                   if r.stage == "_test_flaky"]
        assert [bool(r.error) for r in records] == [True, False]
    finally:
        del STAGES["_test_flaky"]


def test_persistent_failure_fails_job_after_retry():
    def broken(circuit, params, ctx):
        raise RuntimeError("always broken")

    _register("_test_broken", broken)
    try:
        job = Job(name="doomed", factory="carry_skip_adder",
                  params={"nbits": 2, "block": 2},
                  pipeline=[StageCall("_test_broken", {}),
                            StageCall("atpg", {})])
        report = run_jobs([job], EngineConfig(jobs=1))
        assert not report.ok
        result = report.results[0]
        assert "always broken" in result.error
        # the stage after the failure never ran
        assert "atpg" not in result.results
        attempts = [r for r in result.records if r.stage == "_test_broken"]
        assert len(attempts) == 2
    finally:
        del STAGES["_test_broken"]


def test_stage_timeout_cannot_hang_a_sweep():
    def sleepy(circuit, params, ctx):
        import time as _time

        _time.sleep(5.0)
        return StageOutcome(circuit, {})

    _register("_test_sleepy", sleepy)
    try:
        job = Job(name="hang", factory="carry_skip_adder",
                  params={"nbits": 2, "block": 2},
                  pipeline=[StageCall("_test_sleepy", {})])
        report = run_jobs(
            [job], EngineConfig(jobs=1, stage_timeout=0.2, retries=0)
        )
        assert not report.ok
        assert "StageTimeout" in report.results[0].error
    finally:
        del STAGES["_test_sleepy"]


def test_uncacheable_params_bypass_cache(tmp_path):
    from repro.circuits import carry_skip_adder
    from repro.engine import ResultCache, run_pipeline
    from repro.timing import UnitDelayModel

    cache = ResultCache(tmp_path / "cache")
    circuit = carry_skip_adder(2, 2)
    pipeline = [StageCall(
        "sense_delay", {"_model": UnitDelayModel(use_arrival_times=False)}
    )]
    first = run_pipeline(circuit, pipeline, cache=cache)
    second = run_pipeline(circuit, pipeline, cache=cache)
    assert first.results == second.results
    assert cache.hits == 0 and cache.entry_count() == 0


def test_telemetry_json_round_trip(tmp_path):
    from repro.engine import Telemetry

    report = run_jobs(SMOKE_JOBS[:1], EngineConfig(jobs=1))
    path = tmp_path / "telemetry.json"
    report.telemetry.write_json(str(path))
    import json

    restored = Telemetry.from_dict(json.loads(path.read_text()))
    assert restored.stage_executions() == (
        report.telemetry.stage_executions()
    )
    assert restored.to_dict()["totals"] == report.telemetry.to_dict()["totals"]


def test_run_pipeline_keep_final_returns_transformed_circuit():
    from repro.circuits import carry_skip_adder
    from repro.engine import circuit_from_dict, run_pipeline
    from repro.engine.hashing import circuit_fingerprint

    circuit = carry_skip_adder(2, 2)
    pipeline = [StageCall("kms", {"model": CSA_MODEL, "mode": "static"})]
    plain = run_pipeline(circuit, pipeline)
    assert plain.ok and plain.final_circuit is None

    kept = run_pipeline(carry_skip_adder(2, 2), pipeline, keep_final=True)
    assert kept.ok and kept.final_circuit is not None
    final = circuit_from_dict(kept.final_circuit)
    assert final.num_gates() == kept.results["kms"]["gates_final"]
    # round-trips through to_dict/from_dict for the pool path
    from repro.engine import JobResult

    clone = JobResult.from_dict(kept.to_dict())
    assert clone.final_circuit == kept.final_circuit
    assert circuit_fingerprint(circuit_from_dict(clone.final_circuit)) \
        == circuit_fingerprint(final)
