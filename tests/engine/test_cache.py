"""Cache round-trip, key discrimination, corruption tolerance, stats,
and torn-write safety of the fsync'd atomic-rename publish path."""

import json
import os
import threading

from repro.engine import ResultCache, cache_key

HASH_A = "a" * 64
HASH_B = "b" * 64


def test_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    value = {"payload": {"redundancies": 2}, "circuit": None}
    cache.put(HASH_A, "atpg", {}, value)
    assert cache.get(HASH_A, "atpg", {}) == value
    assert cache.hits == 1 and cache.misses == 0


def test_distinct_keys_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {"mode": "static"}, {"payload": {"n": 1}})
    assert cache.get(HASH_B, "kms", {"mode": "static"}) is None
    assert cache.get(HASH_A, "kms", {"mode": "viability"}) is None
    assert cache.get(HASH_A, "atpg", {"mode": "static"}) is None
    assert cache.get(HASH_A, "kms", {"mode": "static"}) == {
        "payload": {"n": 1}
    }


def test_key_is_param_order_independent():
    assert cache_key(HASH_A, "kms", {"a": 1, "b": 2}) == cache_key(
        HASH_A, "kms", {"b": 2, "a": 1}
    )
    assert cache_key(HASH_A, "kms", {"a": 1}) != cache_key(
        HASH_A, "kms", {"a": 2}
    )


def _entry_path(cache, circuit_hash, stage, params):
    key = cache_key(circuit_hash, stage, params)
    return cache.root / key[:2] / f"{key}.json"


def test_truncated_entry_is_a_miss_then_repairable(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 1}})
    path = _entry_path(cache, HASH_A, "kms", {})
    text = path.read_text()
    path.write_text(text[: len(text) // 2])  # torn write simulation
    assert cache.get(HASH_A, "kms", {}) is None
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 2}})
    assert cache.get(HASH_A, "kms", {}) == {"payload": {"n": 2}}


def test_garbage_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    path = _entry_path(cache, HASH_A, "kms", {})
    path.write_bytes(b"\x00\xffnot json at all")
    assert cache.get(HASH_A, "kms", {}) is None


def test_wrong_shape_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    path = _entry_path(cache, HASH_A, "kms", {})
    path.write_text(json.dumps([1, 2, 3]))  # valid JSON, wrong shape
    assert cache.get(HASH_A, "kms", {}) is None
    path.write_text(json.dumps({"schema": "other/9", "value": {}}))
    assert cache.get(HASH_A, "kms", {}) is None


def test_entry_in_wrong_slot_is_a_miss(tmp_path):
    """An entry whose embedded key disagrees with its slot is rejected."""
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 1}})
    src = _entry_path(cache, HASH_A, "kms", {})
    dst = _entry_path(cache, HASH_B, "kms", {})
    dst.parent.mkdir(parents=True, exist_ok=True)
    os.replace(src, dst)
    assert cache.get(HASH_B, "kms", {}) is None


def test_disabled_cache_is_inert():
    cache = ResultCache(None)
    assert not cache.enabled
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    assert cache.get(HASH_A, "kms", {}) is None
    assert cache.entry_count() == 0


def test_atomic_publish_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(10):
        cache.put(HASH_A, "kms", {"i": i}, {"payload": {"i": i}})
    leftovers = [p for p in cache.root.rglob("*") if p.suffix == ".tmp"]
    assert leftovers == []
    assert cache.entry_count() == 10


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    assert cache.entry_count() == 1
    cache.clear()
    assert cache.entry_count() == 0
    assert cache.get(HASH_A, "kms", {}) is None
    assert cache.evictions == 1


def test_stats_accessor(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 1}})
    cache.put(HASH_A, "atpg", {}, {"payload": {"n": 2}})
    assert cache.get(HASH_A, "kms", {}) is not None
    assert cache.get(HASH_B, "kms", {}) is None
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 0
    assert stats["entries"] == 2
    assert stats["bytes"] == sum(
        p.stat().st_size for p in cache.root.glob("*/*.json")
    )
    disabled = ResultCache(None)
    assert disabled.stats() == {
        "hits": 0, "misses": 0, "evictions": 0, "entries": 0, "bytes": 0,
    }


def test_corrupt_entry_is_evicted_on_read(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    path = _entry_path(cache, HASH_A, "kms", {})
    path.write_bytes(b"\x00garbage")
    assert cache.get(HASH_A, "kms", {}) is None
    assert not path.exists()
    assert cache.evictions == 1
    # a missing file is a plain miss, not an eviction
    assert cache.get(HASH_A, "kms", {}) is None
    assert cache.evictions == 1


def test_put_fsyncs_before_publish(tmp_path, monkeypatch):
    """The temp file must reach disk before os.replace makes it
    visible; otherwise a crash can publish a name with torn bytes."""
    events = []
    real_fsync, real_replace = os.fsync, os.replace

    def spy_fsync(fd):
        events.append("fsync")
        return real_fsync(fd)

    def spy_replace(src, dst):
        events.append("replace")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(os, "replace", spy_replace)
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 1}})
    assert "fsync" in events and "replace" in events
    assert events.index("fsync") < events.index("replace")
    assert cache.get(HASH_A, "kms", {}) == {"payload": {"n": 1}}


def test_concurrent_readers_never_observe_partial_entry(tmp_path):
    """Writers rewriting one slot while readers poll it: every read is
    either a miss or a *complete* value (the atomic-rename publish).
    A non-atomic write-in-place would fail this within a few rounds."""
    cache = ResultCache(tmp_path)
    # big enough that a torn write would be very likely to truncate
    blob = "x" * 65536
    values = [{"payload": {"v": i, "blob": blob}} for i in range(2)]
    stop = threading.Event()
    bad = []

    def writer():
        i = 0
        while not stop.is_set():
            cache.put(HASH_A, "kms", {}, values[i % 2])
            i += 1

    def reader():
        mine = ResultCache(tmp_path)  # own handle, like a worker
        while not stop.is_set():
            value = mine.get(HASH_A, "kms", {})
            if value is not None and value not in values:
                bad.append(value)

    threads = [threading.Thread(target=writer) for _ in range(2)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    try:
        import time

        time.sleep(0.5)
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert bad == []


def test_trim_evicts_oldest_until_under_budget(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(4):
        cache.put(HASH_A, "kms", {"i": i}, {"payload": {"i": i}})
        path = _entry_path(cache, HASH_A, "kms", {"i": i})
        os.utime(path, (1000 + i, 1000 + i))  # deterministic age order
    sizes = {
        i: _entry_path(cache, HASH_A, "kms", {"i": i}).stat().st_size
        for i in range(4)
    }
    budget = sizes[2] + sizes[3]
    assert cache.trim(budget) == 2
    assert cache.get(HASH_A, "kms", {"i": 0}) is None
    assert cache.get(HASH_A, "kms", {"i": 1}) is None
    assert cache.get(HASH_A, "kms", {"i": 3}) == {"payload": {"i": 3}}
    assert cache.stats()["evictions"] == 2
    assert cache.trim(budget) == 0  # already under budget
