"""Cache round-trip, key discrimination, and corruption tolerance."""

import json
import os

from repro.engine import ResultCache, cache_key

HASH_A = "a" * 64
HASH_B = "b" * 64


def test_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    value = {"payload": {"redundancies": 2}, "circuit": None}
    cache.put(HASH_A, "atpg", {}, value)
    assert cache.get(HASH_A, "atpg", {}) == value
    assert cache.hits == 1 and cache.misses == 0


def test_distinct_keys_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {"mode": "static"}, {"payload": {"n": 1}})
    assert cache.get(HASH_B, "kms", {"mode": "static"}) is None
    assert cache.get(HASH_A, "kms", {"mode": "viability"}) is None
    assert cache.get(HASH_A, "atpg", {"mode": "static"}) is None
    assert cache.get(HASH_A, "kms", {"mode": "static"}) == {
        "payload": {"n": 1}
    }


def test_key_is_param_order_independent():
    assert cache_key(HASH_A, "kms", {"a": 1, "b": 2}) == cache_key(
        HASH_A, "kms", {"b": 2, "a": 1}
    )
    assert cache_key(HASH_A, "kms", {"a": 1}) != cache_key(
        HASH_A, "kms", {"a": 2}
    )


def _entry_path(cache, circuit_hash, stage, params):
    key = cache_key(circuit_hash, stage, params)
    return cache.root / key[:2] / f"{key}.json"


def test_truncated_entry_is_a_miss_then_repairable(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 1}})
    path = _entry_path(cache, HASH_A, "kms", {})
    text = path.read_text()
    path.write_text(text[: len(text) // 2])  # torn write simulation
    assert cache.get(HASH_A, "kms", {}) is None
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 2}})
    assert cache.get(HASH_A, "kms", {}) == {"payload": {"n": 2}}


def test_garbage_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    path = _entry_path(cache, HASH_A, "kms", {})
    path.write_bytes(b"\x00\xffnot json at all")
    assert cache.get(HASH_A, "kms", {}) is None


def test_wrong_shape_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    path = _entry_path(cache, HASH_A, "kms", {})
    path.write_text(json.dumps([1, 2, 3]))  # valid JSON, wrong shape
    assert cache.get(HASH_A, "kms", {}) is None
    path.write_text(json.dumps({"schema": "other/9", "value": {}}))
    assert cache.get(HASH_A, "kms", {}) is None


def test_entry_in_wrong_slot_is_a_miss(tmp_path):
    """An entry whose embedded key disagrees with its slot is rejected."""
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {"n": 1}})
    src = _entry_path(cache, HASH_A, "kms", {})
    dst = _entry_path(cache, HASH_B, "kms", {})
    dst.parent.mkdir(parents=True, exist_ok=True)
    os.replace(src, dst)
    assert cache.get(HASH_B, "kms", {}) is None


def test_disabled_cache_is_inert():
    cache = ResultCache(None)
    assert not cache.enabled
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    assert cache.get(HASH_A, "kms", {}) is None
    assert cache.entry_count() == 0


def test_atomic_publish_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(10):
        cache.put(HASH_A, "kms", {"i": i}, {"payload": {"i": i}})
    leftovers = [p for p in cache.root.rglob("*") if p.suffix == ".tmp"]
    assert leftovers == []
    assert cache.entry_count() == 10


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(HASH_A, "kms", {}, {"payload": {}})
    assert cache.entry_count() == 1
    cache.clear()
    assert cache.entry_count() == 0
    assert cache.get(HASH_A, "kms", {}) is None
