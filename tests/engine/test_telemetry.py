"""Telemetry streaming subscriptions (and JSON-schema stability)."""

import threading

from repro.engine import StageRecord, Telemetry


def _record(i, stage="kms"):
    return StageRecord(
        job=f"job{i}", stage=stage, label=stage, seconds=0.1,
        counters={"sat_calls": i},
    )


def test_subscribe_sees_adds_and_extends():
    telemetry = Telemetry()
    seen = []
    callback = telemetry.subscribe(seen.append)
    telemetry.add(_record(0))
    telemetry.extend([_record(1), _record(2)])
    assert [r.job for r in seen] == ["job0", "job1", "job2"]
    telemetry.unsubscribe(callback)
    telemetry.add(_record(3))
    assert len(seen) == 3
    # the stored records are unaffected by subscriptions
    assert [r.job for r in telemetry.records] == [
        "job0", "job1", "job2", "job3",
    ]


def test_unsubscribe_unknown_callback_is_noop():
    Telemetry().unsubscribe(lambda r: None)


def test_stream_yields_live_records_across_threads():
    telemetry = Telemetry()
    stream = telemetry.stream()
    got = []

    def consume():
        for record in stream:
            got.append(record)

    consumer = threading.Thread(target=consume)
    consumer.start()
    for i in range(5):
        telemetry.add(_record(i))
    stream.close()
    consumer.join(timeout=5)
    assert not consumer.is_alive()
    assert [r.job for r in got] == [f"job{i}" for i in range(5)]
    # closed stream no longer receives
    telemetry.add(_record(9))
    assert len(got) == 5


def test_stream_get_with_timeout():
    telemetry = Telemetry()
    stream = telemetry.stream()
    assert stream.get(timeout=0.01) is None
    telemetry.add(_record(0))
    record = stream.get(timeout=1)
    assert record is not None and record.job == "job0"
    stream.close()
    assert stream.get(timeout=0.01) is None


def test_json_schema_unchanged_by_streaming_api():
    telemetry = Telemetry(meta={"suite": "x"})
    telemetry.subscribe(lambda r: None)
    telemetry.add(_record(0))
    data = telemetry.to_dict()
    assert set(data) == {"schema", "meta", "records", "totals"}
    assert data["schema"] == "repro.engine.telemetry/1"
    assert set(data["records"][0]) == {
        "job", "stage", "label", "seconds", "cache", "counters", "error",
    }
    # round-trip still works and drops no records
    clone = Telemetry.from_dict(data)
    assert [r.job for r in clone.records] == ["job0"]
