"""Fingerprint invariance: what must and must not change the hash."""

from repro.circuits import carry_skip_adder, random_circuit
from repro.engine import (
    circuit_fingerprint,
    circuit_from_dict,
    circuit_to_dict,
    gate_fingerprints,
)
from repro.network import Builder, GateType


def _and_or(name_g1="g1", name_g2="g2"):
    b = Builder("ao")
    a, bb, c = b.inputs("a", "b", "c")
    g1 = b.and_(a, bb, name=name_g1)
    g2 = b.or_(g1, c, name=name_g2)
    b.output("y", g2)
    return b.done()


def test_renamed_gates_hash_equal():
    base = _and_or()
    renamed = _and_or("inner_conjunction", "outer_disjunction")
    assert circuit_fingerprint(base) == circuit_fingerprint(renamed)


def test_renaming_in_place_hash_equal():
    circuit = _and_or()
    before = circuit_fingerprint(circuit)
    for gate in circuit.gates.values():
        if gate.gtype not in (GateType.INPUT, GateType.OUTPUT):
            gate.name = f"renamed_{gate.gid}"
    assert circuit_fingerprint(circuit) == before


def test_gid_renumbering_hash_equal():
    base = _and_or()
    shifted = Builder("ao2")
    dummy = shifted.circuit.add_gate(GateType.CONST0)  # shifts every gid
    a, bb, c = shifted.inputs("a", "b", "c")
    g1 = shifted.and_(a, bb, name="g1")
    g2 = shifted.or_(g1, c, name="g2")
    shifted.output("y", g2)
    circuit = shifted.circuit
    circuit.remove_gate(dummy)
    assert circuit_fingerprint(base) == circuit_fingerprint(circuit)


def test_rewired_circuit_hashes_different():
    base = _and_or()
    rewired = Builder("ao3")
    a, bb, c = rewired.inputs("a", "b", "c")
    g1 = rewired.and_(a, c, name="g1")  # c instead of b
    g2 = rewired.or_(g1, c, name="g2")
    rewired.output("y", g2)
    assert circuit_fingerprint(base) != circuit_fingerprint(rewired.done())


def test_gate_type_matters():
    base = _and_or()
    other = Builder("ao4")
    a, bb, c = other.inputs("a", "b", "c")
    g1 = other.nand(a, bb, name="g1")
    g2 = other.or_(g1, c, name="g2")
    other.output("y", g2)
    assert circuit_fingerprint(base) != circuit_fingerprint(other.done())


def test_delay_matters():
    a = carry_skip_adder(2, 2)
    b = carry_skip_adder(2, 2)
    gid = next(
        g.gid for g in b.gates.values() if g.gtype is GateType.AND
    )
    b.gates[gid].delay += 1.0
    assert circuit_fingerprint(a) != circuit_fingerprint(b)


def test_arrival_time_matters():
    a = carry_skip_adder(2, 2)
    b = carry_skip_adder(2, 2)
    b.input_arrival[b.inputs[0]] = 5.0
    assert circuit_fingerprint(a) != circuit_fingerprint(b)


def test_shared_stem_differs_from_duplicated_cone():
    shared = Builder("shared")
    a, bb = shared.inputs("a", "b")
    g = shared.and_(a, bb)
    shared.output("y0", shared.not_(g))
    shared.output("y1", shared.not_(g))
    dup = Builder("dup")
    a, bb = dup.inputs("a", "b")
    g1 = dup.and_(a, bb)
    g2 = dup.and_(a, bb)
    dup.output("y0", dup.not_(g1))
    dup.output("y1", dup.not_(g2))
    assert circuit_fingerprint(shared.done()) != circuit_fingerprint(
        dup.done()
    )


def test_po_order_matters():
    a = Builder("po_a")
    x, y = a.inputs("x", "y")
    a.output("p", a.and_(x, y))
    a.output("q", a.or_(x, y))
    b = Builder("po_b")
    x, y = b.inputs("x", "y")
    o = b.or_(x, y)
    n = b.and_(x, y)
    b.output("p", o)
    b.output("q", n)
    assert circuit_fingerprint(a.done()) != circuit_fingerprint(b.done())


def test_equal_gate_fingerprints_for_isomorphic_cones():
    circuit = Builder("iso")
    a, bb = circuit.inputs("a", "b")
    g1 = circuit.and_(a, bb, name="first")
    g2 = circuit.and_(a, bb, name="second")
    circuit.output("y0", g1)
    circuit.output("y1", g2)
    fps = gate_fingerprints(circuit.done())
    assert fps[g1] == fps[g2]


def test_serialize_round_trip_preserves_everything():
    circuit = random_circuit(num_inputs=4, num_gates=12, seed=11,
                             max_arrival=3.0)
    clone = circuit_from_dict(circuit_to_dict(circuit))
    assert circuit_fingerprint(clone) == circuit_fingerprint(circuit)
    assert clone.name == circuit.name
    assert clone.inputs == circuit.inputs
    assert clone.outputs == circuit.outputs
    assert clone.input_arrival == circuit.input_arrival
    for gid, gate in circuit.gates.items():
        other = clone.gates[gid]
        assert (gate.gtype, gate.delay, gate.name) == (
            other.gtype, other.delay, other.name
        )
        assert gate.fanin == other.fanin
        assert gate.fanout == other.fanout
    assignment = {gid: 1 for gid in circuit.inputs}
    assert clone.evaluate_outputs(assignment) == circuit.evaluate_outputs(
        assignment
    )


def test_serialize_survives_json():
    import json

    circuit = carry_skip_adder(2, 2)
    data = json.loads(json.dumps(circuit_to_dict(circuit)))
    clone = circuit_from_dict(data)
    assert circuit_fingerprint(clone) == circuit_fingerprint(circuit)
