"""The cross-circuit batch-sim pre-pass: bit-identity and guards.

Three layers, bottom-up:

* ``batch_fault_coverage`` == per-item ``fault_coverage`` (including
  the ``REPRO_SIM_BATCH=0`` literal-fallback path) and ``PackedCorpus``
  reuse == raw-vector packing;
* ``BatchPrefilter.lookup`` answers exactly what ``fault_coverage``
  would (hits) and refuses anything it did not precompute (misses);
* ``run_jobs`` with ``batch_sim`` on/off produces identical result
  fingerprints, and the pre-pass leaves a telemetry record whose
  hit counter is live.
"""

from repro.atpg import (
    PackedCorpus,
    batch_fault_coverage,
    collapsed_faults,
    fault_coverage,
)
from repro.atpg.faultsim import random_vectors
from repro.circuits import carry_skip_adder, random_circuit
from repro.engine import (
    BatchPrefilter,
    EngineConfig,
    Job,
    StageCall,
    prefilter_from_jobs,
    run_jobs,
)
from repro.engine.sweep import CSA_MODEL
from repro.sim.kernel import kernel_enabled


def _items(seeds, patterns=64):
    items = []
    for seed in seeds:
        c = random_circuit(
            num_inputs=4, num_gates=14, num_outputs=2, seed=seed
        )
        items.append(
            (c, collapsed_faults(c), random_vectors(c, patterns, seed))
        )
    return items


def _essence(report):
    return report.total_faults, report.detected, report.undetected_faults


def test_batch_fault_coverage_matches_per_item():
    items = _items(range(6))
    batched = batch_fault_coverage(items)
    for (circuit, faults, vectors), got in zip(items, batched):
        want = fault_coverage(circuit, faults, vectors)
        assert _essence(got) == _essence(want)


def test_batch_fault_coverage_disabled_is_the_plain_loop(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BATCH", "0")
    items = _items(range(3))
    batched = batch_fault_coverage(items)
    for (circuit, faults, vectors), got in zip(items, batched):
        want = fault_coverage(circuit, faults, vectors)
        assert _essence(got) == _essence(want)


def test_batch_fault_coverage_single_and_empty():
    assert batch_fault_coverage([]) == []
    items = _items([9])
    (got,) = batch_fault_coverage(items)
    want = fault_coverage(*items[0])
    assert _essence(got) == _essence(want)


def test_packed_corpus_reuse_matches_raw_vectors():
    circuit = carry_skip_adder(nbits=2, block_size=2)
    faults = collapsed_faults(circuit)
    vectors = random_vectors(circuit, 100, 3)
    corpus = PackedCorpus(circuit, vectors)
    assert corpus.fresh_for(circuit, corpus.block)
    want = fault_coverage(circuit, faults, vectors)
    got = fault_coverage(circuit, faults, corpus)
    assert _essence(got) == _essence(want)
    # a corpus for another circuit is stale and falls back to its raw
    # vectors rather than answering with the wrong packing
    other = carry_skip_adder(nbits=2, block_size=2)
    assert not corpus.fresh_for(other, corpus.block)


def test_prefilter_hit_is_exact_and_misses_are_safe():
    circuits = [
        random_circuit(num_inputs=4, num_gates=12, num_outputs=2, seed=s)
        for s in (31, 32)
    ]
    pre = BatchPrefilter.build([(c, None) for c in circuits])
    assert len(pre) == 2
    for c in circuits:
        faults = collapsed_faults(c)
        vectors = random_vectors(c, 64, 7)
        detected = pre.lookup(c, vectors, faults)
        assert detected is not None
        report = fault_coverage(c, faults, vectors)
        undet = set(report.undetected_faults)
        assert detected == [f for f in faults if f not in undet]
        # subsets are exact: per-fault detection is independent
        subset = faults[::2]
        assert pre.lookup(c, vectors, subset) == [
            f for f in subset if f not in undet
        ]

    c = circuits[0]
    faults = collapsed_faults(c)
    # different vector pool -> miss
    assert pre.lookup(c, random_vectors(c, 64, 8), faults) is None
    assert pre.lookup(c, random_vectors(c, 63, 7), faults) is None
    # unknown circuit -> miss
    stranger = random_circuit(num_inputs=4, num_gates=12, seed=999)
    assert (
        pre.lookup(stranger, random_vectors(stranger, 64, 7),
                   collapsed_faults(stranger))
        is None
    )
    assert pre.counters["prefilter_hits"] == 4
    assert pre.counters["prefilter_misses"] == 3


def test_prefilter_covers_planted_faults():
    from repro.fuzz import ScenarioSpec, build_scenario

    spec = ScenarioSpec(
        name="plant s1",
        base={"factory": "random_redundant",
              "params": {"seed": 1, "num_inputs": 4, "num_gates": 10}},
        seed=1,
        plants=2,
    )
    planted = build_scenario(spec)
    job = Job(
        name=spec.name,
        factory="fuzz_planted",
        params=spec.to_dict(),
        pipeline=[StageCall("fuzz_grade", {"oracle": False})],
    )
    pre = prefilter_from_jobs([job, job])
    assert pre is not None
    vectors = random_vectors(planted.circuit, 64, 7)
    # the planted (uncollapsed) ground-truth faults must be in the
    # graded universe, or grade_scenario's direct classification misses
    assert (
        pre.lookup(planted.circuit, vectors, planted.faults) is not None
    )


def test_prefilter_skips_sweeps_without_classifying_stages():
    job = Job(
        name="delay only",
        factory="carry_skip_adder",
        params={"nbits": 2, "block": 2},
        pipeline=[StageCall("sense_delay", {})],
    )
    assert prefilter_from_jobs([job, job]) is None


SMOKE_JOBS = [
    Job(
        name="csa 2.2",
        factory="carry_skip_adder",
        params={"nbits": 2, "block": 2},
        pipeline=[
            StageCall("atpg", {}),
            StageCall("kms", {"model": CSA_MODEL, "mode": "static"}),
        ],
    ),
    Job(
        name="rand s3",
        factory="random_redundant",
        params={"seed": 3, "num_inputs": 4, "num_gates": 8},
        pipeline=[
            StageCall("atpg", {}),
            StageCall("kms", {"model": {"kind": "as_built"},
                              "mode": "static"}),
            StageCall("verify", {}),
        ],
    ),
]


def test_run_jobs_batch_sim_ab_identity():
    on = run_jobs(SMOKE_JOBS, EngineConfig(jobs=1, batch_sim=True))
    off = run_jobs(SMOKE_JOBS, EngineConfig(jobs=1, batch_sim=False))
    assert on.ok and off.ok
    assert [(r.name, r.ok, r.fingerprint) for r in on.results] == [
        (r.name, r.ok, r.fingerprint) for r in off.results
    ]

    pre = [r for r in on.telemetry.records if r.stage == "batch_prefilter"]
    assert len(pre) == 1
    counters = pre[0].to_dict()["counters"]
    assert counters["prefilter_entries"] == len(SMOKE_JOBS)
    if kernel_enabled():
        # under REPRO_SIM_LEGACY the pre-pass still precomputes, but
        # through the per-item interpreted loop -- no batched dispatch
        assert counters["batch_dispatches"] >= 1
    assert counters["prefilter_hits"] > 0

    assert not any(
        r.stage == "batch_prefilter" for r in off.telemetry.records
    )


def test_run_jobs_env_switch_disables_prepass(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BATCH", "0")
    report = run_jobs(SMOKE_JOBS, EngineConfig(jobs=1))
    assert report.ok
    assert not any(
        r.stage == "batch_prefilter" for r in report.telemetry.records
    )


def test_single_job_has_no_prepass():
    report = run_jobs(
        SMOKE_JOBS[:1], EngineConfig(jobs=1, batch_sim=True)
    )
    assert report.ok
    assert not any(
        r.stage == "batch_prefilter" for r in report.telemetry.records
    )
