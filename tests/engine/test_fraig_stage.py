"""The fraig engine stage and the verify stage's method switch."""

from repro.engine import (
    EngineConfig,
    Job,
    StageCall,
    execute_job,
    run_jobs,
)
from repro.engine.telemetry import Telemetry


def _job(pipeline, seed=7):
    return Job(
        name="t", factory="random_redundant", params={"seed": seed},
        pipeline=pipeline,
    )


def test_fraig_stage_sweeps_and_verifies():
    result = execute_job(_job([
        StageCall("fraig", {"seed": 0}),
        StageCall("verify", {}),
    ]))
    assert result.ok, result.error
    payload = result.results["fraig"]
    assert payload["ands_out"] <= payload["ands_in"]
    assert payload["gates_out"] > 0
    assert result.results["verify"] == {
        "equivalent": True, "method": "fraig",
    }


def test_verify_method_param_selects_engine():
    for method in ("fraig", "cnf"):
        result = execute_job(_job([
            StageCall("kms", {"model": {"kind": "as_built"}}),
            StageCall("verify", {"method": method}),
        ]))
        assert result.ok, result.error
        assert result.results["verify"]["method"] == method
        assert result.results["verify"]["equivalent"]


def test_verify_sat_calls_attributed_per_method():
    """Telemetry must show the budget difference the A/B CI job checks:
    cnf = one call per verify, fraig = zero on equivalent pairs."""
    calls = {}
    for method in ("fraig", "cnf"):
        telemetry = Telemetry()
        result = execute_job(
            _job([
                StageCall("kms", {"model": {"kind": "as_built"}}),
                StageCall("verify", {"method": method}),
            ]),
            telemetry=telemetry,
        )
        assert result.ok
        record = next(
            r for r in telemetry.records if r.stage == "verify"
        )
        calls[method] = record.counters["sat_calls"]
    assert calls["cnf"] == 1
    assert calls["fraig"] == 0


def test_fraig_stage_is_cached(tmp_path):
    job = _job([StageCall("fraig", {"seed": 0})])
    config = EngineConfig(cache_dir=str(tmp_path))
    cold = run_jobs([job], config=config)
    warm = run_jobs([job], config=config)
    assert cold.ok and warm.ok
    warm_record = next(
        r for r in warm.telemetry.records if r.stage == "fraig"
    )
    assert warm_record.cache == "hit"
    assert (
        warm.results[0].results["fraig"]
        == cold.results[0].results["fraig"]
    )
