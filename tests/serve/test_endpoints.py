"""Endpoint tests against a live in-process daemon.

One module-scoped daemon (2 workers, debug hooks on) serves every test
here; tests that need special pool shapes (queue depth, retries) live
in ``test_supervision.py``.  Each test uses distinct circuits unless it
is *about* dedup, since the daemon memoizes for its whole lifetime.
"""

import pytest

from repro.engine import StageCall, circuit_to_dict, run_pipeline
from repro.engine.hashing import circuit_fingerprint
from repro.engine.serialize import circuit_from_dict
from repro.circuits import named_circuit
from repro.io import write_blif
from repro.serve import InProcessServer, ServeClient, ServeConfig, ServeError
from repro.serve.protocol import DEFAULT_MODEL


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(workers=2, retries=1, debug=True,
                         job_timeout=120.0)
    with InProcessServer(config) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(port=server.port)


def test_health_and_stats_shape(client):
    assert client.health()["ok"] is True
    stats = client.stats()
    assert {"counters", "pool", "cache", "config"} <= set(stats)
    assert stats["pool"]["size"] == 2
    assert {"hits", "misses", "evictions", "entries", "bytes"} <= set(
        stats["cache"]
    )


def test_submit_result_matches_one_shot_pipeline(client):
    """A served kms result is bit-identical to the in-process run."""
    job = client.submit_builtin("fig1", pipeline="kms")
    response = client.wait(job["job_id"], timeout=90)
    assert response["state"] == "done"
    served = response["result"]
    assert served["ok"] is True

    circuit = named_circuit("fig1")
    oracle = run_pipeline(
        circuit,
        [StageCall("kms", {"model": DEFAULT_MODEL, "mode": "static"})],
        keep_final=True,
    )
    assert oracle.ok
    oracle_final = circuit_from_dict(oracle.final_circuit)
    assert served["final_fingerprint"] == circuit_fingerprint(oracle_final)
    assert served["blif"] == write_blif(oracle_final)
    assert served["results"]["kms"] == oracle.to_dict()["results"]["kms"]


def test_status_endpoint_reaches_terminal_state(client):
    job = client.submit_builtin("rca4", pipeline="atpg")
    response = client.wait(job["job_id"], timeout=90)
    status = client.status(job["job_id"])
    assert status["state"] == response["state"] == "done"
    assert status["job_id"] == job["job_id"]
    assert status["attempts"] >= 1


def test_completed_submission_coalesces_from_memo(client):
    first = client.submit_builtin("cla4", pipeline="kms")
    r1 = client.wait(first["job_id"], timeout=90)
    second = client.submit_builtin("cla4", pipeline="kms")
    assert second["coalesced"] == "completed"
    r2 = client.wait(second["job_id"], timeout=10)
    assert r2["result"]["final_fingerprint"] == \
        r1["result"]["final_fingerprint"]
    # same execution, not a re-run
    assert second["exec_id"] == first["exec_id"]


def test_json_spelling_coalesces_with_builtin(client):
    circuit = named_circuit("rca8")
    a = client.submit_builtin("rca8", pipeline="kms")
    b = client.submit(
        {"kind": "json", "circuit": circuit_to_dict(circuit)},
        pipeline="kms",
    )
    assert b["key"] == a["key"]
    assert b["coalesced"] in ("inflight", "completed")


def test_different_pipelines_do_not_coalesce(client):
    a = client.submit_builtin("fig2", pipeline="kms")
    b = client.submit_builtin("fig2", pipeline="atpg")
    assert a["key"] != b["key"]
    assert b["coalesced"] is None
    assert client.wait(a["job_id"], timeout=90)["state"] == "done"
    assert client.wait(b["job_id"], timeout=90)["state"] == "done"


def test_events_stream_has_full_lifecycle(client):
    job = client.submit_builtin("fig4", pipeline="kms")
    client.wait(job["job_id"], timeout=90)
    events = list(client.events(job["job_id"]))
    kinds = [e["type"] for e in events]
    assert kinds[0] == "queued"
    assert "running" in kinds
    assert kinds[-1] == "done"
    stages = [e for e in events if e["type"] == "stage"]
    assert stages, "expected streamed telemetry records"
    record = stages[0]["record"]
    assert {"job", "stage", "label", "seconds", "cache",
            "counters", "error"} <= set(record)


def test_live_event_stream_while_running(client):
    """Subscribe before the job finishes; the stream must still end."""
    job = client.submit_builtin(
        "rand", pipeline="kms", debug={"spin": 0.6}, name="slowpoke"
    )
    seen = []
    for event in client.events(job["job_id"]):
        seen.append(event["type"])
    assert seen[-1] == "done"
    assert "stage" in seen


def test_result_long_poll_waits(client):
    job = client.submit_builtin(
        "randred", pipeline="kms", debug={"spin": 0.5}
    )
    # wait=0 immediately -> almost certainly still running (202)
    early = client.result(job["job_id"], wait=0)
    response = client.result(job["job_id"], wait=60)
    assert response is not None and response["state"] == "done"
    assert early is None or early["state"] == "done"


def test_bad_submissions_are_400(client):
    with pytest.raises(ServeError) as exc:
        client.submit({"kind": "builtin", "name": "no-such"}, "kms")
    assert exc.value.status == 400
    with pytest.raises(ServeError) as exc:
        client.submit_builtin("fig1", pipeline="mystery")
    assert exc.value.status == 400
    with pytest.raises(ServeError) as exc:
        client.submit_blif("not blif at all")
    assert exc.value.status == 400


def test_unknown_job_is_404(client):
    for probe in (
        lambda: client.status("j999999"),
        lambda: client.result("j999999"),
        lambda: client.cancel("j999999"),
        lambda: list(client.events("j999999")),
    ):
        with pytest.raises(ServeError) as exc:
            probe()
        assert exc.value.status == 404


def test_unknown_routes_are_404_or_405(client):
    with pytest.raises(ServeError) as exc:
        client._request("GET", "/nonsense")
    assert exc.value.status == 404
    with pytest.raises(ServeError) as exc:
        client._request("DELETE", "/jobs")
    assert exc.value.status == 405


def test_malformed_body_and_wait_are_400(client):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", client.port, timeout=10)
    conn.request("POST", "/jobs", body=b"{not json",
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    assert response.status == 400
    conn.close()

    job = client.submit_builtin("csa2.2", pipeline="atpg")
    with pytest.raises(ServeError) as exc:
        client._request("GET", f"/jobs/{job['job_id']}/result?wait=never")
    assert exc.value.status == 400
    client.wait(job["job_id"], timeout=90)


def test_artifact_store_shared_across_requests(client):
    """Same circuit under two *different* job keys still reuses the
    stage artifact: the second pipeline's kms stage is a cache hit."""
    blif = write_blif(named_circuit("csa4.4"))
    a = client.submit_blif(blif, pipeline="kms")
    client.wait(a["job_id"], timeout=90)
    # kms+verify expands to [kms, verify]: different key, same kms stage
    b = client.submit_blif(blif, pipeline="verify")
    assert b["coalesced"] is None
    response = client.wait(b["job_id"], timeout=90)
    records = {r["stage"]: r["cache"] for r in response["result"]["records"]}
    assert records["kms"] == "hit"
    assert response["result"]["results"]["verify"]["equivalent"] is True
