"""Wire-protocol unit tests: pipelines, circuit sources, job keys,
spec validation.  No daemon, no processes -- these are pure."""

import pytest

from repro.engine import circuit_to_dict
from repro.engine.hashing import circuit_fingerprint
from repro.io import write_blif
from repro.serve import (
    BadRequest,
    build_pipeline,
    job_key,
    parse_spec,
    resolve_circuit,
)


# -- build_pipeline ----------------------------------------------------- #

def test_named_pipelines_expand():
    kms = build_pipeline("kms", {"mode": "viability"})
    assert [c.stage for c in kms] == ["kms"]
    assert kms[0].params["mode"] == "viability"

    verify = build_pipeline("verify", {"method": "cnf"})
    assert [c.stage for c in verify] == ["kms", "verify"]
    assert verify[1].params["method"] == "cnf"

    sweep = build_pipeline("sweep")
    assert [c.stage for c in sweep] == [
        "atpg", "sense_delay", "kms", "sense_delay"
    ]  # the Table I pipeline

    assert [c.stage for c in build_pipeline("atpg")] == ["atpg"]
    assert [c.stage for c in build_pipeline("fraig")] == ["fraig"]


def test_unknown_pipeline_is_bad_request():
    with pytest.raises(BadRequest, match="unknown pipeline"):
        build_pipeline("mystery")
    with pytest.raises(BadRequest, match="non-empty list"):
        build_pipeline([])
    with pytest.raises(BadRequest, match="bad pipeline entry"):
        build_pipeline([{"params": {}}])
    with pytest.raises(BadRequest):
        build_pipeline([{"stage": "nonsense"}])


def test_explicit_stage_list_round_trips():
    calls = build_pipeline([
        {"stage": "kms", "params": {"mode": "static"}},
        {"stage": "verify", "params": {"method": "fraig"},
         "label": "check"},
    ])
    assert [c.stage for c in calls] == ["kms", "verify"]
    assert calls[1].label == "check"


def test_live_model_objects_rejected_on_the_wire():
    with pytest.raises(BadRequest, match="cross the wire"):
        build_pipeline([{"stage": "kms", "params": {"_model": object()}}])


# -- resolve_circuit ---------------------------------------------------- #

def test_json_spelling_preserves_fingerprint():
    builtin = resolve_circuit({"kind": "builtin", "name": "csa4.2"})
    as_json = resolve_circuit({
        "kind": "json", "circuit": circuit_to_dict(builtin)
    })
    assert circuit_fingerprint(as_json) == circuit_fingerprint(builtin)


def test_blif_spelling_is_self_consistent():
    # BLIF is lossy (arrival times; NAND decomposition on re-parse),
    # so builtin-vs-BLIF need not coalesce -- but the same BLIF text
    # always resolves to the same fingerprint.
    builtin = resolve_circuit({"kind": "builtin", "name": "csa4.2"})
    text = write_blif(builtin)
    one = resolve_circuit({"kind": "blif", "text": text})
    two = resolve_circuit({"kind": "blif", "text": text})
    assert circuit_fingerprint(one) == circuit_fingerprint(two)


def test_factory_source():
    circuit = resolve_circuit({
        "kind": "factory",
        "factory": "carry_skip_adder",
        "params": {"nbits": 4, "block": 2},
    })
    assert circuit.num_gates() > 0


@pytest.mark.parametrize("source", [
    None,
    {"no": "kind"},
    {"kind": "alien"},
    {"kind": "builtin", "name": "no-such-circuit"},
    {"kind": "builtin"},  # missing field
    {"kind": "blif", "text": "this is not blif"},
    {"kind": "json", "circuit": {"bogus": True}},
])
def test_bad_circuit_sources_are_bad_requests(source):
    with pytest.raises(BadRequest):
        resolve_circuit(source)


# -- job_key ------------------------------------------------------------ #

def test_job_key_is_spelling_independent():
    builtin = resolve_circuit({"kind": "builtin", "name": "fig1"})
    as_json = resolve_circuit({
        "kind": "json", "circuit": circuit_to_dict(builtin)
    })
    pipeline = build_pipeline("kms")
    assert job_key(circuit_fingerprint(builtin), pipeline) == \
        job_key(circuit_fingerprint(as_json), pipeline)


def test_job_key_discriminates_pipeline_and_params():
    fp = circuit_fingerprint(
        resolve_circuit({"kind": "builtin", "name": "fig1"})
    )
    static = job_key(fp, build_pipeline("kms", {"mode": "static"}))
    viab = job_key(fp, build_pipeline("kms", {"mode": "viability"}))
    atpg = job_key(fp, build_pipeline("atpg"))
    assert len({static, viab, atpg}) == 3


# -- parse_spec --------------------------------------------------------- #

def test_parse_spec_defaults_and_knobs():
    spec = parse_spec({
        "circuit": {"kind": "builtin", "name": "fig1"},
        "pipeline": "kms",
        "priority": -5,
        "timeout": 2.5,
        "name": "mine",
    })
    assert spec.name == "mine"
    assert spec.priority == -5
    assert spec.timeout == 2.5
    assert [c.stage for c in spec.pipeline] == ["kms"]

    bare = parse_spec({"circuit": {"kind": "builtin", "name": "fig1"}})
    assert bare.priority == 0 and bare.timeout is None
    assert [c.stage for c in bare.pipeline] == ["kms"]  # default


@pytest.mark.parametrize("body,match", [
    ("not a dict", "JSON object"),
    ({}, "circuit"),
    ({"circuit": {"kind": "builtin", "name": "fig1"},
      "timeout": "soon"}, "bad timeout"),
    ({"circuit": {"kind": "builtin", "name": "fig1"},
      "timeout": -1}, "positive"),
    ({"circuit": {"kind": "builtin", "name": "fig1"},
      "priority": "high"}, "bad priority"),
])
def test_parse_spec_rejects_malformed_bodies(body, match):
    with pytest.raises(BadRequest, match=match):
        parse_spec(body)


def test_debug_hooks_require_debug_daemon():
    body = {
        "circuit": {"kind": "builtin", "name": "fig1"},
        "debug": {"spin": 1},
    }
    with pytest.raises(BadRequest, match="debug"):
        parse_spec(body, debug_enabled=False)
    spec = parse_spec(body, debug_enabled=True)
    assert spec.debug == {"spin": 1}


def test_worker_payload_is_plain_data():
    import json

    spec = parse_spec({"circuit": {"kind": "builtin", "name": "fig1"}})
    payload = spec.worker_payload()
    json.dumps(payload)  # picklable AND json-able: plain dicts only
    assert payload["pipeline"][0]["stage"] == "kms"
