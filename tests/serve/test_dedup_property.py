"""The coalescing contract, property-style: N concurrent submissions
of the same work cost ONE execution and return N identical,
fingerprint-checked results."""

import threading

from repro.engine import StageCall, run_pipeline
from repro.engine.hashing import circuit_fingerprint
from repro.engine.serialize import circuit_from_dict
from repro.circuits import named_circuit
from repro.serve import InProcessServer, ServeClient, ServeConfig
from repro.serve.protocol import DEFAULT_MODEL

N = 16


def test_n_concurrent_submissions_one_execution_identical_results():
    config = ServeConfig(workers=2, retries=1, debug=True)
    with InProcessServer(config) as server:
        client = ServeClient(port=server.port)
        barrier = threading.Barrier(N)
        responses = [None] * N
        errors = []

        def submit(i):
            try:
                barrier.wait(timeout=30)
                # spin keeps the first execution in flight long enough
                # that stragglers coalesce onto it rather than hitting
                # the completed-memo path -- but both paths must agree,
                # so the assertion below does not distinguish them.
                job = client.submit_builtin(
                    "csa8.2", pipeline="kms", debug={"spin": 1.0}
                )
                responses[i] = client.wait(job["job_id"], timeout=120)
                responses[i]["_handle"] = job
            except Exception as exc:  # surfaced after join
                errors.append((i, exc))

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(N)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not errors, errors

        stats = client.stats()

    # one execution, N submissions, N-1 coalesced
    counters = stats["counters"]
    assert counters["submissions"] == N
    assert counters["executions_created"] == 1
    assert counters["coalesced_total"] == N - 1
    assert stats["stage_executions"] == {"kms": 1}

    # every client saw the same done result
    assert all(r is not None for r in responses)
    assert all(r["state"] == "done" for r in responses)
    fingerprints = {r["result"]["final_fingerprint"] for r in responses}
    assert len(fingerprints) == 1
    blifs = {r["result"]["blif"] for r in responses}
    assert len(blifs) == 1
    exec_ids = {r["_handle"]["exec_id"] for r in responses}
    assert len(exec_ids) == 1

    # and that result is bit-identical to the one-shot in-process run
    oracle = run_pipeline(
        named_circuit("csa8.2"),
        [StageCall("kms", {"model": DEFAULT_MODEL, "mode": "static"})],
        keep_final=True,
    )
    assert oracle.ok
    assert fingerprints == {
        circuit_fingerprint(circuit_from_dict(oracle.final_circuit))
    }
