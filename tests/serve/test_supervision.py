"""Supervisor behavior: crashes, timeouts, cancellation, backpressure,
and graceful drain.  These tests shape the pool deliberately (1 worker,
tiny queues) and inject faults through the debug hooks, so each gets
its own daemon."""

import threading
import time

import pytest

from repro.serve import InProcessServer, ServeClient, ServeConfig, ServeError


def _daemon(**overrides):
    config = ServeConfig(workers=1, retries=1, debug=True,
                         job_timeout=60.0)
    for key, value in overrides.items():
        setattr(config, key, value)
    return InProcessServer(config)


def test_crashed_worker_is_respawned_and_job_retried():
    """A worker dying mid-job must not drop the request: the pool
    respawns the process and the retry succeeds."""
    with _daemon() as server:
        client = ServeClient(port=server.port)
        job = client.submit_builtin(
            "fig1", pipeline="kms",
            debug={"exit_below_attempt": 2},  # die on attempt 1 only
        )
        response = client.wait(job["job_id"], timeout=90)
        assert response["state"] == "done"
        assert response["result"]["ok"] is True
        assert response["result"]["attempt"] == 2
        stats = client.stats()
        assert stats["pool"]["retried"] == 1
        # the slot respawned at least once beyond the initial spawn
        assert stats["pool"]["workers"][0]["restarts"] >= 2


def test_crash_budget_exhausted_fails_the_job():
    with _daemon(retries=1) as server:
        client = ServeClient(port=server.port)
        job = client.submit_builtin(
            "fig1", pipeline="kms",
            debug={"exit_below_attempt": 99},  # always dies
        )
        response = client.wait(job["job_id"], timeout=90)
        assert response["state"] == "failed"
        assert "crashed" in response["error"]
        assert response["result"] is None
        # the daemon survives: a healthy job still completes
        ok = client.submit_builtin("fig2", pipeline="kms")
        assert client.wait(ok["job_id"], timeout=90)["state"] == "done"


def test_timeout_kills_worker_and_is_not_retried():
    with _daemon() as server:
        client = ServeClient(port=server.port)
        job = client.submit_builtin(
            "fig1", pipeline="kms",
            timeout=0.5, debug={"spin": 30},
        )
        start = time.monotonic()
        response = client.wait(job["job_id"], timeout=30)
        elapsed = time.monotonic() - start
        assert response["state"] == "timeout"
        assert elapsed < 15, "timeout must not wait out the spin"
        stats = client.stats()
        assert stats["counters"]["timeout"] == 1
        assert stats["pool"]["retried"] == 0  # poisoned: no retry
        # pool recovered
        ok = client.submit_builtin("fig2", pipeline="kms")
        assert client.wait(ok["job_id"], timeout=90)["state"] == "done"


def test_cancel_queued_job_resolves_immediately():
    with _daemon() as server:
        client = ServeClient(port=server.port)
        # occupy the single worker...
        busy = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 3}
        )
        # ...so this one sits in the queue
        queued = client.submit_builtin("fig2", pipeline="kms")
        cancelled = client.cancel(queued["job_id"])
        assert cancelled["state"] == "cancelled"
        response = client.result(queued["job_id"])
        assert response["state"] == "cancelled"
        assert response["result"] is None
        assert client.wait(busy["job_id"], timeout=90)["state"] == "done"


def test_cancel_running_job_kills_the_worker():
    with _daemon() as server:
        client = ServeClient(port=server.port)
        job = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 60}
        )
        deadline = time.monotonic() + 10
        while client.status(job["job_id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        client.cancel(job["job_id"])
        response = client.wait(job["job_id"], timeout=30)
        assert response["state"] == "cancelled"
        # slot is free again well before the 60s spin would have ended
        ok = client.submit_builtin("fig2", pipeline="kms")
        assert client.wait(ok["job_id"], timeout=90)["state"] == "done"


def test_cancel_is_per_client_not_per_execution():
    """Two clients share one execution; one cancelling must not stop
    the other's work."""
    with _daemon() as server:
        client = ServeClient(port=server.port)
        a = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 1.0}
        )
        b = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 1.0}
        )
        assert b["coalesced"] == "inflight"
        assert b["exec_id"] == a["exec_id"]
        client.cancel(a["job_id"])
        assert client.status(a["job_id"])["state"] == "cancelled"
        response = client.wait(b["job_id"], timeout=90)
        assert response["state"] == "done"
        assert response["result"]["ok"] is True


def test_backpressure_returns_429():
    with _daemon(queue_depth=1) as server:
        client = ServeClient(port=server.port)
        running = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 2}
        )
        queued = client.submit_builtin("fig2", pipeline="kms")
        with pytest.raises(ServeError) as exc:
            client.submit_builtin("fig4", pipeline="kms")
        assert exc.value.status == 429
        # coalescing consumes no queue slot: a duplicate of the running
        # job is still accepted while the queue is full
        dup = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 2}
        )
        assert dup["coalesced"] == "inflight"
        for handle in (running, queued, dup):
            assert client.wait(handle["job_id"], timeout=90)[
                "state"] == "done"
        # queue drained: new work accepted again
        late = client.submit_builtin("fig4", pipeline="kms")
        assert client.wait(late["job_id"], timeout=90)["state"] == "done"


def test_drain_refuses_new_work_but_finishes_in_flight():
    server = _daemon()
    server.start()
    try:
        client = ServeClient(port=server.port)
        job = client.submit_builtin(
            "fig1", pipeline="kms", debug={"spin": 1.0}
        )
        results = {}

        def fetch():
            results["response"] = client.wait(job["job_id"], timeout=60)

        waiter = threading.Thread(target=fetch)
        waiter.start()
        time.sleep(0.2)  # let the job reach a worker
    finally:
        server.stop()  # drain: must let the in-flight job finish
    waiter.join(timeout=60)
    assert results["response"]["state"] == "done"
    assert results["response"]["result"]["ok"] is True
