"""Common-divisor extraction across outputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import check
from repro.synth.divide import cover_to_expr
from repro.synth.extract import (
    extract_common_divisors,
    shared_covers_to_circuit,
)
from repro.twolevel import Cover, Cube


def _eval_expr(expr, leaf_values):
    """Evaluate an algebraic expression under var -> bool values."""
    from repro.synth.divide import lit_positive, lit_var

    def cube_true(cube):
        return all(
            leaf_values[lit_var(l)] == (1 if lit_positive(l) else 0)
            for l in cube
        )

    return any(cube_true(c) for c in expr)


def _eval_extraction(result, num_vars, point):
    values = {i: point[i] for i in range(num_vars)}
    for var, expr in result.nodes.items():
        values[var] = 1 if _eval_expr(expr, values) else 0
    return {
        name: _eval_expr(expr, values)
        for name, expr in result.outputs.items()
    }


class TestExtraction:
    def test_shared_kernel_pulled_out(self):
        # f = ad + ae,  g = bd + be: kernel (d + e) shared
        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        exprs = {"f": cover_to_expr(f), "g": cover_to_expr(g)}
        result = extract_common_divisors(exprs, 4)
        assert result.nodes  # something was extracted
        assert result.literals_after < result.literals_before

    def test_function_preserved(self):
        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        exprs = {"f": cover_to_expr(f), "g": cover_to_expr(g)}
        result = extract_common_divisors(exprs, 4)
        for bits in range(16):
            point = [(bits >> i) & 1 for i in range(4)]
            values = _eval_extraction(result, 4, point)
            assert values["f"] == f.evaluate(point)
            assert values["g"] == g.evaluate(point)

    @given(seed=st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_random_functions_preserved(self, seed):
        import random

        rng = random.Random(seed)
        covers = {}
        for name in ("f", "g", "h"):
            rows = []
            for _ in range(rng.randint(1, 5)):
                rows.append(
                    "".join(rng.choice("01-") for _ in range(4))
                )
            covers[name] = Cover(
                4, [Cube.from_string(r) for r in rows]
            )
        exprs = {n: cover_to_expr(c) for n, c in covers.items()}
        result = extract_common_divisors(exprs, 4)
        for bits in range(16):
            point = [(bits >> i) & 1 for i in range(4)]
            values = _eval_extraction(result, 4, point)
            for name, cover in covers.items():
                assert values[name] == cover.evaluate(point)


class TestSharedLowering:
    def test_circuit_semantics(self):
        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        circuit = shared_covers_to_circuit(
            "shared", ["a", "b", "d", "e"], {"f": f, "g": g}
        )
        check(circuit)
        for bits in range(16):
            point = [(bits >> i) & 1 for i in range(4)]
            assign = {
                circuit.find_input(n): point[i]
                for i, n in enumerate(["a", "b", "d", "e"])
            }
            values = circuit.evaluate(assign)
            assert values[circuit.find_output("f")] == int(
                f.evaluate(point)
            )
            assert values[circuit.find_output("g")] == int(
                g.evaluate(point)
            )

    def test_sharing_saves_gates(self):
        from repro.synth import covers_to_circuit

        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        names = ["a", "b", "d", "e"]
        flat = covers_to_circuit("flat", names, {"f": f, "g": g})
        shared = shared_covers_to_circuit(
            "shared", names, {"f": f, "g": g}
        )
        assert shared.num_gates() <= flat.num_gates()
