"""The generalized bypass transform (GBX)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import count_redundancies
from repro.circuits import mcnc_circuit, random_circuit
from repro.network import check
from repro.sat import check_equivalence
from repro.synth.bypass import bypass_critical_output, generalized_bypass
from repro.timing import UnitDelayModel


class TestGeneralizedBypass:
    @given(seed=st.integers(0, 40), value=st.integers(0, 1))
    @settings(max_examples=15, deadline=None)
    def test_function_preserved(self, seed, value):
        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        original = c.copy()
        out = c.output_names()[0]
        inp = c.input_names()[0]
        generalized_bypass(c, out, inp, cofactor_value=value)
        check(c)
        assert check_equivalence(original, c).equivalent

    def test_stats_record_arrivals(self):
        model = UnitDelayModel()
        c = mcnc_circuit("rd73")
        c.input_arrival[c.inputs[0]] = 8.0
        stats = generalized_bypass(
            c, c.output_names()[0], "x0", model=model
        )
        check(c)
        assert stats.selector == "x0"
        assert stats.arrival_before > 0
        assert stats.arrival_after > 0

    def test_creates_redundancies(self):
        """The paper's opening premise: restructuring for speed
        introduces stuck-at redundancies.  Bypassing keeps the original
        cone next to an overlapping flat cofactor -- heavily redundant.
        """
        from repro.network.transform import sweep

        model = UnitDelayModel()
        c = mcnc_circuit("rd73")
        for name in c.output_names()[:-1]:
            c.remove_gate(c.find_output(name))
        sweep(c)
        c.input_arrival[c.inputs[0]] = 8.0
        generalized_bypass(c, c.output_names()[0], "x0", model=model)
        assert count_redundancies(c) >= 10

    def test_kms_handles_bypassed_circuit(self):
        from repro.core import kms, verify_transformation

        model = UnitDelayModel()
        c = mcnc_circuit("z4ml")
        c.input_arrival[c.inputs[0]] = 8.0
        generalized_bypass(c, c.output_names()[0], "x0", model=model)
        result = kms(c, model=model)
        report = verify_transformation(c, result.circuit, model)
        assert report.ok, report.notes


class TestAutomaticBypass:
    def test_targets_critical_output(self):
        model = UnitDelayModel()
        c = mcnc_circuit("misex1")
        c.input_arrival[c.inputs[0]] = 8.0
        original = c.copy()
        stats = bypass_critical_output(c, model)
        assert stats is not None
        assert check_equivalence(original, c).equivalent

    def test_constant_outputs_skipped(self):
        from repro.network import Builder

        b = Builder()
        b.input("x")
        b.output("o", b.const(1))
        c = b.done()
        assert bypass_critical_output(c) is None
