"""NAND/NOR technology mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import fig4_c2_cone, random_circuit
from repro.network import Builder, GateType, check
from repro.sat import check_equivalence
from repro.synth.mapping import map_to_nand, map_to_nor


def _cell_census(circuit):
    kinds = {}
    for gate in circuit.gates.values():
        kinds.setdefault(gate.gtype, 0)
        kinds[gate.gtype] += 1
    return kinds


class TestNandMapping:
    @given(seed=st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_equivalence(self, seed):
        c = random_circuit(num_inputs=4, num_gates=12, seed=seed)
        mapped = map_to_nand(c)
        check(mapped)
        assert check_equivalence(c, mapped).equivalent

    def test_only_nand_and_not(self):
        c = fig4_c2_cone()
        mapped = map_to_nand(c)
        census = _cell_census(mapped)
        logic_kinds = {
            k
            for k in census
            if k
            not in (
                GateType.INPUT,
                GateType.OUTPUT,
                GateType.CONST0,
                GateType.CONST1,
                GateType.BUF,
            )
        }
        assert logic_kinds <= {GateType.NAND, GateType.NOT}
        # all NANDs are 2-input
        for gate in mapped.gates.values():
            if gate.gtype is GateType.NAND:
                assert len(gate.fanin) == 2

    def test_arrivals_preserved(self):
        c = fig4_c2_cone()
        mapped = map_to_nand(c)
        c0 = mapped.find_input("c0")
        assert mapped.input_arrival[c0] == 5.0

    def test_wide_gates(self):
        b = Builder()
        ins = b.inputs("a", "b", "c", "d", "e")
        b.output("o", b.nor(*ins))
        c = b.done()
        mapped = map_to_nand(c)
        assert check_equivalence(c, mapped).equivalent

    def test_complex_gates_rejected(self):
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", b.xor(x, y))
        with pytest.raises(ValueError):
            map_to_nand(b.done())


class TestNorMapping:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_equivalence(self, seed):
        c = random_circuit(num_inputs=4, num_gates=10, seed=seed)
        mapped = map_to_nor(c)
        assert check_equivalence(c, mapped).equivalent

    def test_only_nor_and_not(self):
        mapped = map_to_nor(fig4_c2_cone())
        kinds = _cell_census(mapped)
        logic_kinds = {
            k
            for k in kinds
            if k
            not in (
                GateType.INPUT,
                GateType.OUTPUT,
                GateType.CONST0,
                GateType.CONST1,
                GateType.BUF,
            )
        }
        assert logic_kinds <= {GateType.NOR, GateType.NOT}


class TestKmsOnMappedCircuits:
    def test_kms_runs_after_mapping(self):
        """Mapped networks are simple-gate networks: the algorithm's
        precondition survives technology mapping."""
        from repro.atpg import is_irredundant
        from repro.core import kms

        c = fig4_c2_cone()
        mapped = map_to_nand(c)
        result = kms(mapped)
        assert check_equivalence(mapped, result.circuit).equivalent
        assert is_irredundant(result.circuit)
