"""covers -> circuit -> covers round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.sat import check_equivalence
from repro.synth import (
    collapse_to_covers,
    covers_to_circuit,
    resynthesize,
)
from repro.twolevel import Cover, Cube


def covers(num_vars=4, max_cubes=5):
    return st.lists(
        st.text(alphabet="01-", min_size=num_vars, max_size=num_vars),
        min_size=0,
        max_size=max_cubes,
    ).map(
        lambda rows: Cover(num_vars, [Cube.from_string(r) for r in rows])
    )


@given(covers(), covers())
@settings(max_examples=50, deadline=None)
def test_covers_to_circuit_semantics(f, g):
    circuit = covers_to_circuit(
        "m", ["x0", "x1", "x2", "x3"], {"f": f, "g": g}
    )
    for bits in range(16):
        point = [(bits >> i) & 1 for i in range(4)]
        assign = {
            circuit.find_input(f"x{i}"): point[i] for i in range(4)
        }
        values = circuit.evaluate(assign)
        assert values[circuit.find_output("f")] == int(f.evaluate(point))
        assert values[circuit.find_output("g")] == int(g.evaluate(point))


def test_cover_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        covers_to_circuit("m", ["a"], {"f": Cover(2)})


@given(seed=st.integers(0, 30))
@settings(max_examples=15, deadline=None)
def test_collapse_then_rebuild_is_equivalent(seed):
    circuit = random_circuit(num_inputs=4, num_gates=12, seed=seed)
    rebuilt = resynthesize(circuit)
    assert check_equivalence(circuit, rebuilt).equivalent


def test_collapse_covers_are_exact(and_or_circuit):
    names, covs = collapse_to_covers(and_or_circuit)
    assert names == ["a", "b", "c"]
    y = covs["y"]
    # y = ab + c
    for bits in range(8):
        point = [(bits >> i) & 1 for i in range(3)]
        expected = (point[0] and point[1]) or point[2]
        assert y.evaluate(point) == expected


def test_resynthesize_keeps_arrivals():
    from repro.network import Builder

    b = Builder()
    x = b.input("x", arrival=3.0)
    y = b.input("y")
    b.output("o", b.and_(x, y))
    c = b.done()
    r = resynthesize(c)
    assert r.input_arrival[r.find_input("x")] == 3.0
