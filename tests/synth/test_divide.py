"""Algebraic division and kernels."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.divide import (
    cover_to_expr,
    cube_free,
    divide,
    expr_to_cover,
    kernels,
    lit_id,
    make_cube_free,
    most_common_literal,
    best_kernel,
)
from repro.twolevel import Cover


def _expr(*cubes):
    return [frozenset(c) for c in cubes]


class TestDivide:
    def test_textbook_example(self):
        # f = ab + ac + d ; divide by (b + c) -> quotient a, remainder d
        a, b, c, d = (lit_id(i, True) for i in range(4))
        expr = _expr({a, b}, {a, c}, {d})
        quotient, remainder = divide(expr, _expr({b}, {c}))
        assert quotient == [frozenset({a})]
        assert remainder == [frozenset({d})]

    def test_no_division(self):
        a, b, c = (lit_id(i, True) for i in range(3))
        expr = _expr({a}, {b})
        quotient, remainder = divide(expr, _expr({c}))
        assert quotient == []
        assert remainder == expr

    @given(st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_division_identity(self, seed):
        """expr == divisor*quotient + remainder as cube sets."""
        import random

        rng = random.Random(seed)
        lits = [lit_id(i, rng.random() < 0.5) for i in range(4)]
        expr = [
            frozenset(rng.sample(lits, rng.randint(1, 3)))
            for _ in range(rng.randint(1, 6))
        ]
        divisor = [
            frozenset(rng.sample(lits, rng.randint(1, 2)))
            for _ in range(rng.randint(1, 2))
        ]
        quotient, remainder = divide(expr, divisor)
        rebuilt = {q | d for q in quotient for d in divisor} | set(remainder)
        assert rebuilt <= set(expr)
        # every expr cube not in remainder must come from the product
        assert set(expr) <= rebuilt | set(remainder)


class TestCubeFree:
    def test_cube_free(self):
        a, b, c = (lit_id(i, True) for i in range(3))
        assert cube_free(_expr({a, b}, {c}))
        assert not cube_free(_expr({a, b}, {a, c}))
        assert not cube_free([])

    def test_make_cube_free(self):
        a, b, c = (lit_id(i, True) for i in range(3))
        result = make_cube_free(_expr({a, b}, {a, c}))
        assert frozenset({b}) in result and frozenset({c}) in result


class TestKernels:
    def test_kernels_are_cube_free(self):
        # f = adf + aef + bdf + bef + cdf + cef + g (classic example)
        a, b, c, d, e, f, g = (lit_id(i, True) for i in range(7))
        expr = _expr(
            {a, d, f}, {a, e, f}, {b, d, f}, {b, e, f},
            {c, d, f}, {c, e, f}, {g},
        )
        result = kernels(expr)
        assert result
        for _cok, kernel in result:
            assert cube_free(kernel)

    def test_known_kernel_present(self):
        a, b, d, e = (lit_id(i, True) for i in range(4))
        expr = _expr({a, d}, {a, e}, {b, d}, {b, e})
        kernel_sets = [
            tuple(sorted(tuple(sorted(c)) for c in k))
            for _ck, k in kernels(expr)
        ]
        want = tuple(sorted([(d,), (e,)]))
        assert want in kernel_sets

    def test_best_kernel_on_sharable_expression(self):
        a, b, d, e = (lit_id(i, True) for i in range(4))
        expr = _expr({a, d}, {a, e}, {b, d}, {b, e})
        best = best_kernel(expr)
        assert best is not None and len(best) >= 2


class TestConversion:
    def test_cover_expr_roundtrip(self):
        cover = Cover.from_strings(["10-", "0-1"])
        expr = cover_to_expr(cover)
        back = expr_to_cover(expr, 3)
        assert sorted(c.bits for c in back.cubes) == sorted(
            c.bits for c in cover.cubes
        )

    def test_most_common_literal(self):
        a, b = lit_id(0, True), lit_id(1, True)
        assert most_common_literal(_expr({a, b}, {a}, {b})) in (a, b)
        assert most_common_literal(_expr({a})) is None
