"""Timing optimization: equivalence and delay non-increase."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import mcnc_circuit, random_circuit
from repro.network import Builder, check
from repro.sat import check_equivalence
from repro.synth import speed_up, timing_decompose
from repro.synth.speedup import _huffman_tree
from repro.network import GateType
from repro.timing import AsBuiltDelayModel, UnitDelayModel


class TestHuffmanTree:
    def test_late_signal_near_root(self):
        b = Builder()
        sigs = [(0.0, b.input("a")), (0.0, b.input("b")), (9.0, b.input("c"))]
        arrival, root = _huffman_tree(b.circuit, GateType.AND, sigs, 1.0)
        assert arrival == 10.0  # late signal passes one gate only

    def test_balanced_when_equal(self):
        b = Builder()
        sigs = [(0.0, b.input(f"i{k}")) for k in range(4)]
        arrival, _ = _huffman_tree(b.circuit, GateType.OR, sigs, 1.0)
        assert arrival == 2.0


class TestTimingDecompose:
    def test_splits_wide_gates(self):
        b = Builder()
        ins = b.inputs("a", "b", "c", "d", "e")
        g = b.and_(*ins, delay=1.0)
        b.output("o", g)
        c = b.done()
        original = c.copy()
        split = timing_decompose(c)
        check(c)
        assert split == 1
        assert all(len(g.fanin) <= 2 for g in c.gates.values()
                   if g.gtype is GateType.AND)
        assert check_equivalence(original, c).equivalent

    def test_respects_arrivals(self):
        b = Builder()
        late = b.input("late", arrival=5.0)
        e1, e2, e3 = b.inputs("e1", "e2", "e3")
        g = b.and_(e1, e2, e3, late, delay=1.0)
        b.output("o", g)
        c = b.done()
        timing_decompose(c)
        # late input must feed the root gate directly
        root = c.fanin_gates(c.find_output("o"))[0]
        assert c.find_input("late") in c.fanin_gates(root)


class TestSpeedUp:
    @given(seed=st.integers(0, 25))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_and_no_slowdown(self, seed):
        c = random_circuit(num_inputs=4, num_gates=14, seed=seed)
        model = AsBuiltDelayModel()
        fast, stats = speed_up(c, model)
        check(fast)
        assert check_equivalence(c, fast).equivalent
        assert stats.delay_after <= stats.delay_before + 1e-9

    def test_bypass_fires_on_late_input(self):
        """A late-arriving input triggers the Shannon bypass -- the
        generalized carry-skip transform."""
        c = mcnc_circuit("rd73")
        c.input_arrival[c.inputs[0]] = 6.0
        model = UnitDelayModel()
        fast, stats = speed_up(c, model)
        assert stats.bypassed_inputs  # bypass used
        assert stats.delay_after < stats.delay_before
        assert check_equivalence(c, fast).equivalent

    def test_large_input_counts_fall_back_to_decomposition(self):
        c = mcnc_circuit("misex2", minimize=False)
        model = UnitDelayModel()
        fast, stats = speed_up(c, model, collapse_limit=10)
        assert stats.delay_after <= stats.delay_before + 1e-9
        assert check_equivalence(c, fast).equivalent
