"""Minato-Morreale ISOP extraction from BDDs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD
from repro.synth import bdd_to_cover
from repro.synth.isop import isop
from repro.twolevel import Cover, cube_covered


def _random_bdd(seed):
    import random

    rng = random.Random(seed)
    bdd = BDD(num_vars=4)
    node = bdd.ZERO
    for _ in range(5):
        cube = bdd.ONE
        for var in rng.sample(range(4), rng.randint(1, 3)):
            leaf = bdd.var(var) if rng.random() < 0.5 else bdd.nvar(var)
            cube = bdd.apply_and(cube, leaf)
        node = bdd.apply_or(node, cube)
    return bdd, node


@given(seed=st.integers(0, 120))
@settings(max_examples=80, deadline=None)
def test_isop_exact(seed):
    bdd, node = _random_bdd(seed)
    cover = bdd_to_cover(bdd, node, 4)
    for point_bits in range(16):
        point = [(point_bits >> i) & 1 for i in range(4)]
        assignment = {i: point[i] for i in range(4)}
        assert cover.evaluate(point) == bool(bdd.evaluate(node, assignment))


@given(seed=st.integers(0, 60))
@settings(max_examples=40, deadline=None)
def test_isop_is_irredundant(seed):
    """Every cube contains a minterm no other cube covers."""
    bdd, node = _random_bdd(seed)
    cover = bdd_to_cover(bdd, node, 4)
    for i, cube in enumerate(cover.cubes):
        rest = Cover(
            4, [c for j, c in enumerate(cover.cubes) if j != i]
        )
        assert not cube_covered(cube, rest)


def test_isop_interval_respected():
    """With lower < upper the result stays inside the interval."""
    bdd = BDD(num_vars=2)
    x, y = bdd.var(0), bdd.var(1)
    lower = bdd.apply_and(x, y)
    upper = bdd.apply_or(x, y)
    cubes, node = isop(bdd, lower, upper)
    # lower <= node <= upper
    assert bdd.apply_and(lower, bdd.negate(node)) == bdd.ZERO
    assert bdd.apply_and(node, bdd.negate(upper)) == bdd.ZERO


def test_isop_terminals():
    bdd = BDD(num_vars=2)
    assert isop(bdd, bdd.ZERO, bdd.ZERO) == ([], bdd.ZERO)
    cubes, node = isop(bdd, bdd.ONE, bdd.ONE)
    assert node == bdd.ONE
    assert cubes == [{}]
