"""Factoring and lowering to gates preserve function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Builder, check
from repro.synth import factor_cover, factored_literal_count
from repro.synth.factor import cover_to_gates
from repro.twolevel import Cover, Cube


def covers(num_vars=4, max_cubes=6):
    return st.lists(
        st.text(alphabet="01-", min_size=num_vars, max_size=num_vars),
        min_size=0,
        max_size=max_cubes,
    ).map(
        lambda rows: Cover(num_vars, [Cube.from_string(r) for r in rows])
    )


def _lower(cover):
    b = Builder("lowered")
    leaves = {i: b.input(f"x{i}") for i in range(cover.num_vars)}
    root = cover_to_gates(b.circuit, cover, leaves)
    b.output("y", root)
    return b.done()


@given(covers())
@settings(max_examples=120, deadline=None)
def test_lowered_circuit_computes_cover(cover):
    circuit = _lower(cover)
    check(circuit)
    assert circuit.is_simple_gate_network()
    for bits in range(16):
        point = [(bits >> i) & 1 for i in range(4)]
        assign = {
            circuit.find_input(f"x{i}"): point[i] for i in range(4)
        }
        assert circuit.evaluate_outputs(assign) == (
            int(cover.evaluate(point)),
        )


@given(covers())
@settings(max_examples=60, deadline=None)
def test_factored_cost_not_worse_than_sop(cover):
    tree = factor_cover(cover)
    sop_literals = cover.num_literals()
    assert factored_literal_count(tree) <= max(sop_literals, 1)


def test_factor_shares_common_subexpression():
    # ad + ae + bd + be = (a+b)(d+e): 4 literals factored vs 8 flat
    cover = Cover.from_strings(
        ["1-1-", "1--1", "-11-", "-1-1"]
    )
    tree = factor_cover(cover)
    assert factored_literal_count(tree) == 4


def test_constants():
    assert factor_cover(Cover.empty(2)) == ("const", 0)
    assert factor_cover(Cover.tautology(2)) == ("const", 1)


def test_negative_literals_share_inverters():
    cover = Cover.from_strings(["0-", "-0"])
    circuit = _lower(cover)
    from repro.network import GateType

    nots = [
        g for g in circuit.gates.values() if g.gtype is GateType.NOT
    ]
    assert len(nots) == 2  # one per input, not per occurrence
