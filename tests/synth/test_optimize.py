"""Structural hashing and area cleanup."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.network import Builder, check
from repro.sat import check_equivalence
from repro.synth import area_optimize, strash


def test_strash_merges_identical_gates():
    b = Builder()
    x, y = b.inputs("x", "y")
    g1 = b.and_(x, y, name="g1")
    g2 = b.and_(x, y, name="g2")  # structural twin
    b.output("o", b.or_(g1, g2))
    c = b.done()
    merged = strash(c)
    assert merged == 1
    check(c)


def test_strash_cascades():
    """Merging twins can expose second-level twins."""
    b = Builder()
    x, y = b.inputs("x", "y")
    a1 = b.and_(x, y)
    a2 = b.and_(x, y)
    o1 = b.not_(a1)
    o2 = b.not_(a2)
    b.output("p", b.or_(o1, o2))
    c = b.done()
    assert strash(c) == 2


def test_strash_respects_delay_differences():
    b = Builder()
    x, y = b.inputs("x", "y")
    g1 = b.and_(x, y, delay=1.0)
    g2 = b.and_(x, y, delay=2.0)  # different delay: not a twin
    b.output("o", b.or_(g1, g2))
    c = b.done()
    assert strash(c) == 0


def test_strash_is_order_insensitive():
    b = Builder()
    x, y = b.inputs("x", "y")
    g1 = b.and_(x, y)
    g2 = b.and_(y, x)  # symmetric gate, swapped pins
    b.output("o", b.or_(g1, g2))
    assert strash(b.done()) == 1


@given(seed=st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_area_optimize_preserves_function(seed):
    c = random_circuit(num_inputs=4, num_gates=15, seed=seed)
    original = c.copy()
    area_optimize(c)
    check(c)
    assert check_equivalence(original, c).equivalent


@given(seed=st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_area_optimize_never_grows(seed):
    c = random_circuit(num_inputs=4, num_gates=15, seed=seed)
    before = c.num_gates()
    area_optimize(c)
    assert c.num_gates() <= before
