"""The Table-I bench harness itself."""

from repro.bench import (
    CSA_SIZES,
    PAPER_TABLE1,
    carry_skip_rows,
    classify_longest_paths,
    optimized_mcnc,
    render,
    run_circuit_row,
)
from repro.circuits import carry_skip_adder, fig4_c2_cone
from repro.timing import UnitDelayModel


def test_paper_reference_values_complete():
    """Every Table I row of the paper is recorded for comparison."""
    assert len(PAPER_TABLE1) == 13
    assert PAPER_TABLE1["csa 8.2"] == (8, 88, 88)
    assert PAPER_TABLE1["misex1"] == (28, 79, 55)


def test_csa_sizes_match_paper():
    assert CSA_SIZES == [(2, 2), (4, 4), (8, 2), (8, 4)]


def test_run_circuit_row_fields():
    model = UnitDelayModel(use_arrival_times=False)
    item = run_circuit_row("csa 2.2", carry_skip_adder(2, 2), model)
    assert item.row.name == "csa 2.2"
    assert item.row.redundancies == 2
    assert item.seconds > 0
    assert item.kms_iterations >= 0


def test_render_includes_paper_reference():
    model = UnitDelayModel(use_arrival_times=False)
    rows = carry_skip_rows([(2, 2)], model)
    text = render(rows, "check")
    assert "paper: red 2" in text
    assert "csa 2.2" in text


def test_classify_carry_skip_is_class1():
    """With the Section III arrival skew the carry cone's longest path
    is false -- class 1."""
    cone = fig4_c2_cone()
    from repro.timing import AsBuiltDelayModel

    assert classify_longest_paths(cone, AsBuiltDelayModel()) == "class1"


def test_optimized_mcnc_deterministic():
    model = UnitDelayModel()
    a = optimized_mcnc("misex1", 6.0, model)
    b = optimized_mcnc("misex1", 6.0, model)
    assert a.num_gates() == b.num_gates()
    from repro.sat import check_equivalence

    assert check_equivalence(a, b).equivalent
