"""Adder generators: arithmetic correctness and testability structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import count_redundancies, is_irredundant
from repro.circuits import (
    adder_reference,
    carry_lookahead_adder,
    carry_skip_adder,
    check_adder,
    ripple_carry_adder,
)
from repro.network import check
from repro.timing import UnitDelayModel, topological_delay


class TestArithmetic:
    @pytest.mark.parametrize(
        "make", [ripple_carry_adder, carry_lookahead_adder]
    )
    def test_exhaustive_2bit(self, make):
        c = make(2)
        check(c)
        assert c.is_simple_gate_network()
        for a in range(4):
            for b in range(4):
                for cin in (0, 1):
                    assert check_adder(c, 2, a, b, cin)

    def test_carry_skip_exhaustive_4bit(self):
        c = carry_skip_adder(4, 2)
        for a in range(16):
            for b in range(16):
                assert check_adder(c, 4, a, b, a & 1)

    @given(
        a=st.integers(0, 2**8 - 1),
        b=st.integers(0, 2**8 - 1),
        cin=st.integers(0, 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_wide_adders_random(self, a, b, cin):
        for make in (
            lambda: ripple_carry_adder(8),
            lambda: carry_skip_adder(8, 4),
            lambda: carry_lookahead_adder(8),
        ):
            assert check_adder(make(), 8, a, b, cin)

    def test_reference_model(self):
        sums, cout = adder_reference(2, 3, 3, 1)
        assert sums == [1, 1] and cout == 1


class TestStructure:
    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            carry_skip_adder(5, 2)

    def test_csa_redundancies_scale_with_blocks(self):
        assert count_redundancies(carry_skip_adder(2, 2)) == 2
        assert count_redundancies(carry_skip_adder(6, 2)) == 6

    def test_ripple_and_cla_irredundant(self):
        assert is_irredundant(ripple_carry_adder(3))
        assert is_irredundant(carry_lookahead_adder(2))

    def test_skip_beats_ripple_with_late_carry(self):
        """The point of the skip hardware: once the carry must cross a
        block boundary, the bypass shaves delay off the whole adder
        (per-block the win shows on the carry-out cone, Fig. 4)."""
        skip = carry_skip_adder(8, 4, cin_arrival=5.0)
        ripple = ripple_carry_adder(8, cin_arrival=5.0)
        from repro.timing import analyze, viability_delay

        assert (
            viability_delay(skip).delay < viability_delay(ripple).delay
        )
        # topologically the skip adder looks *slower* -- its long ripple
        # path is false; this inversion is the paper's entire subject
        sa = analyze(skip)
        ra = analyze(ripple)
        assert (
            sa.arrival[skip.find_output("cout")]
            > ra.arrival[ripple.find_output("cout")]
        )

    def test_unit_delay_depth(self):
        c = ripple_carry_adder(2)
        m = UnitDelayModel(use_arrival_times=False)
        assert topological_delay(c, m) == c.depth()

    def test_gate_counts_near_paper(self):
        """Paper Table I: csa 2.2 = 22, csa 8.2 = 88 (ours: +1 per
        block from the explicit MUX inverter)."""
        assert carry_skip_adder(2, 2).num_gates() == 23
        assert carry_skip_adder(8, 2).num_gates() == 92
        assert carry_skip_adder(8, 4).num_gates() == 82

    def test_interface_names(self):
        c = carry_skip_adder(4, 2)
        assert c.input_names() == [
            "a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3", "cin"
        ]
        assert c.output_names() == ["s0", "s1", "s2", "s3", "cout"]
