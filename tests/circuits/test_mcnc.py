"""The MCNC-like benchmark suite stand-ins."""

import pytest

from repro.circuits import MCNC_NAMES, mcnc_circuit, mcnc_pla, mcnc_shapes
from repro.network import check


class TestShapes:
    def test_all_nine_names(self):
        assert MCNC_NAMES == sorted(
            ["5xp1", "clip", "duke2", "f51m", "misex1",
             "misex2", "rd73", "sao2", "z4ml"]
        )

    def test_shapes_match_paper_circuits(self):
        shapes = mcnc_shapes()
        assert shapes["5xp1"] == (7, 10)
        assert shapes["clip"] == (9, 5)
        assert shapes["duke2"] == (22, 29)
        assert shapes["f51m"] == (8, 8)
        assert shapes["misex1"] == (8, 7)
        assert shapes["misex2"] == (25, 18)
        assert shapes["rd73"] == (7, 3)
        assert shapes["sao2"] == (10, 4)
        assert shapes["z4ml"] == (7, 4)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            mcnc_pla("c17")

    def test_pla_interface_counts(self):
        for name in MCNC_NAMES:
            pla = mcnc_pla(name)
            assert (pla.num_inputs, pla.num_outputs) == mcnc_shapes()[name]


class TestDeterminism:
    def test_seeded_suites_are_stable(self):
        for name in ("duke2", "misex1", "misex2", "sao2"):
            a, b = mcnc_pla(name), mcnc_pla(name)
            for out in a.output_names:
                assert [c.bits for c in a.on_sets[out].cubes] == [
                    c.bits for c in b.on_sets[out].cubes
                ]


class TestArithmeticStandIns:
    def _eval_word(self, circuit, x, num_in, num_out):
        assign = {
            circuit.find_input(f"x{i}"): (x >> i) & 1
            for i in range(num_in)
        }
        values = circuit.evaluate(assign)
        word = 0
        for i in range(num_out):
            if values[circuit.find_output(f"y{i}")]:
                word |= 1 << i
        return word

    def test_5xp1_is_5x_plus_1(self):
        c = mcnc_circuit("5xp1")
        check(c)
        for x in (0, 1, 17, 100, 127):
            assert self._eval_word(c, x, 7, 10) == 5 * x + 1

    def test_rd73_is_popcount(self):
        c = mcnc_circuit("rd73")
        for x in (0, 1, 0b1010101, 0b1111111):
            assert self._eval_word(c, x, 7, 3) == bin(x).count("1")

    def test_z4ml_is_adder(self):
        c = mcnc_circuit("z4ml")
        for x in (0, 0b1111111, 0b0101011):
            a, b, cin = x & 7, (x >> 3) & 7, (x >> 6) & 1
            assert self._eval_word(c, x, 7, 4) == a + b + cin

    def test_f51m_is_multiplier(self):
        c = mcnc_circuit("f51m")
        for x in (0x00, 0xFF, 0x35, 0x7A):
            lo, hi = x & 0xF, (x >> 4) & 0xF
            assert self._eval_word(c, x, 8, 8) == (lo * hi) & 0xFF

    def test_clip_clamps_magnitude(self):
        c = mcnc_circuit("clip")
        cases = {0: 0, 1: 1, 31: 31, 100: 31, 0x1FF: 1, 0x100: 31}
        for x, want in cases.items():
            assert self._eval_word(c, x, 9, 5) == want


class TestSynthesizedCircuits:
    @pytest.mark.parametrize("name", ["rd73", "misex1", "sao2", "z4ml"])
    def test_circuit_matches_pla(self, name):
        pla = mcnc_pla(name)
        circuit = mcnc_circuit(name)
        check(circuit)
        assert circuit.is_simple_gate_network()
        import random

        rng = random.Random(1)
        for _ in range(200):
            x = rng.getrandbits(pla.num_inputs)
            point = [(x >> i) & 1 for i in range(pla.num_inputs)]
            assign = {
                circuit.find_input(n): point[i]
                for i, n in enumerate(pla.input_names)
            }
            values = circuit.evaluate(assign)
            for out in pla.output_names:
                assert values[circuit.find_output(out)] == int(
                    pla.on_sets[out].evaluate(point)
                )
