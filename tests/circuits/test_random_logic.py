"""Random circuit generators."""

from repro.atpg import count_redundancies
from repro.circuits import random_circuit, random_redundant_circuit
from repro.network import check
from repro.sim import outputs_equal_exhaustive


def test_deterministic():
    a = random_circuit(seed=9)
    b = random_circuit(seed=9)
    check(a)
    assert outputs_equal_exhaustive(a, b)


def test_different_seeds_differ_structurally():
    a = random_circuit(seed=1)
    b = random_circuit(seed=2)
    assert a.stats() != b.stats() or not outputs_equal_exhaustive(a, b)


def test_shape_parameters():
    c = random_circuit(num_inputs=6, num_gates=9, num_outputs=3, seed=0)
    assert len(c.inputs) == 6
    assert len(c.outputs) == 3
    assert c.num_gates() == 9


def test_arrival_randomization():
    c = random_circuit(seed=4, max_arrival=5.0)
    assert any(v > 0 for v in c.input_arrival.values())


def test_redundant_generator_guarantees_redundancy():
    for seed in range(5):
        c = random_redundant_circuit(seed=seed)
        check(c)
        assert count_redundancies(c) >= 1
