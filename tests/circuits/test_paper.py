"""Every numeric claim the paper makes about its figures."""


from repro.atpg import SatAtpg, count_redundancies, inject, is_irredundant, stem_fault
from repro.circuits import (
    C0_ARRIVAL,
    fig1_carry_skip_block,
    fig2_irredundant_block,
    fig4_c2_cone,
    fig5_after_first_edge,
    fig6_final,
    section3_fault_demo,
)
from repro.sat import check_equivalence
from repro.timing import sensitizable_delay, topological_delay, viability_delay


class TestFig1:
    """Section III on the redundant block."""

    def test_arrival_assumptions(self):
        c = fig1_carry_skip_block()
        assert c.input_arrival[c.find_input("c0")] == C0_ARRIVAL == 5.0
        for name in ("a0", "a1", "b0", "b1"):
            assert c.input_arrival[c.find_input(name)] == 0.0

    def test_critical_path_is_8(self):
        """'the critical path and its output is available after 8 gate
        delays' (on the carry cone; the full block's s1 needs 9)."""
        assert viability_delay(fig4_c2_cone()).delay == 8.0

    def test_longest_path_is_11(self):
        """'The longest path ... available after 11 gate delays. Note
        that the length of the longest path is the delay of a
        ripple-carry adder' -- i.e. of the circuit the block degenerates
        to when the skip fault is present."""
        c = fig1_carry_skip_block()
        assert topological_delay(c) == 11.0
        degenerate = inject(c, stem_fault(c.find_gate("gate10"), 0))
        assert viability_delay(degenerate).delay == 11.0

    def test_single_redundancy_pair(self):
        """'the carry-skip adder has a single redundancy ... the single
        stuck-at-0 fault on the output of the gate 10' (plus one inside
        the MUX after decomposition to simple gates)."""
        c = fig1_carry_skip_block()
        engine = SatAtpg(c)
        assert engine.is_redundant(
            stem_fault(c.find_gate("gate10"), 0)
        )
        assert count_redundancies(c) == 2


class TestSection3Speedtest:
    def test_faulty_circuit_needs_11(self):
        """'Consider the case where the output of gate 10 is stuck-at-0
        ... The critical path is now the longest path and its output is
        available after 11 gate delays.'"""
        circuit, gate10 = section3_fault_demo()
        faulty = inject(circuit, stem_fault(gate10, 0))
        assert viability_delay(faulty).delay == 11.0
        assert sensitizable_delay(faulty).delay == 11.0

    def test_clock_violation_scenario(self):
        """A clock set at the fault-free critical path (8 on the carry
        cone) is violated by the faulty circuit (11) -- the speedtest
        argument."""
        cone = fig4_c2_cone()
        good_clock = viability_delay(cone).delay
        faulty = inject(
            cone, stem_fault(cone.find_gate("gate10"), 0)
        )
        assert viability_delay(faulty).delay > good_clock


class TestFig2:
    def test_same_function(self):
        assert check_equivalence(
            fig1_carry_skip_block(), fig2_irredundant_block()
        ).equivalent

    def test_no_slower(self):
        fig1 = fig1_carry_skip_block()
        fig2 = fig2_irredundant_block()
        assert (
            viability_delay(fig2).delay <= viability_delay(fig1).delay
        )

    def test_fully_testable(self):
        assert is_irredundant(fig2_irredundant_block())

    def test_no_area_overhead(self):
        assert (
            fig2_irredundant_block().num_gates()
            == fig1_carry_skip_block().num_gates()
        )


class TestFigs4To6:
    def test_fig4_has_four_fewer_gates_than_fig1(self):
        # the two sum XORs (3 simple gates each) are dropped
        assert (
            fig1_carry_skip_block().num_gates()
            - fig4_c2_cone().num_gates()
            == 6
        )

    def test_fig5_equivalent_to_fig4(self):
        assert check_equivalence(
            fig4_c2_cone(), fig5_after_first_edge()
        ).equivalent

    def test_fig5_longest_path_now_sensitizable(self):
        """Section 6.3: 'The longest path in the resulting circuit is
        now statically sensitizable'."""
        c = fig5_after_first_edge()
        assert sensitizable_delay(c).delay == topological_delay(c)

    def test_fig5_still_has_redundancies(self):
        assert count_redundancies(fig5_after_first_edge()) >= 1

    def test_fig6_irredundant_and_equivalent(self):
        fig6 = fig6_final()
        assert is_irredundant(fig6)
        assert check_equivalence(fig4_c2_cone(), fig6).equivalent

    def test_fig6_no_slower_than_fig4(self):
        assert (
            viability_delay(fig6_final()).delay
            <= viability_delay(fig4_c2_cone()).delay
        )
