"""5-valued composite (D-calculus) simulation."""

from repro.network import Builder, GateType
from repro.sim import D, DBAR, ONE, XX, ZERO, eval_gate5, is_d_or_dbar, simulate5
from repro.sim.dcalc import composite, is_known


class TestAlgebra:
    def test_d_propagates_through_and_with_noncontrolling(self):
        assert eval_gate5(GateType.AND, [D, ONE]) == D
        assert eval_gate5(GateType.AND, [D, ZERO]) == ZERO

    def test_d_inverts_through_not(self):
        assert eval_gate5(GateType.NOT, [D]) == DBAR
        assert eval_gate5(GateType.NOT, [DBAR]) == D

    def test_d_meets_dbar(self):
        # D AND D' = (1*0, 0*1) = (0, 0) = ZERO
        assert eval_gate5(GateType.AND, [D, DBAR]) == ZERO
        assert eval_gate5(GateType.OR, [D, DBAR]) == ONE

    def test_x_blocks(self):
        assert eval_gate5(GateType.AND, [D, XX])[0] == "X" or eval_gate5(
            GateType.AND, [D, XX]
        ) == (composite("X", 0))

    def test_predicates(self):
        assert is_d_or_dbar(D)
        assert is_d_or_dbar(DBAR)
        assert not is_d_or_dbar(ONE)
        assert is_known(D)
        assert not is_known(XX)


class TestSimulate5:
    def _circuit(self):
        b = Builder()
        a, c = b.inputs("a", "c")
        g = b.and_(a, c, name="g")
        b.output("y", g)
        return b.done()

    def test_stem_fault_injection(self):
        c = self._circuit()
        g = c.find_gate("g")
        values = simulate5(
            c,
            {c.find_input("a"): ONE, c.find_input("c"): ONE},
            fault_gate=g,
            stuck_value=0,
        )
        assert values[c.find_output("y")] == D

    def test_conn_fault_injection_is_branch_local(self, two_output_circuit):
        c = two_output_circuit
        inv = c.find_gate("inv")
        cid = c.gates[inv].fanin[0]
        a, b = c.inputs
        values = simulate5(
            c, {a: ONE, b: ONE}, fault_conn=cid, stuck_value=0
        )
        # y0 sees the healthy stem; y1 sees the faulty branch
        assert values[c.find_output("y0")] == ONE
        assert values[c.find_output("y1")] == DBAR

    def test_unassigned_inputs_are_xx(self):
        c = self._circuit()
        values = simulate5(c, {}, fault_gate=c.find_gate("g"), stuck_value=1)
        assert values[c.find_output("y")][0] == "X"
