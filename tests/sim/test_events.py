"""Event-driven true-delay oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.network import Builder
from repro.sim import settle_time, true_delay
from repro.timing import topological_delay


class TestSettleTime:
    def test_chain_delay(self, chain_circuit):
        c = chain_circuit
        x = c.find_input("x")
        assert settle_time(c, {x: 0}, {x: 1}) == 5.0

    def test_no_change_settles_at_zero(self, chain_circuit):
        c = chain_circuit
        x = c.find_input("x")
        assert settle_time(c, {x: 0}, {x: 0}) == 0.0

    def test_masked_transition(self):
        """A transition blocked by a controlling side input produces no
        output event."""
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", b.and_(x, y, delay=1.0))
        c = b.done()
        xv, yv = c.find_input("x"), c.find_input("y")
        # y stays 0: x's change is invisible
        assert settle_time(c, {xv: 0, yv: 0}, {xv: 1, yv: 0}) == 0.0

    def test_input_arrival_offsets_events(self):
        b = Builder()
        x = b.input("x", arrival=5.0)
        b.output("o", b.not_(x, delay=1.0))
        c = b.done()
        xv = c.find_input("x")
        assert settle_time(c, {xv: 0}, {xv: 1}) == 6.0

    def test_connection_delay_counts(self):
        b = Builder()
        x = b.input("x")
        g = b.circuit.add_gate(
            __import__("repro.network", fromlist=["GateType"]).GateType.NOT,
            1.0,
        )
        b.circuit.connect(x, g, delay=2.5)
        b.output("o", g)
        c = b.done()
        xv = c.find_input("x")
        assert settle_time(c, {xv: 0}, {xv: 1}) == 3.5


class TestTrueDelay:
    def test_guard(self):
        c = random_circuit(num_inputs=11, num_gates=5, seed=1)
        try:
            true_delay(c, max_inputs=10)
            assert False, "expected ValueError"
        except ValueError:
            pass

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_true_delay_bounded_by_topological(self, seed):
        """Soundness frame of Section V: true delay <= computed
        (topological) delay."""
        c = random_circuit(num_inputs=4, num_gates=8, seed=seed)
        assert true_delay(c) <= topological_delay(c) + 1e-9

    def test_carry_skip_cone_true_delay_is_8(self):
        """Section III: accurate analysis gives 8 for the c2 cone --
        the 11-unit path is false."""
        from repro.circuits import fig4_c2_cone

        c = fig4_c2_cone()
        assert true_delay(c) == 8.0
