"""Property suite: the compiled kernel is bit-identical to the
interpreted simulators.

The acceptance bar from the sim-kernel issue: >=200 random circuits x
random pattern blocks x random fault sites, asserting
``CompiledCircuit`` (both backends) equals ``simulate_packed`` /
``simulate_fault_packed``, including ``overrides`` injection and width
edge cases (w=1, w=64, w>64, w not a multiple of 64).

Plain parametrization over seeds rather than hypothesis: each seed is
one random circuit, and the per-seed rng draws the width, the pattern
block, the override set, and the fault sample, so the 200 cases cover
the full cross product deterministically.
"""

import random

import pytest

from repro.atpg import collapsed_faults, detecting_patterns
from repro.atpg.faultsim import simulate_fault_packed
from repro.circuits import random_circuit
from repro.sim import CompiledCircuit, simulate_packed
from repro.sim.kernel import numpy_available

#: the issue's width edge cases plus interior points; the per-seed rng
#: samples from these so every width class appears many times over the
#: 200 circuits
WIDTHS = [1, 3, 37, 64, 65, 100, 128, 200]

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

N_CIRCUITS = 200


def _case(seed):
    rng = random.Random(seed * 7919 + 13)
    circuit = random_circuit(
        num_inputs=rng.randint(3, 6),
        num_gates=rng.randint(6, 16),
        seed=seed,
    )
    width = WIDTHS[rng.randrange(len(WIDTHS))]
    packed = {g: rng.getrandbits(width) for g in circuit.inputs}
    return rng, circuit, width, packed


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(N_CIRCUITS))
def test_kernel_bit_identical(seed, backend):
    rng, circuit, width, packed = _case(seed)
    kern = CompiledCircuit(circuit)

    # good simulation
    expected = simulate_packed(circuit, packed, width)
    assert kern.evaluate(packed, width, backend=backend) == expected

    # overrides injection at random sites (possibly including PIs)
    gids = list(circuit.gates)
    over = {
        gids[rng.randrange(len(gids))]: rng.getrandbits(width)
        for _ in range(rng.randint(1, 3))
    }
    assert kern.evaluate(
        packed, width, overrides=over, backend=backend
    ) == simulate_packed(circuit, packed, width, overrides=over)

    # event-driven fault simulation at random fault sites
    faults = collapsed_faults(circuit)
    rng.shuffle(faults)
    good_words = kern.evaluate_words(packed, width, backend=backend)
    for fault in faults[:5]:
        assert kern.simulate_fault(
            fault, packed, width, good_words=good_words
        ) == simulate_fault_packed(circuit, fault, packed, width)
        assert kern.detecting_word(
            fault, good_words, width
        ) == detecting_patterns(
            circuit, fault, packed, width, good_values=expected,
            compiled=False,
        )
