"""3-valued simulation and exhaustive oracles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import Builder, GateType
from repro.sim import (
    X,
    eval_gate3,
    outputs_equal_exhaustive,
    simulate3,
    simulate_cube_by_name,
    truth_table,
    v3_and,
    v3_not,
    v3_or,
    v3_xor,
)


class TestPrimitives:
    def test_not(self):
        assert v3_not(0) == 1
        assert v3_not(1) == 0
        assert v3_not(X) == X

    def test_and_dominance(self):
        assert v3_and([0, X, 1]) == 0
        assert v3_and([1, X]) == X
        assert v3_and([1, 1]) == 1

    def test_or_dominance(self):
        assert v3_or([1, X]) == 1
        assert v3_or([0, X]) == X
        assert v3_or([0, 0]) == 0

    def test_xor_strict(self):
        assert v3_xor([1, X]) == X
        assert v3_xor([1, 1, 1]) == 1
        assert v3_xor([1, 0]) == 1

    @pytest.mark.parametrize(
        "gtype", [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR]
    )
    def test_eval_gate3_agrees_with_binary(self, gtype):
        from repro.network.gates import evaluate

        for a in (0, 1):
            for b in (0, 1):
                assert eval_gate3(gtype, [a, b]) == evaluate(gtype, [a, b])


class TestSimulate3:
    def test_unassigned_inputs_default_to_x(self, and_or_circuit):
        c = and_or_circuit
        values = simulate3(c, {})
        assert values[c.find_output("y")] == X

    def test_controlling_value_resolves_through_x(self, and_or_circuit):
        c = and_or_circuit
        # c=1 forces y=1 regardless of a, b
        values = simulate3(c, {c.find_input("c"): 1})
        assert values[c.find_output("y")] == 1

    def test_cube_by_name(self, and_or_circuit):
        values = simulate_cube_by_name(and_or_circuit, {"a": 1, "b": 1})
        y = and_or_circuit.find_output("y")
        assert values[y] == 1

    @given(st.integers(0, 7))
    def test_binary_agrees_with_evaluate(self, bits):
        b = Builder()
        x, y, z = b.inputs("x", "y", "z")
        g = b.or_(b.and_(x, y), b.nor(y, z))
        b.output("o", g)
        c = b.done()
        assign = {
            c.inputs[i]: (bits >> i) & 1 for i in range(3)
        }
        assert simulate3(c, assign)[c.outputs[0]] == c.evaluate(assign)[
            c.outputs[0]
        ]


class TestOracles:
    def test_truth_table_size(self, and_or_circuit):
        tt = truth_table(and_or_circuit)
        assert len(tt) == 8

    def test_truth_table_guard(self):
        b = Builder()
        bus = b.input_bus("x", 21)
        b.output("o", b.or_(*bus))
        with pytest.raises(ValueError):
            truth_table(b.done())

    def test_outputs_equal_positive(self, and_or_circuit):
        assert outputs_equal_exhaustive(
            and_or_circuit, and_or_circuit.copy()
        )

    def test_outputs_equal_negative(self):
        def make(gate):
            b = Builder()
            x, y = b.inputs("x", "y")
            b.output("o", getattr(b, gate)(x, y))
            return b.done()

        assert not outputs_equal_exhaustive(make("and_"), make("or_"))

    def test_outputs_equal_interface_mismatch(self, and_or_circuit):
        b = Builder()
        x = b.input("x")
        b.output("y", b.not_(x))
        assert not outputs_equal_exhaustive(and_or_circuit, b.done())
