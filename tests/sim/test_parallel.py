"""Bit-parallel simulation agrees with scalar simulation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.network import Builder
from repro.sim import (
    pack_vectors,
    random_equivalence_check,
    simulate_packed,
)


@given(seed=st.integers(0, 50), width=st.integers(1, 70))
@settings(max_examples=25, deadline=None)
def test_packed_matches_scalar(seed, width):
    circuit = random_circuit(num_inputs=4, num_gates=12, seed=seed)
    rng = random.Random(seed)
    vectors = [
        {gid: rng.getrandbits(1) for gid in circuit.inputs}
        for _ in range(width)
    ]
    packed, w = pack_vectors(circuit, vectors)
    values = simulate_packed(circuit, packed, w)
    for i, vec in enumerate(vectors):
        scalar = circuit.evaluate(vec)
        for po in circuit.outputs:
            assert ((values[po] >> i) & 1) == scalar[po]


def test_overrides_force_gate_value(and_or_circuit):
    c = and_or_circuit
    g1 = c.find_gate("g1")
    packed = {gid: 0 for gid in c.inputs}  # all zeros
    forced = simulate_packed(c, packed, 4, overrides={g1: 0b1111})
    assert forced[c.find_output("y")] == 0b1111


def test_random_equivalence_check_equal(two_output_circuit):
    assert (
        random_equivalence_check(
            two_output_circuit, two_output_circuit.copy(), patterns=64
        )
        is None
    )


def test_random_equivalence_check_finds_difference():
    def make(gate):
        b = Builder()
        x, y = b.inputs("x", "y")
        b.output("o", getattr(b, gate)(x, y))
        return b.done()

    cex = random_equivalence_check(make("and_"), make("or_"), patterns=64)
    assert cex is not None
    # the counterexample must actually distinguish the circuits
    a, b = make("and_"), make("or_")
    va = a.evaluate_outputs({a.find_input(k): v for k, v in cex.items()})
    vb = b.evaluate_outputs({b.find_input(k): v for k, v in cex.items()})
    assert va != vb
