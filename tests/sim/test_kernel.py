"""Directed tests for the compiled simulation kernel."""

import pytest

from repro.atpg import collapsed_faults, stem_fault
from repro.circuits import random_circuit
from repro.network import GateType
from repro.sim import (
    CompiledAig,
    CompiledCircuit,
    SimWorkTracker,
    get_compiled,
    kernel_enabled,
    refresh_compiled,
    resolve_backend,
    simulate_packed,
)
from repro.sim import kernel as kernel_mod


# ---------------------------------------------------------------------- #
# backend selection
# ---------------------------------------------------------------------- #

def test_resolve_backend_explicit_python():
    assert resolve_backend("python", 4096) == "python"


def test_resolve_backend_env(monkeypatch):
    monkeypatch.setenv(kernel_mod.BACKEND_ENV, "python")
    assert resolve_backend(None, 4096) == "python"


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_backend("cuda", 64)


def test_resolve_backend_auto_narrow_is_python():
    # narrow blocks stay on Python ints regardless of numpy presence
    assert resolve_backend("auto", 64) == "python"


@pytest.mark.skipif(
    not kernel_mod.numpy_available(), reason="numpy not installed"
)
def test_resolve_backend_auto_wide_is_numpy():
    assert resolve_backend("auto", 4096) == "numpy"


def test_forcing_numpy_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(kernel_mod, "_np", None)
    with pytest.raises(RuntimeError):
        resolve_backend("numpy", 64)


def test_kernel_enabled_env(monkeypatch):
    monkeypatch.delenv(kernel_mod.LEGACY_ENV, raising=False)
    assert kernel_enabled()
    monkeypatch.setenv(kernel_mod.LEGACY_ENV, "1")
    assert not kernel_enabled()
    monkeypatch.setenv(kernel_mod.LEGACY_ENV, "0")
    assert kernel_enabled()


# ---------------------------------------------------------------------- #
# evaluation basics
# ---------------------------------------------------------------------- #

def test_evaluate_matches_simulate_packed(and_or_circuit):
    c = and_or_circuit
    packed = {
        c.find_input("a"): 0b0101,
        c.find_input("b"): 0b0011,
        c.find_input("c"): 0b1000,
    }
    kern = CompiledCircuit(c)
    assert kern.evaluate(packed, 4) == simulate_packed(c, packed, 4)


def test_evaluate_overrides_precede_inputs(and_or_circuit):
    c = and_or_circuit
    a = c.find_input("a")
    packed = {a: 0b11, c.find_input("b"): 0b01, c.find_input("c"): 0b00}
    over = {a: 0b00, c.find_gate("g1"): 0b10}
    kern = get_compiled(c)
    assert kern.evaluate(packed, 2, overrides=over) == simulate_packed(
        c, packed, 2, overrides=over
    )


def test_missing_input_defaults_to_zero(and_or_circuit):
    c = and_or_circuit
    kern = get_compiled(c)
    assert kern.evaluate({}, 3) == simulate_packed(c, {}, 3)


def test_words_from_values_roundtrip(and_or_circuit):
    c = and_or_circuit
    packed = {g: 0b101 for g in c.inputs}
    kern = get_compiled(c)
    values = kern.evaluate(packed, 3)
    words = kern.words_from_values(values)
    assert words == kern.evaluate_words(packed, 3)


# ---------------------------------------------------------------------- #
# invalidation
# ---------------------------------------------------------------------- #

def test_version_bumps_on_mutation(and_or_circuit):
    c = and_or_circuit
    before = c.version
    c.add_gate(GateType.NOT, 1.0, name="inv")
    assert c.version > before


def test_kernel_goes_stale_and_recompiles(and_or_circuit):
    c = and_or_circuit
    kern = get_compiled(c)
    assert not kern.stale
    g = c.add_gate(GateType.NOT, 1.0, name="inv")
    c.connect(c.find_input("a"), g)
    assert kern.stale
    # evaluation transparently recompiles
    values = kern.evaluate({pi: 1 for pi in c.inputs}, 1)
    assert values == simulate_packed(c, {pi: 1 for pi in c.inputs}, 1)
    assert not kern.stale


def test_get_compiled_caches_per_circuit(and_or_circuit):
    c = and_or_circuit
    assert get_compiled(c) is get_compiled(c)


def test_copy_does_not_share_kernel(and_or_circuit):
    c = and_or_circuit
    kern = get_compiled(c)
    dup = c.copy("dup")
    assert get_compiled(dup) is not kern


def test_refresh_touched_contract(and_or_circuit):
    c = and_or_circuit
    kern = get_compiled(c)
    v = kern.version
    # empty touched set on an unchanged circuit: no recompile
    assert kern.refresh(set()) is False
    assert kern.version == v
    # non-empty touched set: recompile even if version-equal
    assert kern.refresh({c.find_gate("g1")}) is True
    # helper form is a no-op for circuits without an attached kernel
    refresh_compiled(c.copy("fresh"), {1})


# ---------------------------------------------------------------------- #
# counters
# ---------------------------------------------------------------------- #

def test_good_eval_counter_is_gate_count(and_or_circuit):
    c = and_or_circuit
    kern = CompiledCircuit(c)
    kern.evaluate({pi: 0 for pi in c.inputs}, 8)
    # every non-INPUT gate costs exactly one eval per call
    non_pi = sum(
        1 for g in c.gates.values() if g.gtype is not GateType.INPUT
    )
    assert kern.counters()["gate_evals_good"] == non_pi
    assert kern.num_eval_gates() == non_pi


def test_cone_cutoff_on_undetectable_difference(and_or_circuit):
    c = and_or_circuit
    kern = CompiledCircuit(c)
    g1 = c.find_gate("g1")
    # with a=b=0 the AND output is 0: stuck-at-0 on its stem produces
    # no difference word, so the cone is cut at the injection site
    good = kern.evaluate_words({pi: 0 for pi in c.inputs}, 1)
    assert kern.fault_diffs(stem_fault(g1, 0), good, 1) == {}
    assert kern.counters()["cone_cutoffs"] == 1
    assert kern.counters()["gate_evals_faulty"] == 0


def test_fault_work_is_bounded_by_cone(and_or_circuit):
    c = and_or_circuit
    kern = CompiledCircuit(c)
    good = kern.evaluate_words({pi: 1 for pi in c.inputs}, 1)
    n_evals = kern.num_eval_gates()
    for fault in collapsed_faults(c):
        kern.work.gate_evals_faulty = 0
        kern.fault_diffs(fault, good, 1)
        assert kern.counters()["gate_evals_faulty"] <= n_evals


def test_tracker_snapshots_deltas(and_or_circuit):
    c = and_or_circuit
    kern = get_compiled(c)
    tracker = SimWorkTracker()
    kern.evaluate({pi: 0 for pi in c.inputs}, 4)
    delta = tracker.counters
    assert delta["gate_evals_good"] == kern.num_eval_gates()
    tracker.reset()
    assert tracker.counters["gate_evals_good"] == 0


def test_note_dropped_accumulates(and_or_circuit):
    kern = CompiledCircuit(and_or_circuit)
    kern.note_dropped(3)
    kern.note_dropped(0)
    assert kern.counters()["faults_dropped"] == 3


# ---------------------------------------------------------------------- #
# numpy backend specifics
# ---------------------------------------------------------------------- #

@pytest.mark.skipif(
    not kernel_mod.numpy_available(), reason="numpy not installed"
)
@pytest.mark.parametrize("width", [1, 63, 64, 65, 100, 128, 4096])
def test_numpy_backend_matches_python(width):
    c = random_circuit(num_inputs=5, num_gates=12, seed=9)
    import random

    rng = random.Random(width)
    packed = {g: rng.getrandbits(width) for g in c.inputs}
    kern = get_compiled(c)
    assert kern.evaluate(packed, width, backend="numpy") == kern.evaluate(
        packed, width, backend="python"
    )


# ---------------------------------------------------------------------- #
# compiled AIG
# ---------------------------------------------------------------------- #

def test_compiled_aig_matches_interpreted():
    import random

    from repro.aig import circuit_to_aig

    c = random_circuit(num_inputs=5, num_gates=14, seed=3)
    aig, _ = circuit_to_aig(c)
    rng = random.Random(0)
    for width in (1, 64, 200):
        patterns = aig.random_patterns(width, rng)
        assert CompiledAig(aig).simulate(patterns, width) == aig.simulate(
            patterns, width
        )


def test_compiled_aig_rejects_grown_graph():
    from repro.aig import Aig

    aig = Aig("g")
    a = aig.add_input("a")
    b = aig.add_input("b")
    aig.add_output("y", aig.add_and(a, b))
    sim = CompiledAig(aig)
    aig.add_and(a, b ^ 1)
    with pytest.raises(RuntimeError):
        sim.simulate({}, 1)
