"""Property suite: the batch kernel is bit-identical to per-circuit
simulation.

The acceptance bar from the batch-sim issue: ~200 random circuits
swept through batch sizes {1, 2, 7, 64} x widths {1, 64, 65, 200} x
both backends, asserting ``BatchKernel.evaluate_words`` equals each
member's own ``CompiledCircuit.evaluate_words`` (the kernel the PR-4
property suite already pins to the interpreted oracle), plus directed
tests for empty/singleton batches and mixed arena/legacy members.

Plain parametrization over (batch size, backend), consuming one shared
circuit pool in consecutive chunks: every circuit in the pool is
evaluated under every batch size on every backend, and the per-member
width is drawn per chunk so mixed-width batches (the masking edge case)
appear throughout.
"""

import random

import pytest

from repro.circuits import random_circuit
from repro.net import attach_arena
from repro.sim import BatchKernel, batch_enabled
from repro.sim.batch import BATCH_ENV
from repro.sim.kernel import get_compiled, numpy_available

#: the issue's width cases: single pattern, one full word, word
#: boundary + 1, and a multi-word non-multiple of 64
WIDTHS = [1, 64, 65, 200]

BATCH_SIZES = [1, 2, 7, 64]

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

N_CIRCUITS = 200

_POOL = None


def _pool():
    """200 deterministic random circuits, every third one arena-backed
    so each multi-member batch mixes arena and legacy kernels."""
    global _POOL
    if _POOL is None:
        circuits = []
        for seed in range(N_CIRCUITS):
            rng = random.Random(seed * 6151 + 5)
            c = random_circuit(
                num_inputs=rng.randint(3, 6),
                num_gates=rng.randint(6, 16),
                num_outputs=rng.randint(1, 3),
                seed=seed,
            )
            if seed % 3 == 0:
                attach_arena(c)
            circuits.append(c)
        _POOL = circuits
    return _POOL


def _member_inputs(circuit, width, rng):
    return {g: rng.getrandbits(width) for g in circuit.inputs}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_matches_per_circuit(batch_size, backend):
    pool = _pool()
    rng = random.Random(batch_size * 31 + 7)
    for start in range(0, len(pool), batch_size):
        circuits = pool[start : start + batch_size]
        widths = [WIDTHS[rng.randrange(len(WIDTHS))] for _ in circuits]
        packed = [
            _member_inputs(c, w, rng) for c, w in zip(circuits, widths)
        ]
        bk = BatchKernel(circuits)
        got = bk.evaluate_words(packed, widths, backend=backend)
        for k, circuit in enumerate(circuits):
            kern = get_compiled(circuit)
            want = kern.evaluate_words(
                packed[k], widths[k], backend="python"
            )
            assert got[k] == want, (
                f"batch={batch_size} member={k} width={widths[k]} "
                f"backend={backend} pool[{start + k}]"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_gid_keyed_evaluate_matches(backend):
    pool = _pool()[:8]
    rng = random.Random(99)
    widths = [WIDTHS[i % len(WIDTHS)] for i in range(len(pool))]
    packed = [_member_inputs(c, w, rng) for c, w in zip(pool, widths)]
    bk = BatchKernel(pool)
    got = bk.evaluate(packed, widths, backend=backend)
    for k, circuit in enumerate(pool):
        kern = get_compiled(circuit)
        want = kern.evaluate(packed[k], widths[k], backend="python")
        assert got[k] == want


def test_empty_batch():
    bk = BatchKernel([])
    assert len(bk) == 0
    assert bk.evaluate_words([], []) == []
    assert bk.evaluate([], []) == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_singleton_batch(backend):
    circuit = _pool()[1]
    rng = random.Random(4)
    packed = _member_inputs(circuit, 65, rng)
    bk = BatchKernel([circuit])
    want = get_compiled(circuit).evaluate_words(
        packed, 65, backend="python"
    )
    assert bk.evaluate_words([packed], [65], backend=backend) == [want]


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_arena_and_legacy_members(backend):
    rng = random.Random(17)
    circuits = []
    for seed in (301, 302, 303, 304):
        c = random_circuit(
            num_inputs=4, num_gates=12, num_outputs=2, seed=seed
        )
        if seed % 2:
            attach_arena(c)
        circuits.append(c)
    arena_backed = [c for c in circuits if getattr(c, "_arena", None)]
    assert arena_backed and len(arena_backed) < len(circuits)
    widths = [1, 200, 64, 65]
    packed = [
        _member_inputs(c, w, rng) for c, w in zip(circuits, widths)
    ]
    bk = BatchKernel(circuits)
    got = bk.evaluate_words(packed, widths, backend=backend)
    for k, circuit in enumerate(circuits):
        want = get_compiled(circuit).evaluate_words(
            packed[k], widths[k], backend="python"
        )
        assert got[k] == want


def test_member_mutation_triggers_rebuild():
    """Mutating any member between evaluates recompiles the plan, same
    as the per-circuit kernel's version check."""
    from repro.network import GateType

    rng = random.Random(23)
    circuits = [
        random_circuit(num_inputs=4, num_gates=10, seed=s)
        for s in (401, 402)
    ]
    bk = BatchKernel(circuits)
    widths = [64, 64]
    packed = [_member_inputs(c, 64, rng) for c in circuits]
    bk.evaluate_words(packed, widths)

    victim = circuits[1]
    g = victim.add_gate(GateType.NOT, 0.0)
    victim.connect(victim.outputs[0], g)
    packed = [_member_inputs(c, 64, rng) for c in circuits]
    got = bk.evaluate_words(packed, widths)
    for k, circuit in enumerate(circuits):
        want = get_compiled(circuit).evaluate_words(
            packed[k], 64, backend="python"
        )
        assert got[k] == want


def test_counters_charged_identically_on_both_backends():
    rng = random.Random(5)
    circuits = _pool()[10:14]
    widths = [64] * len(circuits)
    packed = [_member_inputs(c, 64, rng) for c in circuits]

    charged = []
    for backend in BACKENDS:
        bk = BatchKernel(circuits)
        bk.evaluate_words(packed, widths, backend=backend)
        charged.append(bk.counters())
    assert all(c == charged[0] for c in charged)
    first = charged[0]
    assert first["batch_dispatches"] == 1
    assert first["circuits_per_dispatch"] == len(circuits)
    assert first["gate_evals_batched"] > 0
    assert first["python_loop_iters_saved"] >= 0


def test_zero_width_batch():
    circuits = _pool()[:2]
    bk = BatchKernel(circuits)
    got = bk.evaluate_words([{}, {}], [0, 0])
    assert all(all(w == 0 for w in member) for member in got)
    assert bk.counters()["batch_dispatches"] == 1


def test_batch_enabled_env_switch(monkeypatch):
    monkeypatch.delenv(BATCH_ENV, raising=False)
    assert batch_enabled()
    monkeypatch.setenv(BATCH_ENV, "0")
    assert not batch_enabled()
    monkeypatch.setenv(BATCH_ENV, "1")
    assert batch_enabled()
