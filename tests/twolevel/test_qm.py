"""Exact Quine-McCluskey minimization, and espresso-lite vs the optimum."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel import (
    Cover,
    cube_covered,
    espresso,
    minimize_cover_exact,
    minimize_exact,
    prime_implicants,
)


class TestPrimeImplicants:
    def test_textbook_example_properties(self):
        # f(a,b,c,d) = sum m(4,8,10,11,12,15) + d(9,14): classic example
        on = {4, 8, 10, 11, 12, 15}
        dc = {9, 14}
        primes = prime_implicants(4, sorted(on), sorted(dc))
        fd = on | dc
        for p in primes:
            covered = {
                m for m in range(16)
                if p.evaluate([(m >> i) & 1 for i in range(4)])
            }
            # soundness: every prime sits inside ON + DC
            assert covered <= fd
            # primality: removing any literal escapes ON + DC
            for var, _val in p.literals():
                grown = p.without_literal(var)
                grown_covered = {
                    m for m in range(16)
                    if grown.evaluate([(m >> i) & 1 for i in range(4)])
                }
                assert not grown_covered <= fd
        # completeness: every ON minterm is covered by some prime
        for m in on:
            point = [(m >> i) & 1 for i in range(4)]
            assert any(p.evaluate(point) for p in primes)

    def test_primality(self):
        """No prime is contained in another implicant of the function."""
        on = [1, 3, 5, 7]
        primes = prime_implicants(3, on)
        cover = Cover(3, primes)
        for p in primes:
            for var, _ in p.literals():
                grown = p.without_literal(var)
                # growing any literal escapes the ON+DC set
                assert not cube_covered(grown, cover)

    def test_full_function(self):
        primes = prime_implicants(2, [0, 1, 2, 3])
        assert len(primes) == 1
        assert primes[0].num_literals() == 0


class TestExactMinimization:
    def test_classic(self):
        # f = a'b + ab + ab' = a + b: minimum is 2 cubes
        result = minimize_exact(2, [1, 2, 3])
        assert len(result) == 2
        assert sorted(result.minterms()) == [1, 2, 3]

    def test_xor_needs_two_cubes(self):
        result = minimize_exact(2, [1, 2])
        assert len(result) == 2

    def test_cyclic_core_petrick(self):
        # the classic cyclic cover: f = sum m(0,1,2,5,6,7) on 3 vars
        result = minimize_exact(3, [0, 1, 2, 5, 6, 7])
        assert len(result) == 3
        assert sorted(result.minterms()) == [0, 1, 2, 5, 6, 7]

    def test_dontcares_help(self):
        # ON = {3}, DC = {1, 2}: a single-literal cube suffices
        result = minimize_exact(2, [3], [1, 2])
        assert len(result) == 1
        assert result.cubes[0].num_literals() == 1

    def test_empty(self):
        assert minimize_exact(3, []).is_empty_cover()

    @given(
        on=st.sets(st.integers(0, 15), max_size=12),
        dc=st.sets(st.integers(0, 15), max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_exactness_interval(self, on, dc):
        """Result covers ON \\ DC, avoids OFF, and no prime cover with
        fewer cubes exists (checked against brute force for tiny sizes).
        """
        result = minimize_exact(4, sorted(on), sorted(dc))
        got = set(result.minterms())
        assert (on - dc) <= got <= (on | dc)

    @given(
        on=st.sets(st.integers(0, 15), min_size=1, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_espresso_never_beats_exact(self, on):
        """Heuristic cost >= exact optimum (the oracle property)."""
        cover = Cover.from_minterms(4, sorted(on))
        heuristic = espresso(cover).cover
        exact = minimize_cover_exact(cover)
        assert len(exact) <= len(heuristic)
        assert sorted(exact.minterms()) == sorted(on)
