"""Unate recursive paradigm vs brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel import (
    Cover,
    Cube,
    complement,
    covers_equal,
    cube_covered,
    is_tautology,
)


def covers(num_vars=4, max_cubes=6):
    return st.lists(
        st.text(alphabet="01-", min_size=num_vars, max_size=num_vars),
        min_size=0,
        max_size=max_cubes,
    ).map(
        lambda rows: Cover(num_vars, [Cube.from_string(r) for r in rows])
    )


@given(covers())
@settings(max_examples=200, deadline=None)
def test_tautology_matches_brute_force(cover):
    expected = len(list(cover.minterms())) == 16
    assert is_tautology(cover) == expected


@given(covers())
@settings(max_examples=150, deadline=None)
def test_complement_is_exact(cover):
    comp = complement(cover)
    on = set(cover.minterms())
    off = set(comp.minterms())
    assert on | off == set(range(16))
    assert on & off == set()


@given(covers(), st.text(alphabet="01-", min_size=4, max_size=4))
@settings(max_examples=150, deadline=None)
def test_cube_covered_matches_pointsets(cover, s):
    cube = Cube.from_string(s)
    cube_points = {
        p for p in range(16)
        if cube.evaluate([(p >> i) & 1 for i in range(4)])
    }
    assert cube_covered(cube, cover) == (
        cube_points <= set(cover.minterms())
    )


def test_tautology_obvious_cases():
    assert is_tautology(Cover.tautology(3))
    assert not is_tautology(Cover.empty(3))
    assert is_tautology(Cover.from_strings(["1-", "0-"]))
    assert not is_tautology(Cover.from_strings(["1-", "01"]))


def test_complement_of_empty_and_universe():
    assert is_tautology(complement(Cover.empty(3)))
    assert complement(Cover.tautology(3)).is_empty_cover()


def test_covers_equal():
    a = Cover.from_strings(["1-", "-1"])
    b = Cover.from_strings(["11", "10", "01"])
    assert covers_equal(a, b)
    assert not covers_equal(a, Cover.from_strings(["1-"]))
