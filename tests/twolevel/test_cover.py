"""Cover container and cofactoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel import Cover, Cube, random_cover


def covers(num_vars=4, max_cubes=6):
    return st.lists(
        st.text(alphabet="01-", min_size=num_vars, max_size=num_vars),
        min_size=0,
        max_size=max_cubes,
    ).map(
        lambda rows: Cover(num_vars, [Cube.from_string(r) for r in rows])
    )


class TestBasics:
    def test_from_strings(self):
        c = Cover.from_strings(["1-", "01"])
        assert len(c) == 2
        assert c.evaluate([1, 0])
        assert c.evaluate([0, 1])
        assert not c.evaluate([0, 0])

    def test_void_cubes_dropped(self):
        c = Cover(2)
        c.add(Cube(2, 0b0001))  # var1 field empty
        assert len(c) == 0

    def test_minterms(self):
        c = Cover.from_strings(["1-"])
        assert sorted(c.minterms()) == [1, 3]

    def test_from_minterms(self):
        c = Cover.from_minterms(3, [0, 5])
        assert sorted(c.minterms()) == [0, 5]

    def test_tautology_and_empty(self):
        assert Cover.tautology(2).evaluate([0, 1])
        assert not Cover.empty(2).evaluate([0, 1])


class TestCofactor:
    @given(covers(), st.integers(0, 3), st.integers(0, 1), st.integers(0, 15))
    @settings(max_examples=150, deadline=None)
    def test_shannon_cofactor_semantics(self, cover, var, value, bits):
        """f_x(point) == f(point with x := value)."""
        cf = cover.cofactor(var, value)
        point = [(bits >> i) & 1 for i in range(4)]
        forced = list(point)
        forced[var] = value
        assert cf.evaluate(point) == cover.evaluate(forced)

    @given(covers(), st.integers(0, 15))
    @settings(max_examples=100, deadline=None)
    def test_cofactor_cube_semantics(self, cover, bits):
        cube = Cube.from_string("1-0-")
        cf = cover.cofactor_cube(cube)
        point = [(bits >> i) & 1 for i in range(4)]
        forced = list(point)
        forced[0], forced[2] = 1, 0
        assert cf.evaluate(point) == cover.evaluate(forced)


class TestCleanup:
    @given(covers())
    @settings(max_examples=100, deadline=None)
    def test_remove_contained_preserves_function(self, cover):
        cleaned = cover.remove_contained()
        assert sorted(cleaned.minterms()) == sorted(cover.minterms())
        assert len(cleaned) <= len(cover)

    def test_binate_select(self):
        c = Cover.from_strings(["1-", "0-"])
        assert c.binate_select() == 0
        unate = Cover.from_strings(["1-", "11"])
        assert unate.binate_select() is None

    def test_most_bound_variable(self):
        c = Cover.from_strings(["1-", "10"])
        assert c.most_bound_variable() == 0
        assert Cover.from_strings(["--"]).most_bound_variable() is None


def test_random_cover_deterministic():
    a = random_cover(5, 8, seed=2)
    b = random_cover(5, 8, seed=2)
    assert [c.bits for c in a.cubes] == [c.bits for c in b.cubes]
