"""Cube algebra in positional notation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel import Cube


def cube_strings(n=4):
    return st.text(alphabet="01-", min_size=n, max_size=n)


class TestConstruction:
    def test_universe(self):
        u = Cube.universe(3)
        assert u.to_string() == "---"
        assert u.num_literals() == 0
        assert u.minterm_count() == 8

    def test_string_roundtrip(self):
        for s in ("01-", "---", "111", "0-0"):
            assert Cube.from_string(s).to_string() == s

    def test_bad_character(self):
        with pytest.raises(ValueError):
            Cube.from_string("01x")

    def test_from_assignment(self):
        c = Cube.from_assignment(3, {0: 1, 2: 0})
        assert c.to_string() == "1-0"

    def test_with_without_literal(self):
        c = Cube.universe(3).with_literal(1, 0)
        assert c.to_string() == "-0-"
        assert c.without_literal(1).to_string() == "---"


class TestAlgebra:
    def test_intersection(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        assert a.intersect(b).to_string() == "10-"

    def test_void_intersection(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("0--")
        assert a.intersect(b).is_void()

    def test_containment(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("10-")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_distance(self):
        a = Cube.from_string("10-")
        assert a.distance(Cube.from_string("11-")) == 1
        assert a.distance(Cube.from_string("01-")) == 2
        assert a.distance(Cube.from_string("0--")) == 1
        assert a.distance(Cube.from_string("010")) == 2
        assert a.distance(Cube.from_string("1--")) == 0

    def test_consensus(self):
        a = Cube.from_string("1-1")
        b = Cube.from_string("0-1")
        assert a.consensus(b).to_string() == "--1"
        # distance 0 or 2: no consensus
        assert a.consensus(Cube.from_string("1-1")) is None
        assert a.consensus(Cube.from_string("0-0")) is None

    def test_supercube(self):
        a = Cube.from_string("101")
        b = Cube.from_string("100")
        assert a.supercube(b).to_string() == "10-"

    def test_cofactor(self):
        c = Cube.from_string("1-0")
        assert c.cofactor(0, 1).to_string() == "--0"
        assert c.cofactor(0, 0) is None
        assert c.cofactor(1, 1).to_string() == "1-0"


class TestSemantics:
    @given(cube_strings(), st.integers(0, 15))
    @settings(max_examples=100, deadline=None)
    def test_evaluate_matches_literal_semantics(self, s, point_bits):
        cube = Cube.from_string(s)
        point = [(point_bits >> i) & 1 for i in range(4)]
        expected = all(
            point[v] == val for v, val in cube.literals()
        )
        assert cube.evaluate(point) == expected

    @given(cube_strings(), cube_strings())
    @settings(max_examples=100, deadline=None)
    def test_containment_matches_pointsets(self, sa, sb):
        a, b = Cube.from_string(sa), Cube.from_string(sb)
        points_a = {
            p for p in range(16)
            if a.evaluate([(p >> i) & 1 for i in range(4)])
        }
        points_b = {
            p for p in range(16)
            if b.evaluate([(p >> i) & 1 for i in range(4)])
        }
        assert a.contains(b) == (points_b <= points_a)

    @given(cube_strings())
    @settings(max_examples=50, deadline=None)
    def test_minterm_count(self, s):
        cube = Cube.from_string(s)
        actual = sum(
            cube.evaluate([(p >> i) & 1 for i in range(4)])
            for p in range(16)
        )
        assert cube.minterm_count() == actual

    def test_hash_eq(self):
        assert Cube.from_string("01-") == Cube.from_string("01-")
        assert hash(Cube.from_string("01-")) == hash(Cube.from_string("01-"))
        assert Cube.from_string("01-") != Cube.from_string("0--")
