"""Espresso-lite: equivalence, irredundancy, don't-care use."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel import (
    Cover,
    Cube,
    complement,
    cube_covered,
    espresso,
    expand,
    irredundant,
    reduce_cover,
)


def covers(num_vars=4, max_cubes=7, min_cubes=0):
    return st.lists(
        st.text(alphabet="01-", min_size=num_vars, max_size=num_vars),
        min_size=min_cubes,
        max_size=max_cubes,
    ).map(
        lambda rows: Cover(num_vars, [Cube.from_string(r) for r in rows])
    )


@given(covers())
@settings(max_examples=120, deadline=None)
def test_espresso_preserves_function(cover):
    result = espresso(cover)
    assert sorted(result.cover.minterms()) == sorted(cover.minterms())


@given(covers())
@settings(max_examples=120, deadline=None)
def test_espresso_never_increases_cost(cover):
    result = espresso(cover)
    assert result.final_cost <= result.initial_cost or (
        result.final_cost[0] <= result.initial_cost[0]
    )


@given(covers(min_cubes=1))
@settings(max_examples=80, deadline=None)
def test_espresso_output_single_cube_irredundant(cover):
    """No cube of the result is covered by the union of the others."""
    result = espresso(cover).cover
    for i, cube in enumerate(result.cubes):
        rest = Cover(
            result.num_vars,
            [c for j, c in enumerate(result.cubes) if j != i],
        )
        assert not cube_covered(cube, rest)


def test_classic_minimization():
    # f = a'b + ab + ab' = a + b
    cover = Cover.from_strings(["01", "11", "10"])
    result = espresso(cover).cover
    assert len(result) == 2
    assert sorted(result.minterms()) == [1, 2, 3]


def test_dont_cares_enable_smaller_cover():
    # ON = {11}, DC = {10, 01}: minimizable to a single-literal cube
    on = Cover.from_strings(["11"])
    dc = Cover.from_strings(["10", "01"])
    result = espresso(on, dc).cover
    assert len(result) == 1
    assert result.cubes[0].num_literals() <= 1
    # must still cover ON and avoid OFF = {00}
    assert result.evaluate([1, 1])
    assert not result.evaluate([0, 0])


@given(covers(), covers(max_cubes=3))
@settings(max_examples=60, deadline=None)
def test_espresso_with_dc_stays_in_interval(on, dc):
    """ON - DC <= result <= ON + DC (don't-care minterms are free)."""
    result = espresso(on, dc).cover
    on_set = set(on.minterms())
    dc_set = set(dc.minterms())
    got = set(result.minterms())
    assert (on_set - dc_set) <= got <= (on_set | dc_set)


class TestPasses:
    def test_expand_against_off(self):
        on = Cover.from_strings(["11"])
        off = complement(on)
        grown = expand(on, off)
        assert sorted(grown.minterms()) == sorted(on.minterms())

    def test_irredundant_drops_covered_cube(self):
        c = Cover.from_strings(["1-", "11"])
        result = irredundant(c)
        assert len(result) == 1

    @given(covers())
    @settings(max_examples=60, deadline=None)
    def test_reduce_preserves_function(self, cover):
        reduced = reduce_cover(cover)
        assert sorted(reduced.minterms()) == sorted(cover.minterms())
