#!/usr/bin/env python3
"""Table I through the engine: fan-out, warm cache, telemetry.

Runs the paper's carry-skip Table I rows twice through
``repro.engine`` -- first cold across a 2-process pool (populating a
content-addressed result cache), then warm (every KMS/ATPG/delay stage
served from cache, zero recomputation) -- and prints the telemetry that
proves it.  The rows themselves are bit-identical to the serial
``repro.bench`` path: both run the same pipeline core.

Run:  python examples/parallel_table1.py
"""

import tempfile

from repro.bench import render
from repro.engine import EngineConfig, rows_from_report, run_table1


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-engine-cache-")
    config = EngineConfig(jobs=2, cache_dir=cache_dir)

    print("Cold run: 2 worker processes, empty cache...")
    cold = run_table1(which="csa", config=config)
    print(render(rows_from_report(cold), "Table I -- csa (cold)"))
    print(cold.telemetry.summary())

    print("\nWarm run: same sweep, same cache...")
    warm = run_table1(which="csa", config=config)
    print(render(rows_from_report(warm), "Table I -- csa (warm)"))
    print(warm.telemetry.summary())

    executions = warm.telemetry.stage_executions()
    assert warm.telemetry.cache_misses == 0, executions
    assert executions["kms"] == 0 and executions["atpg"] == 0, executions
    print("\nWarm rerun did zero KMS/ATPG work: "
          f"{warm.telemetry.cache_hits} cache hits, "
          f"{warm.telemetry.total_seconds():.2f}s total "
          f"(cold: {cold.telemetry.total_seconds():.2f}s).")
    print(f"Cache directory: {cache_dir}")


if __name__ == "__main__":
    main()
