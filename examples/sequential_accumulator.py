#!/usr/bin/env python3
"""Sequential circuits: the Section I reduction in action.

"This algorithm may be generalized to sequential circuits by extracting
the combinational portion ... since the cycle time of a synchronous
sequential circuit is determined by the delay of the combinational
portions between latches."

We build an accumulator whose datapath is a carry-skip adder (so the
machine inherits the adder's stuck-at redundancies), run KMS on the
extracted core, and confirm: same cycle-accurate behavior, fully
testable core, cycle time no worse.

Run:  python examples/sequential_accumulator.py
"""

from repro.atpg import count_redundancies, is_irredundant
from repro.seq import accumulator, kms_sequential


def main() -> None:
    machine = accumulator(4, block_size=2)
    print(f"{machine}")
    print(f"cycle time             : {machine.cycle_time():g}")
    core = machine.extract_combinational()
    print(f"core redundancies      : {count_redundancies(core)}")

    print("\nDriving it for a few cycles (add 3, then 4, then 5):")
    stimulus = [
        {"b0": 1, "b1": 1, "b2": 0, "b3": 0, "cin": 0},
        {"b0": 0, "b1": 0, "b2": 1, "b3": 0, "cin": 0},
        {"b0": 1, "b1": 0, "b2": 1, "b3": 0, "cin": 0},
    ]
    old_trace = list(machine.simulate(stimulus))
    for cycle, (_outs, state) in enumerate(old_trace):
        value = sum(state[f"r{i}"] << i for i in range(4))
        print(f"  after cycle {cycle}: accumulator = {value}")

    print("\nApplying the Section I reduction (KMS on the core)...")
    new_machine, result = kms_sequential(machine)
    print(
        f"  {result.iterations} iterations, "
        f"{result.cleanup_steps} redundancies removed"
    )
    print(f"  new cycle time         : {new_machine.cycle_time():g}")
    print(f"  core fully testable    : {is_irredundant(new_machine.core)}")

    new_trace = list(new_machine.simulate(stimulus))
    same = all(
        old == new for old, new in zip(old_trace, new_trace)
    )
    print(f"  traces identical       : {same}")
    assert same
    assert new_machine.cycle_time() <= machine.cycle_time()


if __name__ == "__main__":
    main()
