#!/usr/bin/env python3
"""The speedtest hazard, end to end -- and why KMS dissolves it.

Section III of the paper describes a nasty failure mode: a fault that no
logic test can catch (it is redundant!) but that makes the part miss its
clock.  The paper leaves generating "speedtests" for such faults as an
open problem; `repro.timing.speedtest` solves it exhaustively for small
circuits using the event-driven simulator.

Run:  python examples/speedtest_hazard.py
"""

from repro.atpg import inject, stem_fault
from repro.circuits import fig4_c2_cone
from repro.core import kms
from repro.sim.events import output_waveforms, sample_waveform
from repro.timing import find_speedtest, speedtest_report, viability_delay


def main() -> None:
    cone = fig4_c2_cone()
    clock = viability_delay(cone).delay
    print(f"carry cone clocked at its computed delay: tau = {clock:g}")

    fault = stem_fault(cone.find_gate("gate10"), 0)
    print(f"\ninjecting the untestable fault: {fault.describe(cone)}")
    st = find_speedtest(cone, fault, tau=clock)
    assert st is not None
    names = {g: cone.gates[g].name for g in cone.inputs}
    print("found a speedtest transition:")
    print(
        "  before:",
        {names[g]: v for g, v in sorted(st.before.items())},
    )
    print(
        "  after: ",
        {names[g]: v for g, v in sorted(st.after.items())},
    )

    faulty = inject(cone, fault)
    waves = output_waveforms(faulty, st.before, st.after)
    wave = waves[st.output]
    expected = cone.evaluate(st.after)[st.output]
    print(f"\nfaulty c2 waveform under that transition: {wave}")
    print(
        f"  sampled at tau={clock:g}: {sample_waveform(wave, clock)} "
        f"(correct settled value: {expected})"
    )
    print("  -> the faulty part passes every logic test yet fails at speed")

    print("\nfull classification of the redundant cone's faults:")
    report = speedtest_report(cone, tau=clock)
    print(
        f"  {len(report.testable)} logically testable, "
        f"{len(report.speedtestable)} need a speedtest, "
        f"{len(report.invisible)} harmless even at speed"
    )

    print("\nafter KMS:")
    irredundant = kms(cone).circuit
    tau = viability_delay(irredundant).delay
    report = speedtest_report(irredundant, tau=tau)
    print(
        f"  clock {tau:g}; every fault logically testable: "
        f"{not report.needs_speedtest} -- no speedtest required"
    )


if __name__ == "__main__":
    main()
