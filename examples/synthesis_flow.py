#!/usr/bin/env python3
"""The full Section VIII flow on an MCNC-style benchmark.

spec (PLA) -> espresso-lite -> factoring -> simple gates
           -> timing optimization (with a late-arriving input)
           -> KMS redundancy removal -> BLIF out

The timing optimizer's Shannon bypass -- the generalized carry-skip
trick -- can introduce a stuck-at redundancy; KMS then removes it with
no delay increase, which is the paper's whole thesis.

Run:  python examples/synthesis_flow.py
"""

from repro.atpg import count_redundancies, is_irredundant
from repro.circuits import mcnc_pla
from repro.core import kms, verify_transformation
from repro.io import write_blif
from repro.sat import check_equivalence
from repro.synth import speed_up
from repro.timing import UnitDelayModel, topological_delay


def main() -> None:
    model = UnitDelayModel()

    print("Step 1: synthesize z4ml (3-bit + 3-bit adder PLA)")
    pla = mcnc_pla("z4ml")
    area = pla.to_circuit(minimize=True)
    print(
        f"  {area.num_gates()} gates, "
        f"delay {topological_delay(area, model):g}"
    )

    print("\nStep 2: the context says input x0 arrives late (t = 6)")
    area.input_arrival[area.find_input("x0")] = 6.0
    print(f"  delay is now {topological_delay(area, model):g}")

    print("\nStep 3: timing optimization (speed_up)")
    fast, stats = speed_up(area, model)
    assert check_equivalence(area, fast).equivalent
    print(
        f"  delay {stats.delay_before:g} -> {stats.delay_after:g}; "
        f"outputs rebuilt: {stats.collapsed_outputs}; "
        f"bypassed inputs: {stats.bypassed_inputs}"
    )
    red = count_redundancies(fast)
    print(f"  redundancies introduced: {red}")

    print("\nStep 4: KMS -- make it testable, keep it fast")
    result = kms(fast, model=model)
    report = verify_transformation(fast, result.circuit, model)
    print(
        f"  equivalent={report.equivalent} "
        f"irredundant={report.irredundant} delay "
        f"{report.delays_before.sensitizable:g} -> "
        f"{report.delays_after.sensitizable:g}"
    )
    assert report.ok
    assert is_irredundant(result.circuit)

    print("\nStep 5: export BLIF")
    text = write_blif(result.circuit)
    print("  " + "\n  ".join(text.splitlines()[:6]) + "\n  ...")
    print(f"  ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
