"""Tour of the repro.serve optimization service.

Starts an in-process daemon (the same code path as ``repro serve``,
minus the socket being shared with the outside world), then walks the
client surface: submission, long-polling, the NDJSON progress stream,
request coalescing, and the /stats counters.

Run from the repo root::

    PYTHONPATH=src python examples/serve_client.py
"""

from repro.serve import InProcessServer, ServeClient, ServeConfig


def main() -> None:
    config = ServeConfig(workers=2)
    with InProcessServer(config) as server:
        client = ServeClient(port=server.port)
        print(f"daemon up on port {server.port}:", client.health())

        # -- 1. submit a built-in circuit through the kms pipeline ---- #
        job = client.submit_builtin("csa8.2", pipeline="kms")
        print(f"\nsubmitted {job['job_id']} (state {job['state']}, "
              f"key {job['key'][:12]}...)")

        # -- 2. stream progress while it runs ------------------------- #
        print("progress stream:")
        for event in client.events(job["job_id"]):
            if event["type"] == "stage":
                record = event["record"]
                print(f"  stage {record['stage']:<12} "
                      f"{record['seconds']:6.2f}s  cache={record['cache']}")
            else:
                print(f"  {event['type']}")

        # -- 3. fetch the terminal result ----------------------------- #
        response = client.wait(job["job_id"], timeout=120)
        result = response["result"]
        print(f"\nstate={response['state']}  "
              f"fingerprint={result['final_fingerprint'][:16]}...")
        print("transformed netlist, first lines:")
        for line in result["blif"].splitlines()[:4]:
            print(f"  {line}")

        # -- 4. duplicate submissions coalesce ------------------------ #
        dup = client.submit_builtin("csa8.2", pipeline="kms")
        print(f"\nresubmitted: coalesced={dup['coalesced']} "
              f"(same execution {dup['exec_id']}, no new work)")
        client.wait(dup["job_id"], timeout=10)

        # a *different* pipeline over the same circuit is new work, but
        # its kms stage reuses the shared artifact store
        verify = client.submit_builtin("csa8.2", pipeline="verify")
        response = client.wait(verify["job_id"], timeout=120)
        caches = {r["stage"]: r["cache"]
                  for r in response["result"]["records"]}
        print(f"verify pipeline stage caches: {caches}")

        # -- 5. the daemon's accounting ------------------------------- #
        stats = client.stats()
        print(f"\ncounters: {stats['counters']}")
        print(f"stage executions: {stats['stage_executions']}")
        print(f"artifact store: {stats['cache']}")
    print("\ndaemon drained and stopped")


if __name__ == "__main__":
    main()
