#!/usr/bin/env python3
"""Quickstart: make a carry-skip adder irredundant without losing speed.

The carry-skip adder is the paper's star example: the skip AND + MUX
added to beat ripple-carry delay leaves an untestable stuck-at fault in
every block, and removing that redundancy the obvious way slows the
adder back down.  The KMS algorithm removes it *without* slowing
anything down.

Run:  python examples/quickstart.py
"""

from repro import (
    carry_skip_adder,
    count_redundancies,
    is_irredundant,
    kms,
    verify_transformation,
)
from repro.timing import UnitDelayModel


def main() -> None:
    model = UnitDelayModel(use_arrival_times=False)

    print("Building an 8-bit carry-skip adder (4 blocks of 2 bits)...")
    adder = carry_skip_adder(8, 2)
    print(f"  {adder}")
    print(f"  redundant stuck-at faults: {count_redundancies(adder)}")

    print("\nRunning the KMS algorithm (static sensitization mode)...")
    result = kms(adder, model=model)
    print(
        f"  {result.iterations} loop iterations, "
        f"{result.duplicated_gates} gates duplicated, "
        f"{result.cleanup_steps} redundancies removed in cleanup"
    )

    print("\nVerifying every claim of the paper...")
    report = verify_transformation(adder, result.circuit, model)
    print(f"  functionally equivalent : {report.equivalent}")
    print(f"  fully testable          : {report.irredundant}")
    print(
        f"  measured delay          : "
        f"{report.delays_before.sensitizable:g} -> "
        f"{report.delays_after.sensitizable:g} (never up)"
    )
    print(
        f"  gate count              : {report.gates_before} -> "
        f"{report.gates_after}"
    )
    assert report.ok
    assert is_irredundant(result.circuit)
    print("\nAll good: irredundant and at least as fast.")


if __name__ == "__main__":
    main()
