#!/usr/bin/env python3
"""The carry-skip adder study: why naive redundancy removal is a trap.

Walks the paper's Section III narrative on the single-output carry cone
(Fig. 4):

1. the cone's real (viability) delay is 8, though the longest path
   measures 11 -- a false path through the ripple chain;
2. gate 10's output stuck-at-0 is untestable, and a faulty part is
   logically perfect but needs 11 units -- it would fail at speed
   (the "speedtest" hazard);
3. removing that redundancy naively yields a slower circuit;
4. KMS yields an irredundant circuit that is *faster*.

Run:  python examples/carry_skip_study.py
"""

from repro.atpg import (
    SatAtpg,
    inject,
    remove_fault,
    remove_redundancies,
    stem_fault,
)
from repro.circuits import fig4_c2_cone
from repro.core import kms
from repro.sim import true_delay
from repro.timing import topological_delay, viability_delay


def main() -> None:
    cone = fig4_c2_cone()
    print("Fig. 4: the 2-bit carry-skip adder's carry cone")
    print(f"  gates: {cone.num_gates()}, c0 arrives at t=5")
    print(f"  longest path length     : {topological_delay(cone):g}")
    print(f"  computed (viable) delay : {viability_delay(cone).delay:g}")
    print(f"  true delay (event sim)  : {true_delay(cone):g}")

    print("\nThe redundancy (Section III):")
    g10 = cone.find_gate("gate10")
    engine = SatAtpg(cone)
    print(
        f"  gate10 s-a-0 testable: "
        f"{engine.is_testable(stem_fault(g10, 0))}"
    )
    faulty = inject(cone, stem_fault(g10, 0))
    print(
        f"  faulty circuit's delay : {viability_delay(faulty).delay:g} "
        f"(> the 8-unit clock -- needs a speedtest!)"
    )

    print("\nNaive removal (tie the skip AND to 0 first):")
    naive = cone.copy()
    remove_fault(naive, stem_fault(naive.find_gate("gate10"), 0))
    naive = remove_redundancies(naive).circuit
    print(
        f"  irredundant but SLOWER: delay "
        f"{viability_delay(naive).delay:g} (was 8)"
    )

    print("\nKMS (the paper's algorithm):")
    result = kms(cone, trace=True)
    for event in result.events:
        print(f"  kill path: {event.path}")
        print(
            f"    tie first edge to {event.constant_value}, "
            f"{event.duplicated_gates} gates duplicated"
        )
    final = result.circuit
    print(
        f"  irredundant and FASTER: delay "
        f"{viability_delay(final).delay:g}, "
        f"{final.num_gates()} gates (was {cone.num_gates()})"
    )


if __name__ == "__main__":
    main()
