#!/usr/bin/env python3
"""False-path analysis: topological vs viable vs sensitizable delay.

Static timing verifiers report the longest path; the paper's Section V
explains why that is pessimistic (false paths) and why simply dropping
statically-unsensitizable paths is *optimistic*.  This example measures
all three delay estimates, plus the exact event-driven delay, on several
circuits and prints the longest paths with their sensitization verdicts.

Run:  python examples/false_path_analysis.py
"""

from repro.circuits import (
    carry_lookahead_adder,
    carry_skip_adder,
    fig4_c2_cone,
    ripple_carry_adder,
)
from repro.sim import true_delay
from repro.timing import (
    SensitizationChecker,
    ViabilityChecker,
    iter_paths_longest_first,
    sensitizable_delay,
    topological_delay,
    viability_delay,
)


def analyze(name, circuit, oracle=False):
    topo = topological_delay(circuit)
    via = viability_delay(circuit).delay
    sens = sensitizable_delay(circuit).delay
    row = f"{name:<22} topo {topo:>5g}  viable {via:>5g}  sens {sens:>5g}"
    if oracle:
        row += f"  true {true_delay(circuit):>5g}"
    print(row)
    return circuit


def show_paths(circuit, count=5):
    sens = SensitizationChecker(circuit)
    via = ViabilityChecker(circuit)
    print(f"\n  longest paths of {circuit.name}:")
    for i, path in enumerate(
        iter_paths_longest_first(circuit, max_paths=count)
    ):
        verdict = (
            "sensitizable"
            if sens.is_sensitizable(path)
            else ("viable" if via.is_viable(path) else "false")
        )
        print(f"    [{verdict:>12}] {path.describe(circuit)}")
        if i + 1 >= count:
            break


def main() -> None:
    print("delay estimates (unit = gate delays; c0/cin arrive at t=5):\n")
    cone = analyze("fig4 carry cone", fig4_c2_cone(), oracle=True)
    analyze("ripple-carry 8", ripple_carry_adder(8, cin_arrival=5.0))
    analyze("carry-skip 8.4", carry_skip_adder(8, 4, cin_arrival=5.0))
    analyze("carry-skip 8.2", carry_skip_adder(8, 2, cin_arrival=5.0))
    analyze("lookahead 4", carry_lookahead_adder(4, cin_arrival=5.0))
    show_paths(cone)
    print(
        "\nThe carry-skip adders are the paper's 'one real family of"
        "\ncircuits' whose longest paths are false: the topological and"
        "\nviable delays disagree, and naive redundancy removal converts"
        "\nthe false long path into a real one."
    )


if __name__ == "__main__":
    main()
