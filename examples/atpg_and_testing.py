#!/usr/bin/env python3
"""ATPG tour: PODEM, SAT-ATPG, fault simulation, test-set generation.

Generates a complete single-stuck-at test set for a carry-skip adder:
random patterns first (graded by bit-parallel fault simulation), then
PODEM for the hard faults, with SAT proofs for the untestable ones --
which are exactly the redundancies the paper is about.

Run:  python examples/atpg_and_testing.py
"""

from repro.atpg import (
    Podem,
    SatAtpg,
    Status,
    collapsed_faults,
    fault_coverage,
    random_vectors,
)
from repro.circuits import carry_skip_adder


def main() -> None:
    circuit = carry_skip_adder(4, 2)
    faults = collapsed_faults(circuit)
    print(f"{circuit}")
    print(f"collapsed fault list: {len(faults)} faults")

    print("\nPhase 1: 32 random patterns")
    vectors = random_vectors(circuit, 32, seed=42)
    report = fault_coverage(circuit, faults, vectors)
    print(
        f"  coverage {report.coverage:.1%} "
        f"({report.detected}/{report.total_faults}); "
        f"{len(report.undetected_faults)} faults left"
    )

    print("\nPhase 2: PODEM on the leftovers")
    podem = Podem(circuit)
    sat = SatAtpg(circuit)
    tests = []
    redundant = []
    for fault in report.undetected_faults:
        result = podem.generate(fault)
        if result.status is Status.TESTABLE:
            vector = {g: result.test.get(g, 0) for g in circuit.inputs}
            tests.append(vector)
        elif result.status is Status.UNTESTABLE:
            assert sat.is_redundant(fault)  # independent proof
            redundant.append(fault)
        else:
            print(f"  aborted on {fault.describe(circuit)}")
    print(f"  {len(tests)} deterministic tests generated")
    print(f"  {len(redundant)} faults proven untestable (redundancies):")
    for fault in redundant:
        print(f"    {fault.describe(circuit)}")

    print("\nPhase 3: grade the combined test set")
    final = fault_coverage(circuit, faults, vectors + tests)
    testable = final.total_faults - len(redundant)
    print(
        f"  {final.detected}/{testable} testable faults detected "
        f"({final.detected / testable:.1%}); the only undetected "
        f"faults are the proven redundancies"
    )
    assert final.detected == testable


if __name__ == "__main__":
    main()
