"""Adversarial fuzzing layer: planted-redundancy generation, differential
grading, failure minimization, and seeded campaign driving.

The correctness tooling the rest of the codebase is graded by: every
planted redundancy carries its ground-truth untestable fault, so
ProofEngine/KMS recall, false-removal rate, and delay preservation are
exact scores rather than spot checks.
"""

from .campaign import (
    CampaignReport,
    campaign_specs,
    job_for_spec,
    run_campaign,
    summarize,
)
from .grade import (
    MISMATCH_KINDS,
    ScenarioSpec,
    build_scenario,
    grade_scenario,
)
from .minimize import (
    SHRINKABLE_KINDS,
    minimize_failure,
    predicate_for,
    reproducer_source,
    shrink,
    write_reproducer,
)
from .plant import (
    DEGRADING,
    NEUTRAL,
    RECIPES,
    VARIANTS,
    Plant,
    PlantResult,
    plant_redundancies,
)

__all__ = [
    "CampaignReport",
    "DEGRADING",
    "MISMATCH_KINDS",
    "NEUTRAL",
    "Plant",
    "PlantResult",
    "RECIPES",
    "SHRINKABLE_KINDS",
    "ScenarioSpec",
    "VARIANTS",
    "build_scenario",
    "campaign_specs",
    "grade_scenario",
    "job_for_spec",
    "minimize_failure",
    "plant_redundancies",
    "predicate_for",
    "reproducer_source",
    "run_campaign",
    "shrink",
    "summarize",
    "write_reproducer",
]
