"""Differential grading harness for planted-redundancy scenarios.

One *scenario* = a base circuit spec (an :data:`repro.engine.stages.FACTORIES`
entry) + a planting seed/variant.  :func:`grade_scenario` rebuilds it,
runs the engines under test, and scores them against the ground truth
the generator recorded:

* **recall** -- fraction of planted untestable faults the classifier
  under test (:class:`repro.atpg.ProofEngine` by default) proves
  redundant.  The planted list is classified *directly* (no fault
  collapsing in between), so recall is exact.
* **oracle differential** -- the same list through the from-scratch
  SAT-ATPG oracle; any disagreement between the incremental engine and
  the oracle is a ``divergence`` mismatch, and an oracle verdict of
  *testable* on a planted fault is a ``plant_unsound`` mismatch (a
  generator bug, graded separately so it is never silently folded into
  engine recall).
* **false removals** -- KMS output fraig-checked against the
  *pre-insertion* base; non-equivalence means redundancy removal
  destroyed function.
* **delay preservation** -- KMS's contract is final delay <= the delay
  of the circuit it was handed; for delay-neutral plants the planted
  circuit's topological delay equals the base's, so the final circuit
  must additionally be no slower than the original base.
* **residual redundancy** -- the KMS output should be irredundant.

Every check that fails appends a ``(kind, detail)`` mismatch; the
payload is JSON-able and flows through the engine cache / campaign
report unchanged.  Mismatch kinds are the vocabulary
:mod:`repro.fuzz.minimize` shrinks by.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..network import Circuit
from .plant import NEUTRAL, PlantResult, plant_redundancies

#: Mismatch kinds grade_scenario can emit.
MISMATCH_KINDS = (
    "recall_miss",
    "false_removal",
    "delay_regression",
    "divergence",
    "plant_unsound",
    "residual_redundancy",
    "plant_not_neutral",
    "generator_nondeterminism",
)

#: classifier(circuit, faults) -> collection of faults proved redundant.
Classifier = Callable[[Circuit, Sequence[Any]], Any]


@dataclass(frozen=True)
class ScenarioSpec:
    """A reproducible scenario: base-circuit factory spec + plant knobs."""

    name: str
    base: Dict[str, Any]  # {"factory": ..., "params": {...}}
    seed: int = 0
    plants: int = 3
    variant: str = NEUTRAL
    recipes: Optional[List[str]] = None

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "name": self.name,
            "base": {
                "factory": self.base["factory"],
                "params": dict(self.base.get("params", {})),
            },
            "seed": self.seed,
            "plants": self.plants,
            "variant": self.variant,
        }
        if self.recipes is not None:
            spec["recipes"] = list(self.recipes)
        return spec

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "ScenarioSpec":
        return cls(
            name=spec["name"],
            base=spec["base"],
            seed=int(spec.get("seed", 0)),
            plants=int(spec.get("plants", 3)),
            variant=spec.get("variant", NEUTRAL),
            recipes=list(spec["recipes"]) if spec.get("recipes") else None,
        )


def build_scenario(spec: ScenarioSpec) -> PlantResult:
    """Deterministically rebuild a scenario's planted circuit + truth."""
    from ..engine.stages import build_circuit

    base = build_circuit(spec.base["factory"], spec.base.get("params", {}))
    return plant_redundancies(
        base,
        plants=spec.plants,
        seed=spec.seed,
        variant=spec.variant,
        recipes=spec.recipes,
    )


@dataclass
class _Mismatches:
    items: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, kind: str, detail: str, fault: Any = None) -> None:
        assert kind in MISMATCH_KINDS
        item: Dict[str, Any] = {"kind": kind, "detail": detail}
        if fault is not None:
            item["fault"] = [fault.kind, fault.site, fault.value]
        self.items.append(item)


def _merge_counters(
    into: Dict[str, float], counters: Dict[str, float], prefix: str = ""
) -> None:
    for key, value in counters.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            name = f"{prefix}{key}"
            into[name] = into.get(name, 0) + value


def grade_scenario(
    spec: ScenarioSpec,
    oracle: bool = True,
    check_irredundant: bool = True,
    mode: str = "static",
    incremental: bool = True,
    classifier: Optional[Classifier] = None,
    expect: Optional[str] = None,
    prefilter=None,
) -> Dict[str, Any]:
    """Grade one scenario end to end; returns a JSON-able payload.

    ``classifier`` overrides the engine under test (used by the fuzz
    tests and the minimizer to inject known-broken engines);
    ``expect`` is a circuit fingerprint the rebuilt planted circuit
    must match (catches cross-process generator nondeterminism).
    ``prefilter`` (a :class:`repro.engine.batchsim.BatchPrefilter`)
    batches the proof engines' first-epoch fault grading across the
    whole campaign; verdicts are bit-identical with or without it.
    """
    from ..atpg import ProofEngine, is_irredundant, redundant_faults
    from ..core import kms
    from ..engine.hashing import circuit_fingerprint
    from ..sat import check_equivalence
    from ..timing import (
        AsBuiltDelayModel,
        analyze,
        sensitizable_delay,
        topological_delay,
    )

    started = time.perf_counter()
    mismatches = _Mismatches()
    counters: Dict[str, float] = {}
    model = AsBuiltDelayModel()

    planted = build_scenario(spec)
    circuit, base, faults = planted.circuit, planted.base, planted.faults
    fingerprint = circuit_fingerprint(circuit)
    if expect is not None and fingerprint != expect:
        mismatches.add(
            "generator_nondeterminism",
            f"rebuilt fingerprint {fingerprint} != expected {expect}",
        )

    # --- classification recall on the exact planted list ------------- #
    if classifier is not None:
        proved = set(classifier(circuit, faults))
    elif incremental:
        engine = ProofEngine(circuit, prefilter=prefilter)
        proved = set(engine.redundant_faults(faults))
        _merge_counters(counters, engine.counters, "proof_")
    else:
        proved = set(redundant_faults(circuit, faults, incremental=False))
    missed = [f for f in faults if f not in proved]
    for fault in missed:
        mismatches.add(
            "recall_miss",
            f"planted {fault.describe(circuit)} not proved",
            fault=fault,
        )
    recall = (
        (len(faults) - len(missed)) / len(faults) if faults else 1.0
    )

    # --- from-scratch oracle differential ----------------------------- #
    oracle_redundant: Optional[int] = None
    if oracle:
        oracle_set = set(redundant_faults(circuit, faults, incremental=False))
        oracle_redundant = len(oracle_set)
        for fault in faults:
            if fault not in oracle_set:
                mismatches.add(
                    "plant_unsound",
                    f"oracle found a test for planted "
                    f"{fault.describe(circuit)}",
                    fault=fault,
                )
            elif fault not in proved:
                mismatches.add(
                    "divergence",
                    f"oracle proves {fault.describe(circuit)} redundant; "
                    f"engine under test does not",
                    fault=fault,
                )

    # --- neutrality: planted arrivals must equal base arrivals -------- #
    base_topo = topological_delay(base, model)
    planted_topo = topological_delay(circuit, model)
    if spec.variant == NEUTRAL:
        base_arrival = analyze(base, model).arrival
        planted_arrival = analyze(circuit, model).arrival
        for gid, when in base_arrival.items():
            if planted_arrival.get(gid) != when:
                mismatches.add(
                    "plant_not_neutral",
                    f"gate {gid} arrival {when} -> "
                    f"{planted_arrival.get(gid)} after planting",
                )
                break

    # --- KMS under test ------------------------------------------------ #
    planted_sense = sensitizable_delay(circuit, model).delay
    result = kms(
        circuit,
        mode=mode,
        model=model,
        incremental=incremental,
        prefilter=prefilter,
    )
    final = result.circuit
    _merge_counters(counters, result.counters, "kms_")
    counters["kms_iterations"] = counters.get("kms_iterations", 0) + result.iterations

    if not check_equivalence(base, final, method="fraig").equivalent:
        mismatches.add(
            "false_removal",
            "KMS output is not equivalent to the pre-insertion base",
        )

    final_sense = sensitizable_delay(final, model).delay
    final_topo = topological_delay(final, model)
    if final_sense > planted_sense:
        mismatches.add(
            "delay_regression",
            f"sensitizable delay {planted_sense} -> {final_sense}",
        )
    if final_topo > planted_topo:
        mismatches.add(
            "delay_regression",
            f"topological delay {planted_topo} -> {final_topo}",
        )
    if spec.variant == NEUTRAL and final_topo > base_topo:
        mismatches.add(
            "delay_regression",
            f"neutral plant: final topological delay {final_topo} "
            f"exceeds base {base_topo}",
        )

    if check_irredundant and not is_irredundant(final, incremental=incremental):
        mismatches.add(
            "residual_redundancy", "KMS output is not irredundant"
        )

    return {
        "spec": spec.to_dict(),
        "fingerprint": fingerprint,
        "planted": planted.planted_payload(),
        "recall": recall,
        "proved": len(proved & set(faults)),
        "oracle_redundant": oracle_redundant,
        "gates_base": base.num_gates(),
        "gates_planted": circuit.num_gates(),
        "gates_final": final.num_gates(),
        "delay": {
            "base_topo": base_topo,
            "planted_topo": planted_topo,
            "planted_sense": planted_sense,
            "final_topo": final_topo,
            "final_sense": final_sense,
        },
        "mismatches": mismatches.items,
        "ok": not mismatches.items,
        "seconds": time.perf_counter() - started,
        "counters": counters,
    }
