"""Seeded adversarial circuit generator with planted redundancies.

Balasubramanian-style redundant-logic *insertion* (PAPERS.md, arxiv
1707.06909), inverted into a grading tool: instead of asking "does KMS
find the redundancies a synthesis flow left behind?" we *plant*
redundancies whose untestability is guaranteed by construction and keep
the ground-truth fault list, so recall is a measurable 0..1 number
instead of "some redundancy exists" (the Teslenko--Dubrova recall
framing, arxiv 1503.06632).

Every plant wraps a signal with a functionally-equivalent but redundant
replacement (or duplicates a literal in place) and records the one
stuck-at fault that is untestable by construction:

========================  =======================================  ==============
recipe                    insertion (f = wrapped signal)           planted fault
========================  =======================================  ==============
``blocked_and``           ``f -> f OR (x AND NOT x AND g)``        dead-AND branch s-a-0
``blocked_or``            ``f -> f AND (x OR NOT x OR g)``         live-OR branch s-a-1
``absorb_and``            ``f -> f OR (f AND g)``                  inner-AND branch s-a-0
``absorb_or``             ``f -> f AND (f OR g)``                  inner-OR branch s-a-1
``dup_literal``           duplicate one fanin of an AND/OR gate    duplicate pin s-a-(noncontrolling)
========================  =======================================  ==============

Each identity holds for *whatever functions* the tapped signals compute,
so plants compose: a later plant may wrap an earlier plant's planted
connection (the connection's carried function is preserved by every
recipe) and the recorded faults stay untestable.  Taps are drawn only
from outside the transitive fanout of the insertion point, so the
network stays acyclic.

Two delay variants:

* ``"neutral"`` -- inserted gates get delay 0 and taps are restricted to
  signals whose STA arrival time does not exceed the wrapped signal's
  (falling back to tapping ``f`` itself), so the arrival time of every
  pre-existing gate is *identical* after planting: redundancy with
  provably zero delay cost, the regime where any post-KMS slowdown is a
  real bug.
* ``"degrading"`` -- inserted gates get random delays 1..3 and
  unconstrained taps, manufacturing new (false) long paths through the
  redundant logic: the adversarial regime where KMS must remove the
  plants without ending slower than the circuit it was given.

Determinism: all draws come from one ``random.Random(seed)`` stream over
sorted id lists, so a (circuit, seed, plants, variant, recipes) tuple
reproduces the planted circuit and fault list byte-identically across
runs and across worker processes -- the fuzz engine stages cross-check
this with circuit fingerprints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network import Circuit, GateType
from ..timing import AsBuiltDelayModel, analyze

#: Delay variants.
NEUTRAL = "neutral"
DEGRADING = "degrading"
VARIANTS = (NEUTRAL, DEGRADING)

#: All insertion recipes, in the order the seed stream draws from.
RECIPES = (
    "blocked_and",
    "blocked_or",
    "absorb_and",
    "absorb_or",
    "dup_literal",
)

#: Gate types eligible for in-place literal duplication.
_DUP_TYPES = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)


@dataclass(frozen=True)
class Plant:
    """One planted redundancy and its ground truth."""

    recipe: str
    #: the planted untestable fault as a (kind, site, value) triple --
    #: kept primitive so plants serialize into engine payloads directly;
    #: :meth:`fault` rebuilds the :class:`repro.atpg.faults.Fault`.
    fault_kind: str
    fault_site: int
    fault_value: int
    #: gids added by this plant (empty for ``dup_literal``).
    new_gates: Tuple[int, ...]
    description: str

    def fault(self):
        from ..atpg.faults import Fault

        return Fault(self.fault_kind, self.fault_site, self.fault_value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "recipe": self.recipe,
            "fault": [self.fault_kind, self.fault_site, self.fault_value],
            "new_gates": list(self.new_gates),
            "description": self.description,
        }


@dataclass
class PlantResult:
    """A planted circuit plus everything needed to grade against it."""

    circuit: Circuit
    base: Circuit
    plants: List[Plant]
    seed: int
    variant: str

    @property
    def faults(self) -> List["Fault"]:  # noqa: F821 - doc type
        return [p.fault() for p in self.plants]

    def planted_payload(self) -> List[List[Any]]:
        """The ground-truth fault list as JSON-able triples."""
        return [[p.fault_kind, p.fault_site, p.fault_value]
                for p in self.plants]


def _observable_gids(circuit: Circuit) -> set:
    """Gates whose value can reach a primary output.

    Plants are restricted to this cone so the planted fault is
    untestable because of *redundancy*, not because the base circuit
    happened to leave the site unobservable (random bases carry dead
    logic a plain sweep would erase along with the planted ground
    truth)."""
    outs = circuit.outputs
    return circuit.transitive_fanin(outs) | set(outs)


def _eligible_taps(
    circuit: Circuit,
    dst: int,
    f: int,
    variant: str,
    arrival: Optional[Dict[int, float]],
) -> List[int]:
    """Signals a wrap recipe may tap without creating a cycle (and, for
    the neutral variant, without raising the wrapped signal's arrival)."""
    forbidden = circuit.transitive_fanout([dst])
    taps = [
        gid
        for gid, gate in circuit.gates.items()
        if gid not in forbidden and gate.gtype is not GateType.OUTPUT
    ]
    if variant == NEUTRAL:
        limit = arrival[f]
        taps = [gid for gid in taps if arrival[gid] <= limit]
    taps.sort()
    return taps or [f]


def _branch_conn(circuit: Circuit, root: int, src: int) -> int:
    """cid of the fanin connection of ``root`` driven by ``src`` that was
    appended last (the plant's freshly created branch)."""
    for cid in reversed(circuit.gates[root].fanin):
        if circuit.conns[cid].src == src:
            return cid
    raise AssertionError("plant branch connection not found")


def plant_redundancies(
    circuit: Circuit,
    plants: int = 3,
    seed: int = 0,
    variant: str = NEUTRAL,
    recipes: Optional[Sequence[str]] = None,
) -> PlantResult:
    """Insert ``plants`` redundancies into a copy of ``circuit``.

    Returns the planted circuit, an untouched copy of the base, and the
    ground-truth list of planted untestable fault sites.  The input
    circuit is not modified; base gids/cids are preserved in the planted
    copy (plants only add gates and re-source existing connections), so
    arrival times and fault sites compare directly against the base.
    """
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {VARIANTS}"
        )
    menu = tuple(recipes) if recipes else RECIPES
    for name in menu:
        if name not in RECIPES:
            raise ValueError(
                f"unknown recipe {name!r}; choose from {RECIPES}"
            )
    rng = random.Random(seed)
    base = circuit.copy()
    work = circuit.copy(f"{circuit.name}#planted")
    model = AsBuiltDelayModel()
    result: List[Plant] = []
    for _ in range(max(0, plants)):
        recipe = rng.choice(menu)
        if recipe == "dup_literal":
            plant = _plant_dup_literal(work, rng, variant)
            if plant is None:  # no AND/OR-family gate to duplicate into
                recipe = "blocked_and"
        if recipe != "dup_literal":
            plant = _plant_wrap(work, rng, variant, recipe, model)
        result.append(plant)
    return PlantResult(
        circuit=work, base=base, plants=result, seed=seed, variant=variant
    )


def _delay(rng: random.Random, variant: str) -> float:
    return 0.0 if variant == NEUTRAL else float(rng.randint(1, 3))


def _plant_dup_literal(
    circuit: Circuit, rng: random.Random, variant: str
) -> Optional[Plant]:
    """Duplicate one fanin connection of an AND/OR-family gate in place.

    The duplicate pin stuck at the gate's *non-controlling* value leaves
    the function unchanged (``AND(a, a, b) == AND(a, 1, b)``), so that
    fault is untestable by construction.  Arrival-neutral in the neutral
    variant because the duplicate connection carries delay 0 alongside
    an existing connection from the same source.
    """
    observable = _observable_gids(circuit)
    targets = sorted(
        gid
        for gid, gate in circuit.gates.items()
        if gate.gtype in _DUP_TYPES and gate.fanin and gid in observable
    )
    if not targets:
        return None
    gid = rng.choice(targets)
    gate = circuit.gates[gid]
    template = rng.choice(list(gate.fanin))
    src = circuit.conns[template].src
    cid = circuit.connect(src, gid, delay=_delay(rng, variant))
    value = 1 if gate.gtype in (GateType.AND, GateType.NAND) else 0
    return Plant(
        recipe="dup_literal",
        fault_kind="conn",
        fault_site=cid,
        fault_value=value,
        new_gates=(),
        description=(
            f"duplicate fanin {src} of gate {gid} "
            f"({gate.gtype.value}); pin s-a-{value} untestable"
        ),
    )


def _plant_wrap(
    circuit: Circuit,
    rng: random.Random,
    variant: str,
    recipe: str,
    model: AsBuiltDelayModel,
) -> Plant:
    """Wrap a random connection's source with a redundant replacement."""
    arrival = (
        analyze(circuit, model).arrival if variant == NEUTRAL else None
    )
    observable = _observable_gids(circuit)
    live = sorted(
        cid for cid, conn in circuit.conns.items()
        if conn.dst in observable
    )
    cid = rng.choice(live or sorted(circuit.conns))
    conn = circuit.conns[cid]
    f, dst = conn.src, conn.dst
    taps = _eligible_taps(circuit, dst, f, variant, arrival)
    x = rng.choice(taps)
    g = rng.choice(taps)
    if recipe == "blocked_and":
        nx = circuit.add_simple(GateType.NOT, [x], _delay(rng, variant))
        aux = circuit.add_simple(
            GateType.AND, [x, nx, g], _delay(rng, variant)
        )
        root = circuit.add_simple(
            GateType.OR, [f, aux], _delay(rng, variant)
        )
        value, new = 0, (nx, aux, root)
    elif recipe == "blocked_or":
        nx = circuit.add_simple(GateType.NOT, [x], _delay(rng, variant))
        aux = circuit.add_simple(
            GateType.OR, [x, nx, g], _delay(rng, variant)
        )
        root = circuit.add_simple(
            GateType.AND, [f, aux], _delay(rng, variant)
        )
        value, new = 1, (nx, aux, root)
    elif recipe == "absorb_and":
        aux = circuit.add_simple(
            GateType.AND, [f, g], _delay(rng, variant)
        )
        root = circuit.add_simple(
            GateType.OR, [f, aux], _delay(rng, variant)
        )
        value, new = 0, (aux, root)
    elif recipe == "absorb_or":
        aux = circuit.add_simple(
            GateType.OR, [f, g], _delay(rng, variant)
        )
        root = circuit.add_simple(
            GateType.AND, [f, aux], _delay(rng, variant)
        )
        value, new = 1, (aux, root)
    else:  # pragma: no cover - guarded by plant_redundancies
        raise AssertionError(f"unhandled recipe {recipe!r}")
    branch = _branch_conn(circuit, root, aux)
    circuit.move_connection_source(cid, root)
    return Plant(
        recipe=recipe,
        fault_kind="conn",
        fault_site=branch,
        fault_value=value,
        new_gates=new,
        description=(
            f"wrap conn {cid} (gate {f} -> gate {dst}) with {recipe}; "
            f"branch {branch} s-a-{value} untestable"
        ),
    )
