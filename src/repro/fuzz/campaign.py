"""Seeded fuzz campaign driver over the engine's ProcessPool.

A campaign is a list of :class:`repro.fuzz.grade.ScenarioSpec`\\ s fanned
out through :func:`repro.engine.runner.run_jobs` -- each scenario is one
``Job`` whose factory (``fuzz_planted``) rebuilds the planted circuit in
the worker and whose single ``fuzz_grade`` stage grades it, so campaign
scenarios get the engine's caching, per-stage timeouts, retry, and
telemetry for free, and ``jobs=N`` results are bit-identical to
``jobs=1`` by construction.

The driver aggregates per-scenario payloads into a JSON campaign report
(recall, false removals, delay regressions, mismatch census, merged
work counters) and, when ``minimize_dir`` is given, shrinks every
reproducible failure into a ready-to-commit pytest case via
:mod:`repro.fuzz.minimize`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..engine.runner import EngineConfig, Job, RunReport, StageCall, run_jobs
from .grade import ScenarioSpec
from .plant import DEGRADING, NEUTRAL, VARIANTS

#: ``variant="mix"`` alternates neutral / degrading across the corpus.
MIX = "mix"

#: plants-per-scenario default: fraction of base gate count.
DEFAULT_DENSITY = 0.15


def campaign_specs(
    count: int,
    seed: int = 0,
    variant: str = MIX,
    num_inputs: int = 5,
    num_gates: int = 18,
    num_outputs: int = 2,
    plants: Optional[int] = None,
    density: float = DEFAULT_DENSITY,
    recipes: Optional[Sequence[str]] = None,
) -> List[ScenarioSpec]:
    """A deterministic corpus of ``count`` scenarios starting at ``seed``.

    Scenario ``i`` plants into ``random_circuit(seed=(seed+i) ^ 0x5EED)``
    with plant seed ``seed+i`` -- the same XOR split
    :func:`repro.circuits.random_redundant_circuit` uses, so base
    structure and plant placement draw from unrelated streams.
    """
    if variant not in VARIANTS + (MIX,):
        raise ValueError(
            f"unknown variant {variant!r}; choose from {VARIANTS + (MIX,)}"
        )
    if plants is None:
        plants = max(1, round(num_gates * density))
    specs: List[ScenarioSpec] = []
    for i in range(count):
        s = seed + i
        v = variant
        if variant == MIX:
            v = NEUTRAL if i % 2 == 0 else DEGRADING
        specs.append(ScenarioSpec(
            name=f"fuzz-{s}-{v[:3]}",
            base={
                "factory": "random",
                "params": {
                    "num_inputs": num_inputs,
                    "num_gates": num_gates,
                    "num_outputs": num_outputs,
                    "seed": s ^ 0x5EED,
                },
            },
            seed=s,
            plants=plants,
            variant=v,
            recipes=list(recipes) if recipes else None,
        ))
    return specs


def job_for_spec(
    spec: ScenarioSpec,
    oracle: bool = True,
    check_irredundant: bool = True,
    mode: str = "static",
    incremental: bool = True,
) -> Job:
    """The engine Job grading one scenario (result under key ``"fuzz"``)."""
    return Job(
        name=spec.name,
        factory="fuzz_planted",
        params=spec.to_dict(),
        pipeline=[StageCall(
            "fuzz_grade",
            {
                "spec": spec.to_dict(),
                "oracle": oracle,
                "check_irredundant": check_irredundant,
                "mode": mode,
                "incremental": incremental,
            },
            label="fuzz",
        )],
    )


@dataclass
class CampaignReport:
    """Aggregated campaign outcome (JSON-able via :meth:`to_dict`)."""

    scenarios: List[Dict[str, Any]]
    summary: Dict[str, Any]
    minimized: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.summary["failures"] == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "summary": self.summary,
            "scenarios": self.scenarios,
            "minimized": self.minimized,
        }

    def save(self, path: str) -> str:
        os.makedirs(
            os.path.dirname(os.path.abspath(path)), exist_ok=True
        )
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def summarize(payloads: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-scenario grade payloads into campaign-level scores."""
    mismatch_census: Dict[str, int] = {}
    counters: Dict[str, float] = {}
    planted = proved = 0
    recall_min = 1.0
    failures = 0
    seconds = 0.0
    for payload in payloads:
        if not payload.get("ok", False):
            failures += 1
        for item in payload.get("mismatches", []):
            kind = item["kind"]
            mismatch_census[kind] = mismatch_census.get(kind, 0) + 1
        if "error" in payload:
            mismatch_census["job_error"] = (
                mismatch_census.get("job_error", 0) + 1
            )
            continue
        planted += len(payload.get("planted", []))
        proved += payload.get("proved", 0)
        recall_min = min(recall_min, payload.get("recall", 1.0))
        seconds += payload.get("seconds", 0.0)
        for key, value in payload.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
    return {
        "scenarios": len(payloads),
        "failures": failures,
        "planted": planted,
        "proved": proved,
        "recall": (proved / planted) if planted else 1.0,
        "recall_min": recall_min,
        "mismatches": mismatch_census,
        "seconds": seconds,
        "counters": counters,
    }


def run_campaign(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    stage_timeout: Optional[float] = None,
    oracle: bool = True,
    check_irredundant: bool = True,
    mode: str = "static",
    incremental: bool = True,
    report_path: Optional[str] = None,
    minimize_dir: Optional[str] = None,
    max_checks: int = 4000,
) -> CampaignReport:
    """Grade every scenario, aggregate, optionally minimize failures.

    ``minimize_dir``: write one pytest reproducer per reproducible
    failing mismatch (deduplicated per scenario x kind) into that
    directory; the report's ``minimized`` list records what was written.
    """
    engine_jobs = [
        job_for_spec(
            spec, oracle=oracle, check_irredundant=check_irredundant,
            mode=mode, incremental=incremental,
        )
        for spec in specs
    ]
    config = EngineConfig(
        jobs=jobs, cache_dir=cache_dir, stage_timeout=stage_timeout
    )
    report: RunReport = run_jobs(
        engine_jobs, config,
        meta={"suite": "fuzz_campaign", "scenarios": len(specs)},
    )
    payloads: List[Dict[str, Any]] = []
    for spec, result in zip(specs, report.results):
        payload = result.results.get("fuzz")
        if payload is None:
            payload = {
                "spec": spec.to_dict(),
                "ok": False,
                "error": result.error or "job produced no fuzz payload",
                "mismatches": [],
            }
        payloads.append(payload)

    minimized: List[Dict[str, Any]] = []
    if minimize_dir is not None:
        from .minimize import SHRINKABLE_KINDS, minimize_failure

        for payload in payloads:
            if payload.get("ok", False) or "error" in payload:
                continue
            done = set()
            for item in payload.get("mismatches", []):
                kind = item["kind"]
                if kind not in SHRINKABLE_KINDS or kind in done:
                    continue
                done.add(kind)
                shrunk = minimize_failure(
                    payload["spec"], item, out_dir=minimize_dir,
                    max_checks=max_checks, mode=mode,
                    incremental=incremental,
                )
                if shrunk is not None:
                    minimized.append(shrunk)

    campaign = CampaignReport(
        scenarios=payloads,
        summary=summarize(payloads),
        minimized=minimized,
    )
    if report_path is not None:
        campaign.save(report_path)
    return campaign
