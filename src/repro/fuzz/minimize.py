"""ddmin-style failure-case minimization for fuzz mismatches.

When :func:`repro.fuzz.grade.grade_scenario` reports a mismatch, the
scenario circuit may have dozens of gates, most of them irrelevant to
the failure.  :func:`shrink` reduces the circuit while a *predicate*
(failure-still-reproduces test) keeps returning True, using three
reduction moves iterated to a fixpoint:

1. **gate deletion** (ddmin halving chunks): delete a chunk of logic
   gates, bypassing each deleted gate's fanouts to its first fanin so
   the rest of the netlist stays connected;
2. **connection drops**: remove single fanin pins (legal for the AND/OR
   family, whose minimum fanin is 1);
3. **output drops**: remove primary outputs, narrowing the circuit to
   the cone that matters.

Every candidate is swept and validated (:func:`repro.network.check`)
before the predicate runs; function preservation is *not* required --
only the predicate defines what is interesting, exactly as in classic
delta debugging.

:func:`predicate_for` builds self-contained predicates for the mismatch
kinds grading emits (recall miss, oracle divergence, false removal,
delay regression, residual redundancy), and :func:`reproducer_source`
emits the minimized circuit as a ready-to-commit pytest case asserting
the *correct* behavior -- the generated test fails on the broken engine
and passes once it is fixed.  Circuits embed as
:func:`repro.engine.serialize.circuit_to_dict` JSON because BLIF
round-trips renumber gids/cids and would orphan the fault site.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..network import Circuit, GateType
from ..network.transform import sweep
from ..network.validate import check

Predicate = Callable[[Circuit], bool]

#: Mismatch kinds that have a circuit-level predicate (the remaining
#: grading kinds -- plant_not_neutral, generator_nondeterminism -- are
#: generator properties of the full scenario, not of a circuit).
SHRINKABLE_KINDS = (
    "recall_miss",
    "divergence",
    "plant_unsound",
    "false_removal",
    "delay_regression",
    "residual_redundancy",
)


# ---------------------------------------------------------------------- #
# reduction moves
# ---------------------------------------------------------------------- #

def _delete_gates(circuit: Circuit, gids: Sequence[int]) -> Optional[Circuit]:
    """Copy of ``circuit`` with ``gids`` deleted (fanouts bypassed to the
    first fanin), swept and validated; ``None`` if the result is not a
    well-formed circuit."""
    trial = circuit.copy()
    try:
        for gid in gids:
            if gid not in trial.gates:
                continue
            gate = trial.gates[gid]
            if gate.gtype in (GateType.INPUT, GateType.OUTPUT):
                continue
            if gate.fanin:
                keep = trial.conns[gate.fanin[0]].src
                for cid in list(gate.fanout):
                    trial.move_connection_source(cid, keep)
            trial.remove_gate(gid)
        sweep(trial)
        check(trial)
    except Exception:
        return None
    return trial


def _drop_connection(circuit: Circuit, cid: int) -> Optional[Circuit]:
    trial = circuit.copy()
    try:
        trial.remove_connection(cid)
        sweep(trial)
        check(trial)
    except Exception:
        return None
    return trial


def _drop_output(circuit: Circuit, gid: int) -> Optional[Circuit]:
    if len(circuit.outputs) <= 1:
        return None
    trial = circuit.copy()
    try:
        trial.remove_gate(gid)
        sweep(trial)
        check(trial)
    except Exception:
        return None
    return trial


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        self.used += 1
        return self.used <= self.limit


def _logic_gids(circuit: Circuit) -> List[int]:
    return sorted(
        gid
        for gid, gate in circuit.gates.items()
        if gate.gtype not in (GateType.INPUT, GateType.OUTPUT)
    )


def _ddmin_gates(
    circuit: Circuit, predicate: Predicate, budget: _Budget
) -> Circuit:
    """Classic ddmin over the logic-gate list."""
    best = circuit
    gids = _logic_gids(best)
    n = 2
    while len(gids) >= 2:
        size = max(1, len(gids) // n)
        chunks = [gids[i : i + size] for i in range(0, len(gids), size)]
        reduced = False
        for chunk in chunks:
            if not budget.spend():
                return best
            trial = _delete_gates(best, chunk)
            if trial is not None and predicate(trial):
                best = trial
                gids = _logic_gids(best)
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(gids):
                break
            n = min(len(gids), n * 2)
    return best


def _drop_pass(
    circuit: Circuit,
    predicate: Predicate,
    budget: _Budget,
    candidates: Callable[[Circuit], List[int]],
    drop: Callable[[Circuit, int], Optional[Circuit]],
) -> Circuit:
    """One-at-a-time removal pass to a local fixpoint."""
    best = circuit
    progress = True
    while progress:
        progress = False
        for ident in candidates(best):
            if not budget.spend():
                return best
            trial = drop(best, ident)
            if trial is not None and predicate(trial):
                best = trial
                progress = True
                break
    return best


def shrink(
    circuit: Circuit, predicate: Predicate, max_checks: int = 4000
) -> Circuit:
    """Minimize ``circuit`` while ``predicate`` keeps holding.

    Raises ``ValueError`` if the predicate does not hold on the input
    (nothing to shrink: the failure does not reproduce).
    """
    if not predicate(circuit):
        raise ValueError("predicate does not hold on the input circuit")
    budget = _Budget(max_checks)
    best = circuit.copy()
    before = -1
    while before != best.num_gates(logic_only=False) and budget.used < budget.limit:
        before = best.num_gates(logic_only=False)
        best = _ddmin_gates(best, predicate, budget)
        best = _drop_pass(
            best, predicate, budget,
            lambda c: sorted(c.conns), _drop_connection,
        )
        best = _drop_pass(
            best, predicate, budget,
            lambda c: sorted(c.outputs), _drop_output,
        )
    return best


# ---------------------------------------------------------------------- #
# failure predicates
# ---------------------------------------------------------------------- #

def _fault_alive(circuit: Circuit, fault: Any) -> bool:
    from ..atpg.faults import CONN

    if fault.kind == CONN:
        return fault.site in circuit.conns
    return fault.site in circuit.gates


def _engine_proves(
    circuit: Circuit,
    fault: Any,
    classifier: Optional[Callable[[Circuit, Sequence[Any]], Any]],
) -> bool:
    if classifier is not None:
        return fault in set(classifier(circuit, [fault]))
    from ..atpg import ProofEngine

    return fault in set(ProofEngine(circuit).redundant_faults([fault]))


def predicate_for(
    kind: str,
    fault: Any = None,
    classifier: Optional[Callable[[Circuit, Sequence[Any]], Any]] = None,
    mode: str = "static",
    incremental: bool = True,
) -> Predicate:
    """A self-contained failure predicate for a grading mismatch kind.

    Fault-shaped kinds (``recall_miss``, ``divergence``,
    ``plant_unsound``) need the planted ``fault``; KMS-shaped kinds
    compare each candidate circuit against *itself* (pre- vs post-KMS),
    so they stay meaningful as the circuit shrinks away from the
    original scenario.  Predicates swallow engine exceptions as False so
    degenerate candidates are simply rejected.
    """
    if kind in ("recall_miss", "divergence", "plant_unsound"):
        if fault is None:
            raise ValueError(f"mismatch kind {kind!r} needs the fault")

        def fault_predicate(circuit: Circuit) -> bool:
            from ..atpg import SatAtpg

            try:
                if not _fault_alive(circuit, fault):
                    return False
                oracle = SatAtpg(circuit).is_redundant(fault)
                if kind == "plant_unsound":
                    # generator bug: a planted fault the oracle can test
                    return not oracle
                engine = _engine_proves(circuit, fault, classifier)
                if kind == "recall_miss":
                    return oracle and not engine
                return engine != oracle
            except Exception:
                return False

        return fault_predicate

    if kind not in SHRINKABLE_KINDS:
        raise ValueError(
            f"mismatch kind {kind!r} has no circuit-level predicate; "
            f"choose from {SHRINKABLE_KINDS}"
        )

    def kms_predicate(circuit: Circuit) -> bool:
        from ..atpg import is_irredundant
        from ..core import kms
        from ..sat import check_equivalence
        from ..timing import (
            AsBuiltDelayModel,
            sensitizable_delay,
            topological_delay,
        )

        try:
            model = AsBuiltDelayModel()
            before = circuit.copy()
            result = kms(
                circuit.copy(), mode=mode, model=model,
                incremental=incremental,
            )
            after = result.circuit
            if kind == "false_removal":
                return not check_equivalence(
                    before, after, method="fraig"
                ).equivalent
            if kind == "delay_regression":
                return (
                    sensitizable_delay(after, model).delay
                    > sensitizable_delay(before, model).delay
                    or topological_delay(after, model)
                    > topological_delay(before, model)
                )
            return not is_irredundant(after, incremental=incremental)
        except Exception:
            return False

    return kms_predicate


# ---------------------------------------------------------------------- #
# pytest reproducer emission
# ---------------------------------------------------------------------- #

_REPRO_HEADER = '''\
"""Minimized fuzz reproducer -- auto-generated by repro.fuzz.minimize.

{note}
The test asserts the CORRECT behavior: it fails while the defect is
present and passes once the engine is fixed.  The circuit embeds as
lossless JSON (gids/cids preserved) so the fault site stays valid.
"""

import json

from repro.engine.serialize import circuit_from_dict

CIRCUIT = json.loads(r\'\'\'
{circuit_json}
\'\'\')
'''

_REPRO_BODIES = {
    "recall_miss": '''\

def test_fuzz_reproducer_recall_miss():
    from repro.atpg import Fault, ProofEngine, SatAtpg

    circuit = circuit_from_dict(CIRCUIT)
    fault = Fault({fault_args})
    assert SatAtpg(circuit).is_redundant(fault), "oracle baseline moved"
    proved = ProofEngine(circuit).redundant_faults([fault])
    assert fault in set(proved), (
        "ProofEngine must prove this planted redundancy: "
        + fault.describe(circuit)
    )
''',
    "divergence": '''\

def test_fuzz_reproducer_divergence():
    from repro.atpg import Fault, ProofEngine, SatAtpg

    circuit = circuit_from_dict(CIRCUIT)
    fault = Fault({fault_args})
    oracle = SatAtpg(circuit).is_redundant(fault)
    engine = fault in set(ProofEngine(circuit).redundant_faults([fault]))
    assert engine == oracle, (
        f"incremental engine ({{engine}}) diverges from the from-scratch "
        f"oracle ({{oracle}}) on " + fault.describe(circuit)
    )
''',
    "plant_unsound": '''\

def test_fuzz_reproducer_plant_unsound():
    from repro.atpg import Fault, SatAtpg

    circuit = circuit_from_dict(CIRCUIT)
    fault = Fault({fault_args})
    assert SatAtpg(circuit).is_redundant(fault), (
        "generator planted a testable fault: " + fault.describe(circuit)
    )
''',
    "false_removal": '''\

def test_fuzz_reproducer_false_removal():
    from repro.core import kms
    from repro.sat import check_equivalence
    from repro.timing import AsBuiltDelayModel

    circuit = circuit_from_dict(CIRCUIT)
    result = kms(circuit.copy(), model=AsBuiltDelayModel())
    assert check_equivalence(circuit, result.circuit).equivalent, (
        "KMS changed circuit function"
    )
''',
    "delay_regression": '''\

def test_fuzz_reproducer_delay_regression():
    from repro.core import kms
    from repro.timing import (
        AsBuiltDelayModel,
        sensitizable_delay,
        topological_delay,
    )

    circuit = circuit_from_dict(CIRCUIT)
    model = AsBuiltDelayModel()
    result = kms(circuit.copy(), model=model)
    assert (
        sensitizable_delay(result.circuit, model).delay
        <= sensitizable_delay(circuit, model).delay
    ), "KMS increased sensitizable delay"
    assert (
        topological_delay(result.circuit, model)
        <= topological_delay(circuit, model)
    ), "KMS increased topological delay"
''',
    "residual_redundancy": '''\

def test_fuzz_reproducer_residual_redundancy():
    from repro.atpg import is_irredundant
    from repro.core import kms
    from repro.timing import AsBuiltDelayModel

    circuit = circuit_from_dict(CIRCUIT)
    result = kms(circuit.copy(), model=AsBuiltDelayModel())
    assert is_irredundant(result.circuit), (
        "KMS output still contains redundancy"
    )
''',
}


def reproducer_source(
    circuit: Circuit, kind: str, fault: Any = None, note: str = ""
) -> str:
    """Pytest source for a minimized failure."""
    from ..engine.serialize import circuit_to_dict

    if kind not in _REPRO_BODIES:
        raise ValueError(
            f"no reproducer template for mismatch kind {kind!r}"
        )
    body = _REPRO_BODIES[kind]
    if "{fault_args}" in body:
        if fault is None:
            raise ValueError(f"mismatch kind {kind!r} needs the fault")
        body = body.replace(
            "{fault_args}",
            f"{fault.kind!r}, {fault.site!r}, {fault.value!r}",
        )
    header = _REPRO_HEADER.format(
        note=note or f"Mismatch kind: {kind}",
        circuit_json=json.dumps(circuit_to_dict(circuit), sort_keys=True),
    )
    return header + body


def write_reproducer(
    path: str, circuit: Circuit, kind: str, fault: Any = None,
    note: str = "",
) -> str:
    source = reproducer_source(circuit, kind, fault=fault, note=note)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(source)
    return path


# ---------------------------------------------------------------------- #
# campaign integration
# ---------------------------------------------------------------------- #

def minimize_failure(
    spec: Any,
    mismatch: Dict[str, Any],
    out_dir: Optional[str] = None,
    max_checks: int = 4000,
    classifier: Optional[Callable[[Circuit, Sequence[Any]], Any]] = None,
    mode: str = "static",
    incremental: bool = True,
) -> Optional[Dict[str, Any]]:
    """Shrink one grading mismatch to a minimal pytest reproducer.

    Rebuilds the scenario from ``spec`` (a :class:`ScenarioSpec` or its
    dict form), confirms the failure reproduces, shrinks, and (when
    ``out_dir`` is given) writes ``test_fuzz_repro_<scenario>_<kind>.py``.
    Returns a summary dict, or ``None`` when the kind has no
    circuit-level predicate or the failure does not reproduce in
    process.
    """
    from ..atpg.faults import Fault
    from .grade import ScenarioSpec, build_scenario

    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    kind = mismatch["kind"]
    if kind not in SHRINKABLE_KINDS:
        return None
    fault = None
    if mismatch.get("fault") is not None:
        fkind, site, value = mismatch["fault"]
        fault = Fault(fkind, site, value)
    predicate = predicate_for(
        kind, fault=fault, classifier=classifier, mode=mode,
        incremental=incremental,
    )
    circuit = build_scenario(spec).circuit
    if not predicate(circuit):
        return None
    small = shrink(circuit, predicate, max_checks=max_checks)
    note = (
        f"Scenario {spec.name!r} (seed={spec.seed}, variant={spec.variant}): "
        f"{mismatch['detail']}"
    )
    summary: Dict[str, Any] = {
        "scenario": spec.name,
        "kind": kind,
        "gates_before": circuit.num_gates(),
        "gates_after": small.num_gates(),
        "fault": mismatch.get("fault"),
    }
    if out_dir is not None:
        path = os.path.join(
            out_dir, f"test_fuzz_repro_{spec.name}_{kind}.py"
        )
        summary["path"] = write_reproducer(
            path, small, kind, fault=fault, note=note
        )
    else:
        summary["source"] = reproducer_source(
            small, kind, fault=fault, note=note
        )
    return summary
