"""Plain (delay-oblivious) redundancy removal -- the paper's baseline.

"The straightforward removal of these redundancies does not affect the
speed of the circuit ... However, in the case of the carry-skip adder,
removing the attendant redundancy in the design slows the circuit down."

This module implements that straightforward procedure in the style of
Schulz-Auth [22]: find an untestable fault, tie the faulty line to the
stuck value (which by untestability preserves function), propagate the
constant, sweep, and *recompute the remaining redundancies* before the
next removal (removal can create or destroy other redundancies).  The
order is arbitrary -- which is exactly why it can destroy carry-skip
speed, the effect the KMS benches quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..network import Circuit, GateType
from ..network.transform import (
    propagate_constants,
    set_connection_constant,
    sweep,
)
from .faults import CONN, Fault, collapsed_faults
from .satatpg import SatAtpg


@dataclass
class RemovalStep:
    """One redundancy removed."""

    fault: Fault
    description: str
    gates_before: int
    gates_after: int


@dataclass
class RemovalResult:
    """Outcome of iterative redundancy removal."""

    circuit: Circuit
    steps: List[RemovalStep] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.steps)


def remove_fault(circuit: Circuit, fault: Fault) -> None:
    """Tie the fault site to its stuck value and simplify, in place.

    Sound only for *untestable* faults (the caller is responsible for the
    redundancy proof).
    """
    if fault.kind == CONN:
        set_connection_constant(circuit, fault.site, fault.value)
    else:
        gate = circuit.gates[fault.site]
        const = circuit.add_gate(
            GateType.CONST1 if fault.value else GateType.CONST0, 0.0
        )
        for cid in list(gate.fanout):
            circuit.move_connection_source(cid, const)
    propagate_constants(circuit)
    sweep(circuit, collapse_buffers=True)


def _undetected_by_random(
    circuit: Circuit, faults: List[Fault], patterns: int = 64, seed: int = 7
) -> List[Fault]:
    """Cheap prefilter: faults a random test set already detects are
    certainly testable, so only the survivors need SAT proofs.

    Runs on the compiled simulation kernel through ``fault_coverage``;
    the kernel's version check recompiles the schedule automatically as
    removal mutates the working circuit between calls.
    """
    from .faultsim import fault_coverage, random_vectors

    vectors = random_vectors(circuit, patterns, seed)
    report = fault_coverage(circuit, faults, vectors)
    return report.undetected_faults


def remove_redundancies(
    circuit: Circuit,
    choose: Optional[Callable[[List[Fault]], Fault]] = None,
    max_iterations: int = 10000,
) -> RemovalResult:
    """Iteratively remove untestable faults until the circuit is
    irredundant.

    ``choose`` picks which redundancy to remove next from the nonempty
    list of currently-untestable collapsed faults (default: the first in
    the deterministic fault-list order; in that default mode the scan
    stops at the first untestable fault instead of proving the whole
    list, and a random-pattern fault-simulation prefilter skips SAT
    proofs for easily-testable faults).  The input circuit is not
    modified; the result holds the transformed copy.
    """
    from .podem import Podem, Status
    from .satatpg import SatAtpg, redundant_faults

    work = circuit.copy(f"{circuit.name}#irr")
    steps: List[RemovalStep] = []
    for _ in range(max_iterations):
        if choose is not None:
            redundant = redundant_faults(work)
            if not redundant:
                break
            fault = choose(redundant)
        else:
            # default order: stop at the first proven redundancy, using
            # the same cheap-first funnel as redundant_faults
            suspects = _undetected_by_random(work, collapsed_faults(work))
            podem = Podem(work, backtrack_limit=100)
            fault = None
            hard: List[Fault] = []
            for candidate in suspects:
                status = podem.generate(candidate).status
                if status is Status.UNTESTABLE:
                    fault = candidate
                    break
                if status is Status.ABORTED:
                    hard.append(candidate)
            if fault is None and hard:
                engine = SatAtpg(work)
                fault = next(
                    (f for f in hard if engine.is_redundant(f)), None
                )
            if fault is None:
                break
        before = work.num_gates()
        description = fault.describe(work)
        remove_fault(work, fault)
        steps.append(
            RemovalStep(
                fault=fault,
                description=description,
                gates_before=before,
                gates_after=work.num_gates(),
            )
        )
    else:
        raise RuntimeError("redundancy removal did not converge")
    return RemovalResult(circuit=work, steps=steps)


def is_irredundant(circuit: Circuit) -> bool:
    """True if every collapsed stuck-at fault is testable -- the paper's
    "fully testable for all single stuck faults"."""
    from .satatpg import redundant_faults

    return not redundant_faults(circuit)
