"""Plain (delay-oblivious) redundancy removal -- the paper's baseline.

"The straightforward removal of these redundancies does not affect the
speed of the circuit ... However, in the case of the carry-skip adder,
removing the attendant redundancy in the design slows the circuit down."

This module implements that straightforward procedure in the style of
Schulz-Auth [22]: find an untestable fault, tie the faulty line to the
stuck value (which by untestability preserves function), propagate the
constant, sweep, and *recompute the remaining redundancies* before the
next removal (removal can create or destroy other redundancies).  The
order is arbitrary -- which is exactly why it can destroy carry-skip
speed, the effect the KMS benches quantify.

Two drivers implement the loop:

* ``incremental=True`` (default): the persistent
  :class:`repro.atpg.proofengine.ProofEngine`, which carries verdicts
  across removals, keeps one assumption-gated SAT solver per epoch, and
  feeds every witness back through the compiled simulation kernel.
* ``incremental=False``: the from-scratch funnel below, kept verbatim
  as the A/B oracle.  Both take bit-identical decisions; the property
  suite (``tests/atpg/test_proofengine_property.py``) and the
  ``atpg`` perf-gate CI row enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..network import Circuit, GateType
from ..network.transform import (
    propagate_constants,
    set_connection_constant,
    sweep,
)
from .faults import CONN, Fault, collapsed_faults
from .satatpg import SatAtpg


@dataclass
class RemovalStep:
    """One redundancy removed."""

    fault: Fault
    description: str
    gates_before: int
    gates_after: int


@dataclass
class RemovalResult:
    """Outcome of iterative redundancy removal."""

    circuit: Circuit
    steps: List[RemovalStep] = field(default_factory=list)
    #: deterministic proof-work counters (see
    #: :data:`repro.atpg.proofengine.PROOF_COUNTERS`); filled by both
    #: drivers so the A/B benchmark can compare like for like.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def removed(self) -> int:
        return len(self.steps)


def remove_fault(circuit: Circuit, fault: Fault) -> Set[int]:
    """Tie the fault site to its stuck value and simplify, in place.

    Sound only for *untestable* faults (the caller is responsible for
    the redundancy proof).  Returns the union of the transforms'
    touched-gate sets (the PR-3 contract in
    :mod:`repro.network.transform`) so incremental consumers -- the
    proof engine's verdict cache, the compiled simulation kernel -- can
    invalidate cone-locally instead of from scratch.
    """
    touched: Set[int] = set()
    if fault.kind == CONN:
        _, const_touched = set_connection_constant(
            circuit, fault.site, fault.value
        )
        touched |= const_touched
    else:
        gate = circuit.gates[fault.site]
        const = circuit.add_gate(
            GateType.CONST1 if fault.value else GateType.CONST0, 0.0
        )
        touched.add(const)
        touched.add(fault.site)
        for cid in list(gate.fanout):
            touched.add(circuit.conns[cid].dst)
            circuit.move_connection_source(cid, const)
    touched |= propagate_constants(circuit)[1]
    touched |= sweep(circuit, collapse_buffers=True)[1]
    return touched


def _undetected_by_random(
    circuit: Circuit, faults: List[Fault], patterns: int = 64, seed: int = 7
) -> List[Fault]:
    """Cheap prefilter: faults a random test set already detects are
    certainly testable, so only the survivors need SAT proofs.

    Runs on the compiled simulation kernel through ``fault_coverage``;
    the kernel's version check recompiles the schedule automatically as
    removal mutates the working circuit between calls.
    """
    from .faultsim import fault_coverage, random_vectors

    vectors = random_vectors(circuit, patterns, seed)
    report = fault_coverage(circuit, faults, vectors)
    return report.undetected_faults


def _next_redundant_scratch(
    work: Circuit,
    backtrack_limit: int,
    patterns: int,
    counters: Dict[str, int],
) -> Optional[Fault]:
    """One from-scratch oracle iteration: the first PODEM-proven
    untestable suspect in collapsed order, else the first SAT-proven
    one among the PODEM aborts."""
    from .podem import Podem, Status

    universe = collapsed_faults(work)
    # no verdict cache: the whole universe is qualified from scratch
    counters["faults_requalified"] += len(universe)
    suspects = _undetected_by_random(work, universe, patterns=patterns)
    podem = Podem(work, backtrack_limit=backtrack_limit)
    hard: List[Fault] = []
    fault: Optional[Fault] = None
    for candidate in suspects:
        result = podem.generate(candidate)
        if result.status is Status.UNTESTABLE:
            fault = candidate
            break
        if result.status is Status.ABORTED:
            hard.append(candidate)
    counters["podem_calls"] += podem.stats["calls"]
    counters["podem_backtracks"] += podem.stats["backtracks"]
    counters["podem_aborts"] += podem.stats["aborts"]
    if fault is None and hard:
        engine = SatAtpg(work)
        counters["tseitin_builds"] += 1
        for candidate in hard:
            counters["sat_proofs"] += 1
            counters["tseitin_builds"] += 1  # fresh faulty CNF per query
            if engine.is_redundant(candidate):
                fault = candidate
                break
    return fault


def remove_redundancies(
    circuit: Circuit,
    choose: Optional[Callable[[List[Fault]], Fault]] = None,
    max_iterations: int = 10000,
    incremental: bool = True,
    backtrack_limit: int = 100,
    patterns: int = 64,
    jobs: Optional[int] = None,
    prefilter=None,
) -> RemovalResult:
    """Iteratively remove untestable faults until the circuit is
    irredundant.

    ``choose`` picks which redundancy to remove next from the nonempty
    list of currently-untestable collapsed faults (default: the first in
    the deterministic fault-list order; in that default mode the scan
    stops at the first untestable fault instead of proving the whole
    list, and a fault-simulation prefilter skips proofs for
    easily-testable faults).  The input circuit is not modified; the
    result holds the transformed copy.

    ``incremental`` selects the persistent proof engine (default) or the
    from-scratch oracle; both remove the same faults in the same order
    for any shared ``backtrack_limit`` (the PODEM budget per fault, the
    funnel's classic 100) and ``patterns`` (random-prefilter pool size).
    ``jobs`` shards hard-fault proofs in the ``choose`` path's full
    classifications (serial otherwise).  ``prefilter`` (a
    :class:`repro.engine.batchsim.BatchPrefilter`) is handed to the
    incremental engine's first-epoch simulation prefilter; it never
    changes verdicts, only where the grading work happened.
    """
    work = circuit.copy(f"{circuit.name}#irr")
    # Removal mutates `work` heavily (one remove + kernel refresh +
    # proof-region invalidation per redundancy); the arena keeps the
    # flat simulation/fingerprint/cone state fresh in place across all
    # of it.  REPRO_NET_LEGACY=1 keeps the object-graph path verbatim.
    from ..net import attach_arena, net_enabled

    arena = attach_arena(work) if net_enabled() else None
    steps: List[RemovalStep] = []
    counters: Dict[str, int] = {}
    engine = None
    if incremental:
        from .proofengine import ProofEngine

        engine = ProofEngine(
            work,
            backtrack_limit=backtrack_limit,
            patterns=patterns,
            jobs=jobs,
            prefilter=prefilter,
        )
        counters = engine.counters
    else:
        from .proofengine import PROOF_COUNTERS

        counters = {name: 0 for name in PROOF_COUNTERS}
    for _ in range(max_iterations):
        if choose is not None:
            if engine is not None:
                # lazy funnel: carried verdicts make each re-proof
                # cone-local instead of whole-universe
                redundant = engine.redundant_faults()
            else:
                from .satatpg import redundant_faults

                redundant = redundant_faults(work, incremental=False)
            if not redundant:
                break
            fault = choose(redundant)
        elif engine is not None:
            fault = engine.next_redundant()
        else:
            fault = _next_redundant_scratch(
                work, backtrack_limit, patterns, counters
            )
        if fault is None:
            break
        before = work.num_gates()
        description = fault.describe(work)
        if engine is not None:
            engine.remove(fault)
        else:
            remove_fault(work, fault)
        steps.append(
            RemovalStep(
                fault=fault,
                description=description,
                gates_before=before,
                gates_after=work.num_gates(),
            )
        )
    else:
        raise RuntimeError("redundancy removal did not converge")
    out = dict(counters)
    if arena is not None:
        for name, value in arena.counters.items():
            out[name] = out.get(name, 0) + value
        out["arena_full_builds"] = (
            out.get("arena_full_builds", 0) + arena.full_builds
        )
    return RemovalResult(circuit=work, steps=steps, counters=dict(out))


def is_irredundant(circuit: Circuit, incremental: bool = True) -> bool:
    """True if every collapsed stuck-at fault is testable -- the paper's
    "fully testable for all single stuck faults"."""
    from .satatpg import redundant_faults

    return not redundant_faults(circuit, incremental=incremental)
