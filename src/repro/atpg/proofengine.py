"""Persistent incremental redundancy-proof engine.

The KMS epilogue ("remaining redundancies are then removable in any
order") and every irredundancy check funnel through the same question --
*which collapsed faults are untestable right now?* -- asked over and
over on a circuit that changes only a little between questions.  The
from-scratch funnel in :mod:`repro.atpg.satatpg` restarts completely
each time: re-enumerate the fault universe, re-roll the same random
vectors, re-run PODEM on every suspect, rebuild a full Tseitin CNF per
SAT proof.  This engine keeps all of that state alive across removals,
in the style of Teslenko--Dubrova's cone-limited redundancy removal:

* **Verdict carry-over.**  A fault's testability classification is a
  function of the fanin closure of its fanout cone (the gates that can
  excite it plus everything its effect can reach and every side signal
  feeding that region).  After :func:`repro.atpg.redundancy.remove_fault`
  reports its touched-gate set (the PR-3 transform contract), only
  faults whose anchor gate lies inside ``fanin*(fanout*(touched))`` are
  re-qualified; every other verdict -- including the PODEM
  aborted-vs-untestable distinction, which is a deterministic function
  of the unchanged region -- carries over to the next epoch.

* **One incremental SAT solver per epoch.**  The good circuit is
  Tseitin-encoded once per circuit version into a single
  :class:`repro.sat.Solver`; each hard fault adds only its faulty
  fanout cone, every clause gated by a fresh activation literal, and is
  decided by ``solve(assumptions=(act,))``.  Retired queries are
  disabled with a root-level ``(-act)`` unit, and the solver's
  size-capped learned-clause deletion keeps the database bounded.

* **Witness feedback.**  Every testability witness (a PODEM cube or a
  SAT model) is completed to a full vector, pushed through the PR-4
  compiled kernel's event-driven fault grading to drop other suspects
  in the same epoch, and accumulated into the vector pool so later
  epochs start from every test discovered so far instead of re-rolling
  ``random_vectors(seed=7)``.

* **Optional proof sharding.**  Full-universe classification can shard
  the surviving hard-fault proofs across a ``ProcessPoolExecutor``
  (``jobs``), shipping circuits as primitive dicts the way
  :mod:`repro.engine.runner` does and merging verdicts in deterministic
  submission order.

The engine is *bit-identical* to the from-scratch oracle: the removal
loop picks the same fault at every step (first PODEM-proven untestable
fault in collapsed order, else the first SAT-proven one among the PODEM
aborts) and full classification returns the same verdict list, because
simulation can only ever reclassify testable faults and the
PODEM/SAT verdict classes are invariant on untouched regions.  The
deterministic work counters -- exact functions of circuit + seed -- are
exported through :class:`repro.core.kms.KmsResult`, engine telemetry,
and the CLI, and gate the ``atpg`` row of the ``perf-gate`` CI job.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..network import Circuit
from ..sat import CircuitEncoder, Solver
from ..sim.kernel import refresh_compiled
from .faults import CONN, Fault, anchor_gate, collapsed_faults
from .faultsim import (
    PackedCorpus,
    complete_vector,
    fault_coverage,
    random_vectors,
)
from .podem import Podem, Status

#: Verdict classes.  ``HARD`` means PODEM aborted and SAT has not been
#: consulted yet -- the classification every oracle iteration would also
#: reach before its SAT stage.
TESTABLE = "testable"
PODEM_UNTESTABLE = "podem_untestable"
HARD = "hard"
HARD_UNTESTABLE = "hard_untestable"

_UNTESTABLE = (PODEM_UNTESTABLE, HARD_UNTESTABLE)

#: Deterministic work counters the engine exports (telemetry glossary in
#: :mod:`repro.engine.telemetry`; CI gate in
#: ``benchmarks/compare_baseline.py``).
PROOF_COUNTERS = (
    "faults_requalified",
    "verdicts_carried",
    "witness_drops",
    "cnf_reuses",
    "sat_proofs",
    "tseitin_builds",
    "podem_calls",
    "podem_backtracks",
    "podem_aborts",
    "learned_kept",
    "learned_dropped",
)

#: Learned-clause cap for epoch solvers; one solver may serve hundreds
#: of assumption-gated queries, so the DB is bounded (satellite of the
#: same PR -- see ``Solver.learned_cap``).
EPOCH_LEARNED_CAP = 5000


class _ActivationCnf:
    """CNF facade over a live solver that gates every clause.

    ``CircuitEncoder`` emits clauses through the ``new_var`` /
    ``add_clause`` / ``add_unit`` surface; routing them here appends the
    negated activation literal so the whole faulty-cone encoding is
    switched on only under ``solve(assumptions=(act,))`` and retired
    with a single root-level ``(-act)`` unit afterwards.
    """

    def __init__(self, solver: Solver, act: int) -> None:
        self._solver = solver
        self._act = act

    def new_var(self) -> int:
        return self._solver.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        self._solver.add_clause(list(literals) + [-self._act])

    def add_unit(self, literal: int) -> None:
        self.add_clause((literal,))


class ProofEngine:
    """Incremental redundancy-proof engine bound to one live circuit.

    The circuit may mutate between queries as long as every mutation is
    reported through :meth:`invalidate` (or performed via
    :meth:`remove`, which wraps :func:`~repro.atpg.redundancy.remove_fault`
    and invalidates from its touched-gate set).

    Args:
        circuit: the live circuit (mutated in place by :meth:`remove`).
        backtrack_limit: PODEM backtrack budget per fault (the funnel's
            classic ``100``; raising it trades SAT proofs for search).
        patterns: size of the seeded random-vector pool.
        seed: seed for the initial random vectors (the oracle's ``7``).
        jobs: when > 1, :meth:`redundant_faults` shards hard-fault SAT
            proofs across that many worker processes.
        prefilter: optional precomputed first-epoch grading (a
            :class:`repro.engine.batchsim.BatchPrefilter`, duck-typed to
            its ``lookup``).  Consulted before the per-circuit
            simulation prefilter; any mismatch falls back to grading
            normally, so verdicts are bit-identical with or without it.
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 100,
        patterns: int = 64,
        seed: int = 7,
        jobs: Optional[int] = None,
        prefilter=None,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.jobs = jobs
        self.counters: Dict[str, int] = {name: 0 for name in PROOF_COUNTERS}
        self._verdicts: Dict[Fault, str] = {}
        self._vectors = random_vectors(circuit, patterns, seed)
        self._prefilter = prefilter
        # hoisted packing of the vector pool, rebuilt when the pool
        # grows or the circuit's PI set changes (see PackedCorpus)
        self._corpus: Optional[PackedCorpus] = None
        # epoch solver state (rebuilt when the circuit version moves)
        self._solver: Optional[Solver] = None
        self._good_var: Dict[int, int] = {}
        self._true_lit = 0
        self._solver_version: Optional[int] = None
        self._solver_stats_mark = (0, 0)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def invalidate(self, touched: Iterable[int]) -> int:
        """Evict verdicts whose validity region intersects ``touched``.

        A verdict for fault ``f`` depends exactly on the fanin closure
        of the fanout cone of its anchor gate; that region intersects
        the touched set iff the anchor lies in
        ``fanin*(fanout*(touched))``.  Returns the number of evictions.
        """
        present = {g for g in touched if g in self.circuit.gates}
        dirty = self.circuit.transitive_fanin(
            self.circuit.transitive_fanout(present)
        )
        evicted = 0
        for fault in list(self._verdicts):
            anchor = anchor_gate(self.circuit, fault)
            if anchor is None or anchor in dirty:
                del self._verdicts[fault]
                evicted += 1
        return evicted

    def remove(self, fault: Fault) -> Set[int]:
        """Remove an untestable fault in place and invalidate from the
        transforms' touched-gate union (also refreshing any attached
        compiled simulation kernel incrementally)."""
        from .redundancy import remove_fault

        touched = remove_fault(self.circuit, fault)
        refresh_compiled(self.circuit, touched)
        self.invalidate(touched)
        return touched

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    def _prepare_epoch(
        self, faults: Optional[Sequence[Fault]]
    ) -> Tuple[List[Fault], Podem]:
        """Start an epoch: enumerate the universe, carry cached
        verdicts, and simulation-prefilter the rest against the
        accumulated vector pool."""
        universe = (
            list(faults)
            if faults is not None
            else collapsed_faults(self.circuit)
        )
        pending = [f for f in universe if f not in self._verdicts]
        self.counters["verdicts_carried"] += len(universe) - len(pending)
        self.counters["faults_requalified"] += len(pending)
        if pending and self._vectors:
            detected: Optional[List[Fault]] = None
            if self._prefilter is not None:
                # sweep-level precomputed grading; exact-match guarded,
                # so a hit is bit-identical to the fault_coverage below.
                # One shot: only the pristine first-epoch circuit can
                # match, so later epochs skip the fingerprint probe.
                detected = self._prefilter.lookup(
                    self.circuit, self._vectors, pending
                )
                self._prefilter = None
            if detected is None:
                report = fault_coverage(
                    self.circuit, pending, self._vector_corpus()
                )
                undetected = set(report.undetected_faults)
                detected = [f for f in pending if f not in undetected]
            for f in detected:
                self._verdicts[f] = TESTABLE
        podem = Podem(self.circuit, backtrack_limit=self.backtrack_limit)
        return universe, podem

    def _vector_corpus(self) -> PackedCorpus:
        """The vector pool packed once and reused across epochs --
        rebuilt only when a witness extended the pool or the circuit's
        PI gid set changed since packing."""
        corpus = self._corpus
        if (
            corpus is None
            or len(corpus) != len(self._vectors)
            or not corpus.fresh_for(self.circuit, corpus.block)
        ):
            corpus = PackedCorpus(self.circuit, self._vectors)
            self._corpus = corpus
        return corpus

    def _qualify_podem(
        self, podem: Podem, fault: Fault, universe: Sequence[Fault]
    ) -> str:
        """PODEM stage for one unresolved fault; testable witnesses are
        fed back to drop other suspects."""
        result = podem.generate(fault)
        self.counters["podem_calls"] += 1
        self.counters["podem_backtracks"] += result.backtracks
        if result.status is Status.UNTESTABLE:
            verdict = PODEM_UNTESTABLE
        elif result.status is Status.ABORTED:
            self.counters["podem_aborts"] += 1
            verdict = HARD
        else:
            verdict = TESTABLE
        self._verdicts[fault] = verdict
        if verdict == TESTABLE:
            self._absorb_witness(result.test, universe)
        return verdict

    def _absorb_witness(
        self, cube: Dict[int, int], universe: Sequence[Fault]
    ) -> None:
        """Accumulate a testability witness and grade every unresolved
        (or still SAT-pending) suspect against it through the compiled
        kernel's event-driven fault simulation."""
        vector = complete_vector(self.circuit, cube or {})
        self._vectors.append(vector)
        targets = [
            f
            for f in universe
            if self._verdicts.get(f) in (None, HARD)
        ]
        if not targets:
            return
        report = fault_coverage(self.circuit, targets, [vector])
        undetected = set(report.undetected_faults)
        for f in targets:
            if f not in undetected:
                self._verdicts[f] = TESTABLE
                self.counters["witness_drops"] += 1

    # ------------------------------------------------------------------ #
    # the epoch SAT solver
    # ------------------------------------------------------------------ #

    def _epoch_solver(self) -> Solver:
        """The shared incremental solver for the current circuit
        version, building the good-circuit Tseitin once per epoch."""
        if (
            self._solver is not None
            and self._solver_version == self.circuit.version
        ):
            self.counters["cnf_reuses"] += 1
            return self._solver
        self._harvest_solver_stats()
        encoder = CircuitEncoder()
        self._good_var = encoder.encode(self.circuit)
        self.counters["tseitin_builds"] += 1
        solver = Solver(encoder.cnf, learned_cap=EPOCH_LEARNED_CAP)
        self._true_lit = solver.new_var()
        solver.add_clause((self._true_lit,))
        self._solver = solver
        self._solver_version = self.circuit.version
        self._solver_stats_mark = (0, 0)
        return solver

    def _harvest_solver_stats(self) -> None:
        """Fold the retiring epoch solver's learned-DB counters into the
        engine counters (delta since the last harvest)."""
        if self._solver is None:
            return
        kept, dropped = self._solver_stats_mark
        self.counters["learned_kept"] += (
            self._solver.stats["learned_kept"] - kept
        )
        self.counters["learned_dropped"] += (
            self._solver.stats["learned_dropped"] - dropped
        )
        self._solver_stats_mark = (
            self._solver.stats["learned_kept"],
            self._solver.stats["learned_dropped"],
        )

    def _sat_qualify(self, fault: Fault, universe: Sequence[Fault]) -> str:
        """Complete decision for one PODEM-aborted fault on the epoch
        solver: encode the faulty fanout cone under an activation
        literal, solve under assumption, retire the literal."""
        solver = self._epoch_solver()
        solver.reset_to_root()
        act = solver.new_var()
        testable, model = _prove_on_solver(
            self.circuit, fault, solver, self._good_var,
            self._true_lit, act,
        )
        self.counters["sat_proofs"] += 1
        self._harvest_solver_stats()
        if not testable:
            self._verdicts[fault] = HARD_UNTESTABLE
            return HARD_UNTESTABLE
        self._verdicts[fault] = TESTABLE
        cube = {
            gid: int(model.get(self._good_var[gid], False))
            for gid in self.circuit.inputs
        }
        self._absorb_witness(cube, universe)
        return TESTABLE

    # ------------------------------------------------------------------ #
    # public queries
    # ------------------------------------------------------------------ #

    def next_redundant(self) -> Optional[Fault]:
        """The fault the from-scratch oracle iteration would remove now.

        Scan the collapsed universe in deterministic order: the first
        PODEM-proven untestable fault wins; only if none exists are the
        PODEM aborts handed to SAT, first proof wins.  Returns ``None``
        when the circuit is irredundant.
        """
        universe, podem = self._prepare_epoch(None)
        hard: List[Fault] = []
        for fault in universe:
            verdict = self._verdicts.get(fault)
            if verdict is None:
                verdict = self._qualify_podem(podem, fault, universe)
            if verdict == PODEM_UNTESTABLE:
                return fault
            if verdict in (HARD, HARD_UNTESTABLE):
                hard.append(fault)
        for fault in hard:
            verdict = self._verdicts[fault]
            if verdict == HARD:
                verdict = self._sat_qualify(fault, universe)
            if verdict == HARD_UNTESTABLE:
                return fault
        return None

    def redundant_faults(
        self, faults: Optional[Sequence[Fault]] = None
    ) -> List[Fault]:
        """All untestable faults from ``faults`` (default: the collapsed
        universe), classifying every fault -- the full-verdict
        counterpart of :func:`repro.atpg.satatpg.redundant_faults`."""
        universe, podem = self._prepare_epoch(faults)
        for fault in universe:
            if self._verdicts.get(fault) is None:
                self._qualify_podem(podem, fault, universe)
        hard = [f for f in universe if self._verdicts[f] == HARD]
        if hard and self.jobs and self.jobs > 1:
            self._sat_qualify_sharded(hard)
        else:
            for fault in hard:
                if self._verdicts[fault] == HARD:
                    self._sat_qualify(fault, universe)
        redundant = [
            f for f in universe if self._verdicts[f] in _UNTESTABLE
        ]
        redundant.sort(key=lambda f: (f.kind, f.site, f.value))
        return redundant

    def is_irredundant(self) -> bool:
        return not self.redundant_faults()

    # ------------------------------------------------------------------ #
    # parallel hard-fault sharding
    # ------------------------------------------------------------------ #

    def _sat_qualify_sharded(self, hard: Sequence[Fault]) -> None:
        """Shard hard-fault proofs across a process pool.

        Circuits travel as primitive dicts and verdicts merge in
        deterministic submission order (the :mod:`repro.engine.runner`
        fan-out pattern); each worker builds its own epoch solver, so
        ``sat_proofs`` counts every fault exactly once.
        """
        from concurrent.futures import ProcessPoolExecutor

        from ..engine.serialize import circuit_to_dict

        payload = circuit_to_dict(self.circuit)
        jobs = min(self.jobs or 1, len(hard))
        chunks = [list(hard[i::jobs]) for i in range(jobs)]
        specs = [
            [(f.kind, f.site, f.value) for f in chunk] for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_prove_chunk_worker, payload, spec)
                for spec in specs
            ]
            results = [future.result() for future in futures]
        for chunk, verdicts in zip(chunks, results):
            for fault, testable in zip(chunk, verdicts):
                self._verdicts[fault] = (
                    TESTABLE if testable else HARD_UNTESTABLE
                )
                self.counters["sat_proofs"] += 1


# ---------------------------------------------------------------------- #
# the assumption-gated faulty-cone encoding
# ---------------------------------------------------------------------- #


def _prove_on_solver(
    circuit: Circuit,
    fault: Fault,
    solver: Solver,
    good_var: Dict[int, int],
    true_lit: int,
    act: int,
) -> Tuple[bool, Dict[int, bool]]:
    """Encode ``fault``'s faulty cone onto ``solver`` gated by ``act``
    and decide testability under that assumption.

    Only the fanout cone of the fault is re-encoded; cone inputs fed
    from outside the cone share the good-circuit variables, and the
    stuck site reads a constant literal.  Returns ``(testable, model)``
    with the activation literal retired either way.
    """
    stuck_lit = true_lit if fault.value else -true_lit
    if fault.kind == CONN:
        conn = circuit.conns[fault.site]
        cone = circuit.transitive_fanout([conn.dst])
        stem_gid = None
    else:
        cone = circuit.transitive_fanout([fault.site])
        cone.discard(fault.site)
        stem_gid = fault.site
    gated = _ActivationCnf(solver, act)
    encoder = CircuitEncoder.__new__(CircuitEncoder)
    encoder.cnf = gated
    faulty_var: Dict[int, int] = {}
    for gid in circuit.topological_order():
        if gid not in cone:
            continue
        gate = circuit.gates[gid]
        ins: List[int] = []
        for cid in gate.fanin:
            src = circuit.conns[cid].src
            if fault.kind == CONN and cid == fault.site:
                ins.append(stuck_lit)
            elif src == stem_gid:
                ins.append(stuck_lit)
            else:
                ins.append(faulty_var.get(src, good_var[src]))
        out = solver.new_var()
        faulty_var[gid] = out
        encoder._constrain(gate.gtype, out, ins)
    diff_lits: List[int] = []
    for po in circuit.outputs:
        if po not in faulty_var:
            continue  # outside the cone: cannot differ
        va, vb = good_var[po], faulty_var[po]
        d = solver.new_var()
        gated.add_clause((-va, -vb, -d))
        gated.add_clause((va, vb, -d))
        gated.add_clause((-va, vb, d))
        gated.add_clause((va, -vb, d))
        diff_lits.append(d)
    gated.add_clause(diff_lits)  # empty cone-to-PO: forces UNSAT
    testable = bool(solver.solve(assumptions=(act,)))
    model = solver.model() if testable else {}
    solver.reset_to_root()
    solver.add_clause((-act,))
    return testable, model


def _prove_chunk_worker(
    circuit_dict: Dict, fault_specs: List[Tuple[str, int, int]]
) -> List[bool]:
    """Process-pool worker: decide a chunk of hard faults.

    Rebuilds the circuit from primitives, encodes the good circuit once,
    and answers each fault on the shared worker-local solver -- the same
    epoch-solver economics as the serial path.
    """
    from ..engine.serialize import circuit_from_dict

    circuit = circuit_from_dict(circuit_dict)
    encoder = CircuitEncoder()
    good_var = encoder.encode(circuit)
    solver = Solver(encoder.cnf, learned_cap=EPOCH_LEARNED_CAP)
    true_lit = solver.new_var()
    solver.add_clause((true_lit,))
    verdicts: List[bool] = []
    for kind, site, value in fault_specs:
        solver.reset_to_root()
        act = solver.new_var()
        testable, _ = _prove_on_solver(
            circuit, Fault(kind, site, value), solver, good_var,
            true_lit, act,
        )
        verdicts.append(testable)
    return verdicts
