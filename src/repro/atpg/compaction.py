"""Test set generation and compaction.

A production flow doesn't stop at "each fault has a test": it wants the
smallest vector set achieving full coverage of the testable faults.
`generate_test_set` runs the standard pipeline -- random phase with
fault-simulation grading, deterministic phase (PODEM, SAT fallback) --
and `compact` shrinks the result by reverse-order fault simulation and
greedy set covering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..network import Circuit
from .faults import Fault, collapsed_faults
from .faultsim import detecting_patterns, fault_coverage
from .podem import Podem, Status
from .satatpg import SatAtpg

Vector = Dict[int, int]


@dataclass
class TestSet:
    """A generated stuck-at test set."""

    vectors: List[Vector]
    #: faults proven untestable (the redundancies).
    redundant: List[Fault] = field(default_factory=list)
    #: faults neither tested nor proven redundant (should be empty).
    aborted: List[Fault] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.aborted


def generate_test_set(
    circuit: Circuit,
    faults: Optional[Sequence[Fault]] = None,
    random_patterns: int = 64,
    seed: int = 1,
    backtrack_limit: int = 5000,
) -> TestSet:
    """A test set detecting every testable fault in the list.

    Random phase first (cheap coverage), then PODEM per leftover fault,
    then SAT for PODEM aborts -- so the ``redundant`` list is exact.
    """
    worklist = (
        list(faults) if faults is not None else collapsed_faults(circuit)
    )
    rng = random.Random(seed)
    vectors: List[Vector] = [
        {gid: rng.getrandbits(1) for gid in circuit.inputs}
        for _ in range(random_patterns)
    ]
    report = fault_coverage(circuit, worklist, vectors)
    result = TestSet(vectors=vectors)
    podem = Podem(circuit, backtrack_limit=backtrack_limit)
    sat: Optional[SatAtpg] = None
    remaining = list(report.undetected_faults)
    while remaining:
        fault = remaining.pop(0)
        outcome = podem.generate(fault)
        if outcome.status is Status.UNTESTABLE:
            result.redundant.append(fault)
            continue
        test: Optional[Vector] = None
        if outcome.status is Status.TESTABLE:
            test = {
                gid: outcome.test.get(gid, 0) for gid in circuit.inputs
            }
        else:
            if sat is None:
                sat = SatAtpg(circuit)
            answer = sat.generate(fault)
            if not answer.testable:
                result.redundant.append(fault)
                continue
            test = answer.test
        result.vectors.append(test)
        # drop everything this fresh vector also detects
        if remaining:
            remaining = fault_coverage(
                circuit, remaining, [test]
            ).undetected_faults
    return result


def compact(
    circuit: Circuit,
    vectors: Sequence[Vector],
    faults: Optional[Sequence[Fault]] = None,
) -> List[Vector]:
    """Shrink a test set preserving its fault coverage.

    Greedy set covering over the detection matrix: repeatedly keep the
    vector detecting the most still-uncovered faults.  The result's
    coverage equals the input's (never worse).
    """
    worklist = (
        list(faults) if faults is not None else collapsed_faults(circuit)
    )
    # detection sets per vector, computed by bit-parallel blocks; the
    # good simulation is done once per block and shared across faults
    from ..sim.kernel import get_compiled, kernel_enabled
    from ..sim.parallel import pack_vectors, simulate_packed

    kern = get_compiled(circuit) if kernel_enabled() else None
    detected_by: List[set] = [set() for _ in vectors]
    block = 64
    for start in range(0, len(vectors), block):
        chunk = vectors[start : start + block]
        packed, width = pack_vectors(circuit, chunk)
        if kern is not None:
            good_words = kern.evaluate_words(packed, width)
            good = None
        else:
            good_words = None
            good = simulate_packed(circuit, packed, width)
        for f_idx, fault in enumerate(worklist):
            if kern is not None:
                mask = kern.detecting_word(fault, good_words, width)
            else:
                mask = detecting_patterns(
                    circuit, fault, packed, width, good, compiled=False
                )
            while mask:
                bit = (mask & -mask).bit_length() - 1
                detected_by[start + bit].add(f_idx)
                mask &= mask - 1
    target = set().union(*detected_by) if detected_by else set()
    kept: List[Vector] = []
    covered: set = set()
    while covered != target:
        best = max(
            range(len(vectors)),
            key=lambda i: len(detected_by[i] - covered),
        )
        gain = detected_by[best] - covered
        if not gain:
            break
        covered |= gain
        kept.append(vectors[best])
    return kept
