"""Fault diagnosis by dictionary matching.

The flip side of test generation: a fabricated part failed some vectors
-- which fault explains it?  `FaultDictionary` precomputes, per fault,
the set of (vector, output) positions it flips; `diagnose` intersects
the observed failures with the dictionary, classic pass/fail diagnosis.

This closes the testing loop the paper's Section III motivates: the
speedtest hazard is precisely a failure *no* stuck-at dictionary entry
explains (the part passes every logic test), and
`diagnose` reports exactly that as "no candidates" -- the fingerprint
telling a test engineer to suspect a timing-only defect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..network import Circuit
from ..sim.kernel import get_compiled, kernel_enabled
from ..sim.parallel import pack_vectors, simulate_packed
from .faults import Fault, collapsed_faults
from .faultsim import simulate_fault_packed

Vector = Mapping[int, int]
#: A failure signature: set of (vector index, PO gid) positions flipped.
Signature = FrozenSet[Tuple[int, int]]


@dataclass
class Diagnosis:
    """Candidate faults explaining an observed failure signature."""

    #: faults whose signature equals the observation exactly.
    exact: List[Fault] = field(default_factory=list)
    #: faults whose signature is a superset of the observation (the
    #: part may mask some detections electrically).
    covering: List[Fault] = field(default_factory=list)

    @property
    def unexplained(self) -> bool:
        """No stuck-at candidate at all -- e.g. a timing-only defect
        (the Section III speedtest scenario)."""
        return not self.exact and not self.covering


class FaultDictionary:
    """Per-fault failure signatures for a fixed test set."""

    def __init__(
        self,
        circuit: Circuit,
        vectors: Sequence[Vector],
        faults: Optional[Sequence[Fault]] = None,
    ) -> None:
        self.circuit = circuit
        self.vectors = list(vectors)
        self.faults = (
            list(faults)
            if faults is not None
            else collapsed_faults(circuit)
        )
        self.signatures: Dict[Fault, Signature] = {}
        self._build()

    def _build(self) -> None:
        circuit = self.circuit
        block = 64
        kern = get_compiled(circuit) if kernel_enabled() else None
        per_fault: Dict[Fault, set] = {f: set() for f in self.faults}
        for start in range(0, len(self.vectors), block):
            chunk = self.vectors[start : start + block]
            packed, width = pack_vectors(circuit, chunk)
            if kern is not None:
                good_words = kern.evaluate_words(packed, width)
                po_pos = [(po, kern.pos[po]) for po in circuit.outputs]
                for fault in self.faults:
                    diffs = kern.fault_diffs(fault, good_words, width)
                    for po, p in po_pos:
                        if p not in diffs:
                            continue
                        diff = good_words[p] ^ diffs[p]
                        while diff:
                            bit = (diff & -diff).bit_length() - 1
                            per_fault[fault].add((start + bit, po))
                            diff &= diff - 1
                continue
            good = simulate_packed(circuit, packed, width)
            for fault in self.faults:
                faulty = simulate_fault_packed(
                    circuit, fault, packed, width
                )
                for po in circuit.outputs:
                    diff = good[po] ^ faulty[po]
                    while diff:
                        bit = (diff & -diff).bit_length() - 1
                        per_fault[fault].add((start + bit, po))
                        diff &= diff - 1
        self.signatures = {
            f: frozenset(s) for f, s in per_fault.items()
        }

    def expected_responses(self) -> Dict[int, List[int]]:
        """Golden responses: PO gid -> list of values per vector."""
        out: Dict[int, List[int]] = {
            po: [] for po in self.circuit.outputs
        }
        for vec in self.vectors:
            values = self.circuit.evaluate(
                {g: vec.get(g, 0) for g in self.circuit.inputs}
            )
            for po in self.circuit.outputs:
                out[po].append(values[po])
        return out

    def signature_of(self, fault: Fault) -> Signature:
        return self.signatures[fault]

    def diagnose(self, observed: Signature) -> Diagnosis:
        """Match an observed failure signature against the dictionary."""
        result = Diagnosis()
        observed = frozenset(observed)
        if not observed:
            return result
        for fault, signature in self.signatures.items():
            if not signature:
                continue
            if signature == observed:
                result.exact.append(fault)
            elif observed <= signature:
                result.covering.append(fault)
        return result

    def diagnose_responses(
        self, responses: Mapping[int, Sequence[int]]
    ) -> Diagnosis:
        """Diagnose from raw per-output response streams."""
        golden = self.expected_responses()
        observed = set()
        for po, stream in responses.items():
            for i, value in enumerate(stream):
                if value != golden[po][i]:
                    observed.add((i, po))
        return self.diagnose(frozenset(observed))
