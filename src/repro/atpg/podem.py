"""PODEM test pattern generation (Goel 1981).

A complete branch-and-bound over primary-input assignments: objectives
are backtraced to PIs, candidate assignments are validated by 5-valued
implication (:func:`repro.sim.dcalc.simulate5`), and exhaustion of the
PI space proves a fault *untestable* -- exactly the redundancy
identification the paper relies on ("the single stuck-at-0 fault on the
output of the gate 10 is not testable").

The implementation favours clarity over constant-factor speed: every
implication is a full composite resimulation.  The SAT-based engine
(:mod:`repro.atpg.satatpg`) provides an independent oracle; both are
cross-checked in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..network import (
    Circuit,
    GateType,
    has_controlling_value,
    noncontrolling_value,
)
from ..sim import X, simulate5
from ..sim.dcalc import is_d_or_dbar
from .faults import CONN, Fault


class Status(enum.Enum):
    TESTABLE = "testable"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    """Outcome of a PODEM run for one fault."""

    status: Status
    #: PI gid -> 0/1 test cube (only assigned PIs; others are don't-care).
    test: Optional[Dict[int, int]] = None
    backtracks: int = 0

    @property
    def testable(self) -> bool:
        return self.status is Status.TESTABLE


class Podem:
    """PODEM engine bound to one circuit.

    Reuse one instance for a whole fault list; per-fault state is local
    to :meth:`generate`.
    """

    def __init__(self, circuit: Circuit, backtrack_limit: int = 20000):
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        #: accumulated over every :meth:`generate` call on this instance;
        #: telemetry surfaces these as ``podem_calls`` /
        #: ``podem_backtracks`` / ``podem_aborts``.
        self.stats = {"calls": 0, "backtracks": 0, "aborts": 0}
        # static order: prefer objectives closer to outputs
        self._depth: Dict[int, int] = {}
        for gid in circuit.topological_order():
            preds = [
                self._depth[src] for src in circuit.fanin_gates(gid)
            ]
            self._depth[gid] = 1 + max(preds, default=0)
        # SCOAP controllability steers backtrace toward easy inputs
        from .scoap import compute_scoap

        self._scoap = compute_scoap(circuit)

    # -- fault-specific helpers ----------------------------------------- #

    def _site_gate(self, fault: Fault) -> int:
        """The gate whose *good* value must differ from the stuck value."""
        if fault.kind == CONN:
            return self.circuit.conns[fault.site].src
        return fault.site

    def _simulate(
        self, fault: Fault, assignment: Dict[int, Tuple]
    ) -> Dict[int, Tuple]:
        if fault.kind == CONN:
            return simulate5(
                self.circuit,
                assignment,
                fault_conn=fault.site,
                stuck_value=fault.value,
            )
        return simulate5(
            self.circuit,
            assignment,
            fault_gate=fault.site,
            stuck_value=fault.value,
        )

    def _d_frontier(self, fault: Fault, values: Dict[int, Tuple]) -> List[int]:
        """Gates with a fault effect on some input and X on the output."""
        frontier = []
        for gid, gate in self.circuit.gates.items():
            val = values[gid]
            if val[0] != X and val[1] != X:
                continue
            for cid in gate.fanin:
                v = values[self.circuit.conns[cid].src]
                if fault.kind == CONN and cid == fault.site:
                    v = (v[0], fault.value)
                if is_d_or_dbar(v):
                    frontier.append(gid)
                    break
        return frontier

    def _x_path_exists(self, frontier: List[int], values) -> bool:
        """Is there a path from some frontier gate to a PO along gates
        whose output is still undetermined (X in either component)?"""
        seen = set()
        stack = list(frontier)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            gate = self.circuit.gates[gid]
            if gate.gtype is GateType.OUTPUT:
                return True
            for dst in self.circuit.fanout_gates(gid):
                v = values[dst]
                if v[0] == X or v[1] == X or is_d_or_dbar(v):
                    stack.append(dst)
        return False

    # -- objective and backtrace ----------------------------------------#

    def _objective(
        self, fault: Fault, values: Dict[int, Tuple]
    ) -> Optional[Tuple[int, int]]:
        """(gate gid, desired good value) or None when stuck."""
        site = self._site_gate(fault)
        sv = values[site]
        if sv[0] == X:
            return (site, 1 - fault.value)  # activate the fault
        frontier = self._d_frontier(fault, values)
        if not frontier:
            return None
        # propagate through the frontier gate closest to an output
        frontier.sort(key=lambda g: -self._depth[g])
        gate = self.circuit.gates[frontier[0]]
        ncv = (
            noncontrolling_value(gate.gtype)
            if has_controlling_value(gate.gtype)
            else None
        )
        for cid in gate.fanin:
            src = self.circuit.conns[cid].src
            if values[src][0] == X:
                want = ncv if ncv is not None else 1
                return (src, want)
        return None

    def _backtrace(
        self, objective: Tuple[int, int], values: Dict[int, Tuple]
    ) -> Optional[Tuple[int, int]]:
        """Walk an objective back to an unassigned PI.

        Classic inversion-parity walk: request value v on a gate; on
        AND/OR/BUF ask v of an X input, on NAND/NOR/NOT ask 1-v.
        """
        gid, value = objective
        guard = 0
        while True:
            guard += 1
            if guard > len(self.circuit.gates) + 2:
                return None  # cycle-proof; cannot happen in a DAG
            gate = self.circuit.gates[gid]
            if gate.gtype is GateType.INPUT:
                return (gid, value)
            if gate.gtype in (GateType.CONST0, GateType.CONST1):
                return None
            if gate.gtype in (GateType.NOT, GateType.NAND, GateType.NOR):
                value = 1 - value
            x_pins = [
                self.circuit.conns[cid].src
                for cid in gate.fanin
                if values[self.circuit.conns[cid].src][0] == X
            ]
            if not x_pins:
                return None
            # easiest-first: pick the X input with the lowest SCOAP
            # controllability toward the requested value
            gid = min(
                x_pins,
                key=lambda g: self._scoap.controllability(g, value),
            )

    # -- the search ------------------------------------------------------#

    def generate(self, fault: Fault) -> PodemResult:
        """Run PODEM for one fault."""
        result = self._generate(fault)
        self.stats["calls"] += 1
        self.stats["backtracks"] += result.backtracks
        if result.status is Status.ABORTED:
            self.stats["aborts"] += 1
        return result

    def _generate(self, fault: Fault) -> PodemResult:
        assignment: Dict[int, Tuple] = {}
        decisions: List[Tuple[int, int, bool]] = []  # (pi, value, flipped)
        backtracks = 0

        while True:
            values = self._simulate(fault, assignment)
            outcome = self._check(fault, values)
            if outcome is True:
                test = {pi: v[0] for pi, v in assignment.items()}
                return PodemResult(Status.TESTABLE, test, backtracks)
            if outcome is None:
                objective = self._objective(fault, values)
                target = (
                    self._backtrace(objective, values)
                    if objective is not None
                    else None
                )
                if target is None:
                    # Completeness fallback: the heuristic objective can
                    # fail while a test still exists deeper in the PI
                    # space (e.g. the D-frontier is X only in the faulty
                    # component).  Decide any unassigned PI instead of
                    # declaring a dead end.
                    target = next(
                        (
                            (pi, 0)
                            for pi in self.circuit.inputs
                            if pi not in assignment
                        ),
                        None,
                    )
                if target is not None:
                    pi, value = target
                    decisions.append((pi, value, False))
                    assignment[pi] = (value, value)
                    continue
                # every PI assigned and still undetected: dead end
            # outcome is False (or dead end): backtrack
            while decisions:
                pi, value, flipped = decisions.pop()
                del assignment[pi]
                if not flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult(Status.ABORTED, None, backtracks)
                    newv = 1 - value
                    decisions.append((pi, newv, True))
                    assignment[pi] = (newv, newv)
                    break
            else:
                return PodemResult(Status.UNTESTABLE, None, backtracks)

    def _check(self, fault: Fault, values) -> Optional[bool]:
        """True = detected, False = provably impossible here, None = open."""
        for po in self.circuit.outputs:
            if is_d_or_dbar(values[po]):
                return True
        site = self._site_gate(fault)
        good = values[site][0]
        if good != X and good == fault.value:
            return False  # fault can never be excited under this prefix
        if good != X:
            frontier = self._d_frontier(fault, values)
            if not frontier:
                return False
            if not self._x_path_exists(frontier, values):
                return False
        return None


def generate_test(
    circuit: Circuit, fault: Fault, backtrack_limit: int = 20000
) -> PodemResult:
    """One-shot PODEM call."""
    return Podem(circuit, backtrack_limit).generate(fault)
