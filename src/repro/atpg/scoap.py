"""SCOAP testability measures (Goldstein 1979).

Combinational controllability CC0/CC1 (how hard to set a line to 0/1)
and observability CO (how hard to propagate a line's value to an
output), the classic heuristic guidance for ATPG.  PODEM's backtrace
uses these to pick the *easiest* input for controlling objectives --
measurably fewer backtracks on the benchmark circuits -- and reports
rank redundancy suspects: untestable faults show up as infinite or
extreme observability long before ATPG proves anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..network import Circuit, GateType

#: Effectively-infinite cost (constant lines cannot be set the other way).
INF = float("inf")


@dataclass
class Scoap:
    """Per-gate SCOAP annotations (on gate outputs / stems)."""

    cc0: Dict[int, float]
    cc1: Dict[int, float]
    co: Dict[int, float]

    def controllability(self, gid: int, value: int) -> float:
        return self.cc1[gid] if value else self.cc0[gid]

    def fault_difficulty(self, gid: int, stuck_value: int) -> float:
        """Heuristic detection difficulty of a stem s-a-v: set the line
        to the opposite value and observe it."""
        return self.controllability(gid, 1 - stuck_value) + self.co[gid]


def compute_scoap(circuit: Circuit) -> Scoap:
    """One forward pass for CC0/CC1, one backward pass for CO."""
    cc0: Dict[int, float] = {}
    cc1: Dict[int, float] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        ins = circuit.fanin_gates(gid)
        t = gate.gtype
        if t is GateType.INPUT:
            cc0[gid], cc1[gid] = 1.0, 1.0
        elif t is GateType.CONST0:
            cc0[gid], cc1[gid] = 0.0, INF
        elif t is GateType.CONST1:
            cc0[gid], cc1[gid] = INF, 0.0
        elif t in (GateType.BUF, GateType.OUTPUT):
            cc0[gid] = cc0[ins[0]] + (0.0 if t is GateType.OUTPUT else 1.0)
            cc1[gid] = cc1[ins[0]] + (0.0 if t is GateType.OUTPUT else 1.0)
        elif t is GateType.NOT:
            cc0[gid] = cc1[ins[0]] + 1.0
            cc1[gid] = cc0[ins[0]] + 1.0
        elif t is GateType.AND:
            cc1[gid] = sum(cc1[i] for i in ins) + 1.0
            cc0[gid] = min(cc0[i] for i in ins) + 1.0
        elif t is GateType.NAND:
            cc0[gid] = sum(cc1[i] for i in ins) + 1.0
            cc1[gid] = min(cc0[i] for i in ins) + 1.0
        elif t is GateType.OR:
            cc0[gid] = sum(cc0[i] for i in ins) + 1.0
            cc1[gid] = min(cc1[i] for i in ins) + 1.0
        elif t is GateType.NOR:
            cc1[gid] = sum(cc0[i] for i in ins) + 1.0
            cc0[gid] = min(cc1[i] for i in ins) + 1.0
        elif t in (GateType.XOR, GateType.XNOR):
            # 2-input formulation folded over the fanin list
            c0, c1 = cc0[ins[0]], cc1[ins[0]]
            for other in ins[1:]:
                n0 = min(c0 + cc0[other], c1 + cc1[other]) + 1.0
                n1 = min(c0 + cc1[other], c1 + cc0[other]) + 1.0
                c0, c1 = n0, n1
            if t is GateType.XNOR:
                c0, c1 = c1, c0
            cc0[gid], cc1[gid] = c0, c1
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unhandled gate type {t}")

    co: Dict[int, float] = {gid: INF for gid in circuit.gates}
    for gid in reversed(circuit.topological_order()):
        gate = circuit.gates[gid]
        if gate.gtype is GateType.OUTPUT:
            co[gid] = 0.0
        for cid in gate.fanin:
            src = circuit.conns[cid].src
            cost = _propagation_cost(circuit, gate, src, cc0, cc1)
            if co[gid] + cost < co[src]:
                co[src] = co[gid] + cost
    return Scoap(cc0=cc0, cc1=cc1, co=co)


def _propagation_cost(
    circuit: Circuit,
    gate,
    through_src: int,
    cc0: Dict[int, float],
    cc1: Dict[int, float],
) -> float:
    """Cost of pushing a change on ``through_src`` through ``gate``."""
    t = gate.gtype
    others = [
        circuit.conns[c].src
        for c in gate.fanin
        if circuit.conns[c].src != through_src
    ]
    if t in (GateType.BUF, GateType.NOT, GateType.OUTPUT):
        return 0.0 if t is GateType.OUTPUT else 1.0
    if t in (GateType.AND, GateType.NAND):
        return sum(cc1[o] for o in others) + 1.0
    if t in (GateType.OR, GateType.NOR):
        return sum(cc0[o] for o in others) + 1.0
    if t in (GateType.XOR, GateType.XNOR):
        return sum(min(cc0[o], cc1[o]) for o in others) + 1.0
    raise ValueError(f"unhandled gate type {t}")  # pragma: no cover


def rank_faults_by_difficulty(
    circuit: Circuit, faults: List
) -> List[Tuple[float, object]]:
    """(difficulty, fault) sorted hardest-first -- a triage heuristic:
    redundancies and hard-to-test faults cluster at the top."""
    from .faults import CONN

    scoap = compute_scoap(circuit)
    ranked = []
    for fault in faults:
        gid = (
            circuit.conns[fault.site].src
            if fault.kind == CONN
            else fault.site
        )
        ranked.append((scoap.fault_difficulty(gid, fault.value), fault))
    ranked.sort(key=lambda pair: pair[0], reverse=True)
    return ranked
