"""Single stuck-at fault model.

Faults live on *connections* (the paper's redundancy-removal primitive
acts on the "first edge" of a path) and on gate output *stems* (a fault
before the fanout point, affecting every branch).  For a single-fanout
gate the stem fault and the branch fault are the same physical site; the
collapsed fault list keeps one of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..network import (
    Circuit,
    GateType,
    controlling_value,
    has_controlling_value,
)
from ..network.transform import set_connection_constant

CONN = "conn"
STEM = "stem"


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    Attributes:
        kind: ``"conn"`` (fault on one connection / fanout branch) or
            ``"stem"`` (fault on a gate output, before fanout).
        site: cid for conn faults, gid for stem faults.
        value: the stuck-at value, 0 or 1.
    """

    kind: str
    site: int
    value: int

    def describe(self, circuit: Circuit) -> str:
        if self.kind == STEM:
            gate = circuit.gates[self.site]
            where = gate.name or f"g{self.site}"
            return f"{where} output s-a-{self.value}"
        conn = circuit.conns[self.site]
        src = circuit.gates[conn.src]
        dst = circuit.gates[conn.dst]
        return (
            f"({src.name or conn.src})->({dst.name or conn.dst}) "
            f"s-a-{self.value}"
        )


def stem_fault(gid: int, value: int) -> Fault:
    return Fault(STEM, gid, value)


def conn_fault(cid: int, value: int) -> Fault:
    return Fault(CONN, cid, value)


def anchor_gate(circuit: Circuit, fault: Fault) -> "int | None":
    """The gate from which the fault's fanout cone grows, or ``None``
    when the site no longer exists in the circuit.

    For a stem fault the anchor is the faulty gate itself; for a
    connection fault it is the consuming gate (the stuck value enters
    the circuit at that gate's input pin).  The proof engine uses the
    anchor for cone-limited verdict invalidation: a cached verdict stays
    valid exactly while ``anchor_gate`` is outside the fanin closure of
    the fanout cone of the touched-gate set.
    """
    if fault.kind == CONN:
        conn = circuit.conns.get(fault.site)
        return conn.dst if conn is not None else None
    return fault.site if fault.site in circuit.gates else None


def all_faults(circuit: Circuit) -> List[Fault]:
    """The uncollapsed fault list: both stuck values on every gate output
    stem (PIs included) and on every connection.

    Gates with no fanout (e.g. primary inputs the logic no longer uses)
    have no physical output line and are not fault sites.
    """
    faults: List[Fault] = []
    for gid, gate in circuit.gates.items():
        if gate.gtype is GateType.OUTPUT or not gate.fanout:
            continue
        for v in (0, 1):
            faults.append(stem_fault(gid, v))
    for cid in circuit.conns:
        for v in (0, 1):
            faults.append(conn_fault(cid, v))
    return faults


def collapsed_faults(circuit: Circuit) -> List[Fault]:
    """Equivalence-collapsed fault list.

    Structural fault equivalences (classic):

    * input s-a-v of NOT/BUF/OUTPUT  ~  output stem s-a-(v xor inversion);
    * input s-a-controlling of AND/NAND/OR/NOR  ~  output stem s-a-
      controlled-output;
    * stem of a single-fanout gate  ~  the fault on its one fanout
      connection.

    Classes are formed by union-find over those rules and one
    representative is kept per class (preferring connection faults,
    matching the paper's edge-centric treatment).  Faults on constant
    gates are excluded -- a constant line carries its value by
    construction, so one polarity is undetectable-by-definition rather
    than interestingly redundant, and the other is equivalent to faults
    downstream.
    """
    parent: dict = {}

    def find(x: Fault) -> Fault:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    def union(a: Fault, b: Fault) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    universe: List[Fault] = []
    const_gids = {
        gid
        for gid, g in circuit.gates.items()
        if g.gtype in (GateType.CONST0, GateType.CONST1)
    }
    for gid, gate in circuit.gates.items():
        if gate.gtype is GateType.OUTPUT or gid in const_gids:
            continue
        if not gate.fanout:
            continue  # floating line: not a fault site
        universe.append(stem_fault(gid, 0))
        universe.append(stem_fault(gid, 1))
    for cid, conn in circuit.conns.items():
        if conn.src in const_gids:
            continue
        universe.append(conn_fault(cid, 0))
        universe.append(conn_fault(cid, 1))
    present = set(universe)

    for cid, conn in circuit.conns.items():
        if conn.src in const_gids:
            continue
        dst = circuit.gates[conn.dst]
        if dst.gtype in (GateType.BUF, GateType.OUTPUT):
            for v in (0, 1):
                union(conn_fault(cid, v), stem_fault(conn.dst, v))
        elif dst.gtype is GateType.NOT:
            for v in (0, 1):
                union(conn_fault(cid, v), stem_fault(conn.dst, 1 - v))
        elif has_controlling_value(dst.gtype):
            cv = controlling_value(dst.gtype)
            from ..network.gates import controlled_output

            union(
                conn_fault(cid, cv),
                stem_fault(conn.dst, controlled_output(dst.gtype)),
            )
    for gid, gate in circuit.gates.items():
        if gate.gtype is GateType.OUTPUT or gid in const_gids:
            continue
        if len(gate.fanout) == 1:
            cid = gate.fanout[0]
            for v in (0, 1):
                union(stem_fault(gid, v), conn_fault(cid, v))

    # OUTPUT stems were used above as class anchors but are not real
    # fault sites themselves; drop classes whose members are all absent.
    classes: dict = {}
    for f in universe:
        classes.setdefault(find(f), []).append(f)
    result: List[Fault] = []
    for members in classes.values():
        members = [m for m in members if m in present]
        if not members:
            continue
        members.sort(key=lambda f: (f.kind != CONN, f.site, f.value))
        result.append(members[0])
    result.sort(key=lambda f: (f.kind, f.site, f.value))
    return result


def inject(circuit: Circuit, fault: Fault) -> Circuit:
    """Return a copy of the circuit with the fault tied in structurally.

    Gids/cids are preserved by :meth:`Circuit.copy`, so the fault site
    maps directly.  No constant propagation is performed -- the faulty
    circuit keeps its shape (ATPG and equivalence reasoning need the
    same interface, not an optimized network).
    """
    faulty = circuit.copy(f"{circuit.name}#fault")
    if fault.kind == CONN:
        set_connection_constant(faulty, fault.site, fault.value)
        return faulty
    gate = faulty.gates[fault.site]
    const = faulty.add_gate(
        GateType.CONST1 if fault.value else GateType.CONST0, 0.0
    )
    for cid in list(gate.fanout):
        faulty.move_connection_source(cid, const)
    # the now-dangling gate is kept: PIs must survive, and keeping logic
    # gates preserves gid stability for diagnostics
    return faulty
