"""SAT-based ATPG: an independent, complete test-generation engine.

A fault is testable iff the miter between the good circuit and the
fault-injected circuit is satisfiable; the model is a test vector.  This
is the engine the KMS driver uses for redundancy identification by
default -- UNSAT is an airtight untestability proof -- while PODEM is
kept as the classic algorithm and as a cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..network import Circuit
from ..sat import CircuitEncoder, Solver
from .faults import Fault, inject


@dataclass
class SatAtpgResult:
    """Outcome of a SAT-ATPG query for one fault."""

    testable: bool
    #: PI gid -> 0/1 (full vector) when testable.
    test: Optional[Dict[int, int]] = None


class SatAtpg:
    """Engine bound to one circuit; encodes the good circuit once.

    Each fault query encodes only the faulty circuit (sharing PI
    variables) plus the difference constraint into a fresh solver.  The
    circuit must not mutate while the engine is alive.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._good_encoder = CircuitEncoder()
        self._good_var = self._good_encoder.encode(circuit)

    def generate(self, fault: Fault) -> SatAtpgResult:
        """Test the fault; UNSAT proves redundancy."""
        faulty = inject(self.circuit, fault)
        encoder = CircuitEncoder(self._good_encoder.cnf.copy())
        shared = {gid: self._good_var[gid] for gid in self.circuit.inputs}
        faulty_var = encoder.encode(faulty, input_vars=shared)
        cnf = encoder.cnf
        diff_lits = []
        for po in self.circuit.outputs:
            va = self._good_var[po]
            vb = faulty_var[po]
            d = cnf.new_var()
            cnf.add_clause((-va, -vb, -d))
            cnf.add_clause((va, vb, -d))
            cnf.add_clause((-va, vb, d))
            cnf.add_clause((va, -vb, d))
            diff_lits.append(d)
        cnf.add_clause(diff_lits)
        solver = Solver(cnf)
        if not solver.solve():
            return SatAtpgResult(testable=False)
        model = solver.model()
        test = {
            gid: int(model.get(self._good_var[gid], False))
            for gid in self.circuit.inputs
        }
        return SatAtpgResult(testable=True, test=test)

    def is_testable(self, fault: Fault) -> bool:
        return self.generate(fault).testable

    def is_redundant(self, fault: Fault) -> bool:
        return not self.generate(fault).testable


def redundant_faults(
    circuit: Circuit,
    faults: Optional[List[Fault]] = None,
    incremental: bool = True,
    jobs: Optional[int] = None,
) -> List[Fault]:
    """All untestable faults from the given list (default: collapsed).

    Exact result via a three-stage funnel, cheapest engine first:

    1. random-pattern fault simulation -- anything detected is testable;
    2. PODEM with a backtrack budget -- structural guidance finds tests
       (or completes untestability proofs) orders of magnitude faster
       than SAT on sparse functions;
    3. SAT-ATPG for the rare PODEM aborts -- a complete decision either
       way.

    ``incremental`` (default) routes through the persistent
    :class:`repro.atpg.proofengine.ProofEngine` -- one shared
    assumption-gated solver for every hard fault, witness feedback
    between suspects, optional proof sharding across ``jobs`` worker
    processes -- and returns the identical verdict list.  ``False``
    keeps the from-scratch funnel below as the A/B oracle.
    """
    from .faults import collapsed_faults
    from .podem import Podem, Status
    from .redundancy import _undetected_by_random

    if incremental:
        from .proofengine import ProofEngine

        return ProofEngine(circuit, jobs=jobs).redundant_faults(faults)
    worklist = faults if faults is not None else collapsed_faults(circuit)
    suspects = _undetected_by_random(circuit, list(worklist))
    if not suspects:
        return []
    # small budget: PODEM settles the easy majority in microseconds and
    # hands the stragglers to SAT, which is better at hard proofs
    podem = Podem(circuit, backtrack_limit=100)
    redundant: List[Fault] = []
    hard: List[Fault] = []
    for fault in suspects:
        result = podem.generate(fault)
        if result.status is Status.UNTESTABLE:
            redundant.append(fault)
        elif result.status is Status.ABORTED:
            hard.append(fault)
    if hard:
        engine = SatAtpg(circuit)
        redundant.extend(f for f in hard if engine.is_redundant(f))
    redundant.sort(key=lambda f: (f.kind, f.site, f.value))
    return redundant


def count_redundancies(circuit: Circuit, incremental: bool = True) -> int:
    """Number of untestable faults in the collapsed fault list -- the
    paper's Table I "Red." column metric."""
    return len(redundant_faults(circuit, incremental=incremental))
