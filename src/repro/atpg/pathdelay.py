"""Path-delay faults and robust testability.

The paper's conclusion contrasts KMS with delay-fault-oriented
restructuring [20] ("synthesis of delay fault testable combinational
logic") and asks whether KMS-style techniques generalize to removing
*path-delay-fault* redundancies.  This module supplies the measurement
side of that question:

* a **path-delay fault (PDF)** is a structural path plus a transition
  direction at its input (rising/falling);
* a **robust test** is a vector pair (v1, v2) that launches the
  transition and propagates it along the path regardless of delays
  elsewhere: every side input must settle at its noncontrolling value
  in v2, and must hold it *steadily* (in v1 as well) wherever the
  on-path transition arrives at the gate going to the noncontrolling
  value (the standard robust conditions);
* a PDF with no robust test is **robust-untestable** -- the delay-fault
  analogue of the stuck-at redundancies the paper removes.

Test generation is SAT on a two-frame Tseitin model.  Benches use this
to measure how many long-path PDFs of the carry-skip adder are robustly
testable before and after KMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..network import Circuit, GateType, controlling_value
from ..sat import CircuitEncoder, Solver
from ..timing.paths import Path

RISING = "rising"
FALLING = "falling"

_INVERTING = frozenset(
    {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}
)


@dataclass(frozen=True)
class PathDelayFault:
    """A path plus the transition direction launched at its source."""

    path: Path
    direction: str  # RISING or FALLING

    def describe(self, circuit: Circuit) -> str:
        return f"{self.direction} {self.path.describe(circuit)}"


@dataclass
class RobustTest:
    """A two-vector robust test for a PDF."""

    fault: PathDelayFault
    #: PI gid -> value before the launch.
    v1: Dict[int, int]
    #: PI gid -> value after the launch.
    v2: Dict[int, int]


def on_path_values(
    circuit: Circuit, path: Path, direction: str
) -> List[int]:
    """Final (v2) logic value of the on-path signal entering each gate.

    The transition direction flips at every inverting gate; entry i is
    the settled value on connection ``c_i`` under v2.
    """
    value = 1 if direction == RISING else 0
    values = []
    for gid in path.gates:
        values.append(value)
        if circuit.gates[gid].gtype in _INVERTING:
            value = 1 - value
    return values


class RobustPdfAtpg:
    """Two-frame SAT engine for robust PDF test generation."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        encoder = CircuitEncoder()
        self.var1 = encoder.encode(circuit)  # frame 1 (v1, settled)
        self.var2 = encoder.encode(circuit)  # frame 2 (v2, settled)
        self.solver = Solver(encoder.cnf)

    def _lit(self, frame: Dict[int, int], gid: int, value: int) -> int:
        var = frame[gid]
        return var if value else -var

    def assumptions_for(self, fault: PathDelayFault) -> Optional[List[int]]:
        """Assumption literals encoding launch + robust propagation.

        Returns None for paths through gates with no controlling value
        convention (XOR-family), which must be decomposed first.
        """
        circuit, path = self.circuit, fault.path
        launch = 1 if fault.direction == RISING else 0
        lits = [
            self._lit(self.var1, path.source, 1 - launch),
            self._lit(self.var2, path.source, launch),
        ]
        arriving = on_path_values(circuit, path, fault.direction)
        for i, gid in enumerate(path.gates):
            gate = circuit.gates[gid]
            if gate.gtype in (GateType.NOT, GateType.BUF):
                continue
            if gate.gtype in (GateType.XOR, GateType.XNOR):
                return None
            cv = controlling_value(gate.gtype)
            ncv = 1 - cv
            on_path_cid = path.conns[i]
            #   transition arrives going to ncv -> side inputs steady ncv
            #   transition arrives going to cv  -> side inputs final ncv
            need_steady = arriving[i] == ncv
            for cid in gate.fanin:
                if cid == on_path_cid:
                    continue
                src = circuit.conns[cid].src
                lits.append(self._lit(self.var2, src, ncv))
                if need_steady:
                    lits.append(self._lit(self.var1, src, ncv))
        return lits

    def generate(self, fault: PathDelayFault) -> Optional[RobustTest]:
        """A robust test for the PDF, or None if robust-untestable."""
        assumptions = self.assumptions_for(fault)
        if assumptions is None:
            raise ValueError(
                "robust PDF conditions need a simple-gate network"
            )
        if not self.solver.solve(assumptions):
            return None
        model = self.solver.model()
        v1 = {
            gid: int(model.get(self.var1[gid], False))
            for gid in self.circuit.inputs
        }
        v2 = {
            gid: int(model.get(self.var2[gid], False))
            for gid in self.circuit.inputs
        }
        return RobustTest(fault=fault, v1=v1, v2=v2)

    def is_robustly_testable(self, fault: PathDelayFault) -> bool:
        return self.generate(fault) is not None


@dataclass
class PdfReport:
    """Robust-testability census over a set of paths."""

    total: int
    testable: int
    untestable_faults: List[PathDelayFault]

    @property
    def coverage(self) -> float:
        if self.total == 0:
            return 1.0
        return self.testable / self.total


def pdf_census(
    circuit: Circuit,
    max_paths: int = 100,
    model=None,
) -> PdfReport:
    """Robust testability of both-direction PDFs on the longest paths.

    Longest-first matters: those are the PDFs whose escape would break
    the clock, the delay-fault mirror of the paper's speedtest concern.
    """
    from ..timing import iter_paths_longest_first

    engine = RobustPdfAtpg(circuit)
    total = 0
    testable = 0
    untestable: List[PathDelayFault] = []
    for path in iter_paths_longest_first(
        circuit, model, max_paths=max_paths
    ):
        for direction in (RISING, FALLING):
            fault = PathDelayFault(path=path, direction=direction)
            total += 1
            if engine.is_robustly_testable(fault):
                testable += 1
            else:
                untestable.append(fault)
    return PdfReport(
        total=total, testable=testable, untestable_faults=untestable
    )
