"""Bit-parallel stuck-at fault simulation.

Parallel-pattern, serial-fault: the good circuit is simulated once per
pattern block; each fault is then resimulated with the stuck value
injected, and detection is the bitwise difference at any output.  Used
to grade test sets (fault coverage), to cross-check ATPG ("the vector
PODEM produced really does detect the fault"), and to drop detected
faults cheaply in the test-generation flow.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..network import Circuit, GateType
from ..sim.batch import BatchKernel, batch_enabled
from ..sim.kernel import CompiledCircuit, get_compiled, kernel_enabled
from ..sim.parallel import eval_gate_bits, pack_vectors, simulate_packed
from .faults import CONN, Fault

logger = logging.getLogger(__name__)

#: ``compiled`` argument convention shared by the graded-simulation
#: entry points: ``None`` = auto (use the circuit's cached compiled
#: kernel unless ``REPRO_SIM_LEGACY`` forces the interpreted oracle),
#: ``False`` = force the legacy per-call path, or an explicit
#: :class:`repro.sim.kernel.CompiledCircuit` to reuse one schedule
#: across many calls.
CompiledArg = Union[None, bool, CompiledCircuit]


def _resolve_compiled(
    circuit: Circuit, compiled: CompiledArg
) -> Optional[CompiledCircuit]:
    """Map the shared ``compiled`` convention to a kernel or None."""
    if compiled is False:
        return None
    if isinstance(compiled, CompiledCircuit):
        return compiled
    if compiled is None and not kernel_enabled():
        return None
    return get_compiled(circuit)


def simulate_fault_packed(
    circuit: Circuit,
    fault: Fault,
    packed_inputs: Mapping[int, int],
    width: int,
) -> Dict[int, int]:
    """Packed simulation of the faulty circuit."""
    mask = (1 << width) - 1
    stuck_word = mask if fault.value else 0
    values: Dict[int, int] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            values[gid] = packed_inputs.get(gid, 0) & mask
        else:
            ins = []
            for cid in gate.fanin:
                word = values[circuit.conns[cid].src]
                if fault.kind == CONN and cid == fault.site:
                    word = stuck_word
                ins.append(word)
            values[gid] = eval_gate_bits(gate.gtype, ins, mask)
        if fault.kind != CONN and gid == fault.site:
            values[gid] = stuck_word
    return values


def detecting_patterns(
    circuit: Circuit,
    fault: Fault,
    packed_inputs: Mapping[int, int],
    width: int,
    good_values: Optional[Dict[int, int]] = None,
    compiled: CompiledArg = None,
    good_words: Optional[Sequence[int]] = None,
) -> int:
    """Bitmask of patterns (bit i = pattern i) that detect the fault.

    The good-circuit simulation is the reusable half: pass
    ``good_values`` (gid-keyed, from ``simulate_packed``) or
    ``good_words`` (positional, from
    :meth:`CompiledCircuit.evaluate_words`) when grading many faults
    against one pattern block so it is computed once, not per fault.
    ``compiled`` follows the shared convention (auto / ``False`` for
    the legacy oracle / an explicit kernel).
    """
    kern = _resolve_compiled(circuit, compiled)
    if kern is not None:
        if good_words is None:
            if good_values is not None:
                good_words = kern.words_from_values(good_values)
            else:
                good_words = kern.evaluate_words(packed_inputs, width)
        return kern.detecting_word(fault, good_words, width)
    if good_values is None:
        good_values = simulate_packed(circuit, packed_inputs, width)
    faulty = simulate_fault_packed(circuit, fault, packed_inputs, width)
    mask = 0
    for po in circuit.outputs:
        mask |= good_values[po] ^ faulty[po]
    return mask


def detects(
    circuit: Circuit, fault: Fault, vector: Mapping[int, int]
) -> bool:
    """Does a single test vector (PI gid -> 0/1) detect the fault?"""
    packed = {gid: (vector.get(gid, 0) & 1) for gid in circuit.inputs}
    return bool(detecting_patterns(circuit, fault, packed, 1))


@dataclass
class CoverageReport:
    """Fault-simulation outcome for a test set."""

    total_faults: int
    detected: int
    undetected_faults: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults


def validate_vectors(
    circuit: Circuit, vectors: Sequence[Mapping[int, int]]
) -> int:
    """Warn -- once per call, not per pattern -- about partial vectors.

    A vector missing a PI key is graded as if that input were 0, which
    is silent data loss when the caller mislabeled its gids.  Returns
    the number of partial vectors and logs a single summary warning.
    """
    pis = set(circuit.inputs)
    partial = sum(1 for vec in vectors if not pis.issubset(vec))
    if partial:
        missing = pis.difference(*[vec.keys() for vec in vectors]) if vectors else pis
        logger.warning(
            "%d of %d test vectors are missing primary-input keys "
            "(e.g. PI gids %s); missing inputs are simulated as 0",
            partial,
            len(vectors),
            sorted(missing)[:5] if missing else "varies per vector",
        )
    return partial


class PackedCorpus:
    """A test-vector corpus packed once per block for reuse.

    Campaign loops grade many fault lists against one corpus;
    :func:`fault_coverage` used to re-run :func:`validate_vectors` and
    :func:`pack_vectors` on every call.  Packing depends only on the
    circuit's PI gid set, so it is hoisted here: build once per
    (circuit, corpus) pair and pass the corpus wherever a vector
    sequence is accepted.  A corpus whose PI set no longer matches the
    circuit (or that is handed to a different circuit) transparently
    falls back to re-packing its raw vectors -- never a wrong answer,
    only a lost reuse.
    """

    def __init__(
        self,
        circuit: Circuit,
        vectors: Sequence[Mapping[int, int]],
        block: int = 64,
    ) -> None:
        self.circuit = circuit
        self.vectors: List[Mapping[int, int]] = list(vectors)
        self.block = block
        self._pi_key = tuple(circuit.inputs)
        self.partial = validate_vectors(circuit, self.vectors)
        #: per-block ``(packed map, width)`` pairs, ready to simulate
        self.blocks: List[Tuple[Dict[int, int], int]] = [
            pack_vectors(circuit, self.vectors[s : s + block])
            for s in range(0, len(self.vectors), block)
        ]

    def fresh_for(self, circuit: Circuit, block: int) -> bool:
        """Is the hoisted packing directly reusable for this grading
        call?  True when the circuit and blocking match and the PI gid
        set has not changed since packing."""
        return (
            circuit is self.circuit
            and block == self.block
            and tuple(circuit.inputs) == self._pi_key
        )

    def __len__(self) -> int:
        return len(self.vectors)


#: ``vectors`` convention for the grading entry points: a raw vector
#: sequence (packed per call, the historical behaviour) or a
#: :class:`PackedCorpus` (packed once, reused across calls).
VectorsArg = Union[Sequence[Mapping[int, int]], PackedCorpus]


def _iter_packed_blocks(
    circuit: Circuit, vectors: VectorsArg, block: int
) -> Iterator[Tuple[Dict[int, int], int]]:
    """Per-block ``(packed, width)`` pairs, reusing a fresh
    :class:`PackedCorpus` and lazily packing everything else (lazy so
    fault dropping can still exit before packing later blocks)."""
    if isinstance(vectors, PackedCorpus):
        if vectors.fresh_for(circuit, block):
            yield from vectors.blocks
            return
        vectors = vectors.vectors
    validate_vectors(circuit, vectors)
    for start in range(0, len(vectors), block):
        yield pack_vectors(circuit, vectors[start : start + block])


def fault_coverage(
    circuit: Circuit,
    faults: Sequence[Fault],
    vectors: VectorsArg,
    block: int = 64,
    compiled: CompiledArg = None,
) -> CoverageReport:
    """Grade a test set against a fault list.

    Parallel-pattern serial-fault with fault dropping: each ``block``
    of vectors is packed and simulated once for the good circuit, every
    still-undetected fault is graded against it, and detected faults
    leave the active list.  ``compiled`` follows the shared convention;
    on the kernel path each fault costs only its fanout cone.
    ``vectors`` may be a :class:`PackedCorpus` to reuse hoisted packing
    across many calls.
    """
    kern = _resolve_compiled(circuit, compiled)
    remaining = list(faults)
    for packed, width in _iter_packed_blocks(circuit, vectors, block):
        still = []
        if kern is not None:
            good_words = kern.evaluate_words(packed, width)
            for fault in remaining:
                if not kern.detecting_word(fault, good_words, width):
                    still.append(fault)
            kern.note_dropped(len(remaining) - len(still))
        else:
            good = simulate_packed(circuit, packed, width)
            for fault in remaining:
                if not detecting_patterns(
                    circuit, fault, packed, width, good, compiled=False
                ):
                    still.append(fault)
        remaining = still
        if not remaining:
            break
    return CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        undetected_faults=remaining,
    )


def batch_fault_coverage(
    items: Sequence[Tuple[Circuit, Sequence[Fault], VectorsArg]],
    block: int = 64,
) -> List[CoverageReport]:
    """Grade many (circuit, faults, vectors) triples at once.

    The good-circuit simulations of every still-active member are fused
    into one :class:`repro.sim.batch.BatchKernel` dispatch per pattern
    block; fault grading stays event-driven per member against the
    batched good words.  Bit-identical to calling
    :func:`fault_coverage` per triple -- and literally that loop when
    batching is disabled (``REPRO_SIM_BATCH=0``) or the legacy
    interpreted path is forced (``REPRO_SIM_LEGACY``), preserving the
    A/B oracle.
    """
    if not items:
        return []
    if len(items) == 1 or not batch_enabled() or not kernel_enabled():
        return [
            fault_coverage(c, f, v, block=block) for c, f, v in items
        ]
    blocks = [
        list(_iter_packed_blocks(c, v, block)) for c, _f, v in items
    ]
    totals = [list(f) for _c, f, _v in items]
    remaining = [list(f) for f in totals]
    kerns = [get_compiled(c) for c, _f, _v in items]
    r = 0
    while True:
        active = [
            k
            for k in range(len(items))
            if remaining[k] and r < len(blocks[k])
        ]
        if not active:
            break
        bk = BatchKernel([items[k][0] for k in active])
        packed = [blocks[k][r][0] for k in active]
        widths = [blocks[k][r][1] for k in active]
        words = bk.evaluate_words(packed, widths)
        for j, k in enumerate(active):
            kern = kerns[k]
            still = [
                f
                for f in remaining[k]
                if not kern.detecting_word(f, words[j], widths[j])
            ]
            kern.note_dropped(len(remaining[k]) - len(still))
            remaining[k] = still
        r += 1
    return [
        CoverageReport(
            total_faults=len(totals[k]),
            detected=len(totals[k]) - len(remaining[k]),
            undetected_faults=remaining[k],
        )
        for k in range(len(items))
    ]


def complete_vector(
    circuit: Circuit, cube: Mapping[int, int]
) -> Dict[int, int]:
    """Extend a PI test cube to a full vector (don't-cares become 0).

    PODEM returns only the PIs it assigned; graded simulation and the
    proof engine's accumulated witness pool want every PI keyed so
    :func:`validate_vectors` stays quiet and packing is total.
    """
    return {gid: int(cube.get(gid, 0)) & 1 for gid in circuit.inputs}


def random_vectors(
    circuit: Circuit, count: int, seed: int = 0
) -> List[Dict[int, int]]:
    """Uniform random test vectors."""
    rng = random.Random(seed)
    return [
        {gid: rng.getrandbits(1) for gid in circuit.inputs}
        for _ in range(count)
    ]
