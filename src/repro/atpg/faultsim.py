"""Bit-parallel stuck-at fault simulation.

Parallel-pattern, serial-fault: the good circuit is simulated once per
pattern block; each fault is then resimulated with the stuck value
injected, and detection is the bitwise difference at any output.  Used
to grade test sets (fault coverage), to cross-check ATPG ("the vector
PODEM produced really does detect the fault"), and to drop detected
faults cheaply in the test-generation flow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..network import Circuit, GateType
from ..sim.parallel import eval_gate_bits, simulate_packed
from .faults import CONN, Fault


def simulate_fault_packed(
    circuit: Circuit,
    fault: Fault,
    packed_inputs: Mapping[int, int],
    width: int,
) -> Dict[int, int]:
    """Packed simulation of the faulty circuit."""
    mask = (1 << width) - 1
    stuck_word = mask if fault.value else 0
    values: Dict[int, int] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            values[gid] = packed_inputs.get(gid, 0) & mask
        else:
            ins = []
            for cid in gate.fanin:
                word = values[circuit.conns[cid].src]
                if fault.kind == CONN and cid == fault.site:
                    word = stuck_word
                ins.append(word)
            values[gid] = eval_gate_bits(gate.gtype, ins, mask)
        if fault.kind != CONN and gid == fault.site:
            values[gid] = stuck_word
    return values


def detecting_patterns(
    circuit: Circuit,
    fault: Fault,
    packed_inputs: Mapping[int, int],
    width: int,
    good_values: Optional[Dict[int, int]] = None,
) -> int:
    """Bitmask of patterns (bit i = pattern i) that detect the fault."""
    if good_values is None:
        good_values = simulate_packed(circuit, packed_inputs, width)
    faulty = simulate_fault_packed(circuit, fault, packed_inputs, width)
    mask = 0
    for po in circuit.outputs:
        mask |= good_values[po] ^ faulty[po]
    return mask


def detects(
    circuit: Circuit, fault: Fault, vector: Mapping[int, int]
) -> bool:
    """Does a single test vector (PI gid -> 0/1) detect the fault?"""
    packed = {gid: (vector.get(gid, 0) & 1) for gid in circuit.inputs}
    return bool(detecting_patterns(circuit, fault, packed, 1))


@dataclass
class CoverageReport:
    """Fault-simulation outcome for a test set."""

    total_faults: int
    detected: int
    undetected_faults: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults


def fault_coverage(
    circuit: Circuit,
    faults: Sequence[Fault],
    vectors: Sequence[Mapping[int, int]],
    block: int = 64,
) -> CoverageReport:
    """Grade a test set against a fault list."""
    remaining = list(faults)
    for start in range(0, len(vectors), block):
        chunk = vectors[start : start + block]
        width = len(chunk)
        packed = {gid: 0 for gid in circuit.inputs}
        for i, vec in enumerate(chunk):
            for gid in circuit.inputs:
                if vec.get(gid, 0):
                    packed[gid] |= 1 << i
        good = simulate_packed(circuit, packed, width)
        still = []
        for fault in remaining:
            if detecting_patterns(circuit, fault, packed, width, good):
                continue
            still.append(fault)
        remaining = still
        if not remaining:
            break
    return CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        undetected_faults=remaining,
    )


def random_vectors(
    circuit: Circuit, count: int, seed: int = 0
) -> List[Dict[int, int]]:
    """Uniform random test vectors."""
    rng = random.Random(seed)
    return [
        {gid: rng.getrandbits(1) for gid in circuit.inputs}
        for _ in range(count)
    ]
