"""Bit-parallel stuck-at fault simulation.

Parallel-pattern, serial-fault: the good circuit is simulated once per
pattern block; each fault is then resimulated with the stuck value
injected, and detection is the bitwise difference at any output.  Used
to grade test sets (fault coverage), to cross-check ATPG ("the vector
PODEM produced really does detect the fault"), and to drop detected
faults cheaply in the test-generation flow.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..network import Circuit, GateType
from ..sim.kernel import CompiledCircuit, get_compiled, kernel_enabled
from ..sim.parallel import eval_gate_bits, pack_vectors, simulate_packed
from .faults import CONN, Fault

logger = logging.getLogger(__name__)

#: ``compiled`` argument convention shared by the graded-simulation
#: entry points: ``None`` = auto (use the circuit's cached compiled
#: kernel unless ``REPRO_SIM_LEGACY`` forces the interpreted oracle),
#: ``False`` = force the legacy per-call path, or an explicit
#: :class:`repro.sim.kernel.CompiledCircuit` to reuse one schedule
#: across many calls.
CompiledArg = Union[None, bool, CompiledCircuit]


def _resolve_compiled(
    circuit: Circuit, compiled: CompiledArg
) -> Optional[CompiledCircuit]:
    """Map the shared ``compiled`` convention to a kernel or None."""
    if compiled is False:
        return None
    if isinstance(compiled, CompiledCircuit):
        return compiled
    if compiled is None and not kernel_enabled():
        return None
    return get_compiled(circuit)


def simulate_fault_packed(
    circuit: Circuit,
    fault: Fault,
    packed_inputs: Mapping[int, int],
    width: int,
) -> Dict[int, int]:
    """Packed simulation of the faulty circuit."""
    mask = (1 << width) - 1
    stuck_word = mask if fault.value else 0
    values: Dict[int, int] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            values[gid] = packed_inputs.get(gid, 0) & mask
        else:
            ins = []
            for cid in gate.fanin:
                word = values[circuit.conns[cid].src]
                if fault.kind == CONN and cid == fault.site:
                    word = stuck_word
                ins.append(word)
            values[gid] = eval_gate_bits(gate.gtype, ins, mask)
        if fault.kind != CONN and gid == fault.site:
            values[gid] = stuck_word
    return values


def detecting_patterns(
    circuit: Circuit,
    fault: Fault,
    packed_inputs: Mapping[int, int],
    width: int,
    good_values: Optional[Dict[int, int]] = None,
    compiled: CompiledArg = None,
    good_words: Optional[Sequence[int]] = None,
) -> int:
    """Bitmask of patterns (bit i = pattern i) that detect the fault.

    The good-circuit simulation is the reusable half: pass
    ``good_values`` (gid-keyed, from ``simulate_packed``) or
    ``good_words`` (positional, from
    :meth:`CompiledCircuit.evaluate_words`) when grading many faults
    against one pattern block so it is computed once, not per fault.
    ``compiled`` follows the shared convention (auto / ``False`` for
    the legacy oracle / an explicit kernel).
    """
    kern = _resolve_compiled(circuit, compiled)
    if kern is not None:
        if good_words is None:
            if good_values is not None:
                good_words = kern.words_from_values(good_values)
            else:
                good_words = kern.evaluate_words(packed_inputs, width)
        return kern.detecting_word(fault, good_words, width)
    if good_values is None:
        good_values = simulate_packed(circuit, packed_inputs, width)
    faulty = simulate_fault_packed(circuit, fault, packed_inputs, width)
    mask = 0
    for po in circuit.outputs:
        mask |= good_values[po] ^ faulty[po]
    return mask


def detects(
    circuit: Circuit, fault: Fault, vector: Mapping[int, int]
) -> bool:
    """Does a single test vector (PI gid -> 0/1) detect the fault?"""
    packed = {gid: (vector.get(gid, 0) & 1) for gid in circuit.inputs}
    return bool(detecting_patterns(circuit, fault, packed, 1))


@dataclass
class CoverageReport:
    """Fault-simulation outcome for a test set."""

    total_faults: int
    detected: int
    undetected_faults: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults


def validate_vectors(
    circuit: Circuit, vectors: Sequence[Mapping[int, int]]
) -> int:
    """Warn -- once per call, not per pattern -- about partial vectors.

    A vector missing a PI key is graded as if that input were 0, which
    is silent data loss when the caller mislabeled its gids.  Returns
    the number of partial vectors and logs a single summary warning.
    """
    pis = set(circuit.inputs)
    partial = sum(1 for vec in vectors if not pis.issubset(vec))
    if partial:
        missing = pis.difference(*[vec.keys() for vec in vectors]) if vectors else pis
        logger.warning(
            "%d of %d test vectors are missing primary-input keys "
            "(e.g. PI gids %s); missing inputs are simulated as 0",
            partial,
            len(vectors),
            sorted(missing)[:5] if missing else "varies per vector",
        )
    return partial


def fault_coverage(
    circuit: Circuit,
    faults: Sequence[Fault],
    vectors: Sequence[Mapping[int, int]],
    block: int = 64,
    compiled: CompiledArg = None,
) -> CoverageReport:
    """Grade a test set against a fault list.

    Parallel-pattern serial-fault with fault dropping: each ``block``
    of vectors is packed and simulated once for the good circuit, every
    still-undetected fault is graded against it, and detected faults
    leave the active list.  ``compiled`` follows the shared convention;
    on the kernel path each fault costs only its fanout cone.
    """
    validate_vectors(circuit, vectors)
    kern = _resolve_compiled(circuit, compiled)
    remaining = list(faults)
    for start in range(0, len(vectors), block):
        chunk = vectors[start : start + block]
        packed, width = pack_vectors(circuit, chunk)
        still = []
        if kern is not None:
            good_words = kern.evaluate_words(packed, width)
            for fault in remaining:
                if not kern.detecting_word(fault, good_words, width):
                    still.append(fault)
            kern.note_dropped(len(remaining) - len(still))
        else:
            good = simulate_packed(circuit, packed, width)
            for fault in remaining:
                if not detecting_patterns(
                    circuit, fault, packed, width, good, compiled=False
                ):
                    still.append(fault)
        remaining = still
        if not remaining:
            break
    return CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        undetected_faults=remaining,
    )


def complete_vector(
    circuit: Circuit, cube: Mapping[int, int]
) -> Dict[int, int]:
    """Extend a PI test cube to a full vector (don't-cares become 0).

    PODEM returns only the PIs it assigned; graded simulation and the
    proof engine's accumulated witness pool want every PI keyed so
    :func:`validate_vectors` stays quiet and packing is total.
    """
    return {gid: int(cube.get(gid, 0)) & 1 for gid in circuit.inputs}


def random_vectors(
    circuit: Circuit, count: int, seed: int = 0
) -> List[Dict[int, int]]:
    """Uniform random test vectors."""
    rng = random.Random(seed)
    return [
        {gid: rng.getrandbits(1) for gid in circuit.inputs}
        for _ in range(count)
    ]
