"""ATPG substrate: stuck-at faults, PODEM, SAT-ATPG, fault simulation,
and baseline (delay-oblivious) redundancy removal."""

from .faults import (
    CONN,
    STEM,
    Fault,
    all_faults,
    anchor_gate,
    collapsed_faults,
    conn_fault,
    inject,
    stem_fault,
)
from .proofengine import PROOF_COUNTERS, ProofEngine
from .podem import Podem, PodemResult, Status, generate_test
from .satatpg import (
    SatAtpg,
    SatAtpgResult,
    count_redundancies,
    redundant_faults,
)
from .faultsim import (
    CoverageReport,
    complete_vector,
    detecting_patterns,
    detects,
    fault_coverage,
    random_vectors,
    simulate_fault_packed,
    validate_vectors,
)
from .compaction import TestSet, compact, generate_test_set
from .diagnosis import Diagnosis, FaultDictionary
from .scoap import INF, Scoap, compute_scoap, rank_faults_by_difficulty
from .pathdelay import (
    FALLING,
    PathDelayFault,
    PdfReport,
    RISING,
    RobustPdfAtpg,
    RobustTest,
    on_path_values,
    pdf_census,
)
from .redundancy import (
    RemovalResult,
    RemovalStep,
    is_irredundant,
    remove_fault,
    remove_redundancies,
)

__all__ = [
    "CONN",
    "Diagnosis",
    "PROOF_COUNTERS",
    "ProofEngine",
    "anchor_gate",
    "complete_vector",
    "FALLING",
    "FaultDictionary",
    "PathDelayFault",
    "PdfReport",
    "RISING",
    "RobustPdfAtpg",
    "RobustTest",
    "INF",
    "STEM",
    "Scoap",
    "TestSet",
    "compute_scoap",
    "rank_faults_by_difficulty",
    "compact",
    "generate_test_set",
    "on_path_values",
    "pdf_census",
    "CoverageReport",
    "Fault",
    "Podem",
    "PodemResult",
    "RemovalResult",
    "RemovalStep",
    "SatAtpg",
    "SatAtpgResult",
    "Status",
    "all_faults",
    "collapsed_faults",
    "conn_fault",
    "count_redundancies",
    "detecting_patterns",
    "detects",
    "fault_coverage",
    "generate_test",
    "inject",
    "is_irredundant",
    "random_vectors",
    "redundant_faults",
    "remove_fault",
    "remove_redundancies",
    "simulate_fault_packed",
    "stem_fault",
    "validate_vectors",
]
