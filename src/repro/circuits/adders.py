"""Adder generators: ripple-carry, carry-skip (csa n.b), carry-lookahead.

The carry-skip adder (Lehman-Burla 1961, [13] in the paper) is the
paper's star witness: the skip AND + MUX added to each block beats
ripple-carry delay but introduces exactly the stuck-at redundancies whose
naive removal destroys the speedup.

Gate realization matches the paper's counting conventions:

* XOR is built from OR + NAND + AND (3 simple gates), the final AND
  carrying the 2-unit complex-gate delay;
* the MUX is NOT + 2 AND + OR (4 simple gates), the final OR carrying
  the 2-unit delay;
* plain AND/OR gates have delay 1.

All generators return pure simple-gate networks, ready for KMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..network import Builder, Circuit

#: Paper Section III delays.
XOR_DELAY = 2.0
MUX_DELAY = 2.0
GATE_DELAY = 1.0


def ripple_carry_adder(
    nbits: int,
    cin_arrival: float = 0.0,
    name: Optional[str] = None,
) -> Circuit:
    """An ``nbits``-bit ripple-carry adder: a + b + cin -> sum, cout.

    Inputs ``a0..``, ``b0..`` (LSB first) and ``cin``; outputs ``s0..``
    and ``cout``.
    """
    b = Builder(name or f"rca_{nbits}")
    a_bus = b.input_bus("a", nbits)
    b_bus = b.input_bus("b", nbits)
    carry = b.input("cin", arrival=cin_arrival)
    sums: List[int] = []
    for i in range(nbits):
        slice_start = b.circuit._next_gid
        p = b.xor_simple(a_bus[i], b_bus[i], delay=XOR_DELAY)
        g = b.and_(a_bus[i], b_bus[i], delay=GATE_DELAY)
        sums.append(b.xor_simple(p, carry, delay=XOR_DELAY))
        t = b.and_(p, carry, delay=GATE_DELAY)
        carry = b.or_(g, t, delay=GATE_DELAY)
        # every gid in the slice is a simple logic gate, so the range is
        # a valid partition hint; all slices share one timing model
        b.circuit.partition_hints.append(
            list(range(slice_start, b.circuit._next_gid))
        )
    b.output_bus("s", sums)
    b.output("cout", carry)
    return b.done()


@dataclass
class _BlockPins:
    """Wiring record for one carry-skip block."""

    carry_out: int
    propagates: List[int]


def carry_skip_adder(
    nbits: int,
    block_size: int,
    cin_arrival: float = 0.0,
    name: Optional[str] = None,
) -> Circuit:
    """A carry-skip adder: ``nbits`` total, ripple blocks of
    ``block_size`` bits, each with a skip AND + MUX bypass.

    This is the paper's ``csa <nbits>.<block_size>`` family (Table I).
    The final block's carry feeds the ``cout`` output through its MUX;
    intermediate block carries chain into the next block.

    Each block contributes the two classic redundancies: the skip AND's
    output s-a-0 (the circuit degenerates to ripple-carry, functionally
    identical) and one inside the MUX.
    """
    if nbits % block_size != 0:
        raise ValueError(
            f"nbits={nbits} must be a multiple of block_size={block_size}"
        )
    b = Builder(name or f"csa_{nbits}.{block_size}")
    a_bus = b.input_bus("a", nbits)
    b_bus = b.input_bus("b", nbits)
    cin = b.input("cin", arrival=cin_arrival)
    sums: List[int] = []
    carry = cin
    for base in range(0, nbits, block_size):
        block_in = carry
        block_start = b.circuit._next_gid
        propagates: List[int] = []
        for i in range(base, base + block_size):
            p = b.xor_simple(a_bus[i], b_bus[i], delay=XOR_DELAY)
            propagates.append(p)
            g = b.and_(a_bus[i], b_bus[i], delay=GATE_DELAY)
            sums.append(b.xor_simple(p, carry, delay=XOR_DELAY))
            t = b.and_(p, carry, delay=GATE_DELAY)
            carry = b.or_(g, t, delay=GATE_DELAY)
        skip = b.and_(*propagates, delay=GATE_DELAY)
        # MUX: skip ? block_in : ripple carry
        carry = b.mux(skip, carry, block_in, delay=MUX_DELAY)
        # one hint per block (ripple bits + skip AND + MUX): every block
        # but the first shares a timing model (the first differs only in
        # pin wiring when cin arrival differs; content-hash sorts it out)
        b.circuit.partition_hints.append(
            list(range(block_start, b.circuit._next_gid))
        )
    b.output_bus("s", sums)
    b.output("cout", carry)
    return b.done()


def carry_lookahead_adder(
    nbits: int,
    cin_arrival: float = 0.0,
    name: Optional[str] = None,
) -> Circuit:
    """A single-level carry-lookahead adder (flat P/G expansion).

    c_{i+1} = g_i + p_i g_{i-1} + ... + p_i .. p_0 c_0, built as a
    two-level AND-OR per carry.  Included as a second "fast adder"
    workload for the examples and the ablation benches; unlike the
    carry-skip adder it is irredundant as generated.
    """
    b = Builder(name or f"cla_{nbits}")
    a_bus = b.input_bus("a", nbits)
    b_bus = b.input_bus("b", nbits)
    cin = b.input("cin", arrival=cin_arrival)
    ps: List[int] = []
    gs: List[int] = []
    for i in range(nbits):
        ps.append(b.xor_simple(a_bus[i], b_bus[i], delay=XOR_DELAY))
        gs.append(b.and_(a_bus[i], b_bus[i], delay=GATE_DELAY))
    carries = [cin]
    for i in range(nbits):
        terms: List[int] = []
        # g_j * p_{j+1} * ... * p_i  for j <= i, plus c0 * p_0 .. p_i
        for j in range(i, -1, -1):
            factors = [gs[j]] + ps[j + 1 : i + 1]
            terms.append(
                factors[0]
                if len(factors) == 1
                else b.and_(*factors, delay=GATE_DELAY)
            )
        factors = [cin] + ps[0 : i + 1]
        terms.append(b.and_(*factors, delay=GATE_DELAY))
        carries.append(
            terms[0] if len(terms) == 1 else b.or_(*terms, delay=GATE_DELAY)
        )
    sums = [
        b.xor_simple(ps[i], carries[i], delay=XOR_DELAY)
        for i in range(nbits)
    ]
    b.output_bus("s", sums)
    b.output("cout", carries[nbits])
    return b.done()


def adder_reference(
    nbits: int, a: int, bval: int, cin: int
) -> Tuple[List[int], int]:
    """Golden model: sum bits (LSB first) and carry-out."""
    total = a + bval + cin
    return (
        [(total >> i) & 1 for i in range(nbits)],
        (total >> nbits) & 1,
    )


def check_adder(circuit: Circuit, nbits: int, a: int, bval: int, cin: int) -> bool:
    """Evaluate the circuit on one operand pair against the golden model."""
    assignment = {}
    for i in range(nbits):
        assignment[circuit.find_input(f"a{i}")] = (a >> i) & 1
        assignment[circuit.find_input(f"b{i}")] = (bval >> i) & 1
    assignment[circuit.find_input("cin")] = cin
    values = circuit.evaluate(assignment)
    sums, cout = adder_reference(nbits, a, bval, cin)
    for i in range(nbits):
        if values[circuit.find_output(f"s{i}")] != sums[i]:
            return False
    return values[circuit.find_output("cout")] == cout
