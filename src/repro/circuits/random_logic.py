"""Random circuit generators for property-based testing and fuzzing.

Deterministic given a seed: every random draw (gate types, fanin
choices, delays, arrival times, redundancy splice sites) comes from one
``random.Random(seed)`` stream, so a seed fully reproduces a circuit
across runs and across processes.  The engine's sweep builders
(``repro.engine.sweep.random_jobs``) and the CLI (``python -m repro
generate rand --seed N``, ``python -m repro bench --suite random --seed
N``) thread an explicit seed down to these generators -- job *i* of a
sweep uses ``seed + i`` -- which is what makes parallel fuzz sweeps
reproducible run-to-run and shardable across workers.

Two flavours:

* :func:`random_circuit` -- a layered random DAG of simple gates, the
  workhorse of the hypothesis suites (KMS preserves function / never
  slows / ends irredundant on arbitrary circuits);
* :func:`random_redundant_circuit` -- a random circuit with extra
  provably-redundant structure spliced in (OR with an AND of a signal
  and its complement's cone, duplicated consensus terms), so redundancy
  removal always has real work to do.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..network import Builder, Circuit, GateType

_GATE_CHOICES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.NOT,
]


def random_circuit(
    num_inputs: int = 5,
    num_gates: int = 20,
    num_outputs: int = 2,
    seed: int = 0,
    max_arrival: float = 0.0,
    name: Optional[str] = None,
) -> Circuit:
    """A random layered simple-gate circuit.

    Every gate draws 1-3 fanins from earlier signals; outputs tap the
    last gates so depth is exercised.  ``max_arrival`` > 0 randomizes PI
    arrival times in [0, max_arrival].
    """
    rng = random.Random(seed)
    b = Builder(name or f"rand_{seed}")
    signals: List[int] = []
    for i in range(num_inputs):
        arrival = rng.uniform(0, max_arrival) if max_arrival else 0.0
        signals.append(b.input(f"x{i}", arrival=arrival))
    for _ in range(num_gates):
        gtype = rng.choice(_GATE_CHOICES)
        if gtype is GateType.NOT:
            fanin = [rng.choice(signals)]
        else:
            k = rng.randint(2, min(3, len(signals)))
            fanin = rng.sample(signals, k)
        signals.append(
            b.circuit.add_simple(gtype, fanin, delay=float(rng.randint(1, 3)))
        )
    num_outputs = min(num_outputs, len(signals))
    for i in range(num_outputs):
        # bias outputs toward the deep end
        src = signals[-(i * 2 + 1)] if i * 2 + 1 <= len(signals) else signals[-1]
        b.output(f"y{i}", src)
    return b.done()


def random_redundant_circuit_with_faults(
    num_inputs: int = 5,
    num_gates: int = 15,
    seed: int = 0,
    name: Optional[str] = None,
    max_arrival: float = 0.0,
) -> Tuple[Circuit, List["Fault"]]:  # noqa: F821 - doc type
    """A random circuit with guaranteed stuck-at redundancy, plus the
    ground-truth list of planted untestable faults.

    Takes a random circuit's output f and replaces it with
    ``f OR (x AND NOT x AND g)`` -- the added AND's output is
    constant 0, so the s-a-0 fault on its branch into the OR is
    untestable by construction (and usually drags a few structural
    friends along).  That branch fault is the returned ground truth;
    fuzz grading (``repro.fuzz``) and the CLI's ``generate randred``
    report recall against it instead of just "some redundancy exists".

    The splice sites are drawn from ``seed``'s stream while the base
    circuit uses a derived sub-seed, so the same base circuit appears
    with different redundant structure under different seeds only when
    the full seed differs -- reproducibility is exact either way.
    """
    from ..atpg.faults import conn_fault

    rng = random.Random(seed)
    circuit = random_circuit(
        num_inputs, num_gates, 1, seed=seed ^ 0x5EED,
        max_arrival=max_arrival,
        name=name or f"redundant_{seed}",
    )
    po = circuit.outputs[0]
    po_conn = circuit.gates[po].fanin[0]
    f = circuit.conns[po_conn].src
    x = rng.choice(circuit.inputs)
    g = rng.choice(
        [
            gid
            for gid, gate in circuit.gates.items()
            if gate.gtype not in (GateType.OUTPUT,)
        ]
    )
    nx = circuit.add_simple(GateType.NOT, [x], 1.0)
    dead = circuit.add_simple(GateType.AND, [x, nx, g], 1.0)
    new_root = circuit.add_simple(GateType.OR, [f, dead], 1.0)
    branch = next(
        cid for cid in reversed(circuit.gates[new_root].fanin)
        if circuit.conns[cid].src == dead
    )
    circuit.move_connection_source(po_conn, new_root)
    return circuit, [conn_fault(branch, 0)]


def random_redundant_circuit(
    num_inputs: int = 5,
    num_gates: int = 15,
    seed: int = 0,
    name: Optional[str] = None,
    max_arrival: float = 0.0,
) -> Circuit:
    """:func:`random_redundant_circuit_with_faults` without the ground
    truth, for callers that only need the netlist (engine factories,
    BLIF export)."""
    circuit, _ = random_redundant_circuit_with_faults(
        num_inputs, num_gates, seed, name=name, max_arrival=max_arrival
    )
    return circuit
