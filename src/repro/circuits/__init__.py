"""Circuit generators: adders, the paper's figures, benchmark suites."""

from .adders import (
    adder_reference,
    carry_lookahead_adder,
    carry_skip_adder,
    check_adder,
    ripple_carry_adder,
)
from .mcnc import MCNC_NAMES, mcnc_circuit, mcnc_pla, mcnc_shapes
from .named import named_circuit
from .random_logic import (
    random_circuit,
    random_redundant_circuit,
    random_redundant_circuit_with_faults,
)
from .paper import (
    C0_ARRIVAL,
    fig1_carry_skip_block,
    fig2_irredundant_block,
    fig4_c2_cone,
    fig5_after_first_edge,
    fig6_final,
    section3_fault_demo,
)

__all__ = [
    "C0_ARRIVAL",
    "MCNC_NAMES",
    "mcnc_circuit",
    "mcnc_pla",
    "mcnc_shapes",
    "named_circuit",
    "random_circuit",
    "random_redundant_circuit",
    "random_redundant_circuit_with_faults",
    "adder_reference",
    "carry_lookahead_adder",
    "carry_skip_adder",
    "check_adder",
    "fig1_carry_skip_block",
    "fig2_irredundant_block",
    "fig4_c2_cone",
    "fig5_after_first_edge",
    "fig6_final",
    "ripple_carry_adder",
    "section3_fault_demo",
]
