"""Compact circuit names shared by the CLI and the serve daemon.

``named_circuit("csa8.2")`` resolves the same spellings ``repro
generate`` accepts -- paper figures, the adder families with inline
sizes, seeded random generators, and MCNC names -- so a serve client
can submit ``{"kind": "builtin", "name": "csa8.2"}`` and get exactly
the circuit the one-shot CLI would have produced.
"""

from __future__ import annotations

from ..network import Circuit
from .adders import (
    carry_lookahead_adder,
    carry_skip_adder,
    ripple_carry_adder,
)
from .mcnc import MCNC_NAMES, mcnc_circuit
from .paper import fig1_carry_skip_block, fig2_irredundant_block, fig4_c2_cone
from .random_logic import random_circuit, random_redundant_circuit

#: Paper-figure shorthands.
FIGURES = {
    "fig1": fig1_carry_skip_block,
    "fig2": fig2_irredundant_block,
    "fig4": fig4_c2_cone,
}


def named_circuit(name: str, seed: int = 0) -> Circuit:
    """Build a circuit from its compact CLI name.

    Accepted spellings: ``fig1|fig2|fig4``, ``csa<N>.<B>``, ``rca<N>``,
    ``cla<N>``, ``rand``/``randred`` (seeded), or an MCNC name.  Raises
    :class:`ValueError` for anything else (including malformed sizes).
    """
    try:
        if name in FIGURES:
            return FIGURES[name]()
        if name.startswith("csa"):
            nbits, block = name[3:].split(".")
            return carry_skip_adder(int(nbits), int(block))
        if name.startswith("rca"):
            return ripple_carry_adder(int(name[3:]))
        if name.startswith("cla"):
            return carry_lookahead_adder(int(name[3:]))
        if name == "rand":
            return random_circuit(seed=seed)
        if name == "randred":
            return random_redundant_circuit(seed=seed)
        if name in MCNC_NAMES:
            return mcnc_circuit(name)
    except ValueError as exc:
        raise ValueError(f"malformed circuit name {name!r}: {exc}") from None
    raise ValueError(f"unknown circuit {name!r}")
