"""MCNC-benchmark stand-ins for the Table I circuits.

The paper's Section VIII runs nine MCNC circuits that had been optimized
for area and then for delay in MIS-II.  The original PLA files are not
redistributable here, so each name is bound to a functionally-defined
stand-in with the *same PI/PO counts* (see DESIGN.md, substitution 2):

====== ===== ===== =====================================================
name     in   out  function
====== ===== ===== =====================================================
5xp1      7    10  y = 5*x + 1
clip      9     5  y = clamp(|x| for 9-bit two's complement x, 0, 31)
duke2    22    29  seeded sparse PLA
f51m      8     8  y = (low nibble) * (high nibble)  (4x4 multiplier)
misex1    8     7  seeded PLA
misex2   25    18  seeded sparse PLA
rd73      7     3  y = popcount(x)
sao2     10     4  seeded PLA
z4ml      7     4  y = a + b + cin  (two 3-bit operands)
====== ===== ===== =====================================================

Arithmetic names use exact tabulation; the others use deterministic
seeded covers, so every build of the suite is bit-identical.  What Table
I actually exercises -- small redundancy counts, the class-1/class-2
longest-path split after delay optimization, area non-growth through
KMS -- is a property of the flow, not of the original PLA contents.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..io.pla import Pla, pla_from_function
from ..network import Circuit
from ..twolevel import Cover, Cube


def _five_x_plus_one(x: int) -> int:
    return 5 * x + 1


def _clip(x: int) -> int:
    # 9-bit two's complement magnitude clamped to 5 bits
    if x & 0x100:
        x = x - 0x200
    return min(abs(x), 31)


def _f51m(x: int) -> int:
    return (x & 0xF) * ((x >> 4) & 0xF) & 0xFF


def _rd73(x: int) -> int:
    return bin(x).count("1")


def _z4ml(x: int) -> int:
    a = x & 0x7
    b = (x >> 3) & 0x7
    cin = (x >> 6) & 1
    return (a + b + cin) & 0xF


def _seeded_pla(
    name: str,
    num_inputs: int,
    num_outputs: int,
    cubes_per_output: int,
    literals_low: int,
    literals_high: int,
    seed: int,
) -> Pla:
    """A deterministic sparse PLA with the given shape."""
    rng = random.Random(seed)
    ins = [f"x{i}" for i in range(num_inputs)]
    outs = [f"y{i}" for i in range(num_outputs)]
    pla = Pla(name, ins, outs)
    for out in outs:
        cover = Cover(num_inputs)
        for _ in range(cubes_per_output):
            cube = Cube.universe(num_inputs)
            k = rng.randint(literals_low, literals_high)
            for var in rng.sample(range(num_inputs), k):
                cube = cube.with_literal(var, rng.getrandbits(1))
            cover.add(cube)
        pla.on_sets[out] = cover
        pla.dc_sets[out] = Cover(num_inputs)
    return pla


def _tabulated(
    name: str, num_inputs: int, num_outputs: int, func: Callable[[int], int]
) -> Pla:
    return pla_from_function(name, num_inputs, num_outputs, func)


#: name -> (inputs, outputs, PLA builder)
_SUITE: Dict[str, Tuple[int, int, Callable[[], Pla]]] = {
    "5xp1": (7, 10, lambda: _tabulated("5xp1", 7, 10, _five_x_plus_one)),
    "clip": (9, 5, lambda: _tabulated("clip", 9, 5, _clip)),
    "duke2": (22, 29, lambda: _seeded_pla("duke2", 22, 29, 6, 3, 8, 0xD02E)),
    "f51m": (8, 8, lambda: _tabulated("f51m", 8, 8, _f51m)),
    "misex1": (8, 7, lambda: _seeded_pla("misex1", 8, 7, 5, 2, 5, 0x31)),
    "misex2": (25, 18, lambda: _seeded_pla("misex2", 25, 18, 4, 3, 9, 0x32)),
    "rd73": (7, 3, lambda: _tabulated("rd73", 7, 3, _rd73)),
    "sao2": (10, 4, lambda: _seeded_pla("sao2", 10, 4, 8, 3, 7, 0x5A02)),
    "z4ml": (7, 4, lambda: _tabulated("z4ml", 7, 4, _z4ml)),
}

MCNC_NAMES: List[str] = sorted(_SUITE)


def mcnc_pla(name: str) -> Pla:
    """The stand-in PLA for a Table I benchmark name."""
    try:
        _in, _out, build = _SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {MCNC_NAMES}"
        ) from None
    return build()


def mcnc_circuit(name: str, minimize: bool = True) -> Circuit:
    """Area-optimized multilevel circuit for a benchmark name
    (espresso + factor + simple gates) -- the Table I starting point
    before delay optimization."""
    return mcnc_pla(name).to_circuit(minimize=minimize)


def mcnc_shapes() -> Dict[str, Tuple[int, int]]:
    """name -> (inputs, outputs), matching the paper's circuits."""
    return {k: (v[0], v[1]) for k, v in _SUITE.items()}
