"""The paper's figures as exact netlists.

Fig. 1  -- the redundant 2-b carry-skip adder block, gate numbering as in
the paper (gates 1-11 plus the MUX).  Section III's analysis assumes c0
arrives at t = 5, all other inputs at t = 0, AND/OR delay 1 and XOR/MUX
delay 2; those delays are baked into the netlist (complex gates carried
by the last simple gate of their decomposition).

Fig. 2  -- the paper's novel irredundant carry-skip block: identical
except the connection gate7 -> gate9 is replaced by primary input b0.

Fig. 4  -- the single-output c2 cone of Fig. 1 on which Section 6.3
walks the algorithm.

Figs. 5/6 -- the intermediate and final circuits of that walk, derived
here by applying the documented transformations (first edge of the
longest path tied to 0; then the two remaining s-a-1 redundancies tied
to 1) so benches can check each intermediate claim.
"""

from __future__ import annotations

from typing import Tuple

from ..network import Builder, Circuit
from ..network.transform import (
    propagate_constants,
    set_connection_constant,
    sweep,
)
from .adders import GATE_DELAY, MUX_DELAY, XOR_DELAY

#: Section III arrival time of the block carry-in.
C0_ARRIVAL = 5.0


def _skip_block(b: Builder, with_sums: bool) -> None:
    """Common structure of Figs. 1 and 4 (gate names as in the paper)."""
    a0 = b.input("a0")
    b0 = b.input("b0")
    a1 = b.input("a1")
    b1 = b.input("b1")
    c0 = b.input("c0", arrival=C0_ARRIVAL)
    # propagate / generate per bit
    p0 = _xor_named(b, a0, b0, "gate1")
    g0 = b.and_(a0, b0, delay=GATE_DELAY, name="gate2")
    p1 = _xor_named(b, a1, b1, "gate3")
    g1 = b.and_(a1, b1, delay=GATE_DELAY, name="gate4")
    if with_sums:
        s0 = _xor_named(b, p0, c0, "gate5")
    t0 = b.and_(p0, c0, delay=GATE_DELAY, name="gate6")
    c1 = b.or_(g0, t0, delay=GATE_DELAY, name="gate7")
    if with_sums:
        s1 = _xor_named(b, p1, c1, "gate8")
    t1 = b.and_(p1, c1, delay=GATE_DELAY, name="gate9")
    skip = b.and_(p0, p1, delay=GATE_DELAY, name="gate10")
    ripple = b.or_(g1, t1, delay=GATE_DELAY, name="gate11")
    # MUX: all propagate high -> c2 = c0, else the ripple carry
    inv = b.not_(skip, delay=0.0, name="mux_not")
    d0 = b.and_(inv, ripple, delay=0.0, name="mux_and0")
    d1 = b.and_(skip, c0, delay=0.0, name="mux_and1")
    c2 = b.or_(d0, d1, delay=MUX_DELAY, name="mux_or")
    if with_sums:
        b.output("s0", s0)
        b.output("s1", s1)
    b.output("c2", c2)


def _xor_named(b: Builder, x: int, y: int, name: str) -> int:
    """XOR as OR/NAND/AND with the complex 2-unit delay on the final AND,
    which carries the paper's gate name."""
    o = b.or_(x, y, delay=0.0, name=f"{name}_or")
    n = b.nand(x, y, delay=0.0, name=f"{name}_nand")
    return b.and_(o, n, delay=XOR_DELAY, name=name)


def fig1_carry_skip_block() -> Circuit:
    """Fig. 1: the redundant 2-b carry-skip adder (outputs s0, s1, c2)."""
    b = Builder("fig1_csa2")
    _skip_block(b, with_sums=True)
    return b.done()


def fig2_irredundant_block() -> Circuit:
    """Fig. 2: the irredundant 2-b carry-skip adder.

    Identical to Fig. 1 except gate9's carry input comes from primary
    input b0 instead of gate7 -- same function, no slower, fully
    single-stuck-at testable, zero area overhead.
    """
    circuit = fig1_carry_skip_block()
    circuit.name = "fig2_csa2_irr"
    gate9 = circuit.find_gate("gate9")
    gate7 = circuit.find_gate("gate7")
    b0 = circuit.find_input("b0")
    for cid in list(circuit.gates[gate9].fanin):
        if circuit.conns[cid].src == gate7:
            circuit.move_connection_source(cid, b0)
    return circuit


def fig4_c2_cone() -> Circuit:
    """Fig. 4: the single-output cone computing c2, used in Section 6.3's
    algorithm walk-through."""
    b = Builder("fig4_c2_cone")
    _skip_block(b, with_sums=False)
    return b.done()


def fig5_after_first_edge() -> Circuit:
    """Fig. 5: Fig. 4 after the longest path's first edge (c0 -> gate6)
    is set to constant 0 and propagated.

    The longest path in Fig. 4 runs c0 -> gate6 -> gate7 -> gate9 ->
    gate11 -> MUX (length 11 with c0 arriving at t = 5); Section 6.3
    shows it is not statically sensitizable (p0 = p1 = 1 is required at
    the AND side-inputs but the MUX then selects c0), so the first edge
    may be tied to 0.
    """
    circuit = fig4_c2_cone()
    circuit.name = "fig5_intermediate"
    gate6 = circuit.find_gate("gate6")
    c0 = circuit.find_input("c0")
    for cid in list(circuit.gates[gate6].fanin):
        if circuit.conns[cid].src == c0:
            set_connection_constant(circuit, cid, 0)
    propagate_constants(circuit)
    sweep(circuit, collapse_buffers=True)
    return circuit


def fig6_final() -> Circuit:
    """Fig. 6: the final irredundant c2 circuit.

    From Fig. 5, the two remaining untestable s-a-1 connections (the g0
    branches feeding what were gate7's ripple successors -- the x-marked
    edges of the paper's Fig. 5) are tied to 1 and propagated, leaving
    the fully testable cone.  We derive it by running the final
    any-order redundancy-removal phase, matching the paper's procedure.
    """
    from ..atpg.redundancy import remove_redundancies

    circuit = fig5_after_first_edge()
    result = remove_redundancies(circuit)
    final = result.circuit
    final.name = "fig6_final"
    return final


def section3_fault_demo() -> Tuple[Circuit, int]:
    """The Section III speedtest argument: Fig. 1 with the gate10 output
    stuck at 0 is *logically* a ripple-carry adder, but its critical path
    output is only available after 11 gate delays.

    Returns (circuit, gid of gate10) so callers can inject the fault.
    """
    circuit = fig1_carry_skip_block()
    return circuit, circuit.find_gate("gate10")
