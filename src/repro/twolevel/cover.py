"""Covers: sums of cubes (single-output two-level logic)."""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence

from .cube import Cube


class Cover:
    """A sum-of-products over ``num_vars`` variables."""

    def __init__(self, num_vars: int, cubes: Iterable[Cube] = ()) -> None:
        self.num_vars = num_vars
        self.cubes: List[Cube] = []
        for cube in cubes:
            self.add(cube)

    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        if not rows:
            raise ValueError("cannot infer variable count from empty rows")
        return cls(len(rows[0]), [Cube.from_string(r) for r in rows])

    @classmethod
    def empty(cls, num_vars: int) -> "Cover":
        return cls(num_vars)

    @classmethod
    def tautology(cls, num_vars: int) -> "Cover":
        return cls(num_vars, [Cube.universe(num_vars)])

    @classmethod
    def from_minterms(cls, num_vars: int, minterms: Iterable[int]) -> "Cover":
        cubes = []
        for m in minterms:
            assignment = {v: (m >> v) & 1 for v in range(num_vars)}
            cubes.append(Cube.from_assignment(num_vars, assignment))
        return cls(num_vars, cubes)

    def add(self, cube: Cube) -> None:
        if cube.num_vars != self.num_vars:
            raise ValueError("cube arity mismatch")
        if not cube.is_void():
            self.cubes.append(cube)

    def copy(self) -> "Cover":
        return Cover(self.num_vars, list(self.cubes))

    # -- semantics --------------------------------------------------------#

    def evaluate(self, point: Sequence[int]) -> bool:
        return any(cube.evaluate(point) for cube in self.cubes)

    def minterms(self) -> Iterator[int]:
        """All covered minterms (exponential; small-n oracle only)."""
        for m in range(1 << self.num_vars):
            point = [(m >> v) & 1 for v in range(self.num_vars)]
            if self.evaluate(point):
                yield m

    def is_empty_cover(self) -> bool:
        return not self.cubes

    def num_literals(self) -> int:
        return sum(cube.num_literals() for cube in self.cubes)

    # -- structure ----------------------------------------------------------#

    def cofactor_cube(self, cube: Cube) -> "Cover":
        """Generalized (Shannon) cofactor of the cover w.r.t. a cube."""
        result = Cover(self.num_vars)
        for c in self.cubes:
            if c.intersect(cube).is_void():
                continue
            out = c
            for var, value in cube.literals():
                cf = out.cofactor(var, value)
                if cf is None:
                    out = None
                    break
                out = cf
            if out is not None:
                result.add(out)
        return result

    def cofactor(self, var: int, value: int) -> "Cover":
        cube = Cube.universe(self.num_vars).with_literal(var, value)
        return self.cofactor_cube(cube)

    def remove_contained(self) -> "Cover":
        """Single-cube containment removal (cheap cleanup)."""
        kept: List[Cube] = []
        cubes = sorted(
            self.cubes, key=lambda c: -c.minterm_count()
        )
        for cube in cubes:
            if not any(other.contains(cube) for other in kept):
                kept.append(cube)
        return Cover(self.num_vars, kept)

    def binate_select(self) -> Optional[int]:
        """The most binate variable (appears in both polarities in the
        most cubes); None when the cover is unate.  URP splitting rule."""
        pos = [0] * self.num_vars
        neg = [0] * self.num_vars
        for cube in self.cubes:
            for var, value in cube.literals():
                if value:
                    pos[var] += 1
                else:
                    neg[var] += 1
        best, best_score = None, -1
        for var in range(self.num_vars):
            if pos[var] and neg[var]:
                score = pos[var] + neg[var]
                if score > best_score:
                    best, best_score = var, score
        return best

    def most_bound_variable(self) -> Optional[int]:
        """The variable bound in the most cubes (unate splitting)."""
        counts = [0] * self.num_vars
        for cube in self.cubes:
            for var, _value in cube.literals():
                counts[var] += 1
        if not any(counts):
            return None
        return max(range(self.num_vars), key=lambda v: counts[v])

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __repr__(self) -> str:
        return f"<Cover {self.num_vars} vars, {len(self.cubes)} cubes>"


def random_cover(
    num_vars: int,
    num_cubes: int,
    literal_probability: float = 0.5,
    seed: int = 0,
) -> Cover:
    """Deterministic pseudo-random cover (benchmark stand-ins)."""
    rng = random.Random(seed)
    cover = Cover(num_vars)
    for _ in range(num_cubes):
        cube = Cube.universe(num_vars)
        bound = False
        for var in range(num_vars):
            if rng.random() < literal_probability:
                cube = cube.with_literal(var, rng.getrandbits(1))
                bound = True
        if not bound:  # avoid accidental tautologies
            cube = cube.with_literal(rng.randrange(num_vars), 1)
        cover.add(cube)
    return cover
