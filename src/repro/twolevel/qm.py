"""Exact two-level minimization: Quine-McCluskey + Petrick's method.

Espresso (and our espresso-lite) is a heuristic; this module computes
the *exact* minimum cover for small functions — prime implicant
generation by iterated consensus over adjacent implicant classes,
essential-prime extraction, and Petrick's method for the cyclic core.
Used as the optimality oracle in the two-level test suite (espresso's
cover is never smaller than the exact minimum, and both are equivalent
to the spec) and available to users minimizing small controllers
exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .cover import Cover
from .cube import Cube


def prime_implicants(
    num_vars: int,
    minterms: Sequence[int],
    dontcares: Sequence[int] = (),
) -> List[Cube]:
    """All prime implicants of the function given by ON/DC minterms.

    Classic tabulation: group implicants by popcount, merge pairs
    differing in one bit, iterate; unmerged implicants are prime.
    Implicants are (value, mask) pairs where mask bits are don't-cares.
    """
    if num_vars > 16:
        raise ValueError("prime_implicants is exhaustive; too many vars")
    current: Set[Tuple[int, int]] = {
        (m, 0) for m in set(minterms) | set(dontcares)
    }
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        by_count: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for value, mask in current:
            key = (bin(value).count("1"), mask)
            by_count.setdefault(key, []).append((value, mask))
        for (ones, mask), group in by_count.items():
            partners = by_count.get((ones + 1, mask), [])
            for a_value, a_mask in group:
                for b_value, _ in partners:
                    diff = a_value ^ b_value
                    if bin(diff).count("1") == 1:
                        merged.add((a_value & ~diff, a_mask | diff))
                        used.add((a_value, a_mask))
                        used.add((b_value, a_mask))
        primes |= current - used
        current = merged
    result = []
    for value, mask in sorted(primes):
        cube = Cube.universe(num_vars)
        for var in range(num_vars):
            if not (mask >> var) & 1:
                cube = cube.with_literal(var, (value >> var) & 1)
        result.append(cube)
    return result


def _covers_minterm(cube: Cube, minterm: int, num_vars: int) -> bool:
    point = [(minterm >> i) & 1 for i in range(num_vars)]
    return cube.evaluate(point)


def minimize_exact(
    num_vars: int,
    minterms: Sequence[int],
    dontcares: Sequence[int] = (),
) -> Cover:
    """The exact minimum prime cover (fewest cubes; literal count breaks
    ties), via essential primes + Petrick's method on the rest."""
    # a minterm listed in both sets is a don't-care (free to drop)
    on = sorted(set(minterms) - set(dontcares))
    if not on:
        return Cover.empty(num_vars)
    primes = prime_implicants(num_vars, on, dontcares)
    covers_of: Dict[int, List[int]] = {
        m: [
            i
            for i, p in enumerate(primes)
            if _covers_minterm(p, m, num_vars)
        ]
        for m in on
    }
    chosen: Set[int] = set()
    remaining = set(on)
    # essential primes
    for m, options in covers_of.items():
        if len(options) == 1:
            chosen.add(options[0])
    for i in chosen:
        remaining = {
            m
            for m in remaining
            if not _covers_minterm(primes[i], m, num_vars)
        }
    if remaining:
        chosen |= _petrick(primes, covers_of, remaining)
    return Cover(num_vars, [primes[i] for i in sorted(chosen)])


def _petrick(
    primes: List[Cube],
    covers_of: Dict[int, List[int]],
    remaining: Set[int],
) -> Set[int]:
    """Petrick's method: expand the product of sums of covering primes
    into minimal products (bounded by absorbing dominated terms)."""
    products: Set[FrozenSet[int]] = {frozenset()}
    for m in sorted(remaining):
        expanded: Set[FrozenSet[int]] = set()
        for product in products:
            for option in covers_of[m]:
                expanded.add(product | {option})
        # absorption: drop supersets
        minimal: Set[FrozenSet[int]] = set()
        for p in sorted(expanded, key=len):
            if not any(q < p for q in minimal):
                minimal.add(p)
        products = minimal
    def cost(selection: FrozenSet[int]) -> Tuple[int, int]:
        return (
            len(selection),
            sum(primes[i].num_literals() for i in selection),
        )

    return set(min(products, key=cost))


def minimize_cover_exact(
    cover: Cover, dontcare: Optional[Cover] = None
) -> Cover:
    """Exact minimization of a cube cover (small variable counts)."""
    on = list(cover.minterms())
    dc = list(dontcare.minterms()) if dontcare is not None else []
    return minimize_exact(cover.num_vars, on, dc)
