"""Two-level logic substrate: cube algebra, URP, espresso-lite."""

from .cube import Cube, DC, ONE, ZERO
from .cover import Cover, random_cover
from .urp import (
    complement,
    covers_equal,
    cube_covered,
    is_tautology,
)
from .qm import (
    minimize_cover_exact,
    minimize_exact,
    prime_implicants,
)
from .espresso import (
    EspressoResult,
    espresso,
    expand,
    irredundant,
    reduce_cover,
)

__all__ = [
    "Cover",
    "Cube",
    "DC",
    "EspressoResult",
    "ONE",
    "ZERO",
    "complement",
    "covers_equal",
    "cube_covered",
    "espresso",
    "expand",
    "irredundant",
    "is_tautology",
    "minimize_cover_exact",
    "minimize_exact",
    "prime_implicants",
    "random_cover",
    "reduce_cover",
]
