"""Cubes: products of literals in positional (espresso) encoding.

A cube over n variables packs two bits per variable:

    bit pair 01 -> literal x   (variable must be 1)
    bit pair 10 -> literal x'  (variable must be 0)
    bit pair 11 -> don't care  (variable absent from the product)
    bit pair 00 -> empty       (contradiction; the cube is void)

This is the representation behind espresso's cube operations; the paper's
benchmark circuits were born as PLA covers minimized this way before
multilevel synthesis, so the reproduction carries the same machinery.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

#: per-variable field values
ZERO = 0b10  # literal x'
ONE = 0b01  # literal x
DC = 0b11  # don't care
EMPTY = 0b00


class Cube:
    """An immutable cube over ``num_vars`` variables."""

    __slots__ = ("num_vars", "bits")

    def __init__(self, num_vars: int, bits: Optional[int] = None) -> None:
        self.num_vars = num_vars
        if bits is None:
            bits = (1 << (2 * num_vars)) - 1  # all don't-care (universe)
        self.bits = bits

    # -- construction ---------------------------------------------------#

    @classmethod
    def universe(cls, num_vars: int) -> "Cube":
        return cls(num_vars)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse espresso notation: '1', '0', '-' per variable."""
        bits = 0
        for i, ch in enumerate(text):
            if ch == "1":
                field = ONE
            elif ch == "0":
                field = ZERO
            elif ch in "-2":
                field = DC
            else:
                raise ValueError(f"bad cube character {ch!r}")
            bits |= field << (2 * i)
        return cls(len(text), bits)

    @classmethod
    def from_assignment(
        cls, num_vars: int, assignment: Dict[int, int]
    ) -> "Cube":
        """Cube fixing the given variables (others don't-care)."""
        cube = cls.universe(num_vars)
        for var, value in assignment.items():
            cube = cube.with_literal(var, value)
        return cube

    def with_literal(self, var: int, value: int) -> "Cube":
        """Copy with variable ``var`` restricted to ``value``."""
        field = ONE if value else ZERO
        mask = ~(0b11 << (2 * var))
        return Cube(self.num_vars, (self.bits & mask) | (field << (2 * var)))

    def without_literal(self, var: int) -> "Cube":
        """Copy with variable ``var`` raised to don't-care."""
        return Cube(self.num_vars, self.bits | (DC << (2 * var)))

    # -- field access ---------------------------------------------------#

    def field(self, var: int) -> int:
        return (self.bits >> (2 * var)) & 0b11

    def literals(self) -> Iterator[Tuple[int, int]]:
        """Yield (var, value) for every bound literal."""
        for var in range(self.num_vars):
            f = self.field(var)
            if f == ONE:
                yield (var, 1)
            elif f == ZERO:
                yield (var, 0)

    def num_literals(self) -> int:
        return sum(1 for _ in self.literals())

    # -- algebra ----------------------------------------------------------#

    def is_void(self) -> bool:
        """True if some variable field is empty (no minterms)."""
        bits = self.bits
        for _ in range(self.num_vars):
            if bits & 0b11 == EMPTY:
                return True
            bits >>= 2
        return False

    def intersect(self, other: "Cube") -> "Cube":
        """Cube intersection (may be void)."""
        return Cube(self.num_vars, self.bits & other.bits)

    def contains(self, other: "Cube") -> bool:
        """self >= other as point sets (both assumed non-void)."""
        return (self.bits | other.bits) == self.bits

    def distance(self, other: "Cube") -> int:
        """Number of variables where the cubes conflict (empty fields in
        the intersection).  distance 0 = cubes intersect; distance 1 =
        consensus exists."""
        inter = self.bits & other.bits
        count = 0
        for _ in range(self.num_vars):
            if inter & 0b11 == EMPTY:
                count += 1
            inter >>= 2
        return count

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """The consensus cube when distance is exactly 1, else None."""
        inter = self.bits & other.bits
        conflict_var = None
        probe = inter
        for var in range(self.num_vars):
            if probe & 0b11 == EMPTY:
                if conflict_var is not None:
                    return None
                conflict_var = var
            probe >>= 2
        if conflict_var is None:
            return None
        merged = inter | (DC << (2 * conflict_var))
        return Cube(self.num_vars, merged)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both."""
        return Cube(self.num_vars, self.bits | other.bits)

    def cofactor(self, var: int, value: int) -> Optional["Cube"]:
        """Shannon cofactor w.r.t. a literal; None if the cube vanishes."""
        f = self.field(var)
        want = ONE if value else ZERO
        if f == want or f == DC:
            return self.without_literal(var)
        return None

    def evaluate(self, point: Sequence[int]) -> bool:
        """Is the 0/1 point inside the cube?"""
        for var, value in self.literals():
            if point[var] != value:
                return False
        return True

    def minterm_count(self) -> int:
        """Number of minterms covered (2^(free variables))."""
        return 1 << (self.num_vars - self.num_literals())

    # -- misc -------------------------------------------------------------#

    def to_string(self) -> str:
        out = []
        for var in range(self.num_vars):
            f = self.field(var)
            out.append({ONE: "1", ZERO: "0", DC: "-", EMPTY: "#"}[f])
        return "".join(out)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cube)
            and self.num_vars == other.num_vars
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, self.bits))

    def __repr__(self) -> str:
        return f"Cube({self.to_string()})"
