"""Espresso-lite: heuristic two-level minimization.

The EXPAND / IRREDUNDANT / REDUCE loop of espresso, in its simplest
sound form:

* EXPAND raises literals of each cube as long as the cube stays inside
  F + D (equivalently: disjoint from the OFF-set R = (F + D)');
* IRREDUNDANT drops cubes covered by the rest of the cover plus D;
* REDUCE shrinks each cube to the supercube of what it alone must cover,
  re-enabling different expansions on the next pass.

The loop iterates until the (cubes, literals) cost stops improving.
Multi-output functions are minimized per output (a documented
simplification versus real espresso's multi-output cube calculus); the
synthesizer feeds each output's cover through here before multilevel
restructuring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .cube import Cube
from .cover import Cover
from .urp import complement, cube_covered


@dataclass
class EspressoResult:
    """Minimization outcome."""

    cover: Cover
    passes: int
    initial_cost: Tuple[int, int]
    final_cost: Tuple[int, int]


def _cost(cover: Cover) -> Tuple[int, int]:
    return (len(cover.cubes), cover.num_literals())


def expand(cover: Cover, off: Cover) -> Cover:
    """Raise literals while staying disjoint from the OFF-set.

    Deterministic greedy: variables are tried in index order; a literal
    is raised if the enlarged cube still misses every OFF cube.
    """
    expanded: List[Cube] = []
    for cube in sorted(cover.cubes, key=lambda c: -c.num_literals()):
        for var, _value in list(cube.literals()):
            candidate = cube.without_literal(var)
            if all(
                candidate.intersect(r).is_void() for r in off.cubes
            ):
                cube = candidate
        expanded.append(cube)
    return Cover(cover.num_vars, expanded).remove_contained()


def irredundant(cover: Cover, dontcare: Optional[Cover] = None) -> Cover:
    """Drop cubes covered by the union of the others (plus don't cares).

    Greedy: cubes are considered largest-first so small cubes swallowed
    by big ones go first.
    """
    cubes = sorted(cover.cubes, key=lambda c: c.minterm_count())
    kept = list(cubes)
    for cube in cubes:
        rest = Cover(
            cover.num_vars, [c for c in kept if c is not cube]
        )
        if dontcare is not None:
            for d in dontcare.cubes:
                rest.add(d)
        if cube_covered(cube, rest):
            kept.remove(cube)
    return Cover(cover.num_vars, kept)


def reduce_cover(cover: Cover, dontcare: Optional[Cover] = None) -> Cover:
    """Shrink each cube to the supercube of its essential part.

    The essential part of cube c is c minus (rest + D); reducing to its
    supercube keeps correctness while freeing room for EXPAND to take a
    different direction next pass.
    """
    current = list(cover.cubes)
    for i, cube in enumerate(list(current)):
        rest = Cover(
            cover.num_vars,
            [c for j, c in enumerate(current) if j != i],
        )
        if dontcare is not None:
            for d in dontcare.cubes:
                rest.add(d)
        # essential = cube & complement(rest): compute via cofactor
        # complement in the subspace of the cube
        sub = complement(rest.cofactor_cube(cube))
        if not sub.cubes:
            continue  # fully covered by rest; irredundant will drop it
        essential_super = sub.cubes[0]
        for extra in sub.cubes[1:]:
            essential_super = essential_super.supercube(extra)
        # re-impose the cube's own literals on top of the supercube
        shrunk = essential_super.intersect(cube)
        if not shrunk.is_void():
            current[i] = shrunk
    return Cover(cover.num_vars, current)


def espresso(
    on: Cover,
    dontcare: Optional[Cover] = None,
    max_passes: int = 10,
) -> EspressoResult:
    """Minimize ``on`` against optional don't-cares.

    The result covers every ON minterm, avoids every OFF minterm, and is
    irredundant w.r.t. single-cube removal.
    """
    dc = dontcare if dontcare is not None else Cover.empty(on.num_vars)
    fd = Cover(on.num_vars, list(on.cubes) + list(dc.cubes))
    off = complement(fd)
    initial = _cost(on)
    current = on.remove_contained()
    best_cost = _cost(current)
    passes = 0
    for passes in range(1, max_passes + 1):
        current = expand(current, off)
        current = irredundant(current, dc)
        cost = _cost(current)
        if cost >= best_cost and passes > 1:
            break
        best_cost = min(best_cost, cost)
        current = reduce_cover(current, dc)
    current = expand(current, off)
    current = irredundant(current, dc)
    return EspressoResult(
        cover=current,
        passes=passes,
        initial_cost=initial,
        final_cost=_cost(current),
    )
