"""The unate recursive paradigm: tautology, complement, containment.

The classic recursive cube-algebra engine underlying espresso
(Brayton et al.): pick the most binate variable, Shannon-expand, recurse,
with unate special cases terminating the recursion.
"""

from __future__ import annotations


from .cube import Cube
from .cover import Cover


def is_tautology(cover: Cover) -> bool:
    """Does the cover contain every minterm?"""
    cover = cover.remove_contained()
    if not cover.cubes:
        return False  # constant 0
    for cube in cover.cubes:
        if cube.num_literals() == 0:
            return True  # universe cube present
    # unate reduction: a unate cover is a tautology iff it contains the
    # universe cube (checked above)
    split = cover.binate_select()
    if split is None:
        return False
    return is_tautology(cover.cofactor(split, 0)) and is_tautology(
        cover.cofactor(split, 1)
    )


def complement(cover: Cover) -> Cover:
    """The complement cover via URP.

    f = x f_x + x' f_x'  =>  f' = x (f_x)' + x' (f_x')'.
    Unate leaves fall back to sharp-by-DeMorgan on a single cube.
    """
    # terminal cases
    if not cover.cubes:
        return Cover.tautology(cover.num_vars)
    for cube in cover.cubes:
        if cube.num_literals() == 0:
            return Cover.empty(cover.num_vars)
    if len(cover.cubes) == 1:
        return _complement_cube(cover.cubes[0])
    split = cover.binate_select()
    if split is None:
        split = cover.most_bound_variable()
    if split is None:  # all cubes are the universe, handled above
        return Cover.empty(cover.num_vars)
    neg = complement(cover.cofactor(split, 0))
    pos = complement(cover.cofactor(split, 1))
    result = Cover(cover.num_vars)
    for cube in neg.cubes:
        result.add(cube.with_literal(split, 0))
    for cube in pos.cubes:
        result.add(cube.with_literal(split, 1))
    return result.remove_contained()


def _complement_cube(cube: Cube) -> Cover:
    """DeMorgan complement of a single cube (one cube per literal)."""
    result = Cover(cube.num_vars)
    for var, value in cube.literals():
        result.add(
            Cube.universe(cube.num_vars).with_literal(var, 1 - value)
        )
    return result


def cube_covered(cube: Cube, cover: Cover) -> bool:
    """Is ``cube`` contained in the cover (as point sets)?

    Standard reduction: cube <= f  iff  f cofactored by cube is a
    tautology.
    """
    return is_tautology(cover.cofactor_cube(cube))


def covers_equal(a: Cover, b: Cover) -> bool:
    """Point-set equality of two covers."""
    return all(cube_covered(c, b) for c in a.cubes) and all(
        cube_covered(c, a) for c in b.cubes
    )
