"""Exact viability analysis (McGeer-Brayton, refs [15]/[16] of the paper).

The production checker in :mod:`repro.timing.viability` uses the sound
approximation the paper describes (side inputs that have *provably*
settled must be noncontrolling; others are smoothed).  This module
implements the exact recursive definition for cross-checking:

    A path P is viable under minterm c if at every gate g_i along P,
    each side input s either carries the noncontrolling value under c,
    or is *late*: some viable path ends at s with arrival >= tau_i,
    the event time at g_i's input along P.

Because the late/early split depends on the prefix length, the dynamic
program tracks, per gate and minterm, the **set of viable path
lengths** terminating at the gate (topological order makes one pass
suffice; the side-input recursion only refers to other signals'
completed length sets -- note the definition is well-founded on the
DAG because a side input's viable paths never pass through g_i's
output).

Cost: one DP per input minterm, so exponential in PI count -- an oracle
for small circuits, exactly how the tests use it (the sandwich
``sensitizable <= exact viable <= approximate viable <= topological``
and ``true delay <= exact viable``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from ..network import Circuit, GateType, noncontrolling_value
from .models import AsBuiltDelayModel, DelayModel

EPS = 1e-9


def viable_lengths_under(
    circuit: Circuit,
    minterm: Dict[int, int],
    model: Optional[DelayModel] = None,
) -> Dict[int, FrozenSet[float]]:
    """Viable path lengths per gate under one input minterm.

    Returns gid -> frozen set of lengths of viable paths ending at the
    gate's *output* (for OUTPUT markers: at the PO).  Constant sources
    carry no events and get the empty set.
    """
    model = model if model is not None else AsBuiltDelayModel()
    values = circuit.evaluate(minterm)
    lengths: Dict[int, Set[float]] = {}
    # arrival of each signal as seen at a connection's sink
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            lengths[gid] = {model.input_arrival(circuit, gid)}
            continue
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            lengths[gid] = set()
            continue
        if gate.gtype in (GateType.XOR, GateType.XNOR):
            raise ValueError(
                "exact viability is defined for simple-gate networks"
            )
        out: Set[float] = set()
        gate_delay = model.gate_delay(circuit, gid)
        for cid in gate.fanin:
            conn = circuit.conns[cid]
            conn_delay = model.conn_delay(circuit, cid)
            for prefix in lengths[conn.src]:
                tau = prefix + conn_delay
                if _side_inputs_ok(
                    circuit, model, values, lengths, gate, cid, tau
                ):
                    out.add(tau + gate_delay)
        lengths[gid] = out
    return {gid: frozenset(ls) for gid, ls in lengths.items()}


def _side_inputs_ok(
    circuit: Circuit,
    model: DelayModel,
    values: Dict[int, int],
    lengths: Dict[int, Set[float]],
    gate,
    on_path_cid: int,
    tau: float,
) -> bool:
    """Each side input noncontrolling under c, or late (has a viable
    path arriving at or after tau)."""
    if gate.gtype in (GateType.NOT, GateType.BUF, GateType.OUTPUT):
        return True
    ncv = noncontrolling_value(gate.gtype)
    for cid in gate.fanin:
        if cid == on_path_cid:
            continue
        conn = circuit.conns[cid]
        if values[conn.src] == ncv:
            continue
        conn_delay = model.conn_delay(circuit, cid)
        arrivals = lengths[conn.src]
        if arrivals and max(arrivals) + conn_delay >= tau - EPS:
            continue  # late side input: smoothed
        return False
    return True


@dataclass
class ExactViabilityReport:
    """Exact computed delay and its witness."""

    delay: float
    #: PI gid -> value of a minterm achieving the delay (None if delay 0).
    witness: Optional[Dict[int, int]]


def exact_viability_delay(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    max_inputs: int = 12,
) -> ExactViabilityReport:
    """The exact McGeer-Brayton computed delay: the longest viable path
    over all input minterms.  Exponential in PI count (guarded)."""
    n = len(circuit.inputs)
    if n > max_inputs:
        raise ValueError(
            f"exact_viability_delay is exhaustive; {n} inputs > "
            f"{max_inputs}"
        )
    model = model if model is not None else AsBuiltDelayModel()
    best = 0.0
    witness: Optional[Dict[int, int]] = None
    for bits in range(1 << n):
        minterm = {
            gid: (bits >> i) & 1
            for i, gid in enumerate(circuit.inputs)
        }
        lengths = viable_lengths_under(circuit, minterm, model)
        for po in circuit.outputs:
            if lengths[po]:
                longest = max(lengths[po])
                if longest > best:
                    best = longest
                    witness = minterm
    return ExactViabilityReport(delay=best, witness=witness)


def path_viable_exact(
    circuit: Circuit,
    path,
    minterm: Dict[int, int],
    model: Optional[DelayModel] = None,
) -> bool:
    """Is one specific path viable under one minterm, per the exact
    recursive definition?"""
    model = model if model is not None else AsBuiltDelayModel()
    values = circuit.evaluate(minterm)
    lengths_sets = viable_lengths_under(circuit, minterm, model)
    lengths = {gid: set(ls) for gid, ls in lengths_sets.items()}
    taus = path.event_times(circuit, model)
    for i, gid in enumerate(path.gates):
        gate = circuit.gates[gid]
        if not _side_inputs_ok(
            circuit, model, values, lengths, gate, path.conns[i], taus[i]
        ):
            return False
    return True
