"""Incremental timing context for the KMS loop.

The Fig. 3 while-loop perturbs a small region per iteration (a
duplicated chain plus a constant-propagation cone) yet the reference
implementation recomputes every timing quantity from scratch each time.
Following Teslenko & Dubrova's observation that restricting recomputation
to the affected region is where the speed comes from, this module bundles
the three incremental facilities the loop needs:

* **dirty-cone STA** -- an :class:`~repro.timing.sta.IncrementalSTA`
  consuming the touched-gate sets returned by the transforms in
  :mod:`repro.network.transform`, re-relaxing arrival times and
  longest-path counts only in the transitive fanout/fanin of mutated
  gates;
* **bit-parallel witness prefilter** -- once per iteration, 64 random
  patterns are simulated in one packed word per gate
  (:func:`repro.sim.parallel.simulate_packed`); any pattern that puts
  every constrained side-input at its noncontrolling value *is* a
  sensitization/viability witness, so the exact SAT cube computation is
  skipped entirely for that path;
* **cube memoization** -- exact verdicts are cached keyed by the content
  fingerprints (:mod:`repro.engine.hashing`) of the constrained signals.
  Fingerprints are canonical over the signal's whole fanin cone *and* the
  PI interface positions, so equal keys mean the same SAT question: cones
  untouched by an iteration reuse their cubes across iterations for free.

Counter semantics (all deterministic; exported via
:class:`repro.core.kms.KmsResult` counters and engine telemetry):

* ``arrival_relaxations`` / ``dist_relaxations`` -- per-gate STA
  recomputations (a full :func:`~repro.timing.sta.analyze` costs one per
  gate per direction);
* ``viability_checks_prefiltered`` -- path checks resolved by the packed
  simulation witness alone;
* ``cube_cache_hits`` -- path checks resolved from the fingerprint-keyed
  cube cache;
* ``viability_checks_exact`` -- path checks that fell through to a SAT
  solve.

The prefilter and cache decide the same booleans SAT would (the witness
is sound, and a fingerprint-equal constraint set is the same question),
so the incremental loop takes bit-identical decisions to the full
recompute -- the A/B oracle ``kms(..., incremental=False)`` and the
property suite assert exactly that.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..network import Circuit
from ..sat import CircuitEncoder, Solver
from .models import AsBuiltDelayModel, DelayModel
from .paths import Path
from .sensitize import side_inputs
from .sta import IncrementalSTA, TimingAnnotation
from .viability import early_side_inputs

#: Packed-simulation width: one machine word of random patterns.
PREFILTER_WIDTH = 64

#: Constraint list: (source gid, required settled value) pairs.
Constraints = List[Tuple[int, int]]


class _ExactOracle:
    """One Tseitin encoding + solver for the current circuit state.

    Both static sensitization and viability reduce to the same question:
    *is there an input assignment under which each constrained signal
    settles to its required value?*  Encoded once per KMS iteration,
    solved under assumptions per path -- the same query the
    :class:`~repro.timing.sensitize.SensitizationChecker` and
    :class:`~repro.timing.viability.ViabilityChecker` issue.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        encoder = CircuitEncoder()
        self.var = encoder.encode(circuit)
        self.solver = Solver(encoder.cnf)

    def solve(self, constraints: Constraints) -> Optional[Dict[int, int]]:
        lits = [
            self.var[src] if value else -self.var[src]
            for src, value in constraints
        ]
        if self.solver.solve(lits):
            model = self.solver.model()
            return {
                gid: int(model.get(self.var[gid], False))
                for gid in self.circuit.inputs
            }
        return None


class IncrementalTiming:
    """The incremental KMS loop's timing engine.

    One instance lives for a whole :func:`repro.core.kms.kms` run over
    the mutating working circuit.  Per iteration the loop calls
    :meth:`begin_iteration` (refreshing the packed simulation and the
    lazily built SAT oracle), reads :meth:`annotation`, tests candidate
    paths with :meth:`check_path`, and after the structural edits calls
    :meth:`refresh` with the union of the transforms' touched-gate sets.
    """

    def __init__(
        self,
        circuit: Circuit,
        model: Optional[DelayModel] = None,
        mode: str = "static",
        seed: int = 0,
        hier: Optional[bool] = None,
        hier_store=None,
    ) -> None:
        from ..engine.hashing import gate_fingerprints
        from .hier import HierSTA, hier_enabled

        self.circuit = circuit
        self.model = model if model is not None else AsBuiltDelayModel()
        self.mode = mode
        self.seed = seed
        if hier is None:
            hier = hier_enabled()
        self.hier = hier
        if hier:
            self.sta = HierSTA(circuit, self.model, store=hier_store)
        else:
            self.sta = IncrementalSTA(circuit, self.model)
        #: with an attached arena the fingerprint cache lives in the
        #: arena (hook-driven dirty tracking, same digests); otherwise
        #: this context maintains its own gid-keyed dict.
        self._arena = getattr(circuit, "_arena", None)
        self._fps: Optional[Dict[int, str]] = (
            None if self._arena is not None else gate_fingerprints(circuit)
        )
        #: cache key -> (verdict, cube by PI position or None)
        self.cube_cache: Dict[tuple, Optional[Dict[int, int]]] = {}
        self.viability_checks_exact = 0
        self.viability_checks_prefiltered = 0
        self.cube_cache_hits = 0
        self._iteration = 0
        self._sim: Optional[Dict[int, int]] = None
        self._oracle: Optional[_ExactOracle] = None
        self._annotation: Optional[TimingAnnotation] = None

    @property
    def fingerprints(self) -> Dict[int, str]:
        """Current gid-keyed content fingerprints (arena-maintained when
        the circuit carries one, else this context's own cache)."""
        if self._arena is not None:
            return self._arena.gate_fps()
        assert self._fps is not None
        return self._fps

    # ------------------------------------------------------------------ #
    # per-iteration lifecycle
    # ------------------------------------------------------------------ #

    def begin_iteration(self) -> None:
        """Start one Fig. 3 iteration: fresh packed patterns, lazy oracle.

        The witness simulation routes through the compiled kernel
        (:mod:`repro.sim.kernel`) -- the schedule is compiled once and
        recompiled only when :meth:`refresh` reports structural edits;
        ``REPRO_SIM_LEGACY`` forces the interpreted ``simulate_packed``
        as the A/B oracle.  Either path is bit-identical.
        """
        rng = random.Random((self.seed << 20) ^ self._iteration)
        from ..sim import get_compiled, kernel_enabled, random_packed_inputs
        from ..sim import simulate_packed

        packed = random_packed_inputs(self.circuit, PREFILTER_WIDTH, rng)
        if kernel_enabled():
            self._sim = get_compiled(self.circuit).evaluate(
                packed, PREFILTER_WIDTH
            )
        else:
            self._sim = simulate_packed(self.circuit, packed, PREFILTER_WIDTH)
        self._oracle = None
        self._annotation = None
        self._iteration += 1

    def annotation(self) -> TimingAnnotation:
        """The current iteration's timing annotation (cached per
        iteration; bit-identical to a from-scratch ``analyze``)."""
        if self._annotation is None:
            self._annotation = self.sta.annotation()
        return self._annotation

    def refresh(self, touched) -> None:
        """Re-relax timing and re-hash fingerprints in the dirty cone."""
        from ..sim import refresh_compiled

        self.sta.refresh(touched)
        self._update_fingerprints(touched)
        refresh_compiled(self.circuit, touched)
        self._annotation = None

    # ------------------------------------------------------------------ #
    # path checking: prefilter -> cube cache -> exact SAT
    # ------------------------------------------------------------------ #

    def path_constraints(self, path: Path) -> Constraints:
        """The (source gid, required value) constraint set of a path
        under the context's mode."""
        if self.mode == "viability":
            triples = early_side_inputs(
                self.circuit, self.model, self.annotation(), path
            )
        else:
            triples = [
                (si.cid, si.gate, si.value)
                for si in side_inputs(self.circuit, path)
            ]
        conns = self.circuit.conns
        return [(conns[cid].src, value) for cid, _gid, value in triples]

    def check_path(self, path: Path) -> bool:
        """Is the path statically sensitizable (static mode) / viable
        (viability mode)?  Same verdict the exact checkers give."""
        constraints = self.path_constraints(path)
        if self._witness_bits(constraints):
            self.viability_checks_prefiltered += 1
            return True
        key = self._cache_key(constraints)
        if key in self.cube_cache:
            self.cube_cache_hits += 1
            return self.cube_cache[key] is not None
        if self._oracle is None:
            self._oracle = _ExactOracle(self.circuit)
        cube = self._oracle.solve(constraints)
        self.viability_checks_exact += 1
        self.cube_cache[key] = self._cube_by_position(cube)
        return cube is not None

    def witness_cube(self, path: Path) -> Optional[Dict[int, int]]:
        """A witness PI cube for a path the prefilter can resolve, else
        None (diagnostic/test hook; ``check_path`` is the loop entry)."""
        constraints = self.path_constraints(path)
        word = self._witness_bits(constraints)
        if not word:
            return None
        bit = (word & -word).bit_length() - 1
        assert self._sim is not None
        return {
            gid: (self._sim[gid] >> bit) & 1 for gid in self.circuit.inputs
        }

    def _witness_bits(self, constraints: Constraints) -> int:
        """Packed word of patterns satisfying every constraint."""
        if self._sim is None:
            return 0
        mask = (1 << PREFILTER_WIDTH) - 1
        word = mask
        for src, value in constraints:
            bits = self._sim[src]
            word &= bits if value else ~bits & mask
            if not word:
                return 0
        return word

    def _cache_key(self, constraints: Constraints) -> tuple:
        fps = self.fingerprints
        return (
            self.mode,
            tuple(sorted((fps[src], value) for src, value in constraints)),
        )

    def _cube_by_position(
        self, cube: Optional[Dict[int, int]]
    ) -> Optional[Dict[int, int]]:
        """Store cubes by PI *position* so a cached entry survives gid
        renumbering (fingerprints canonicalize over positions too)."""
        if cube is None:
            return None
        return {
            i: cube.get(gid, 0)
            for i, gid in enumerate(self.circuit.inputs)
        }

    # ------------------------------------------------------------------ #
    # fingerprint maintenance
    # ------------------------------------------------------------------ #

    def _update_fingerprints(self, touched) -> None:
        """Re-hash the transitive fanout of touched gates, early-cutoff
        on unchanged digests (a gate's fingerprint covers exactly its
        fanin cone, so nothing upstream can have moved).

        With an attached arena this is a no-op: the mutation hooks
        already recorded the dirty gids, and :meth:`fingerprints`
        re-hashes the dirty cone lazily inside the arena."""
        if self._arena is not None:
            return
        import heapq

        from ..engine.hashing import gate_fingerprint

        circuit = self.circuit
        fps = self.fingerprints
        for gid in [g for g in fps if g not in circuit.gates]:
            del fps[gid]
        dirty = {g for g in touched if g in circuit.gates}
        if not dirty:
            return
        pi_index = {gid: i for i, gid in enumerate(circuit.inputs)}
        po_index = {gid: i for i, gid in enumerate(circuit.outputs)}
        pos = {gid: i for i, gid in enumerate(circuit.topological_order())}
        heap = [(pos[gid], gid) for gid in dirty]
        heapq.heapify(heap)
        queued = set(dirty)
        while heap:
            _, gid = heapq.heappop(heap)
            queued.discard(gid)
            old = fps.get(gid)
            new = gate_fingerprint(circuit, gid, fps, pi_index, po_index)
            fps[gid] = new
            if new == old:
                continue
            for cid in circuit.gates[gid].fanout:
                dst = circuit.conns[cid].dst
                if dst not in queued:
                    queued.add(dst)
                    heapq.heappush(heap, (pos[dst], dst))

    # ------------------------------------------------------------------ #
    # counters
    # ------------------------------------------------------------------ #

    def counters(self) -> Dict[str, float]:
        """The deterministic counter snapshot telemetry exports (plus
        the hierarchical engine's own counters when it is active)."""
        result = {
            "arrival_relaxations": self.sta.arrival_relaxations,
            "dist_relaxations": self.sta.dist_relaxations,
            "viability_checks_exact": self.viability_checks_exact,
            "viability_checks_prefiltered": self.viability_checks_prefiltered,
            "cube_cache_hits": self.cube_cache_hits,
        }
        hier_counters = getattr(self.sta, "counters", None)
        if hier_counters is not None:
            result.update(hier_counters())
        return result
