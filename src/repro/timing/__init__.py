"""Timing substrate: STA, paths, static sensitization, viability."""

from .models import (
    NEVER,
    AsBuiltDelayModel,
    DelayModel,
    FanoutDelayModel,
    LibraryDelayModel,
    PAPER_SECTION3_TABLE,
    UnitDelayModel,
)
from .sta import (
    IncrementalSTA,
    TimingAnnotation,
    analyze,
    critical_connections,
    topological_delay,
)
from .incremental import (
    IncrementalTiming,
    PREFILTER_WIDTH,
)
from .hier import (
    HIER_COUNTERS,
    HierSTA,
    ModelStore,
    PartitionInstance,
    TimingModel,
    configure_model_store,
    default_model_store,
    expand_witness,
    extract_model,
    hier_enabled,
    partition_circuit,
)
from .paths import (
    Path,
    iter_paths_longest_first,
    longest_paths,
    path_length,
)
from .sensitize import (
    SensitizationChecker,
    SideInput,
    side_inputs,
    statically_sensitizable,
)
from .exact_viability import (
    ExactViabilityReport,
    exact_viability_delay,
    path_viable_exact,
    viable_lengths_under,
)
from .speedtest import (
    Speedtest,
    SpeedtestReport,
    find_speedtest,
    is_tau_redundant,
    speedtest_report,
    tau_detects,
)
from .viability import (
    DelayReport,
    ViabilityChecker,
    early_side_inputs,
    sensitizable_delay,
    viability_delay,
)

__all__ = [
    "AsBuiltDelayModel",
    "DelayModel",
    "DelayReport",
    "ExactViabilityReport",
    "exact_viability_delay",
    "path_viable_exact",
    "viable_lengths_under",
    "FanoutDelayModel",
    "HIER_COUNTERS",
    "HierSTA",
    "IncrementalSTA",
    "IncrementalTiming",
    "ModelStore",
    "PartitionInstance",
    "TimingModel",
    "configure_model_store",
    "default_model_store",
    "expand_witness",
    "extract_model",
    "hier_enabled",
    "partition_circuit",
    "LibraryDelayModel",
    "NEVER",
    "PREFILTER_WIDTH",
    "PAPER_SECTION3_TABLE",
    "Path",
    "SensitizationChecker",
    "SideInput",
    "Speedtest",
    "SpeedtestReport",
    "find_speedtest",
    "is_tau_redundant",
    "speedtest_report",
    "tau_detects",
    "TimingAnnotation",
    "UnitDelayModel",
    "ViabilityChecker",
    "analyze",
    "critical_connections",
    "early_side_inputs",
    "iter_paths_longest_first",
    "longest_paths",
    "path_length",
    "sensitizable_delay",
    "side_inputs",
    "statically_sensitizable",
    "topological_delay",
    "viability_delay",
]
