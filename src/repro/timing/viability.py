"""Viability analysis (Section V / 5.1, after McGeer-Brayton).

A path is *viable under input cube c* if at each gate along the path all
the **early** side-inputs carry noncontrolling values; **late**
side-inputs ("have not settled to their final value before tau_i") are
smoothed out -- no demand is placed on them.  The circuit's computed
delay is the length of the longest viable path: a sound upper bound on
true delay that is tighter than topological analysis and looser (safer)
than the longest statically sensitizable path.

Early/late classification: we call a side-input early at event time
``tau`` only when its *topological latest arrival* is strictly earlier
than ``tau`` -- i.e. when it has provably settled under every input cube.
A side-input that merely *might* have settled is treated as late and
smoothed.  This errs in the safe direction (more paths viable, larger
computed delay) relative to exact McGeer-Brayton viability, preserving
upper-bound soundness, and coincides with it on the paper's examples.
Tests cross-check against the event-driven true-delay oracle.

Every viability question is again a SAT query on the Tseitin encoding:
the early side-inputs' settled values are static circuit values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..network import Circuit, GateType, noncontrolling_value
from ..sat import CircuitEncoder, Solver
from .models import AsBuiltDelayModel, DelayModel, NEVER
from .paths import Path, iter_paths_longest_first
from .sta import TimingAnnotation, analyze

#: Tolerance for float time comparisons.
EPS = 1e-9


@dataclass
class DelayReport:
    """Result of a false-path-aware delay computation.

    Attributes:
        delay: length of the longest true (viable / sensitizable) path,
            0.0 if no path qualifies (e.g. all-constant circuits).
        path: a witness path of that length (None if none).
        cube: a PI assignment witnessing the condition (None if none).
        paths_examined: how many paths the longest-first scan visited.
        exhausted: True if the scan hit ``max_paths`` before finding a
            qualifying path -- the result is then only a lower bound
            of the topological delay and callers should fall back to it.
    """

    delay: float
    path: Optional[Path]
    cube: Optional[Dict[int, int]]
    paths_examined: int
    exhausted: bool = False


def early_side_inputs(
    circuit: Circuit,
    model: DelayModel,
    annotation: TimingAnnotation,
    path: Path,
) -> List[Tuple[int, int, int]]:
    """(cid, gate, required value) for each provably-early side-input.

    A side-input connection ``s`` into path gate ``g_i`` is early when
    ``latest_arrival(src(s)) + d(s) < tau_i``.  Standalone so the
    incremental KMS timing context can derive viability constraints from
    its own maintained annotation without a from-scratch :func:`analyze`.
    """
    taus = path.event_times(circuit, model)
    result: List[Tuple[int, int, int]] = []
    for i, gid in enumerate(path.gates):
        gate = circuit.gates[gid]
        if gate.gtype in (GateType.NOT, GateType.BUF):
            continue
        if gate.gtype in (GateType.XOR, GateType.XNOR):
            raise ValueError(
                "viability is undefined for undecomposed XOR gates"
            )
        on_path = path.conns[i]
        ncv = noncontrolling_value(gate.gtype)
        for cid in gate.fanin:
            if cid == on_path:
                continue
            conn = circuit.conns[cid]
            settle = annotation.arrival[conn.src]
            if settle != NEVER:
                settle += model.conn_delay(circuit, cid)
            if settle == NEVER or settle < taus[i] - EPS:
                result.append((cid, gid, ncv))
    return result


class ViabilityChecker:
    """Reusable SAT context for viability queries on one circuit.

    ``annotation`` may be supplied by a caller that already holds current
    arrival times (e.g. the incremental KMS loop); omitted, a fresh
    :func:`analyze` pass is run.
    """

    def __init__(
        self,
        circuit: Circuit,
        model: Optional[DelayModel] = None,
        annotation: Optional[TimingAnnotation] = None,
    ) -> None:
        self.circuit = circuit
        self.model = model if model is not None else AsBuiltDelayModel()
        self.annotation = (
            annotation if annotation is not None
            else analyze(circuit, self.model)
        )
        encoder = CircuitEncoder()
        self.var = encoder.encode(circuit)
        self.solver = Solver(encoder.cnf)

    def early_side_inputs(self, path: Path) -> List[Tuple[int, int, int]]:
        """(cid, gate, required value) for each provably-early side-input
        of ``path`` (see the module-level :func:`early_side_inputs`)."""
        return early_side_inputs(
            self.circuit, self.model, self.annotation, path
        )

    def viable_cube(self, path: Path) -> Optional[Dict[int, int]]:
        """A PI assignment under which the path is viable, or None."""
        lits = []
        for cid, _gid, value in self.early_side_inputs(path):
            src = self.circuit.conns[cid].src
            v = self.var[src]
            lits.append(v if value else -v)
        if self.solver.solve(lits):
            model = self.solver.model()
            return {
                gid: int(model.get(self.var[gid], False))
                for gid in self.circuit.inputs
            }
        return None

    def is_viable(self, path: Path) -> bool:
        return self.viable_cube(path) is not None


def viability_delay(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    max_paths: int = 200000,
) -> DelayReport:
    """Computed delay = length of the longest viable path.

    Scans paths longest-first, returning at the first viable one.  If the
    scan exhausts ``max_paths`` the report is flagged ``exhausted`` and
    carries the topological delay as the safe answer.
    """
    checker = ViabilityChecker(circuit, model)
    return _scan(circuit, checker.model, checker.annotation,
                 checker.viable_cube, max_paths)


def sensitizable_delay(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    max_paths: int = 200000,
) -> DelayReport:
    """Length of the longest statically sensitizable path.

    The paper warns this can be *optimistic* as a delay estimate ("paths
    which are not statically sensitizable may still contribute to the
    delay"); it is reported for comparison and used by KMS only as the
    (sound) termination test, never as the delay claim.
    """
    from .sensitize import SensitizationChecker

    model = model if model is not None else AsBuiltDelayModel()
    checker = SensitizationChecker(circuit)
    ann = analyze(circuit, model)
    return _scan(circuit, model, ann, checker.sensitizing_cube, max_paths)


def _scan(circuit, model, annotation, cube_fn, max_paths) -> DelayReport:
    examined = 0
    for path in iter_paths_longest_first(
        circuit, model, annotation, max_paths=max_paths
    ):
        examined += 1
        cube = cube_fn(path)
        if cube is not None:
            return DelayReport(
                delay=path.length,
                path=path,
                cube=cube,
                paths_examined=examined,
            )
    exhausted = examined >= max_paths
    return DelayReport(
        delay=annotation.delay if exhausted else 0.0,
        path=None,
        cube=None,
        paths_examined=examined,
        exhausted=exhausted,
    )
