"""Static sensitization (Definition 4.11).

"A path is said to be statically sensitizable if there exists an input
cube which sets all the side-inputs to the path at noncontrolling
values."  We reduce the existence question to SAT: Tseitin-encode the
circuit and assert, for every side-input connection of every gate along
the path, that the driving signal equals the gate's noncontrolling value.

NOT/BUF gates have no side inputs.  A gate with two path positions (both
of a gate's pins on the path -- possible with our multi-edge connections)
contributes only its genuinely off-path pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..network import Circuit, GateType, noncontrolling_value
from ..sat import CircuitEncoder, Solver
from .paths import Path


@dataclass(frozen=True)
class SideInput:
    """One side-input constraint: connection ``cid`` into path gate
    ``gate`` must carry ``value`` (the gate's noncontrolling value)."""

    cid: int
    gate: int
    value: int


def side_inputs(circuit: Circuit, path: Path) -> List[SideInput]:
    """The side-input constraints of a path (Definition 4.10).

    Only AND/NAND/OR/NOR gates have controlling values; XOR-family gates
    must be decomposed away before sensitization questions are asked
    (KMS precondition), and NOT/BUF contribute nothing.
    """
    result: List[SideInput] = []
    for i, gid in enumerate(path.gates):
        gate = circuit.gates[gid]
        if gate.gtype in (GateType.NOT, GateType.BUF):
            continue
        if gate.gtype in (GateType.XOR, GateType.XNOR):
            raise ValueError(
                "sensitization is undefined for undecomposed XOR gates"
            )
        on_path = path.conns[i]
        ncv = noncontrolling_value(gate.gtype)
        for cid in gate.fanin:
            if cid != on_path:
                result.append(SideInput(cid=cid, gate=gid, value=ncv))
    return result


class SensitizationChecker:
    """Reusable SAT context for sensitization queries on one circuit.

    The circuit clauses are encoded once; each path query is a
    solve-under-assumptions call, so checking many paths (the inner loop
    of both KMS and the false-path-aware delay computation) shares all
    learned clauses.

    The circuit must not be mutated while a checker is alive.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        encoder = CircuitEncoder()
        self.var = encoder.encode(circuit)
        self.solver = Solver(encoder.cnf)

    def assumptions_for(self, path: Path) -> List[int]:
        """The assumption literals asserting all side-inputs
        noncontrolling."""
        lits = []
        for si in side_inputs(self.circuit, path):
            src = self.circuit.conns[si.cid].src
            v = self.var[src]
            lits.append(v if si.value else -v)
        return lits

    def sensitizing_cube(self, path: Path) -> Optional[Dict[int, int]]:
        """A PI assignment statically sensitizing the path, or None.

        The returned cube maps every PI gid to 0/1 (a full minterm taken
        from the SAT model; any minterm of the sensitizing cube serves).
        """
        if self.solver.solve(self.assumptions_for(path)):
            model = self.solver.model()
            return {
                gid: int(model.get(self.var[gid], False))
                for gid in self.circuit.inputs
            }
        return None

    def is_sensitizable(self, path: Path) -> bool:
        return self.sensitizing_cube(path) is not None


def statically_sensitizable(
    circuit: Circuit, path: Path
) -> Optional[Dict[int, int]]:
    """One-shot convenience wrapper around :class:`SensitizationChecker`."""
    return SensitizationChecker(circuit).sensitizing_cube(path)
