"""Hierarchical timing: interface-model extraction over partitions.

Implements Li et al.'s static timing model extraction ("Static Timing
Model Extraction for Combinational Circuits", arXiv 1705.02610) on top
of the repo's incremental STA: a :class:`Circuit` is carved into
partitions (user-hinted block boundaries, e.g. the carry-skip adder's
ripple blocks, or derived single-output cones), each partition is
collapsed into a :class:`TimingModel` -- pin-to-pin max-delay arcs plus
the internal critical-path witnesses needed to re-expand a path on
demand -- and :class:`HierSTA` then runs
:class:`~repro.timing.sta.IncrementalSTA`-compatible analysis over the
partition graph.

Three properties make the hierarchy free of approximation here:

* **Exactness.**  Every delay quantity in this repo is an integer-valued
  float (unit/paper delays, ``randint`` fuzz delays), so regrouping a
  path sum at a partition boundary is exact and the hierarchical
  arrival/dist/path-count values are bit-identical to the flat engine's.
  The property suite (``tests/timing/test_hier_property.py``) asserts
  ``==`` on every float.  (With genuinely fractional delays the
  decomposition would still be a correct longest-path algorithm, but
  bit-identity with the flat grouping is only guaranteed for sums that
  are exact in binary floating point -- integers being the common case.)
* **Model sharing.**  A partition's model is keyed by a *local* content
  fingerprint -- gate types, model-evaluated gate/edge delays, internal
  wiring, and the pin interface, with crossing edges anonymized to pin
  slots -- so every repeated block (all ``n/b`` blocks of ``csa n.b``,
  every slice of a ripple-carry adder) shares one extracted model, and a
  :class:`ModelStore` backed by the engine's
  :class:`~repro.engine.cache.ResultCache` makes warm sweeps hit disk.
* **Laziness.**  Only boundary values are maintained eagerly: arrival
  times at *out pins* (members with external fanout) and
  ``dist``/``npaths`` at *entry members* (members with external fanin).
  Those are exactly the values any top-level relaxation can read, so the
  flat relaxation helpers work unchanged outside partitions.  Interior
  values materialize on demand (annotation access), per partition, via
  cheap arc arithmetic -- counted as ``arcs_evaluated`` and
  ``flat_relaxations_avoided`` instead of relaxations.

Partitions need not be convex: a pin-to-gate arc is finite only when an
internal path exists, so re-entrant external routes simply show up as
additional pins.  KMS mutations mark partitions dirty through the PR-3
touched-gate sets (dirty partition -> re-fingerprint -> model-store
lookup -> re-extract only on miss); a partition KMS keeps mutating is
lazily flattened back into top-level gates after ``flatten_after``
touches.
"""

from __future__ import annotations

import hashlib
import heapq
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..network import Circuit, GateType
from ..network.gates import is_simple

#: Gates whose forward value is pinned (INPUT arrival is a circuit
#: property, constants never transition): computing them is an
#: assignment, not a relaxation over fanin edges, so HierSTA does not
#: charge ``arrival_relaxations`` for them.  Symmetrically for OUTPUT
#: markers backward (``dist = 0`` by definition).
_PINNED_FWD = (GateType.INPUT, GateType.CONST0, GateType.CONST1)
from .models import AsBuiltDelayModel, DelayModel, NEVER
from .sta import TimingAnnotation, _gate_arrival, _gate_dist

#: Version tag hashed into every model fingerprint and stored with every
#: cached payload; bump it whenever the extraction math changes.
MODEL_SCHEME = "repro.timing.hier.model/1"

#: ResultCache stage name for persisted models.
MODEL_STAGE = "timing_hier_model"

#: Environment switch: any value but "0" (or unset) enables the
#: hierarchical engine wherever callers pass ``hier=None``.
HIER_ENV = "REPRO_TIMING_HIER"

#: Counters the hierarchical engine charges through kms/telemetry.
HIER_COUNTERS = (
    "models_extracted",
    "model_cache_hits",
    "partitions_dirty",
    "arcs_evaluated",
    "flat_relaxations_avoided",
    "model_relaxations",
)


def hier_enabled() -> bool:
    """Is the hierarchical engine the default?  (``REPRO_TIMING_HIER=0``
    forces the verbatim flat path -- the A/B oracle.)"""
    return os.environ.get(HIER_ENV, "1") != "0"


# ---------------------------------------------------------------------- #
# partitioner
# ---------------------------------------------------------------------- #


def partition_circuit(
    circuit: Circuit,
    hints: Optional[Sequence[Sequence[int]]] = None,
    min_gates: int = 3,
) -> List[List[int]]:
    """Carve the circuit into partitions (disjoint gid groups).

    ``hints`` (default: the circuit's own :attr:`Circuit.partition_hints`,
    e.g. the carry-skip generator's per-block gid ranges) wins when
    present; otherwise single-output cones are derived by chasing
    single-fanout edges.  Either way the result contains only existing
    simple logic gates, groups are disjoint, and groups smaller than
    ``min_gates`` are dropped (their gates stay top-level).
    """
    if hints is None:
        hints = getattr(circuit, "partition_hints", None)
    if hints:
        return _validated_groups(circuit, hints, min_gates)
    return _single_output_cones(circuit, min_gates)


def _validated_groups(
    circuit: Circuit, groups: Sequence[Sequence[int]], min_gates: int
) -> List[List[int]]:
    seen: Set[int] = set()
    result: List[List[int]] = []
    for group in groups:
        members = []
        for gid in group:
            gate = circuit.gates.get(gid)
            if gate is None or not is_simple(gate.gtype) or gid in seen:
                continue
            seen.add(gid)
            members.append(gid)
        if len(members) >= min_gates:
            result.append(sorted(members))
    return result


def _single_output_cones(
    circuit: Circuit, min_gates: int
) -> List[List[int]]:
    """Default partitioner: maximal single-output regions.

    Walking reverse-topologically, a simple gate whose sole fanout edge
    feeds an already-rooted simple gate joins that gate's cone; everything
    else roots its own.  Linear, deterministic, and convex by
    construction (though :class:`HierSTA` does not require convexity).
    """
    root: Dict[int, int] = {}
    for gid in reversed(circuit.topological_order()):
        gate = circuit.gates[gid]
        if not is_simple(gate.gtype):
            continue
        if len(gate.fanout) == 1:
            dst = circuit.conns[gate.fanout[0]].dst
            if dst in root:
                root[gid] = root[dst]
                continue
        root[gid] = gid
    cones: Dict[int, List[int]] = {}
    for gid, r in root.items():
        cones.setdefault(r, []).append(gid)
    return [
        sorted(members)
        for _r, members in sorted(cones.items())
        if len(members) >= min_gates
    ]


# ---------------------------------------------------------------------- #
# the extracted model
# ---------------------------------------------------------------------- #


@dataclass
class TimingModel:
    """Pin-to-pin timing of one partition fingerprint.

    Local gate indices are positions in the partition's sorted-gid member
    list; pins are crossing *input* connections in canonical order (scan
    members in local order, fanin pins in pin order); ``out_locals`` are
    the local indices of members with external fanout, ascending.

    * ``fwd[p][i]`` -- longest path entering at pin ``p`` (starting with
      the crossing edge's delay) through local gate ``i``'s output, or
      :data:`NEVER` when ``i`` is unreachable from ``p``.
    * ``bwd[i][q]`` -- longest internal path from gate ``i``'s output to
      out pin ``q``'s output (``0.0`` on the diagonal).
    * ``bwd_npaths[i][q]`` -- number of internal paths achieving it.
    * ``witnesses[(p, q)]`` -- the arc's critical path as
      ``(local_gate, fanin_pin_slot)`` steps, first step on the crossing
      edge, for on-demand re-expansion (:func:`expand_witness`).

    All sums are grouped exactly as the flat engine groups them
    (``(conn + gate) + suffix`` backward, left-associated forward), so
    applying a model reproduces the flat floats bit-for-bit on
    integer-valued delays.
    """

    num_gates: int
    num_pins: int
    out_locals: List[int]
    fwd: List[List[float]]
    bwd: List[List[float]]
    bwd_npaths: List[List[int]]
    witnesses: Dict[Tuple[int, int], List[Tuple[int, int]]] = field(
        default_factory=dict
    )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able encoding (NEVER = -inf survives python's json)."""
        return {
            "scheme": MODEL_SCHEME,
            "num_gates": self.num_gates,
            "num_pins": self.num_pins,
            "out_locals": list(self.out_locals),
            "fwd": [list(row) for row in self.fwd],
            "bwd": [list(row) for row in self.bwd],
            "bwd_npaths": [list(row) for row in self.bwd_npaths],
            "witnesses": [
                [p, q, [list(step) for step in steps]]
                for (p, q), steps in sorted(self.witnesses.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimingModel":
        if data.get("scheme") != MODEL_SCHEME:
            raise ValueError(
                f"not a serialized timing model: {data.get('scheme')!r}"
            )
        return cls(
            num_gates=int(data["num_gates"]),
            num_pins=int(data["num_pins"]),
            out_locals=[int(q) for q in data["out_locals"]],
            fwd=[[float(v) for v in row] for row in data["fwd"]],
            bwd=[[float(v) for v in row] for row in data["bwd"]],
            bwd_npaths=[
                [int(v) for v in row] for row in data["bwd_npaths"]
            ],
            witnesses={
                (int(p), int(q)): [
                    (int(i), int(slot)) for i, slot in steps
                ]
                for p, q, steps in data["witnesses"]
            },
        )


def _encode_partition(
    circuit: Circuit,
    model: DelayModel,
    gates: Sequence[int],
    local: Dict[int, int],
) -> Tuple[tuple, List[int], List[int]]:
    """Canonical local encoding of a partition instance.

    Returns ``(key, pins, out_gids)`` where ``key`` is hashable and
    identical for timing-identical blocks (crossing edges appear as pin
    slots, never as external gids), ``pins`` lists the crossing input
    connection cids in canonical order, and ``out_gids`` the members with
    at least one external fanout edge, ascending.
    """
    pins: List[int] = []
    enc_gates = []
    for gid in gates:
        gate = circuit.gates[gid]
        pin_enc = []
        for cid in gate.fanin:
            conn = circuit.conns[cid]
            d = model.conn_delay(circuit, cid)
            if conn.src in local:
                pin_enc.append(("g", local[conn.src], d))
            else:
                pin_enc.append(("x", len(pins), d))
                pins.append(cid)
        enc_gates.append(
            (
                gate.gtype.value,
                model.gate_delay(circuit, gid),
                tuple(pin_enc),
            )
        )
    out_gids = [
        gid
        for gid in gates
        if any(
            circuit.conns[cid].dst not in local
            for cid in circuit.gates[gid].fanout
        )
    ]
    key = (
        MODEL_SCHEME,
        tuple(enc_gates),
        tuple(local[g] for g in out_gids),
    )
    return key, pins, out_gids


def _fingerprint(key: tuple) -> str:
    return hashlib.sha256(repr(key).encode()).hexdigest()


def extract_model(key: tuple) -> TimingModel:
    """Extract the timing model from a canonical partition encoding.

    Pure function of the encoding: fingerprint-equal instances get
    byte-identical models regardless of which instance triggered the
    extraction (the cache-hit-equals-cold-extraction property).
    """
    _scheme, enc_gates, out_locals = key
    n = len(enc_gates)
    num_pins = sum(
        1 for _t, _d, pin_enc in enc_gates for e in pin_enc if e[0] == "x"
    )
    gdelay = [d for _t, d, _p in enc_gates]

    # internal adjacency + local topological order (Kahn, smallest-index
    # first: deterministic, derived from the encoding alone)
    fan_out: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    indeg = [0] * n
    for i, (_t, _d, pin_enc) in enumerate(enc_gates):
        for e in pin_enc:
            if e[0] == "g":
                fan_out[e[1]].append((i, e[2]))
                indeg[i] += 1
    heap = [i for i in range(n) if indeg[i] == 0]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        i = heapq.heappop(heap)
        order.append(i)
        for j, _d in fan_out[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                heapq.heappush(heap, j)

    # forward arcs: longest path from each pin, left-associated exactly
    # like the flat per-gate relaxation accumulates it
    fwd = [[NEVER] * n for _ in range(num_pins)]
    for p in range(num_pins):
        row = fwd[p]
        for i in order:
            _t, _d, pin_enc = enc_gates[i]
            best = NEVER
            for e in pin_enc:
                if e[0] == "x":
                    if e[1] != p:
                        continue
                    t = e[2]
                else:
                    up = row[e[1]]
                    if up == NEVER:
                        continue
                    t = up + e[2]
                if t > best:
                    best = t
            if best != NEVER:
                row[i] = best + gdelay[i]

    # backward arcs + path counts: (conn + gate) + suffix grouping,
    # matching _gate_dist exactly
    bwd = [[NEVER] * len(out_locals) for _ in range(n)]
    bwd_npaths = [[0] * len(out_locals) for _ in range(n)]
    for qi, q in enumerate(out_locals):
        w = [NEVER] * n
        c = [0] * n
        w[q] = 0.0
        c[q] = 1
        for i in reversed(order):
            if i == q:
                continue
            best = NEVER
            count = 0
            for j, d in fan_out[i]:
                down = w[j]
                if down == NEVER:
                    continue
                t = (d + gdelay[j]) + down
                if t > best:
                    best = t
                    count = c[j]
                elif t == best:
                    count += c[j]
            w[i] = best
            c[i] = count if best != NEVER else 0
        for i in range(n):
            bwd[i][qi] = w[i]
            bwd_npaths[i][qi] = c[i]

    witnesses: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for p in range(num_pins):
        for qi, q in enumerate(out_locals):
            if fwd[p][q] == NEVER:
                continue
            witnesses[(p, qi)] = _backtrack_witness(
                enc_gates, fwd[p], p, q
            )
    return TimingModel(
        num_gates=n,
        num_pins=num_pins,
        out_locals=list(out_locals),
        fwd=fwd,
        bwd=bwd,
        bwd_npaths=bwd_npaths,
        witnesses=witnesses,
    )


def _backtrack_witness(
    enc_gates, row: List[float], p: int, q: int
) -> List[Tuple[int, int]]:
    """One critical ``(gate, fanin_slot)`` chain achieving ``row[q]``,
    walked back from the out pin to the entering crossing edge (first
    achieving fanin wins -- deterministic)."""
    steps: List[Tuple[int, int]] = []
    i = q
    while True:
        _t, _d, pin_enc = enc_gates[i]
        best = NEVER
        cands: List[Tuple[int, Optional[int], float]] = []
        for slot, e in enumerate(pin_enc):
            if e[0] == "x":
                if e[1] != p:
                    continue
                t = e[2]
                cands.append((slot, None, t))
            else:
                if row[e[1]] == NEVER:
                    continue
                t = row[e[1]] + e[2]
                cands.append((slot, e[1], t))
            if t > best:
                best = t
        for slot, src, t in cands:
            if t == best:
                steps.append((i, slot))
                if src is None:
                    steps.reverse()
                    return steps
                i = src
                break
        else:  # pragma: no cover - unreachable on a finite row
            raise AssertionError("witness backtrack lost the path")


def expand_witness(
    circuit: Circuit, instance: "PartitionInstance", pin: int, out_index: int
) -> List[int]:
    """Re-expand a pin-to-out-pin arc into the instance's connection ids
    (first cid is the crossing edge itself).  The repo's delay-sum
    invariant: those conn delays plus the traversed gate delays equal
    ``model.fwd[pin][out_local]`` exactly."""
    steps = instance.model.witnesses[(pin, out_index)]
    return [
        circuit.gates[instance.gates[i]].fanin[slot] for i, slot in steps
    ]


# ---------------------------------------------------------------------- #
# model store (memory + ResultCache-backed disk)
# ---------------------------------------------------------------------- #


class ModelStore:
    """Content-addressed store of extracted models.

    In-memory dict keyed by partition fingerprint, optionally backed by
    the engine's :class:`~repro.engine.cache.ResultCache` (stage
    ``timing_hier_model``) so warm sweeps re-load models from disk
    instead of re-extracting.
    """

    def __init__(self, cache: Optional[Any] = None) -> None:
        self._mem: Dict[str, TimingModel] = {}
        self.cache = cache
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._mem)

    def get(self, fingerprint: str) -> Optional[TimingModel]:
        model = self._mem.get(fingerprint)
        if model is not None:
            return model
        if self.cache is not None:
            data = self.cache.get(
                fingerprint, MODEL_STAGE, {"scheme": MODEL_SCHEME}
            )
            if data is not None:
                try:
                    model = TimingModel.from_dict(data)
                except (KeyError, TypeError, ValueError):
                    return None
                self._mem[fingerprint] = model
                self.disk_hits += 1
                return model
        return None

    def put(self, fingerprint: str, model: TimingModel) -> None:
        self._mem[fingerprint] = model
        if self.cache is not None:
            self.cache.put(
                fingerprint,
                MODEL_STAGE,
                {"scheme": MODEL_SCHEME},
                model.to_dict(),
            )


#: Process-wide disk cache backing newly created stores (set by the
#: engine runner / pool workers via :func:`configure_model_store`).
_shared_cache: Optional[Any] = None


def default_model_store() -> ModelStore:
    """A fresh store backed by the configured disk cache.

    Deliberately *not* a shared in-memory singleton: each analysis run
    starts with empty memory so its ``models_extracted`` /
    ``model_cache_hits`` counters are a pure function of the analyzed
    circuit -- identical whether jobs run serially, in a pool worker, or
    standalone (the campaign driver asserts exactly that).  Cross-run
    sharing happens through the disk cache instead."""
    return ModelStore(cache=_shared_cache)


def configure_model_store(cache: Optional[Any]) -> None:
    """Set the ResultCache behind every store :func:`default_model_store`
    hands out from now on (the engine runner calls this so warm sweeps
    re-load extracted models from disk)."""
    global _shared_cache
    _shared_cache = cache


# ---------------------------------------------------------------------- #
# partition instances
# ---------------------------------------------------------------------- #


@dataclass
class PartitionInstance:
    """One placed partition: members + pin wiring + shared model."""

    pid: int
    gates: List[int]  # sorted gids = canonical local order
    local: Dict[int, int]
    pins: List[int]  # crossing input cids, canonical order
    pin_index: Dict[int, int]
    out_gids: List[int]
    out_index: Dict[int, int]
    out_set: Set[int]
    entry_gids: List[int]  # members with external fanin, sorted
    entry_set: Set[int]
    fingerprint: str
    model: TimingModel
    from_cache: bool


class HierSTA:
    """Partition-graph incremental STA, drop-in for
    :class:`~repro.timing.sta.IncrementalSTA`.

    Maintains the same ``arrival`` / ``dist_to_po`` / ``npaths_to_po`` /
    ``delay`` state and the same ``refresh(touched)`` protocol, but only
    top-level gates are relaxed; partition members are served by their
    extracted models.  Boundary members (out pins forward, entry members
    backward) are kept eagerly consistent -- they are everything a
    top-level relaxation can read -- while interiors materialize lazily
    when an annotation actually reads them.

    Counter semantics (all deterministic):

    * ``arrival_relaxations`` / ``dist_relaxations`` -- flat per-gate
      relaxations of *top-level* gates only, same unit as
      :class:`IncrementalSTA` (the flat-vs-hier ratio is the win the CI
      gate locks).  Pinned values are not charged: an INPUT/CONST
      arrival and an OUTPUT marker's ``dist = 0`` are assignments, not
      relaxations over edges (the flat engine charges them anyway --
      honestly, since it really does run its relaxation helper there);
    * ``arcs_evaluated`` -- pin/out-arc arithmetic terms;
    * ``flat_relaxations_avoided`` -- member values produced by model
      application instead of relaxation;
    * ``models_extracted`` / ``model_cache_hits`` -- store misses/hits
      per (re)built partition instance;
    * ``partitions_dirty`` -- instances invalidated by touched gates;
    * ``model_relaxations`` -- extraction-internal relaxation work,
      amortized over every instance sharing the fingerprint.
    """

    def __init__(
        self,
        circuit: Circuit,
        model: Optional[DelayModel] = None,
        partitions: Optional[Sequence[Sequence[int]]] = None,
        store: Optional[ModelStore] = None,
        min_partition_gates: int = 3,
        flatten_after: int = 4,
    ) -> None:
        self.circuit = circuit
        self.model = model if model is not None else AsBuiltDelayModel()
        self.store = store if store is not None else default_model_store()
        self.flatten_after = flatten_after
        self.arrival: Dict[int, float] = {}
        self.dist_to_po: Dict[int, float] = {}
        self.npaths_to_po: Dict[int, int] = {}
        self._bwd_memo: Dict[int, tuple] = {}
        self.arrival_relaxations = 0
        self.dist_relaxations = 0
        self.models_extracted = 0
        self.model_cache_hits = 0
        self.partitions_dirty = 0
        self.arcs_evaluated = 0
        self.flat_relaxations_avoided = 0
        self.model_relaxations = 0
        self.delay = 0.0
        if partitions is None:
            partitions = partition_circuit(
                circuit, min_gates=min_partition_gates
            )
        self._parts: Dict[int, PartitionInstance] = {}
        self._pid_of: Dict[int, int] = {}
        self._touches: Dict[int, int] = {}
        self._arr_stale: Set[int] = set()
        self._dist_stale: Set[int] = set()
        pid = 0
        for group in partitions:
            members = sorted(
                g for g in set(group) if g not in self._pid_of
            )
            inst = self._make_instance(pid, members)
            if inst is None:
                continue
            self._parts[pid] = inst
            for g in inst.gates:
                self._pid_of[g] = pid
            self._touches[pid] = 0
            pid += 1
        self._rebuild()

    # -- instance construction ----------------------------------------- #

    def _make_instance(
        self, pid: int, gates: List[int]
    ) -> Optional[PartitionInstance]:
        circuit = self.circuit
        if len(gates) < 2:
            return None
        if not all(
            gid in circuit.gates and is_simple(circuit.gates[gid].gtype)
            for gid in gates
        ):
            return None
        local = {gid: i for i, gid in enumerate(gates)}
        key, pins, out_gids = _encode_partition(
            circuit, self.model, gates, local
        )
        fp = _fingerprint(key)
        model = self.store.get(fp)
        from_cache = model is not None
        if model is None:
            model = extract_model(key)
            self.models_extracted += 1
            self.model_relaxations += model.num_gates * (
                model.num_pins + len(model.out_locals)
            )
            self.store.put(fp, model)
        else:
            self.model_cache_hits += 1
        entry_gids = sorted(
            {circuit.conns[cid].dst for cid in pins}
        )
        return PartitionInstance(
            pid=pid,
            gates=gates,
            local=local,
            pins=pins,
            pin_index={cid: p for p, cid in enumerate(pins)},
            out_gids=out_gids,
            out_index={g: qi for qi, g in enumerate(out_gids)},
            out_set=set(out_gids),
            entry_gids=entry_gids,
            entry_set=set(entry_gids),
            fingerprint=fp,
            model=model,
            from_cache=from_cache,
        )

    # -- model application --------------------------------------------- #

    def _eval_arrival(self, inst: PartitionInstance, gid: int) -> float:
        """arr[g] = max over pins (arr[pin src] + fwd[pin][g]) -- exact
        for integer-valued delays (see module docstring)."""
        i = inst.local[gid]
        conns = self.circuit.conns
        arrival = self.arrival
        best = NEVER
        fwd = inst.model.fwd
        for p, cid in enumerate(inst.pins):
            a = fwd[p][i]
            if a == NEVER:
                continue
            self.arcs_evaluated += 1
            t = arrival.get(conns[cid].src, NEVER)
            if t == NEVER:
                continue
            t = t + a
            if t > best:
                best = t
        return best

    def _out_dist(self, inst: PartitionInstance, qi: int):
        """Longest continuation of out pin ``qi`` through its *external*
        fanout edges, grouped ``(conn + gate) + dist`` like
        :func:`_gate_dist`."""
        q = inst.out_gids[qi]
        circuit, model = self.circuit, self.model
        local = inst.local
        best = NEVER
        count = 0
        for cid in circuit.gates[q].fanout:
            conn = circuit.conns[cid]
            if conn.dst in local:
                continue
            down = self.dist_to_po.get(conn.dst, NEVER)
            if down == NEVER:
                continue
            self.arcs_evaluated += 1
            t = (
                model.conn_delay(circuit, cid)
                + model.gate_delay(circuit, conn.dst)
                + down
            )
            if t > best:
                best = t
                count = self.npaths_to_po[conn.dst]
            elif t == best:
                count += self.npaths_to_po[conn.dst]
        return best, count

    def _eval_dist(self, inst: PartitionInstance, gid: int):
        """dist[g] = max over out pins (bwd[g][q] + out_dist(q)), with
        npaths = sum over achieving arcs of internal x external counts."""
        i = inst.local[gid]
        bwd = inst.model.bwd
        nb = inst.model.bwd_npaths
        best = NEVER
        count = 0
        for qi in range(len(inst.out_gids)):
            w = bwd[i][qi]
            if w == NEVER:
                continue
            self.arcs_evaluated += 1
            od, on = self._out_dist(inst, qi)
            if od == NEVER:
                continue
            t = w + od
            if t > best:
                best = t
                count = nb[i][qi] * on
            elif t == best:
                count += nb[i][qi] * on
        return best, count if best != NEVER else 0

    # -- full build ----------------------------------------------------- #

    def _rebuild(self) -> None:
        circuit, model = self.circuit, self.model
        order = circuit.topological_order()
        self.arrival.clear()
        self.dist_to_po.clear()
        self.npaths_to_po.clear()
        self._bwd_memo.clear()
        self._arr_stale = set(self._parts)
        self._dist_stale = set(self._parts)
        pid_of = self._pid_of
        for gid in order:
            pid = pid_of.get(gid)
            if pid is None:
                self.arrival[gid] = _gate_arrival(
                    circuit, model, gid, self.arrival
                )
                if circuit.gates[gid].gtype not in _PINNED_FWD:
                    self.arrival_relaxations += 1
            else:
                inst = self._parts[pid]
                if gid in inst.out_set:
                    self.arrival[gid] = self._eval_arrival(inst, gid)
                    self.flat_relaxations_avoided += 1
        for gid in reversed(order):
            pid = pid_of.get(gid)
            if pid is None:
                d, n = _gate_dist(
                    circuit, model, gid, self.dist_to_po, self.npaths_to_po
                )
                if circuit.gates[gid].gtype is not GateType.OUTPUT:
                    self.dist_relaxations += 1
            elif gid in self._parts[pid].entry_set:
                d, n = self._eval_dist(self._parts[pid], gid)
                self.flat_relaxations_avoided += 1
            else:
                continue
            self.dist_to_po[gid] = d
            self.npaths_to_po[gid] = n
            self._bwd_memo[gid] = self._parent_key(gid, d, n)
        self._refresh_delay()

    def _refresh_delay(self) -> None:
        delay = 0.0
        for gid in self.circuit.outputs:
            a = self.arrival[gid]
            if a != NEVER:
                delay = max(delay, a)
        self.delay = delay

    def _parent_key(self, gid: int, dist: float, npaths: int) -> tuple:
        """Same parent-visible backward memo as IncrementalSTA: delay,
        fanin edges (+delays), dist, npaths."""
        circuit, model = self.circuit, self.model
        gate = circuit.gates[gid]
        return (
            model.gate_delay(circuit, gid),
            tuple(
                (cid, model.conn_delay(circuit, cid)) for cid in gate.fanin
            ),
            dist,
            npaths,
        )

    # -- refresh -------------------------------------------------------- #

    def refresh(self, touched: Iterable[int]) -> None:
        """Re-relax after a mutation described by the transforms'
        touched-gate sets (same contract as IncrementalSTA.refresh)."""
        circuit = self.circuit
        gates = circuit.gates
        dirty: Set[int] = {g for g in touched if g in gates}
        for store in (
            self.arrival,
            self.dist_to_po,
            self.npaths_to_po,
            self._bwd_memo,
        ):
            stale = [gid for gid in store if gid not in gates]
            for gid in stale:
                del store[gid]
        dirty_pids: Set[int] = set()
        for gid in [g for g in self._pid_of if g not in gates]:
            dirty_pids.add(self._pid_of.pop(gid))
        for g in dirty:
            pid = self._pid_of.get(g)
            if pid is not None:
                dirty_pids.add(pid)
        fwd_seeds: Set[int] = set()
        bwd_seeds: Set[int] = set()
        for pid in sorted(dirty_pids):
            self.partitions_dirty += 1
            self._touches[pid] += 1
            inst = self._parts[pid]
            members = [g for g in inst.gates if self._pid_of.get(g) == pid]
            keep = [
                g for g in members if is_simple(gates[g].gtype)
            ]
            rebuilt = None
            if self._touches[pid] < self.flatten_after:
                rebuilt = self._make_instance(pid, keep)
            if rebuilt is None:
                # lazily flatten: KMS keeps editing here (or the region
                # degenerated) -- dissolve back to top-level gates
                for g in members:
                    self._pid_of.pop(g, None)
                del self._parts[pid]
                self._arr_stale.discard(pid)
                self._dist_stale.discard(pid)
                fwd_seeds.update(members)
                bwd_seeds.update(members)
            else:
                dropped = set(members) - set(keep)
                for g in dropped:
                    self._pid_of.pop(g, None)
                fwd_seeds.update(dropped)
                bwd_seeds.update(dropped)
                self._parts[pid] = rebuilt
                self._arr_stale.add(pid)
                self._dist_stale.add(pid)
                fwd_seeds.update(rebuilt.out_gids)
                bwd_seeds.update(rebuilt.entry_gids)
        top_dirty = {g for g in dirty if self._pid_of.get(g) is None}
        fwd_seeds |= top_dirty
        bwd_seeds |= top_dirty
        if fwd_seeds or bwd_seeds:
            order = circuit.topological_order()
            pos = {gid: i for i, gid in enumerate(order)}
            self._relax_forward(fwd_seeds, pos)
            self._relax_backward(bwd_seeds, pos)
        self._refresh_delay()

    # -- propagation ----------------------------------------------------#

    def _relax_forward(self, seeds: Set[int], pos: Dict[int, int]) -> None:
        circuit, model = self.circuit, self.model
        heap: List[Tuple[int, int]] = []
        queued: Set[int] = set()

        def push(gid: int) -> None:
            if gid not in queued:
                queued.add(gid)
                heapq.heappush(heap, (pos[gid], gid))

        for gid in seeds:
            push(gid)
        while heap:
            _, gid = heapq.heappop(heap)
            queued.discard(gid)
            pid = self._pid_of.get(gid)
            if pid is None:
                new = _gate_arrival(circuit, model, gid, self.arrival)
                if circuit.gates[gid].gtype not in _PINNED_FWD:
                    self.arrival_relaxations += 1
            else:
                inst = self._parts[pid]
                if gid not in inst.out_set:
                    continue  # interior: covered by the stale flag
                new = self._eval_arrival(inst, gid)
                self.flat_relaxations_avoided += 1
            old = self.arrival.get(gid)
            self.arrival[gid] = new
            if old is not None and new == old:
                continue
            for cid in circuit.gates[gid].fanout:
                dst = circuit.conns[cid].dst
                dpid = self._pid_of.get(dst)
                if dpid is None:
                    push(dst)
                    continue
                inst2 = self._parts[dpid]
                self._arr_stale.add(dpid)
                # an arrival change entering a partition surfaces only at
                # the out pins its pin can reach -- push exactly those
                p = inst2.pin_index.get(cid)
                if p is None:  # internal edge of gid's own partition
                    if dst in inst2.out_set:
                        push(dst)
                    continue
                fwd = inst2.model.fwd[p]
                for q in inst2.out_gids:
                    if fwd[inst2.local[q]] != NEVER:
                        push(q)

    def _relax_backward(self, seeds: Set[int], pos: Dict[int, int]) -> None:
        circuit, model = self.circuit, self.model
        heap: List[Tuple[int, int]] = []
        queued: Set[int] = set()

        def push(gid: int) -> None:
            if gid not in queued:
                queued.add(gid)
                heapq.heappush(heap, (-pos[gid], gid))

        for gid in seeds:
            push(gid)
        while heap:
            _, gid = heapq.heappop(heap)
            queued.discard(gid)
            pid = self._pid_of.get(gid)
            if pid is None:
                new = _gate_dist(
                    circuit, model, gid, self.dist_to_po, self.npaths_to_po
                )
                if circuit.gates[gid].gtype is not GateType.OUTPUT:
                    self.dist_relaxations += 1
            else:
                inst = self._parts[pid]
                if gid not in inst.entry_set:
                    continue
                new = self._eval_dist(inst, gid)
                self.flat_relaxations_avoided += 1
            self.dist_to_po[gid], self.npaths_to_po[gid] = new
            key = self._parent_key(gid, *new)
            if self._bwd_memo.get(gid) == key:
                continue
            self._bwd_memo[gid] = key
            for cid in circuit.gates[gid].fanin:
                src = circuit.conns[cid].src
                spid = self._pid_of.get(src)
                if spid is None:
                    push(src)
                    continue
                inst2 = self._parts[spid]
                self._dist_stale.add(spid)
                if spid == pid:
                    if src in inst2.entry_set:
                        push(src)
                    continue
                # a dist change below out pin `src` surfaces at the entry
                # members that reach it internally
                q = inst2.out_index[src]
                bwd = inst2.model.bwd
                for d in inst2.entry_gids:
                    if bwd[inst2.local[d]][q] != NEVER:
                        push(d)

    # -- lazy materialization ------------------------------------------ #

    def _ensure_arrival(self, gid: int) -> None:
        pid = self._pid_of.get(gid)
        if pid is None or pid not in self._arr_stale:
            return
        inst = self._parts[pid]
        if gid in inst.out_set:
            return  # boundary values are always fresh
        self._materialize_arrival(pid)

    def _ensure_dist(self, gid: int) -> None:
        pid = self._pid_of.get(gid)
        if pid is None or pid not in self._dist_stale:
            return
        inst = self._parts[pid]
        if gid in inst.entry_set:
            return
        self._materialize_dist(pid)

    def _materialize_arrival(self, pid: int) -> None:
        """Interior arrivals depend only on maintained external pin
        sources, so materialization is order-free per member."""
        inst = self._parts[pid]
        for gid in inst.gates:
            if gid in inst.out_set:
                continue
            self.arrival[gid] = self._eval_arrival(inst, gid)
            self.flat_relaxations_avoided += 1
        self._arr_stale.discard(pid)

    def _materialize_dist(self, pid: int) -> None:
        inst = self._parts[pid]
        for gid in inst.gates:
            if gid in inst.entry_set:
                continue
            d, n = self._eval_dist(inst, gid)
            self.dist_to_po[gid] = d
            self.npaths_to_po[gid] = n
            self.flat_relaxations_avoided += 1
        self._dist_stale.discard(pid)

    def materialize_all(self) -> None:
        """Fill every interior value (tests / full reports)."""
        for pid in list(self._arr_stale):
            self._materialize_arrival(pid)
        for pid in list(self._dist_stale):
            self._materialize_dist(pid)

    # -- IncrementalSTA-compatible API --------------------------------- #

    def num_longest_paths(self) -> int:
        """Identical formula to IncrementalSTA (PIs are always
        top-level, so the maintained values suffice)."""
        if self.delay <= 0.0:
            return 0
        total = 0
        for pi in self.circuit.inputs:
            d = self.dist_to_po.get(pi, NEVER)
            if d == NEVER:
                continue
            if self.model.input_arrival(self.circuit, pi) + d == self.delay:
                total += self.npaths_to_po.get(pi, 0)
        return total

    def annotation(self, compute_slack: bool = False) -> TimingAnnotation:
        """A TimingAnnotation whose dicts are *live lazy views*:
        partition interiors materialize on first access and the views
        read the engine's current state (they are invalidated by the
        next refresh -- the KMS loop re-reads its annotation every
        iteration, so snapshot semantics are not needed here; tests
        wanting plain dicts call :meth:`materialize_all` first)."""
        if compute_slack:
            self.materialize_all()
        ann = TimingAnnotation(
            arrival=_LazyTimingView(self, self.arrival, "arrival"),
            dist_to_po=_LazyTimingView(self, self.dist_to_po, "dist"),
            delay=self.delay,
        )
        if compute_slack:
            for gid in self.arrival:
                a = ann.arrival[gid]
                d = ann.dist_to_po[gid]
                if a == NEVER or d == NEVER:
                    ann.required[gid] = float("inf")
                    ann.slack[gid] = float("inf")
                else:
                    ann.required[gid] = ann.delay - d
                    ann.slack[gid] = ann.required[gid] - a
        return ann

    def counters(self) -> Dict[str, float]:
        """The hierarchical work counters (kms merges these into its
        result counters / telemetry)."""
        return {
            "models_extracted": self.models_extracted,
            "model_cache_hits": self.model_cache_hits,
            "partitions_dirty": self.partitions_dirty,
            "arcs_evaluated": self.arcs_evaluated,
            "flat_relaxations_avoided": self.flat_relaxations_avoided,
            "model_relaxations": self.model_relaxations,
        }

    # -- introspection -------------------------------------------------- #

    @property
    def partitions(self) -> List[PartitionInstance]:
        """Live partition instances, by pid."""
        return [self._parts[pid] for pid in sorted(self._parts)]

    def partition_of(self, gid: int) -> Optional[int]:
        return self._pid_of.get(gid)

    def critical_arc_path(
        self, pid: int, pin: int, out_index: int
    ) -> List[int]:
        """Expand one partition arc's critical-path witness to cids."""
        return expand_witness(self.circuit, self._parts[pid], pin, out_index)


class _LazyTimingView:
    """Mapping view over HierSTA state that materializes a partition's
    interior on first access.  Supports the access patterns the repo's
    annotation consumers actually use (indexing, ``.get``, containment,
    iteration); whole-dict operations materialize everything."""

    __slots__ = ("_sta", "_store", "_kind")

    def __init__(self, sta: HierSTA, store: Dict[int, Any], kind: str):
        self._sta = sta
        self._store = store
        self._kind = kind

    def _ensure(self, key: int) -> None:
        if self._kind == "arrival":
            self._sta._ensure_arrival(key)
        else:
            self._sta._ensure_dist(key)

    def __getitem__(self, key: int):
        self._ensure(key)
        return self._store[key]

    def get(self, key: int, default=None):
        self._ensure(key)
        return self._store.get(key, default)

    def __contains__(self, key: int) -> bool:
        self._ensure(key)
        return key in self._store

    def _materialized(self) -> Dict[int, Any]:
        self._sta.materialize_all()
        return self._store

    def __iter__(self):
        return iter(self._materialized())

    def __len__(self) -> int:
        return len(self._materialized())

    def keys(self):
        return self._materialized().keys()

    def values(self):
        return self._materialized().values()

    def items(self):
        return self._materialized().items()

    def __eq__(self, other) -> bool:
        mine = dict(self._materialized())
        if isinstance(other, _LazyTimingView):
            other = dict(other._materialized())
        return mine == other

    def __repr__(self) -> str:
        return (
            f"<_LazyTimingView {self._kind} of "
            f"{len(self._store)} maintained values>"
        )
