"""Speedtest generation: the paper's open problem, made executable.

Section III: "the design must undergo a *speedtest* in addition to the
conventional stuck-at-fault testing ... The speedtest for a fault in the
circuit involves finding a vector that distinguishes between the
temporal behavior in the true and faulty circuits.  This problem has not
been tackled yet by researchers."

Here we tackle it the honest brute-force way the small benchmark
circuits permit, following the tau-sampling framing of McGeer et al.'s
r-(ir)redundancy [17]:

* a fault is **tau-detected** by an input transition (v1 -> v2) if
  sampling the faulty circuit's outputs at time tau yields a value
  different from the good circuit's settled response to v2 (a logically
  testable fault is tau-detected by its static test for large tau; the
  interesting case is a *logically untestable* fault, like the
  carry-skip adder's, that only misbehaves at speed);
* a fault is **tau-redundant** if no transition tau-detects it -- a
  part with that fault meets the clock despite being faulty.

`find_speedtest` searches all transition pairs (exponential -- oracle
grade, guarded); `needs_speedtest` asks the paper's headline question:
is there a fault that ordinary stuck-at testing misses but that breaks
the circuit at the clock period?  For KMS outputs the answer is
provably no (every fault is logically testable), which is the
algorithm's selling point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..atpg.faults import Fault, inject
from ..network import Circuit
from ..sim.events import output_waveforms, sample_waveform


@dataclass
class Speedtest:
    """A transition that exposes a fault at the sampling time."""

    fault: Fault
    #: PI gid -> value, the settled previous vector.
    before: Dict[int, int]
    #: PI gid -> value, the launched vector.
    after: Dict[int, int]
    #: sampling time (the clock period).
    tau: float
    #: PO gid where good and faulty samples differ.
    output: int


def _decode(circuit: Circuit, bits: int) -> Dict[int, int]:
    return {
        gid: (bits >> i) & 1 for i, gid in enumerate(circuit.inputs)
    }


def tau_detects(
    circuit: Circuit,
    faulty: Circuit,
    before: Dict[int, int],
    after: Dict[int, int],
    tau: float,
) -> Optional[int]:
    """PO gid where the faulty circuit, sampled at ``tau``, disagrees
    with the good circuit's settled response; None if none."""
    expected = circuit.evaluate(after)
    faulty_waves = output_waveforms(faulty, before, after)
    for po in circuit.outputs:
        good_value = expected[po]
        faulty_value = sample_waveform(faulty_waves[po], tau)
        if faulty_value != good_value:
            return po
    return None


def find_speedtest(
    circuit: Circuit,
    fault: Fault,
    tau: float,
    max_inputs: int = 10,
) -> Optional[Speedtest]:
    """Exhaustively search for a transition that tau-detects the fault.

    Also returns static detections (a transition whose settled faulty
    response is wrong); the speedtest-proper cases are those where the
    fault is logically untestable yet a transition is found.
    """
    n = len(circuit.inputs)
    if n > max_inputs:
        raise ValueError(
            f"find_speedtest is exhaustive; {n} inputs > {max_inputs}"
        )
    faulty = inject(circuit, fault)
    for a in range(1 << n):
        before = _decode(circuit, a)
        for b in range(1 << n):
            if a == b:
                continue
            after = _decode(circuit, b)
            po = tau_detects(circuit, faulty, before, after, tau)
            if po is not None:
                return Speedtest(
                    fault=fault,
                    before=before,
                    after=after,
                    tau=tau,
                    output=po,
                )
    return None


def is_tau_redundant(
    circuit: Circuit, fault: Fault, tau: float, max_inputs: int = 10
) -> bool:
    """True if no transition exposes the fault at sampling time tau
    (the r-redundancy of [17], transition-pair flavour)."""
    return find_speedtest(circuit, fault, tau, max_inputs) is None


@dataclass
class SpeedtestReport:
    """Which faults need a speedtest at clock ``tau``."""

    tau: float
    #: logically untestable faults that a speedtest CAN catch.
    speedtestable: List[Speedtest]
    #: logically untestable faults invisible even at speed.
    invisible: List[Fault]
    #: logically testable faults (ordinary ATPG handles these).
    testable: List[Fault]

    @property
    def needs_speedtest(self) -> bool:
        """Does correct at-speed operation require more than stuck-at
        testing?"""
        return bool(self.speedtestable)


def speedtest_report(
    circuit: Circuit,
    tau: float,
    faults: Optional[Iterable[Fault]] = None,
    max_inputs: int = 10,
) -> SpeedtestReport:
    """Classify every (collapsed) fault at clock period ``tau``.

    On the redundant carry-skip block this exhibits the paper's hazard:
    gate10's s-a-0 is logically untestable but speedtestable at tau = 8.
    On a KMS output the ``speedtestable`` list is empty by construction.
    """
    from ..atpg.faults import collapsed_faults
    from ..atpg.satatpg import SatAtpg

    engine = SatAtpg(circuit)
    report = SpeedtestReport(
        tau=tau, speedtestable=[], invisible=[], testable=[]
    )
    worklist = (
        list(faults) if faults is not None else collapsed_faults(circuit)
    )
    for fault in worklist:
        if engine.is_testable(fault):
            report.testable.append(fault)
            continue
        test = find_speedtest(circuit, fault, tau, max_inputs)
        if test is not None:
            report.speedtestable.append(test)
        else:
            report.invisible.append(fault)
    return report
