"""Static timing analysis: arrival times, required times, slack.

The *computed delay* (Section V) of a circuit under a delay model starts
from the topological analysis here: the longest path ignoring logic
("static timing verifiers ... the delay of a circuit is determined to be
the longest path").  Sensitization-aware refinements (false-path aware
delay) live in :mod:`repro.timing.sensitize` and
:mod:`repro.timing.viability`, both of which consume this module's
arrival annotations.

Constant sources never transition, so their arrival time is -inf
(:data:`repro.timing.models.NEVER`); a gate fed only by constants also
never transitions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..network import Circuit, GateType
from .models import AsBuiltDelayModel, DelayModel, NEVER


@dataclass
class TimingAnnotation:
    """Arrival/required/slack annotations for one circuit + model pair.

    Attributes:
        arrival: gid -> time the gate's *output* settles.
        dist_to_po: gid -> longest delay from the gate's output to any PO
            (0 for OUTPUT markers; -inf if no PO is reachable).
        delay: the circuit's topological delay = max PO arrival
            (0.0 for circuits whose outputs are all constant).
        required: gid -> latest output time tolerable without exceeding
            ``delay``.
        slack: gid -> required - arrival.
    """

    arrival: Dict[int, float]
    dist_to_po: Dict[int, float]
    delay: float
    required: Dict[int, float] = field(default_factory=dict)
    slack: Dict[int, float] = field(default_factory=dict)


def _gate_arrival(
    circuit: Circuit,
    model: DelayModel,
    gid: int,
    arrival: Dict[int, float],
) -> float:
    """One forward relaxation: the gate's output settle time given its
    fanins' current arrival values.  Shared by the full and incremental
    engines so both produce bit-identical floats."""
    gate = circuit.gates[gid]
    if gate.gtype is GateType.INPUT:
        return model.input_arrival(circuit, gid)
    if gate.gtype in (GateType.CONST0, GateType.CONST1):
        return NEVER
    best = NEVER
    for cid in gate.fanin:
        conn = circuit.conns[cid]
        t = arrival[conn.src]
        if t == NEVER:
            continue
        t += model.conn_delay(circuit, cid)
        if t > best:
            best = t
    if best == NEVER:
        return NEVER
    return best + model.gate_delay(circuit, gid)


def _gate_dist(
    circuit: Circuit,
    model: DelayModel,
    gid: int,
    dist: Dict[int, float],
    npaths: Optional[Dict[int, int]] = None,
) -> Tuple[float, int]:
    """One backward relaxation: longest delay from the gate's output to
    any PO, plus (when ``npaths`` is given) the number of maximal paths
    achieving it."""
    gate = circuit.gates[gid]
    if gate.gtype is GateType.OUTPUT:
        return 0.0, 1
    best = NEVER
    count = 0
    for cid in gate.fanout:
        conn = circuit.conns[cid]
        down = dist[conn.dst]
        if down == NEVER:
            continue
        t = (
            model.conn_delay(circuit, cid)
            + model.gate_delay(circuit, conn.dst)
            + down
        )
        if t > best:
            best = t
            count = npaths[conn.dst] if npaths is not None else 0
        elif t == best and npaths is not None:
            count += npaths[conn.dst]
    if best == NEVER:
        count = 0
    return best, count


def analyze(
    circuit: Circuit, model: Optional[DelayModel] = None
) -> TimingAnnotation:
    """Run STA and return the full annotation."""
    model = model if model is not None else AsBuiltDelayModel()
    order = circuit.topological_order()
    arrival: Dict[int, float] = {}
    for gid in order:
        arrival[gid] = _gate_arrival(circuit, model, gid, arrival)

    dist: Dict[int, float] = {}
    for gid in reversed(order):
        dist[gid], _ = _gate_dist(circuit, model, gid, dist)

    delay = 0.0
    for gid in circuit.outputs:
        if arrival[gid] != NEVER:
            delay = max(delay, arrival[gid])

    ann = TimingAnnotation(arrival=arrival, dist_to_po=dist, delay=delay)
    for gid in order:
        a = arrival[gid]
        d = dist[gid]
        if a == NEVER or d == NEVER:
            ann.required[gid] = float("inf")
            ann.slack[gid] = float("inf")
        else:
            ann.required[gid] = delay - d
            ann.slack[gid] = ann.required[gid] - a
    return ann


class IncrementalSTA:
    """Dirty-cone incremental STA over a mutating circuit.

    Holds arrival times, ``dist_to_po``, and longest-path counts for one
    circuit + model pair, and re-relaxes only the affected region after a
    mutation: the transitive *fanout* of the touched gates for arrival
    times and the transitive *fanin* for ``dist_to_po``/path counts, with
    early cutoff as soon as a recomputed value is unchanged.  Touched
    sets are the ones returned by the transforms in
    :mod:`repro.network.transform` (see the module docstring there for
    the exact contract).

    Per-gate relaxations go through the same :func:`_gate_arrival` /
    :func:`_gate_dist` helpers as :func:`analyze`, so the incremental
    values are bit-identical to a from-scratch run -- the property suite
    (``tests/timing/test_incremental_property.py``) and the KMS A/B
    oracle both rely on that.

    Counters (deterministic, exported through engine telemetry):

    * ``arrival_relaxations`` -- forward per-gate recomputations;
      :func:`analyze` costs ``len(circuit.gates)`` of these, so the
      full-vs-incremental ratio is the dirty-cone win.
    * ``dist_relaxations`` -- backward per-gate recomputations.

    The backward pass stops propagating to a gate's fanin sources as
    soon as the gate's *parent-visible* state is unchanged.  A parent's
    relaxation reads, per fanout connection, exactly the connection
    delay, the child's gate delay, and the child's ``dist``/``npaths``
    -- so that tuple (plus the fanin connection ids, which change iff an
    edge was added or removed) is the memo key.  Seeding the backward
    heap with the touched gates alone is then sound: a touched gate
    whose key is unchanged cannot move any parent's value, and
    structural fanout changes always mark the parent itself touched
    (see the :mod:`repro.network.transform` contract).
    """

    def __init__(
        self, circuit: Circuit, model: Optional[DelayModel] = None
    ) -> None:
        self.circuit = circuit
        self.model = model if model is not None else AsBuiltDelayModel()
        self.arrival: Dict[int, float] = {}
        self.dist_to_po: Dict[int, float] = {}
        self.npaths_to_po: Dict[int, int] = {}
        #: gid -> parent-visible key (see class docstring); backward
        #: propagation to fanin sources happens only when it changes.
        self._bwd_memo: Dict[int, tuple] = {}
        self.arrival_relaxations = 0
        self.dist_relaxations = 0
        self.delay = 0.0
        self._rebuild()

    def _parent_key(self, gid: int, dist: float, npaths: int) -> tuple:
        """Everything a fanin source's own relaxation can read off this
        gate: its delay, its fanin edges (ids + delays), and the
        maintained backward values."""
        circuit, model = self.circuit, self.model
        gate = circuit.gates[gid]
        return (
            model.gate_delay(circuit, gid),
            tuple(
                (cid, model.conn_delay(circuit, cid)) for cid in gate.fanin
            ),
            dist,
            npaths,
        )

    def _rebuild(self) -> None:
        """Initial full relaxation (counts as one relaxation per gate per
        direction, same unit as the incremental updates)."""
        circuit, model = self.circuit, self.model
        order = circuit.topological_order()
        self.arrival.clear()
        self.dist_to_po.clear()
        self.npaths_to_po.clear()
        self._bwd_memo.clear()
        for gid in order:
            self.arrival[gid] = _gate_arrival(
                circuit, model, gid, self.arrival
            )
            self.arrival_relaxations += 1
        for gid in reversed(order):
            d, n = _gate_dist(
                circuit, model, gid, self.dist_to_po, self.npaths_to_po
            )
            self.dist_to_po[gid] = d
            self.npaths_to_po[gid] = n
            self._bwd_memo[gid] = self._parent_key(gid, d, n)
            self.dist_relaxations += 1
        self._refresh_delay()

    def _refresh_delay(self) -> None:
        delay = 0.0
        for gid in self.circuit.outputs:
            a = self.arrival[gid]
            if a != NEVER:
                delay = max(delay, a)
        self.delay = delay

    def refresh(self, touched: Iterable[int]) -> None:
        """Re-relax after a mutation described by ``touched``.

        ``touched`` is the union of the touched-gate sets returned by the
        transforms applied since the last refresh (stale gids of removed
        gates are tolerated and ignored).
        """
        circuit = self.circuit
        dirty: Set[int] = {g for g in touched if g in circuit.gates}
        for store in (
            self.arrival,
            self.dist_to_po,
            self.npaths_to_po,
            self._bwd_memo,
        ):
            stale = [gid for gid in store if gid not in circuit.gates]
            for gid in stale:
                del store[gid]
        if dirty:
            order = circuit.topological_order()
            pos = {gid: i for i, gid in enumerate(order)}
            self._relax_forward(dirty, pos)
            # A touched gate's own-delay / in-edge-delay change shifts its
            # *parents'* dist_to_po while leaving its own unchanged (dist
            # covers only the fanout side); the parent-visible memo key in
            # _relax_backward covers exactly those components, so seeding
            # with the touched gates alone reaches every moved parent.
            self._relax_backward(dirty, pos)
        self._refresh_delay()

    def _relax_forward(self, dirty: Set[int], pos: Dict[int, int]) -> None:
        circuit, model = self.circuit, self.model
        heap = [(pos[gid], gid) for gid in dirty]
        heapq.heapify(heap)
        queued = set(dirty)
        while heap:
            _, gid = heapq.heappop(heap)
            queued.discard(gid)
            old = self.arrival.get(gid)
            new = _gate_arrival(circuit, model, gid, self.arrival)
            self.arrival_relaxations += 1
            self.arrival[gid] = new
            if old is not None and new == old:
                continue
            for cid in circuit.gates[gid].fanout:
                dst = circuit.conns[cid].dst
                if dst not in queued:
                    queued.add(dst)
                    heapq.heappush(heap, (pos[dst], dst))

    def _relax_backward(self, dirty: Set[int], pos: Dict[int, int]) -> None:
        circuit, model = self.circuit, self.model
        heap = [(-pos[gid], gid) for gid in dirty]
        heapq.heapify(heap)
        queued = set(dirty)
        while heap:
            _, gid = heapq.heappop(heap)
            queued.discard(gid)
            new = _gate_dist(
                circuit, model, gid, self.dist_to_po, self.npaths_to_po
            )
            self.dist_relaxations += 1
            self.dist_to_po[gid], self.npaths_to_po[gid] = new
            key = self._parent_key(gid, *new)
            if self._bwd_memo.get(gid) == key:
                continue
            self._bwd_memo[gid] = key
            for cid in circuit.gates[gid].fanin:
                src = circuit.conns[cid].src
                if src not in queued:
                    queued.add(src)
                    heapq.heappush(heap, (-pos[src], src))

    def num_longest_paths(self) -> int:
        """Number of topologically-longest IO-paths, from the maintained
        path counts -- no enumeration."""
        if self.delay <= 0.0:
            return 0
        total = 0
        for pi in self.circuit.inputs:
            d = self.dist_to_po.get(pi, NEVER)
            if d == NEVER:
                continue
            if self.model.input_arrival(self.circuit, pi) + d == self.delay:
                total += self.npaths_to_po.get(pi, 0)
        return total

    def annotation(self, compute_slack: bool = False) -> TimingAnnotation:
        """A :class:`TimingAnnotation` view of the current state.

        The returned dicts are snapshots; mutating the circuit and
        refreshing does not invalidate a previously returned annotation.
        ``compute_slack`` fills ``required``/``slack`` (pure arithmetic
        over the maintained values, no extra relaxations).
        """
        ann = TimingAnnotation(
            arrival=dict(self.arrival),
            dist_to_po=dict(self.dist_to_po),
            delay=self.delay,
        )
        if compute_slack:
            for gid in self.arrival:
                a = ann.arrival[gid]
                d = ann.dist_to_po[gid]
                if a == NEVER or d == NEVER:
                    ann.required[gid] = float("inf")
                    ann.slack[gid] = float("inf")
                else:
                    ann.required[gid] = ann.delay - d
                    ann.slack[gid] = ann.required[gid] - a
        return ann


def topological_delay(
    circuit: Circuit, model: Optional[DelayModel] = None
) -> float:
    """The length of the longest (topological) path -- the delay a plain
    static timing verifier would report."""
    return analyze(circuit, model).delay


def critical_connections(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    annotation: Optional[TimingAnnotation] = None,
) -> List[int]:
    """Connections lying on at least one topologically-longest path."""
    model = model if model is not None else AsBuiltDelayModel()
    ann = annotation if annotation is not None else analyze(circuit, model)
    result = []
    for cid, conn in circuit.conns.items():
        a = ann.arrival[conn.src]
        down = ann.dist_to_po[conn.dst]
        if a == NEVER or down == NEVER:
            continue
        total = (
            a
            + model.conn_delay(circuit, cid)
            + model.gate_delay(circuit, conn.dst)
            + down
        )
        if total == ann.delay:
            result.append(cid)
    return result
