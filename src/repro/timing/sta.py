"""Static timing analysis: arrival times, required times, slack.

The *computed delay* (Section V) of a circuit under a delay model starts
from the topological analysis here: the longest path ignoring logic
("static timing verifiers ... the delay of a circuit is determined to be
the longest path").  Sensitization-aware refinements (false-path aware
delay) live in :mod:`repro.timing.sensitize` and
:mod:`repro.timing.viability`, both of which consume this module's
arrival annotations.

Constant sources never transition, so their arrival time is -inf
(:data:`repro.timing.models.NEVER`); a gate fed only by constants also
never transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network import Circuit, GateType
from .models import AsBuiltDelayModel, DelayModel, NEVER


@dataclass
class TimingAnnotation:
    """Arrival/required/slack annotations for one circuit + model pair.

    Attributes:
        arrival: gid -> time the gate's *output* settles.
        dist_to_po: gid -> longest delay from the gate's output to any PO
            (0 for OUTPUT markers; -inf if no PO is reachable).
        delay: the circuit's topological delay = max PO arrival
            (0.0 for circuits whose outputs are all constant).
        required: gid -> latest output time tolerable without exceeding
            ``delay``.
        slack: gid -> required - arrival.
    """

    arrival: Dict[int, float]
    dist_to_po: Dict[int, float]
    delay: float
    required: Dict[int, float] = field(default_factory=dict)
    slack: Dict[int, float] = field(default_factory=dict)


def analyze(
    circuit: Circuit, model: Optional[DelayModel] = None
) -> TimingAnnotation:
    """Run STA and return the full annotation."""
    model = model if model is not None else AsBuiltDelayModel()
    order = circuit.topological_order()
    arrival: Dict[int, float] = {}
    for gid in order:
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            arrival[gid] = model.input_arrival(circuit, gid)
            continue
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            arrival[gid] = NEVER
            continue
        best = NEVER
        for cid in gate.fanin:
            conn = circuit.conns[cid]
            t = arrival[conn.src]
            if t == NEVER:
                continue
            t += model.conn_delay(circuit, cid)
            if t > best:
                best = t
        if best == NEVER:
            arrival[gid] = NEVER
        else:
            arrival[gid] = best + model.gate_delay(circuit, gid)

    dist: Dict[int, float] = {}
    for gid in reversed(order):
        gate = circuit.gates[gid]
        if gate.gtype is GateType.OUTPUT:
            dist[gid] = 0.0
            continue
        best = NEVER
        for cid in gate.fanout:
            conn = circuit.conns[cid]
            down = dist[conn.dst]
            if down == NEVER:
                continue
            t = (
                model.conn_delay(circuit, cid)
                + model.gate_delay(circuit, conn.dst)
                + down
            )
            if t > best:
                best = t
        dist[gid] = best

    delay = 0.0
    for gid in circuit.outputs:
        if arrival[gid] != NEVER:
            delay = max(delay, arrival[gid])

    ann = TimingAnnotation(arrival=arrival, dist_to_po=dist, delay=delay)
    for gid in order:
        a = arrival[gid]
        d = dist[gid]
        if a == NEVER or d == NEVER:
            ann.required[gid] = float("inf")
            ann.slack[gid] = float("inf")
        else:
            ann.required[gid] = delay - d
            ann.slack[gid] = ann.required[gid] - a
    return ann


def topological_delay(
    circuit: Circuit, model: Optional[DelayModel] = None
) -> float:
    """The length of the longest (topological) path -- the delay a plain
    static timing verifier would report."""
    return analyze(circuit, model).delay


def critical_connections(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    annotation: Optional[TimingAnnotation] = None,
) -> List[int]:
    """Connections lying on at least one topologically-longest path."""
    model = model if model is not None else AsBuiltDelayModel()
    ann = annotation if annotation is not None else analyze(circuit, model)
    result = []
    for cid, conn in circuit.conns.items():
        a = ann.arrival[conn.src]
        down = ann.dist_to_po[conn.dst]
        if a == NEVER or down == NEVER:
            continue
        total = (
            a
            + model.conn_delay(circuit, cid)
            + model.gate_delay(circuit, conn.dst)
            + down
        )
        if total == ann.delay:
            result.append(cid)
    return result
