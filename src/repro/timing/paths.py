"""Paths (Definition 4.2) and lazy longest-first path enumeration.

A path is an alternating sequence of connections and gates.  We represent
IO-paths (primary input to primary output, the objects Theorem 7.2 talks
about) explicitly: the source PI, the logic gates along the path, the
connections between them, and the OUTPUT marker at the end.

`iter_paths_longest_first` enumerates IO-paths in nonincreasing length
order using best-first search with the exact suffix potential
(``dist_to_po``) as priority -- this is what lets the sensitization- and
viability-based delay computations stop at the first "true" path without
enumerating everything.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..network import Circuit, GateType
from .models import AsBuiltDelayModel, DelayModel, NEVER
from .sta import TimingAnnotation, analyze


@dataclass(frozen=True)
class Path:
    """An IO-path.

    Attributes:
        source: PI gid the path starts at.
        gates: logic gates ``g_0 .. g_{m-1}`` along the path, in order.
        conns: connections ``c_0 .. c_m``; ``c_i`` feeds ``g_i`` and the
            final ``c_m`` feeds the OUTPUT marker.
        sink: the OUTPUT marker gid.
        length: the path length under the enumerating model, including
            the source's arrival time (Definition 4.6 plus arrival).
    """

    source: int
    gates: Tuple[int, ...]
    conns: Tuple[int, ...]
    sink: int
    length: float

    @property
    def first_edge(self) -> int:
        """The first connection ``c_0`` -- the KMS constant-setting site."""
        return self.conns[0]

    def describe(self, circuit: Circuit) -> str:
        """Human-readable rendering using gate names."""

        def name(gid: int) -> str:
            gate = circuit.gates[gid]
            return gate.name or f"g{gid}"

        parts = [name(self.source)]
        parts.extend(name(g) for g in self.gates)
        parts.append(name(self.sink))
        return " -> ".join(parts) + f"  (length {self.length:g})"

    def last_multifanout_gate(self, circuit: Circuit) -> Optional[int]:
        """The gate along the path *closest to the output* with fanout > 1
        (the ``n`` of Fig. 3), or None if all path gates are single-fanout.
        """
        for gid in reversed(self.gates):
            if circuit.fanout_size(gid) > 1:
                return gid
        return None

    def event_times(
        self, circuit: Circuit, model: Optional[DelayModel] = None
    ) -> List[float]:
        """Event arrival time at each path gate's *input* (tau_i).

        ``tau_i`` is the time the propagating event reaches gate ``g_i``:
        source arrival plus all connection delays up to ``c_i`` and all
        gate delays strictly before ``g_i``.  Used by viability analysis
        to split side-inputs into early and late sets.
        """
        model = model if model is not None else AsBuiltDelayModel()
        t = model.input_arrival(circuit, self.source)
        times: List[float] = []
        for i, gid in enumerate(self.gates):
            t += model.conn_delay(circuit, self.conns[i])
            times.append(t)
            t += model.gate_delay(circuit, gid)
        return times


def path_length(
    circuit: Circuit, path: Path, model: Optional[DelayModel] = None
) -> float:
    """Recompute a path's length from scratch (test oracle for `length`)."""
    model = model if model is not None else AsBuiltDelayModel()
    t = model.input_arrival(circuit, path.source)
    for cid in path.conns:
        t += model.conn_delay(circuit, cid)
    for gid in path.gates:
        t += model.gate_delay(circuit, gid)
    return t


def iter_paths_longest_first(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    annotation: Optional[TimingAnnotation] = None,
    max_paths: Optional[int] = None,
) -> Iterator[Path]:
    """Yield IO-paths in nonincreasing length order, lazily.

    Best-first search where a partial path ending at gate ``u`` with exact
    prefix length ``L`` has priority ``L + dist_to_po(u)`` -- an exact
    (hence admissible and consistent) bound on the best completion, so
    paths pop in sorted order.  Paths through constants (which never
    transition) are excluded.
    """
    model = model if model is not None else AsBuiltDelayModel()
    ann = annotation if annotation is not None else analyze(circuit, model)
    counter = itertools.count()
    heap: List[tuple] = []
    for pi in circuit.inputs:
        if ann.dist_to_po.get(pi, NEVER) == NEVER:
            continue
        prefix = model.input_arrival(circuit, pi)
        priority = prefix + ann.dist_to_po[pi]
        heapq.heappush(
            heap, (-priority, next(counter), pi, pi, (), (), prefix)
        )
    yielded = 0
    while heap:
        neg_prio, _, current, source, gates, conns, prefix = heapq.heappop(
            heap
        )
        gate = circuit.gates[current]
        if gate.gtype is GateType.OUTPUT:
            yield Path(
                source=source,
                gates=gates,
                conns=conns,
                sink=current,
                length=-neg_prio,
            )
            yielded += 1
            if max_paths is not None and yielded >= max_paths:
                return
            continue
        for cid in gate.fanout:
            conn = circuit.conns[cid]
            dst = conn.dst
            down = ann.dist_to_po.get(dst, NEVER)
            if down == NEVER:
                continue
            step = model.conn_delay(circuit, cid) + model.gate_delay(
                circuit, dst
            )
            new_prefix = prefix + step
            dst_gate = circuit.gates[dst]
            new_gates = (
                gates if dst_gate.gtype is GateType.OUTPUT else gates + (dst,)
            )
            heapq.heappush(
                heap,
                (
                    -(new_prefix + down),
                    next(counter),
                    dst,
                    source,
                    new_gates,
                    conns + (cid,),
                    new_prefix,
                ),
            )


def longest_paths(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    max_paths: int = 10000,
) -> List[Path]:
    """All paths achieving the topological delay (capped at ``max_paths``).
    """
    model = model if model is not None else AsBuiltDelayModel()
    ann = analyze(circuit, model)
    result: List[Path] = []
    for path in iter_paths_longest_first(circuit, model, ann, max_paths):
        if path.length < ann.delay - 1e-9:
            break
        result.append(path)
    return result
