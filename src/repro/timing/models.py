"""Delay models.

Definition 4.1 attaches a delay to every gate and every connection; the
paper notes its results "do not depend on this particular model" and hold
for richer models too.  We capture that with a small strategy interface:

* :class:`AsBuiltDelayModel` -- use the delays stored on the circuit
  (what the paper's Section III example uses: XOR/MUX = 2, AND/OR = 1,
  c0 arriving at t = 5);
* :class:`UnitDelayModel` -- every logic gate costs 1, wires are free
  (the model behind Table I);
* :class:`LibraryDelayModel` -- a per-gate-type delay table, standing in
  for a cell library;
* :class:`FanoutDelayModel` -- wraps another model and adds a per-fanout
  load term, used by the Section 6.2 fanout-growth study.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..network import Circuit, GateType

#: Arrival time of signals that never transition (constants).
NEVER = float("-inf")


class DelayModel:
    """Strategy interface for circuit timing."""

    def gate_delay(self, circuit: Circuit, gid: int) -> float:
        raise NotImplementedError

    def conn_delay(self, circuit: Circuit, cid: int) -> float:
        raise NotImplementedError

    def input_arrival(self, circuit: Circuit, gid: int) -> float:
        """Arrival time of a primary input; default honors the circuit's
        stored arrival times."""
        return circuit.input_arrival.get(gid, 0.0)


class AsBuiltDelayModel(DelayModel):
    """Delays exactly as stored on gates and connections."""

    def gate_delay(self, circuit: Circuit, gid: int) -> float:
        return circuit.gates[gid].delay

    def conn_delay(self, circuit: Circuit, cid: int) -> float:
        return circuit.conns[cid].delay


class UnitDelayModel(DelayModel):
    """Unit delay per logic gate; BUFs and wires are free.

    ``use_arrival_times=False`` additionally zeroes PI arrival times, which
    is the configuration behind the paper's Table I delay numbers.
    """

    def __init__(self, use_arrival_times: bool = True) -> None:
        self.use_arrival_times = use_arrival_times

    _FREE = frozenset(
        {
            GateType.INPUT,
            GateType.OUTPUT,
            GateType.CONST0,
            GateType.CONST1,
            GateType.BUF,
        }
    )

    def gate_delay(self, circuit: Circuit, gid: int) -> float:
        gate = circuit.gates[gid]
        return 0.0 if gate.gtype in self._FREE else 1.0

    def conn_delay(self, circuit: Circuit, cid: int) -> float:
        return 0.0

    def input_arrival(self, circuit: Circuit, gid: int) -> float:
        if not self.use_arrival_times:
            return 0.0
        return circuit.input_arrival.get(gid, 0.0)


class LibraryDelayModel(DelayModel):
    """Per-gate-type delays, e.g. ``{GateType.NAND: 0.9, ...}``.

    Types missing from the table fall back to the gate's stored delay.
    """

    def __init__(
        self,
        table: Mapping[GateType, float],
        conn_default: float = 0.0,
    ) -> None:
        self.table = dict(table)
        self.conn_default = conn_default

    def gate_delay(self, circuit: Circuit, gid: int) -> float:
        gate = circuit.gates[gid]
        if gate.gtype in (
            GateType.INPUT,
            GateType.OUTPUT,
            GateType.CONST0,
            GateType.CONST1,
        ):
            return 0.0
        return self.table.get(gate.gtype, gate.delay)

    def conn_delay(self, circuit: Circuit, cid: int) -> float:
        return self.conn_default


class FanoutDelayModel(DelayModel):
    """Adds ``load_per_fanout * (fanout - 1)`` to a base model's gate delay.

    Models the Section 6.2 concern that duplication increases the fanout
    of gates feeding the duplicated region.  The paper's answer is cell
    resizing; the bench using this model quantifies how much resizing
    would have to buy back.
    """

    def __init__(
        self, base: Optional[DelayModel] = None, load_per_fanout: float = 0.1
    ) -> None:
        self.base = base if base is not None else AsBuiltDelayModel()
        self.load_per_fanout = load_per_fanout

    def gate_delay(self, circuit: Circuit, gid: int) -> float:
        gate = circuit.gates[gid]
        extra_fanout = max(0, len(gate.fanout) - 1)
        if gate.gtype in (
            GateType.INPUT,
            GateType.OUTPUT,
            GateType.CONST0,
            GateType.CONST1,
        ):
            return 0.0
        return (
            self.base.gate_delay(circuit, gid)
            + self.load_per_fanout * extra_fanout
        )

    def conn_delay(self, circuit: Circuit, cid: int) -> float:
        return self.base.conn_delay(circuit, cid)

    def input_arrival(self, circuit: Circuit, gid: int) -> float:
        return self.base.input_arrival(circuit, gid)


#: The delay table used throughout Section III of the paper:
#: "a gate delay of 1 for the AND and OR gates and gate delays of 2 for
#: the XOR and MUX gates".  (XOR/MUX enter our networks pre-decomposed
#: with the complex delay on the final simple gate, so this table is for
#: circuits that keep complex gates.)
PAPER_SECTION3_TABLE: Dict[GateType, float] = {
    GateType.AND: 1.0,
    GateType.OR: 1.0,
    GateType.NAND: 1.0,
    GateType.NOR: 1.0,
    GateType.NOT: 1.0,
    GateType.BUF: 0.0,
    GateType.XOR: 2.0,
    GateType.XNOR: 2.0,
}
