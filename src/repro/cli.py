"""Command-line interface: ``python -m repro <command>``.

Commands mirror the flows a user of the original MIS-II implementation
would run:

* ``kms``      -- read BLIF, run the algorithm, write BLIF;
* ``timing``   -- report topological / viable / sensitizable delay and
  the longest paths with sensitization verdicts; ``--hier`` appends a
  hierarchical-STA report (per-partition table, model-cache stats, and
  a flat-vs-hier agreement check, see ``docs/TIMING.md``);
* ``atpg``     -- fault counts, redundancies, and a generated test set;
* ``table1``   -- regenerate the paper's Table I rows;
* ``bench``    -- the engine-backed sweeps: Table I, the scaling study,
  and seeded random-circuit fuzzing, with ``--jobs N`` parallelism,
  ``--cache DIR`` content-addressed result caching, ``--verify
  {fraig,cnf}`` appended equivalence checking, and ``--telemetry
  out.json`` machine-readable run telemetry;
* ``aig``      -- the And-Inverter-Graph substrate: ``stats`` (hashed
  node counts), ``fraig`` (SAT-sweep a BLIF circuit), ``redundant``
  (stuck-at-redundant AIG edges, the Teslenko--Dubrova funnel);
* ``generate`` -- emit the built-in circuits (adders, paper figures,
  MCNC-like suite, seeded random circuits) as BLIF;
* ``serve``    -- run the async optimization service: an HTTP/JSON
  daemon with a supervised worker pool, request coalescing by circuit
  fingerprint, and a shared artifact store (see ``docs/SERVE.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .atpg import (
    Podem,
    Status,
    collapsed_faults,
    fault_coverage,
    random_vectors,
    redundant_faults,
)
from .core import kms, measure_delays, verify_transformation
from .io import parse_blif, write_blif
from .network import Circuit
from .timing import (
    SensitizationChecker,
    UnitDelayModel,
    iter_paths_longest_first,
)


def _load(path: str) -> Circuit:
    with open(path) as handle:
        return parse_blif(handle.read())


def _save(
    circuit: Circuit, path: Optional[str], fmt: str = "blif"
) -> None:
    if fmt == "verilog":
        from .io import write_verilog

        text = write_verilog(circuit)
    else:
        text = write_blif(circuit)
    if path:
        with open(path, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)


def _model(args) -> UnitDelayModel:
    return UnitDelayModel(use_arrival_times=not args.zero_arrivals)


def cmd_kms(args) -> int:
    circuit = _load(args.input)
    model = _model(args)
    result = kms(
        circuit, mode=args.mode, model=model, checked=args.checked,
        incremental=not args.no_incremental,
    )
    report = verify_transformation(circuit, result.circuit, model)
    print(
        f"# kms: {result.iterations} iterations, "
        f"{result.duplicated_gates} duplicated, "
        f"{result.cleanup_steps} cleanup removals",
        file=sys.stderr,
    )
    work = ", ".join(
        f"{name}={int(value)}" for name, value in sorted(
            result.counters.items()
        )
    )
    print(f"# work: {work}", file=sys.stderr)
    print(
        f"# gates {report.gates_before} -> {report.gates_after}; "
        f"delay {report.delays_before.sensitizable:g} -> "
        f"{report.delays_after.sensitizable:g}; "
        f"equivalent={report.equivalent} "
        f"irredundant={report.irredundant}",
        file=sys.stderr,
    )
    _save(result.circuit, args.output, args.format)
    return 0 if report.ok else 1


def _hier_report(circuit: Circuit, model, cache_dir: Optional[str]) -> bool:
    """Flat-vs-hier STA comparison; True when the two engines agree."""
    from .engine.cache import ResultCache
    from .timing import HierSTA, IncrementalSTA, ModelStore

    flat = IncrementalSTA(circuit, model)
    store = ModelStore(
        cache=ResultCache(cache_dir) if cache_dir else None
    )
    hier = HierSTA(circuit, model, store=store)
    build = dict(hier.counters())
    build["arrival_relaxations"] = hier.arrival_relaxations
    build["dist_relaxations"] = hier.dist_relaxations
    hier.materialize_all()
    agree = (
        flat.delay == hier.delay
        and flat.num_longest_paths() == hier.num_longest_paths()
        and flat.arrival == hier.arrival
        and flat.dist_to_po == hier.dist_to_po
        and flat.npaths_to_po == hier.npaths_to_po
    )
    parts = hier.partitions
    shared = len(parts) - len({p.fingerprint for p in parts})
    print("\nhierarchical STA (vs flat oracle):")
    print(f"  agreement         : "
          f"{'bit-identical' if agree else 'MISMATCH'}")
    print(f"  partitions        : {len(parts)} "
          f"({sum(len(p.gates) for p in parts)} of "
          f"{circuit.num_gates()} gates; {shared} share a model)")
    flat_relax = flat.arrival_relaxations + flat.dist_relaxations
    hier_relax = (build["arrival_relaxations"]
                  + build["dist_relaxations"])
    ratio = flat_relax / hier_relax if hier_relax else float("inf")
    print(f"  relaxations       : flat {flat_relax} -> "
          f"hier {hier_relax} ({ratio:.1f}x)")
    for name in ("models_extracted", "model_cache_hits",
                 "partitions_dirty", "arcs_evaluated",
                 "flat_relaxations_avoided", "model_relaxations"):
        print(f"  {name:<18}: {int(build[name])}")
    print(f"  model store       : {len(store)} models in memory, "
          f"{store.disk_hits} disk hits"
          + (f" ({cache_dir})" if cache_dir else ""))
    print("  partition  gates  outs  model         source")
    for inst in parts:
        print(f"  {inst.pid:>9}  {len(inst.gates):>5}  "
              f"{len(inst.out_gids):>4}  {inst.fingerprint[:12]}  "
              f"{'cache' if inst.from_cache else 'extracted'}")
    return agree


def cmd_timing(args) -> int:
    circuit = _load(args.input)
    model = _model(args)
    delays = measure_delays(circuit, model)
    print(f"topological delay : {delays.topological:g}")
    print(f"viability delay   : {delays.viability:g}")
    print(f"sensitizable delay: {delays.sensitizable:g}")
    checker = SensitizationChecker(circuit)
    print(f"\nlongest {args.paths} paths:")
    for i, path in enumerate(
        iter_paths_longest_first(circuit, model, max_paths=args.paths)
    ):
        verdict = (
            "sensitizable"
            if checker.is_sensitizable(path)
            else "false"
        )
        print(f"  [{verdict:>12}] {path.describe(circuit)}")
    if args.hier:
        return 0 if _hier_report(circuit, model, args.model_cache) else 1
    return 0


def cmd_atpg(args) -> int:
    import os

    from .sim.kernel import LEGACY_ENV, SimWorkTracker

    if args.legacy_sim:
        # process-wide so nested consumers (the redundant-fault random
        # prefilter included) take the interpreted path too
        os.environ[LEGACY_ENV] = "1"
    compiled = False if args.legacy_sim else None
    sim_tracker = SimWorkTracker()
    circuit = _load(args.input)
    faults = collapsed_faults(circuit)
    print(f"collapsed faults : {len(faults)}")
    proof_counters = {}
    if args.no_proofengine:
        redundant = redundant_faults(circuit, faults, incremental=False)
    else:
        from .atpg import ProofEngine

        engine = ProofEngine(circuit, jobs=args.jobs)
        redundant = engine.redundant_faults(faults)
        proof_counters = engine.counters
    print(f"redundant faults : {len(redundant)}")
    for fault in redundant:
        print(f"  {fault.describe(circuit)}")
    if proof_counters:
        # deterministic proof-work counters, on stderr like the kernel's
        proof = ", ".join(
            f"{k}={v}" for k, v in proof_counters.items()
        )
        print(f"proof work       : {proof}", file=sys.stderr)
    if not args.tests:
        return 0
    vectors = random_vectors(circuit, args.random, seed=args.seed)
    report = fault_coverage(circuit, faults, vectors, compiled=compiled)
    podem = Podem(circuit)
    generated = 0
    for fault in report.undetected_faults:
        result = podem.generate(fault)
        if result.status is Status.TESTABLE:
            vectors.append(
                {g: result.test.get(g, 0) for g in circuit.inputs}
            )
            generated += 1
    final = fault_coverage(circuit, faults, vectors, compiled=compiled)
    print(
        f"test set         : {len(vectors)} vectors "
        f"({args.random} random + {generated} PODEM)"
    )
    print(f"fault coverage   : {final.coverage:.1%}")
    # deterministic kernel work counters, on stderr so scripted stdout
    # parsing stays stable
    work = ", ".join(
        f"{k}={v}" for k, v in sim_tracker.counters.items()
    )
    print(f"sim kernel work  : {work}", file=sys.stderr)
    return 0


def cmd_table1(args) -> int:
    from .bench import carry_skip_rows, mcnc_rows, render

    model = UnitDelayModel(use_arrival_times=False)
    if args.which in ("csa", "all"):
        sizes = [(2, 2), (4, 4), (8, 2), (8, 4)]
        if args.quick:
            sizes = sizes[:2]
        print(render(carry_skip_rows(sizes, model), "Table I -- csa"))
    if args.which in ("mcnc", "all"):
        names = None if not args.quick else ["misex1", "rd73", "z4ml"]
        print(render(mcnc_rows(names), "Table I -- MCNC-like"))
    return 0


def cmd_bench(args) -> int:
    from .bench import render
    from .engine import (
        EngineConfig,
        fuzz_nightly_jobs,
        fuzz_smoke_jobs,
        random_jobs,
        rows_from_report,
        run_jobs,
        scaling_jobs,
        table1_jobs,
    )

    config = EngineConfig(
        jobs=args.jobs,
        cache_dir=args.cache,
        stage_timeout=args.timeout,
        batch_sim=False if args.no_batch_sim else None,
    )
    verify = None if args.verify == "none" else args.verify
    if args.suite == "table1":
        jobs = table1_jobs(which=args.which, quick=args.quick,
                           mode=args.mode, verify=verify)
    elif args.suite == "scaling":
        jobs = scaling_jobs(mode=args.mode)
    elif args.suite == "fuzz_smoke":
        jobs = fuzz_smoke_jobs()
    elif args.suite == "fuzz_nightly":
        jobs = fuzz_nightly_jobs(seed=args.seed, count=args.count)
    else:
        jobs = random_jobs(count=args.count, seed=args.seed,
                           mode=args.mode)
    report = run_jobs(
        jobs, config,
        meta={"suite": args.suite, "which": args.which,
              "quick": args.quick, "mode": args.mode, "seed": args.seed,
              "verify": verify},
    )
    if args.suite in ("fuzz_smoke", "fuzz_nightly"):
        from .fuzz import summarize

        payloads = [
            r.results.get("fuzz", {"ok": False, "error": r.error,
                                   "mismatches": []})
            for r in report.results
        ]
        summary = summarize(payloads)
        for payload, result in zip(payloads, report.results):
            if not payload.get("ok", False):
                detail = payload.get("error") or "; ".join(
                    f"{m['kind']}: {m['detail']}"
                    for m in payload.get("mismatches", [])
                )
                print(f"# FAILED {result.name}: {detail}",
                      file=sys.stderr)
        print(
            f"fuzz: {summary['scenarios']} scenarios, "
            f"{summary['failures']} failures, recall "
            f"{summary['proved']}/{summary['planted']}"
        )
        print(report.telemetry.summary(), file=sys.stderr)
        if args.telemetry:
            report.telemetry.write_json(args.telemetry)
            print(f"# telemetry written to {args.telemetry}",
                  file=sys.stderr)
        return 0 if report.ok and summary["failures"] == 0 else 1
    if args.suite == "table1":
        rows = rows_from_report(report)
        csa = [r for r in rows if r.row.name.startswith("csa ")]
        mcnc = [r for r in rows if not r.row.name.startswith("csa ")]
        if csa:
            print(render(csa, "Table I -- csa"))
        if mcnc:
            print(render(mcnc, "Table I -- MCNC-like"))
    else:
        for result in report.results:
            if result.ok:
                print(f"{result.name}: " + ", ".join(
                    f"{label}={payload}"
                    for label, payload in sorted(result.results.items())
                    if label != "generate"
                ))
    for result in report.results:
        if not result.ok:
            print(f"# FAILED {result.name}: {result.error}",
                  file=sys.stderr)
    print(report.telemetry.summary(), file=sys.stderr)
    if args.telemetry:
        report.telemetry.write_json(args.telemetry)
        print(f"# telemetry written to {args.telemetry}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_aig(args) -> int:
    from .aig import (
        circuit_to_aig,
        aig_to_circuit,
        fraig,
        redundant_edges,
    )

    circuit = _load(args.input)
    aig, _ = circuit_to_aig(circuit)
    if args.action == "stats":
        print(f"inputs      : {aig.num_inputs()}")
        print(f"outputs     : {len(aig.outputs)}")
        print(f"and nodes   : {aig.num_ands()}")
        print(f"live ands   : {aig.num_ands(live_only=True)}")
        print(f"gates (net) : {circuit.num_gates()}")
        return 0
    if args.action == "fraig":
        result = fraig(aig, seed=args.seed,
                       conflict_limit=args.conflict_limit)
        stats = result.stats
        print(
            f"# fraig: ands {stats.ands_before} -> {stats.ands_after}; "
            f"{stats.structural_merges} structural, "
            f"{stats.sat_proved} SAT-proved, "
            f"{stats.sat_refuted} refuted, "
            f"{stats.sat_undecided} undecided "
            f"({stats.patterns} patterns)",
            file=sys.stderr,
        )
        _save(aig_to_circuit(result.aig, name=circuit.name),
              args.output, args.format)
        return 0
    if args.action == "redundant":
        edges = redundant_edges(aig, patterns=args.patterns,
                                seed=args.seed)
        print(f"redundant AIG edges: {len(edges)}")
        for edge in edges:
            print(f"  {edge.describe(aig)}")
        return 0 if not edges else 1
    raise AssertionError(f"unhandled aig action {args.action!r}")


def cmd_generate(args) -> int:
    from .circuits import named_circuit

    if args.circuit == "randred":
        # expose the generator's ground truth: the planted untestable
        # fault sites ride along on stderr (stdout stays parseable BLIF)
        from .circuits import random_redundant_circuit_with_faults

        circuit, planted = random_redundant_circuit_with_faults(
            seed=args.seed
        )
        for fault in planted:
            print(f"# planted: {fault.describe(circuit)} "
                  f"[{fault.kind} {fault.site} s-a-{fault.value}]",
                  file=sys.stderr)
        _save(circuit, args.output, args.format)
        return 0
    try:
        circuit = named_circuit(args.circuit, seed=args.seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _save(circuit, args.output, args.format)
    return 0


def _fuzz_spec(args):
    """The ScenarioSpec the fuzz grade/minimize commands share."""
    from .fuzz import ScenarioSpec

    return ScenarioSpec(
        name=f"fuzz-{args.seed}-{args.variant[:3]}",
        base={
            "factory": "random",
            "params": {
                "num_inputs": args.num_inputs,
                "num_gates": args.num_gates,
                "num_outputs": args.num_outputs,
                "seed": args.seed ^ 0x5EED,
            },
        },
        seed=args.seed,
        plants=args.plants,
        variant=args.variant,
    )


def cmd_fuzz_gen(args) -> int:
    from .fuzz import build_scenario

    result = build_scenario(_fuzz_spec(args))
    for plant in result.plants:
        print(f"# planted: {plant.description} "
              f"[{plant.fault_kind} {plant.fault_site} "
              f"s-a-{plant.fault_value}]",
              file=sys.stderr)
    _save(result.circuit, args.output, args.format)
    return 0


def cmd_fuzz_grade(args) -> int:
    import json

    from .fuzz import grade_scenario

    payload = grade_scenario(
        _fuzz_spec(args),
        oracle=not args.no_oracle,
        mode=args.mode,
        incremental=not args.no_incremental,
    )
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0 if payload["ok"] else 1


def cmd_fuzz_minimize(args) -> int:
    import json

    from .fuzz import SHRINKABLE_KINDS, minimize_failure

    with open(args.report) as handle:
        report = json.load(handle)
    written = []
    for payload in report.get("scenarios", []):
        if payload.get("ok", False) or "error" in payload:
            continue
        done = set()
        for item in payload.get("mismatches", []):
            kind = item["kind"]
            if kind not in SHRINKABLE_KINDS or kind in done:
                continue
            done.add(kind)
            shrunk = minimize_failure(
                payload["spec"], item, out_dir=args.out,
                max_checks=args.max_checks,
            )
            if shrunk is not None:
                written.append(shrunk)
                print(f"# {shrunk['scenario']} {shrunk['kind']}: "
                      f"{shrunk['gates_before']} -> "
                      f"{shrunk['gates_after']} gates -> "
                      f"{shrunk.get('path')}",
                      file=sys.stderr)
    print(f"minimized {len(written)} failure(s) into {args.out}")
    return 0


def cmd_fuzz_campaign(args) -> int:
    from .fuzz import campaign_specs, run_campaign

    specs = campaign_specs(
        args.count,
        seed=args.seed,
        variant=args.variant,
        num_inputs=args.num_inputs,
        num_gates=args.num_gates,
        num_outputs=args.num_outputs,
        plants=args.plants,
    )
    report = run_campaign(
        specs,
        jobs=args.jobs,
        cache_dir=args.cache,
        stage_timeout=args.timeout,
        oracle=not args.no_oracle,
        mode=args.mode,
        incremental=not args.no_incremental,
        report_path=args.report,
        minimize_dir=args.minimize_dir,
    )
    summary = report.summary
    for payload in report.scenarios:
        if not payload.get("ok", False):
            name = payload.get("spec", {}).get("name", "?")
            detail = payload.get("error") or "; ".join(
                f"{m['kind']}: {m['detail']}"
                for m in payload.get("mismatches", [])
            )
            print(f"# FAILED {name}: {detail}", file=sys.stderr)
    for shrunk in report.minimized:
        print(f"# minimized {shrunk['scenario']} {shrunk['kind']} to "
              f"{shrunk['gates_after']} gates -> {shrunk.get('path')}",
              file=sys.stderr)
    print(
        f"campaign: {summary['scenarios']} scenarios, "
        f"{summary['failures']} failures, recall "
        f"{summary['proved']}/{summary['planted']}, "
        f"{summary['seconds']:.1f}s graded work"
    )
    if args.report:
        print(f"# report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from .serve import ServeConfig, ServeDaemon

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        job_timeout=args.timeout,
        retries=args.retries,
        cache_dir=args.cache,
        cache_max_bytes=args.cache_max_bytes,
        drain_timeout=args.drain_timeout,
        debug=args.debug,
    )
    daemon = ServeDaemon(config)

    async def announce() -> None:
        await daemon.start()
        print(
            f"# serve: listening on {config.host}:{daemon.port} "
            f"({config.workers} workers, queue depth "
            f"{config.queue_depth})",
            file=sys.stderr,
        )

    # ServeDaemon.run() owns the loop; announce the bound port by
    # running start() inside it, so --port 0 is still usable.
    import asyncio
    import signal

    async def main() -> None:
        await announce()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, daemon._stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await daemon._stop.wait()
        print("# serve: draining", file=sys.stderr)
        await daemon.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "KMS redundancy removal with no delay increase "
            "(Keutzer/Malik/Saldanha, DAC 1990)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("kms", help="make a BLIF circuit irredundant")
    p.add_argument("input")
    p.add_argument("-o", "--output", help="output BLIF (default stdout)")
    p.add_argument(
        "--mode", choices=["static", "viability"], default="static"
    )
    p.add_argument("--checked", action="store_true")
    p.add_argument("--zero-arrivals", action="store_true")
    p.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental timing engine (full recompute "
             "per iteration; the A/B oracle the tests compare against)",
    )
    p.add_argument(
        "--format", choices=["blif", "verilog"], default="blif"
    )
    p.set_defaults(func=cmd_kms)

    p = sub.add_parser("timing", help="delay report for a BLIF circuit")
    p.add_argument("input")
    p.add_argument("--paths", type=int, default=5)
    p.add_argument("--zero-arrivals", action="store_true")
    p.add_argument(
        "--hier", action="store_true",
        help="append a hierarchical-STA report: per-partition table, "
             "model-cache stats, and a flat-vs-hier agreement check "
             "(exit 1 on disagreement)",
    )
    p.add_argument(
        "--model-cache", metavar="DIR", default=None,
        help="content-addressed timing-model cache directory "
             "(--hier only; warm runs reload models from disk)",
    )
    p.set_defaults(func=cmd_timing)

    p = sub.add_parser("atpg", help="fault/redundancy report")
    p.add_argument("input")
    p.add_argument("--tests", action="store_true", help="build a test set")
    p.add_argument("--random", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--legacy-sim",
        action="store_true",
        help="grade faults on the interpreted per-call simulator "
        "instead of the compiled kernel (A/B oracle)",
    )
    p.add_argument(
        "--no-proofengine",
        action="store_true",
        help="classify redundancies with the from-scratch funnel "
        "instead of the persistent proof engine (A/B oracle)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard hard-fault SAT proofs across N worker processes",
    )
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser("table1", help="regenerate the paper's Table I")
    p.add_argument(
        "--which", choices=["csa", "mcnc", "all"], default="csa"
    )
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser(
        "bench",
        help="engine-backed sweeps: parallel, cached, with telemetry",
    )
    p.add_argument(
        "--suite",
        choices=["table1", "scaling", "random", "fuzz_smoke",
                 "fuzz_nightly"],
        default="table1",
    )
    p.add_argument(
        "--which", choices=["csa", "mcnc", "all"], default="all",
        help="Table I slice (table1 suite only)",
    )
    p.add_argument("--quick", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process, for debugging)",
    )
    p.add_argument("--cache", metavar="DIR", help="result cache directory")
    p.add_argument(
        "--telemetry", metavar="PATH", help="write telemetry JSON here"
    )
    p.add_argument(
        "--mode", choices=["static", "viability"], default="static"
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-stage timeout in seconds",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the random suite (job i uses seed+i)",
    )
    p.add_argument(
        "--count", type=int, default=8,
        help="number of circuits in the random suite",
    )
    p.add_argument(
        "--verify", choices=["none", "fraig", "cnf"], default="none",
        help="append an equivalence check per job (table1 suite only)",
    )
    p.add_argument(
        "--no-batch-sim", action="store_true",
        help=(
            "disable the cross-circuit batched-simulation pre-pass "
            "(the REPRO_SIM_BATCH=0 A/B oracle path)"
        ),
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "aig", help="AIG substrate: stats, SAT sweeping, redundancy"
    )
    p.add_argument(
        "action", choices=["stats", "fraig", "redundant"],
        help=(
            "stats: structural-hash node counts; fraig: SAT-sweep and "
            "emit the swept circuit; redundant: list stuck-at-redundant "
            "AIG edges (exit 1 if any)"
        ),
    )
    p.add_argument("input")
    p.add_argument("-o", "--output", help="output BLIF (fraig action)")
    p.add_argument(
        "--format", choices=["blif", "verilog"], default="blif"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--patterns", type=int, default=128,
        help="simulation prefilter width (redundant action)",
    )
    p.add_argument(
        "--conflict-limit", type=int, default=1000,
        help="SAT budget per fraig merge proof",
    )
    p.set_defaults(func=cmd_aig)

    p = sub.add_parser("generate", help="emit a built-in circuit as BLIF")
    p.add_argument(
        "circuit",
        help=(
            "fig1|fig2|fig4, csa<N>.<B>, rca<N>, cla<N>, "
            "rand|randred (seeded), or an MCNC name"
        ),
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="seed for the rand/randred generators",
    )
    p.add_argument("-o", "--output")
    p.add_argument(
        "--format", choices=["blif", "verilog"], default="blif"
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "fuzz",
        help="adversarial fuzzing: planted redundancies, differential "
             "grading, failure minimization, seeded campaigns",
    )
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    def _fuzz_scenario_args(fp) -> None:
        fp.add_argument("--seed", type=int, default=0)
        fp.add_argument(
            "--plants", type=int, default=3,
            help="planted redundancies per scenario",
        )
        fp.add_argument(
            "--variant", choices=["neutral", "degrading"],
            default="neutral",
        )
        fp.add_argument("--num-inputs", type=int, default=5)
        fp.add_argument("--num-gates", type=int, default=18)
        fp.add_argument("--num-outputs", type=int, default=2)

    fp = fuzz_sub.add_parser(
        "gen",
        help="emit one planted scenario as BLIF (ground truth on stderr)",
    )
    _fuzz_scenario_args(fp)
    fp.add_argument("-o", "--output")
    fp.add_argument(
        "--format", choices=["blif", "verilog"], default="blif"
    )
    fp.set_defaults(func=cmd_fuzz_gen)

    fp = fuzz_sub.add_parser(
        "grade",
        help="grade one scenario differentially; JSON payload on stdout",
    )
    _fuzz_scenario_args(fp)
    fp.add_argument("--mode", choices=["static", "viability"],
                    default="static")
    fp.add_argument(
        "--no-oracle", action="store_true",
        help="skip the from-scratch oracle differential",
    )
    fp.add_argument(
        "--no-incremental", action="store_true",
        help="grade with the from-scratch engines throughout",
    )
    fp.set_defaults(func=cmd_fuzz_grade)

    fp = fuzz_sub.add_parser(
        "minimize",
        help="shrink a campaign report's failures into pytest reproducers",
    )
    fp.add_argument("report", help="campaign report JSON")
    fp.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for generated test_fuzz_repro_*.py files",
    )
    fp.add_argument("--max-checks", type=int, default=4000)
    fp.set_defaults(func=cmd_fuzz_minimize)

    fp = fuzz_sub.add_parser(
        "campaign",
        help="run a seeded corpus through the engine pool",
    )
    fp.add_argument("--count", type=int, default=100)
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument(
        "--variant", choices=["neutral", "degrading", "mix"],
        default="mix",
    )
    fp.add_argument("--plants", type=int, default=None)
    fp.add_argument("--num-inputs", type=int, default=5)
    fp.add_argument("--num-gates", type=int, default=18)
    fp.add_argument("--num-outputs", type=int, default=2)
    fp.add_argument("--jobs", type=int, default=1)
    fp.add_argument("--cache", metavar="DIR")
    fp.add_argument("--timeout", type=float, default=None,
                    help="per-stage timeout in seconds")
    fp.add_argument("--mode", choices=["static", "viability"],
                    default="static")
    fp.add_argument("--no-oracle", action="store_true")
    fp.add_argument("--no-incremental", action="store_true")
    fp.add_argument("--report", metavar="PATH",
                    help="write the JSON campaign report here")
    fp.add_argument(
        "--minimize-dir", metavar="DIR",
        help="shrink failures into pytest reproducers in DIR",
    )
    fp.set_defaults(func=cmd_fuzz_campaign)

    p = sub.add_parser(
        "serve",
        help="run the async optimization service (HTTP/JSON daemon)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8571,
        help="listen port (0 = OS-assigned, announced on stderr)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the pool",
    )
    p.add_argument(
        "--queue-depth", type=int, default=64,
        help="pending-queue capacity before submissions get 429",
    )
    p.add_argument(
        "--timeout", type=float, default=300.0,
        help="default per-job timeout in seconds",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="crash-retry budget per job",
    )
    p.add_argument(
        "--cache", metavar="DIR", default=None,
        help="artifact store directory (default: private temp dir)",
    )
    p.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="trim the artifact store to this budget after each job",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight jobs on shutdown",
    )
    p.add_argument(
        "--debug", action="store_true",
        help="enable worker fault-injection hooks (tests only)",
    )
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
