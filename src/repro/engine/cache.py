"""On-disk result cache keyed by ``(circuit_hash, stage, params)``.

One JSON file per entry, fanned into 256 two-hex-digit subdirectories.
Two properties the engine relies on:

* **atomic writes** -- entries are written to a temp file in the target
  directory and published with :func:`os.replace`, so a concurrent
  reader (another worker process on the same cache) sees either the old
  bytes, the new bytes, or no file -- never a torn write;
* **corruption-tolerant reads** -- a truncated, garbled, or wrong-shape
  entry is a *miss*, never an exception.  A subsequent ``put`` simply
  replaces the bad file.

The stored entry echoes its full key, so a hash collision (or a file
renamed into the wrong slot) is detected and treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

SCHEMA = "repro.engine.cache/1"


def cache_key(circuit_hash: str, stage: str, params: Dict[str, Any]) -> str:
    """Deterministic hex key for one stage result."""
    blob = json.dumps(
        {"circuit": circuit_hash, "stage": stage, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed stage-result store.

    ``root=None`` disables the cache: every ``get`` returns ``None`` and
    ``put`` is a no-op, so callers never branch on "is caching on".
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root else None
        self.hits = 0
        self.misses = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, circuit_hash: str, stage: str, params: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The stored value dict, or ``None`` on miss/corruption."""
        if self.root is None:
            return None
        key = cache_key(circuit_hash, stage, params)
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["schema"] != SCHEMA:
                raise ValueError("schema mismatch")
            stored = entry["key"]
            if (
                stored["circuit"] != circuit_hash
                or stored["stage"] != stage
                or stored["params"] != params
            ):
                raise ValueError("key mismatch")
            value = entry["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(
        self,
        circuit_hash: str,
        stage: str,
        params: Dict[str, Any],
        value: Dict[str, Any],
    ) -> None:
        """Store a value atomically (best effort; I/O errors are swallowed
        -- the cache is an accelerator, not a ledger)."""
        if self.root is None:
            return
        key = cache_key(circuit_hash, stage, params)
        path = self._path(key)
        entry = {
            "schema": SCHEMA,
            "key": {"circuit": circuit_hash, "stage": stage, "params": params},
            "value": value,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:8]}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def entry_count(self) -> int:
        """Number of entries on disk (diagnostics only)."""
        if self.root is None:
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        """Delete every entry (leaves the directory tree in place)."""
        if self.root is None:
            return
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
            except OSError:
                pass
