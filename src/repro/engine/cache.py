"""On-disk result cache keyed by ``(circuit_hash, stage, params)``.

One JSON file per entry, fanned into 256 two-hex-digit subdirectories.
Two properties the engine relies on:

* **atomic writes** -- entries are written to a temp file in the target
  directory, **fsync'd**, and published with :func:`os.replace`, so a
  concurrent reader (another worker process on the same cache, or the
  serve daemon's pool) sees either the old bytes, the new bytes, or no
  file -- never a torn write, even across a crash mid-publish;
* **corruption-tolerant reads** -- a truncated, garbled, or wrong-shape
  entry is a *miss*, never an exception.  A malformed file is evicted
  on detection so a subsequent ``put`` starts clean.

The stored entry echoes its full key, so a hash collision (or a file
renamed into the wrong slot) is detected and treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

SCHEMA = "repro.engine.cache/1"


def cache_key(circuit_hash: str, stage: str, params: Dict[str, Any]) -> str:
    """Deterministic hex key for one stage result."""
    blob = json.dumps(
        {"circuit": circuit_hash, "stage": stage, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed stage-result store.

    ``root=None`` disables the cache: every ``get`` returns ``None`` and
    ``put`` is a no-op, so callers never branch on "is caching on".
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root else None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, circuit_hash: str, stage: str, params: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The stored value dict, or ``None`` on miss/corruption."""
        if self.root is None:
            return None
        key = cache_key(circuit_hash, stage, params)
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:  # truncated / non-JSON / bad encoding
            self._evict(path)
            self.misses += 1
            return None
        try:
            if entry["schema"] != SCHEMA:
                raise ValueError("schema mismatch")
            stored = entry["key"]
            if (
                stored["circuit"] != circuit_hash
                or stored["stage"] != stage
                or stored["params"] != params
            ):
                raise ValueError("key mismatch")
            value = entry["value"]
        except (ValueError, KeyError, TypeError):
            # the file exists but is garbage (torn write survivor,
            # foreign schema, misplaced slot): evict it so the slot
            # heals instead of mis-parsing on every lookup
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.evictions += 1

    def put(
        self,
        circuit_hash: str,
        stage: str,
        params: Dict[str, Any],
        value: Dict[str, Any],
    ) -> None:
        """Store a value atomically (best effort; I/O errors are swallowed
        -- the cache is an accelerator, not a ledger)."""
        if self.root is None:
            return
        key = cache_key(circuit_hash, stage, params)
        path = self._path(key)
        entry = {
            "schema": SCHEMA,
            "key": {"circuit": circuit_hash, "stage": stage, "params": params},
            "value": value,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:8]}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, separators=(",", ":"))
                    # flush + fsync BEFORE the rename: os.replace makes
                    # the *name* atomic, but without the fsync a crash
                    # can publish a name whose bytes never hit disk,
                    # and a later reader would see a truncated entry.
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def entry_count(self) -> int:
        """Number of entries on disk (diagnostics only)."""
        if self.root is None:
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters (this handle) plus on-disk size.

        ``hits``/``misses``/``evictions`` are per-handle -- every worker
        process counts its own traffic; ``entries``/``bytes`` walk the
        shared directory, so they reflect all writers.
        """
        entries = 0
        size = 0
        if self.root is not None:
            for path in self.root.glob("*/*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": entries,
            "bytes": size,
        }

    def trim(self, max_bytes: int) -> int:
        """Evict oldest entries (by mtime) until the store fits in
        ``max_bytes``.  Returns the number of entries evicted."""
        if self.root is None or max_bytes < 0:
            return 0
        aged = []
        total = 0
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        aged.sort(key=lambda item: (item[0], str(item[2])))
        evicted = 0
        for _, size, path in aged:
            if total <= max_bytes:
                break
            before = self.evictions
            self._evict(path)
            if self.evictions > before:
                total -= size
                evicted += 1
        return evicted

    def clear(self) -> None:
        """Delete every entry (leaves the directory tree in place)."""
        if self.root is None:
            return
        for path in self.root.glob("*/*.json"):
            self._evict(path)
