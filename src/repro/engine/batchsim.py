"""Cross-circuit batched simulation for engine sweeps.

Every sweep job that classifies faults (the ``atpg``, ``kms``, and
``fuzz_grade`` stages) opens its :class:`repro.atpg.ProofEngine` the
same way: roll ``random_vectors(patterns=64, seed=7)``, grade the fault
universe against them, and mark the detected faults testable before any
PODEM/SAT work.  Executed job-by-job that first-epoch prefilter is one
per-circuit simulation per job -- exactly the per-circuit python
dispatch the batch kernel exists to remove.

:class:`BatchPrefilter` hoists it: before the runner executes a sweep's
jobs, one pre-pass rebuilds every job's circuit from its (deterministic)
factory spec, collects every fault universe, and grades *all of them in
one* :func:`repro.atpg.faultsim.batch_fault_coverage` call -- the
good-circuit simulations of the whole sweep fused into one ragged numpy
dispatch per (level, opcode) group.  The precomputed detected-sets are
injected into each job's stages through the pipeline ``ctx``, and
:meth:`ProofEngine._prepare_epoch` consults them instead of re-running
the identical ``fault_coverage``.

Bit-identity is structural, not assumed: a lookup only answers when the
stage's circuit fingerprint, PI gid tuple, and vector pool match the
precomputed entry exactly and the queried faults are a subset of the
graded universe (per-fault detection is independent, so subsets are
exact).  Anything else -- a mutated circuit, a witness-extended vector
pool, an unknown fault -- is a miss, and the engine falls back to the
ordinary ``fault_coverage`` path verbatim.  ``REPRO_SIM_BATCH=0`` (or
``EngineConfig.batch_sim=False``) disables the pre-pass entirely, which
is the A/B oracle for the whole mechanism.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..atpg.faults import Fault, collapsed_faults
from ..atpg.faultsim import batch_fault_coverage, random_vectors
from ..network import Circuit
from .hashing import circuit_fingerprint

#: Stages whose bodies open a ProofEngine and benefit from the pre-pass.
PREFILTER_STAGES = ("atpg", "kms", "fuzz_grade")

#: ProofEngine's seeded-pool defaults (the oracle's 64 patterns, seed 7);
#: lookups verify the actual vectors, so these only shape the pre-pass.
PREFILTER_PATTERNS = 64
PREFILTER_SEED = 7


class _Entry:
    """One precomputed first-epoch grading, keyed by fingerprint."""

    __slots__ = ("pi_key", "vectors", "universe", "detected")

    def __init__(
        self,
        pi_key: Tuple[int, ...],
        vectors: List[Dict[int, int]],
        universe: Set[Fault],
        detected: Set[Fault],
    ) -> None:
        self.pi_key = pi_key
        self.vectors = vectors
        self.universe = universe
        self.detected = detected


class BatchPrefilter:
    """Precomputed random-vector fault prefilters for a set of circuits.

    Build with :meth:`build` (or :func:`prefilter_from_jobs`), hand to
    :class:`repro.atpg.ProofEngine` via its ``prefilter`` argument (the
    runner does this through the pipeline ``ctx``), and every engine
    whose first epoch matches a precomputed entry skips its per-circuit
    ``fault_coverage`` call.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _Entry] = {}
        self.counters: Dict[str, int] = {
            "prefilter_entries": 0,
            "prefilter_faults_graded": 0,
            "prefilter_hits": 0,
            "prefilter_misses": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def build(
        cls,
        items: Sequence[Tuple[Circuit, Optional[Sequence[Fault]]]],
        patterns: int = PREFILTER_PATTERNS,
        seed: int = PREFILTER_SEED,
    ) -> "BatchPrefilter":
        """Grade every (circuit, extra faults) item in one batched call.

        Each item's universe is its collapsed fault list plus any
        ``extra`` faults (fuzz scenarios classify their planted list
        directly, which collapsing may not cover).  Duplicate
        fingerprints share one entry -- graded once, looked up by every
        job that builds the same circuit.
        """
        self = cls()
        keyed: List[Tuple[str, Circuit, List[Fault]]] = []
        for circuit, extra in items:
            fp = circuit_fingerprint(circuit)
            if fp in self._entries or any(k == fp for k, _c, _u in keyed):
                continue
            universe = collapsed_faults(circuit)
            if extra:
                known = set(universe)
                universe.extend(f for f in extra if f not in known)
            keyed.append((fp, circuit, universe))
        vector_lists = [
            random_vectors(circuit, patterns, seed)
            for _fp, circuit, _u in keyed
        ]
        reports = batch_fault_coverage(
            [
                (circuit, universe, vectors)
                for (_fp, circuit, universe), vectors in zip(
                    keyed, vector_lists
                )
            ]
        )
        for (fp, circuit, universe), vectors, report in zip(
            keyed, vector_lists, reports
        ):
            undetected = set(report.undetected_faults)
            self._entries[fp] = _Entry(
                pi_key=tuple(circuit.inputs),
                vectors=vectors,
                universe=set(universe),
                detected={f for f in universe if f not in undetected},
            )
            self.counters["prefilter_faults_graded"] += len(universe)
        self.counters["prefilter_entries"] = len(self._entries)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Primitives-only snapshot, the pool-worker convention
        (``Job``/``EngineConfig`` round-trip the same way).  Workers
        rebuild with :meth:`from_dict` so serial and pool sweeps make
        the identical lookups -- the runner's parallel == serial
        bit-identity covers result-payload work counters, and those
        shift with whether a lookup happened."""
        return {
            "entries": [
                {
                    "fingerprint": fp,
                    "pi_key": list(entry.pi_key),
                    "vectors": [dict(v) for v in entry.vectors],
                    "universe": [
                        [f.kind, f.site, f.value] for f in entry.universe
                    ],
                    "detected": [
                        [f.kind, f.site, f.value] for f in entry.detected
                    ],
                }
                for fp, entry in self._entries.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatchPrefilter":
        self = cls()
        for entry in data["entries"]:
            self._entries[entry["fingerprint"]] = _Entry(
                pi_key=tuple(entry["pi_key"]),
                vectors=[dict(v) for v in entry["vectors"]],
                universe={
                    Fault(k, s, v) for k, s, v in entry["universe"]
                },
                detected={
                    Fault(k, s, v) for k, s, v in entry["detected"]
                },
            )
        self.counters["prefilter_entries"] = len(self._entries)
        return self

    def lookup(
        self,
        circuit: Circuit,
        vectors: Sequence[Mapping[int, int]],
        pending: Sequence[Fault],
    ) -> Optional[List[Fault]]:
        """The detected subset of ``pending``, or ``None`` on any
        mismatch (the caller then grades normally).

        Exact-match guards, all required: the circuit fingerprint has an
        entry, the PI gid tuple is unchanged (fingerprints ignore gid
        numbering; vectors do not), the vector pool equals the
        precomputed one (a witness-extended pool must be re-graded), and
        every pending fault was in the graded universe.
        """
        entry = self._entries.get(circuit_fingerprint(circuit))
        if (
            entry is None
            or entry.pi_key != tuple(circuit.inputs)
            or len(vectors) != len(entry.vectors)
            or list(vectors) != entry.vectors
            or any(f not in entry.universe for f in pending)
        ):
            self.counters["prefilter_misses"] += 1
            return None
        self.counters["prefilter_hits"] += 1
        return [f for f in pending if f in entry.detected]


def prefilter_items(
    jobs: Sequence[Any],
) -> List[Tuple[Circuit, Optional[List[Fault]]]]:
    """The (circuit, extra-faults) pairs a job list contributes to the
    pre-pass.

    Rebuilds each relevant job's circuit from its factory spec (cheap
    and deterministic -- the same spec the ``generate`` stage replays).
    Jobs whose pipelines contain none of :data:`PREFILTER_STAGES`
    contribute nothing.  Exposed separately from
    :func:`prefilter_from_jobs` so the batch benchmark can grade the
    identical items per-circuit as its A/B oracle.
    """
    from .stages import build_circuit

    items: List[Tuple[Circuit, Optional[List[Fault]]]] = []
    for job in jobs:
        if not any(
            call.stage in PREFILTER_STAGES for call in job.pipeline
        ):
            continue
        if job.factory == "fuzz_planted":
            # scenario factories carry planted ground truth the grading
            # stage classifies directly; fold it into the universe
            from ..fuzz.grade import ScenarioSpec, build_scenario

            planted = build_scenario(ScenarioSpec.from_dict(job.params))
            items.append((planted.circuit, list(planted.faults)))
        else:
            items.append((build_circuit(job.factory, job.params), None))
    return items


def prefilter_from_jobs(jobs: Sequence[Any]) -> Optional[BatchPrefilter]:
    """Build the sweep-level prefilter for a list of runner ``Job``\\ s;
    ``None`` when no job qualifies."""
    items = prefilter_items(jobs)
    if not items:
        return None
    return BatchPrefilter.build(items)
