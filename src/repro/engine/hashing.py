"""Content-addressed circuit fingerprints.

The cache key for every pipeline stage starts with a canonical hash of
the input :class:`~repro.network.circuit.Circuit`.  The fingerprint
covers exactly what the algorithms see:

* topology -- which gate drives which pin of which gate, with fanout
  sharing distinguished from duplication;
* gate types and gate delays, connection delays;
* primary-input arrival times and the PI/PO interface *order* (the
  function of the network is defined relative to that order).

It deliberately ignores gate *names* and the internal gid/cid numbering:
a circuit rebuilt by a transformation that only renames or renumbers
hashes identically, while any rewiring, delay change, or arrival change
produces a different digest.

The per-gate fingerprint is a bottom-up Merkle hash over the DAG,
computed iteratively in topological order (no recursion, so depth is
unbounded).  The circuit fingerprint combines the PO fingerprints in
output order with the full multiset of gate fingerprints -- the multiset
is what separates a shared stem from duplicated copies of the same cone,
which have equal subtree hashes but different structure.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..network import Circuit
from ..network.gates import GateType

#: Version tag mixed into every digest; bump when the scheme changes so
#: stale caches miss instead of returning results from an old encoding.
SCHEME = "repro.engine.fingerprint/1"


def _num(x: float) -> str:
    """Canonical text for a delay/arrival (17 significant digits round-trips
    every IEEE double, and normalizes 1 vs 1.0)."""
    return format(float(x), ".17g")


def _digest(parts) -> str:
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


def gate_fingerprint(
    circuit: Circuit,
    gid: int,
    fps: Dict[int, str],
    pi_index: Dict[int, int],
    po_index: Dict[int, int],
) -> str:
    """Fingerprint of one gate given its fanins' fingerprints in ``fps``.

    The single-gate step of :func:`gate_fingerprints`, exposed so the
    incremental timing context can re-hash only the transitive fanout of
    mutated gates (a fingerprint depends solely on the gate's fanin cone,
    so unchanged cones keep their digests).
    """
    gate = circuit.gates[gid]
    if gate.gtype is GateType.INPUT:
        seed = (
            "input",
            pi_index[gid],
            _num(circuit.input_arrival.get(gid, 0.0)),
        )
    elif gate.gtype in (GateType.CONST0, GateType.CONST1):
        seed = (gate.gtype.value,)
    else:
        fanin = tuple(
            (fps[circuit.conns[cid].src], _num(circuit.conns[cid].delay))
            for cid in gate.fanin
        )
        if gate.gtype is GateType.OUTPUT:
            seed = ("output", po_index[gid], fanin)
        else:
            seed = (gate.gtype.value, _num(gate.delay), fanin)
    return _digest(seed)


def gate_fingerprints(circuit: Circuit) -> Dict[int, str]:
    """Canonical per-gate fingerprint, gid -> hex digest.

    Two gates get equal fingerprints iff their transitive-fanin cones are
    structurally identical (types, delays, pin order, arrivals) up to
    renaming/renumbering.

    A circuit with an attached :class:`repro.net.arena.NetArena` answers
    from the arena's incrementally maintained digest cache (bit-identical
    by construction; only hook-recorded dirty cones are re-hashed)
    instead of re-walking the object graph.
    """
    arena = getattr(circuit, "_arena", None)
    if arena is not None:
        return dict(arena.gate_fps())
    pi_index = {gid: i for i, gid in enumerate(circuit.inputs)}
    po_index = {gid: i for i, gid in enumerate(circuit.outputs)}
    fps: Dict[int, str] = {}
    for gid in circuit.topological_order():
        fps[gid] = gate_fingerprint(circuit, gid, fps, pi_index, po_index)
    return fps


def circuit_fingerprint(circuit: Circuit) -> str:
    """Canonical content hash of a whole circuit (hex sha256).

    Arena-attached circuits answer from the maintained digest cache
    (see :func:`gate_fingerprints`); the object-graph walk below stays
    the verbatim oracle for everything else.
    """
    arena = getattr(circuit, "_arena", None)
    if arena is not None:
        return arena.fingerprint()
    fps = gate_fingerprints(circuit)
    body = (
        SCHEME,
        len(circuit.gates),
        len(circuit.conns),
        tuple(fps[gid] for gid in circuit.outputs),
        tuple(sorted(fps.values())),
    )
    return _digest(body)
