"""Lossless JSON serialization of circuits for the result cache.

BLIF is the repo's interchange format but it drops exactly what the
engine must preserve -- gate/connection delays, PI arrival times, pin
order of duplicated connections -- so cached stage outputs (e.g. the
KMS-transformed circuit) use this private JSON encoding instead.  It
round-trips a :class:`Circuit` exactly, including gid/cid numbering, so
a circuit restored from cache behaves bit-identically to the one the
stage originally produced (same iteration order everywhere downstream).
"""

from __future__ import annotations

from typing import Any, Dict

from ..network import Circuit
from ..network.circuit import Connection, Gate
from ..network.gates import GateType

SCHEMA = "repro.engine.circuit/1"


def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Encode a circuit as a JSON-able dict (exact, including ids)."""
    return {
        "schema": SCHEMA,
        "name": circuit.name,
        "next_gid": circuit._next_gid,
        "next_cid": circuit._next_cid,
        "gates": [
            [g.gid, g.gtype.value, g.delay, g.name, list(g.fanin),
             list(g.fanout)]
            for g in circuit.gates.values()
        ],
        "conns": [
            [c.cid, c.src, c.dst, c.delay]
            for c in circuit.conns.values()
        ],
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "arrival": sorted(circuit.input_arrival.items()),
        # optional key (absent when empty) so pre-existing cached
        # payloads parse unchanged -- no schema bump needed
        **(
            {"hints": [list(h) for h in circuit.partition_hints]}
            if circuit.partition_hints
            else {}
        ),
    }


def circuit_from_dict(data: Dict[str, Any]) -> Circuit:
    """Rebuild a circuit encoded by :func:`circuit_to_dict`."""
    if data.get("schema") != SCHEMA:
        raise ValueError(f"not a serialized circuit: {data.get('schema')!r}")
    circuit = Circuit(data["name"])
    circuit._next_gid = data["next_gid"]
    circuit._next_cid = data["next_cid"]
    for gid, gtype, delay, name, fanin, fanout in data["gates"]:
        circuit.gates[gid] = Gate(
            gid, GateType(gtype), delay, name, list(fanin), list(fanout)
        )
    for cid, src, dst, delay in data["conns"]:
        circuit.conns[cid] = Connection(cid, src, dst, delay)
    circuit._inputs = list(data["inputs"])
    circuit._outputs = list(data["outputs"])
    circuit.input_arrival = {gid: t for gid, t in data["arrival"]}
    circuit.partition_hints = [list(h) for h in data.get("hints", [])]
    return circuit
