"""Per-stage counters and timers for engine runs.

Every stage execution (or cache hit) produces one :class:`StageRecord`;
a :class:`Telemetry` object is an append-only list of records plus run
metadata, mergeable across worker processes.  It is the single timing
authority for the bench harness -- ``repro.bench`` reports wall time
from these records rather than wrapping workloads in ad-hoc ``time``
calls, so serial and parallel runs report comparable numbers.

JSON schema (``to_dict``):

```
{
  "schema": "repro.engine.telemetry/1",
  "meta":   {...run configuration, free-form...},
  "records": [
    {"job": "csa 2.2", "stage": "kms", "label": "kms",
     "seconds": 1.23, "cache": "miss",        # hit|miss|off|uncacheable
     "counters": {"gates_in": 23, "gates_out": 18, "sat_calls": 41},
     "error": null},
    ...
  ],
  "totals": {"jobs": 13, "records": 65, "seconds": 94.2,
             "cache_hits": 0, "cache_misses": 40,
             "stage_executions": {"kms": 13, "atpg": 13, ...}}
}
```

``cache`` states: ``hit`` (served from cache), ``miss`` (cacheable,
executed, result stored), ``off`` (cacheable but no cache configured),
``uncacheable`` (stage or params cannot be cached).  ``hit`` records
count as zero stage executions -- the warm-cache acceptance check is
``stage_executions["kms"] == 0``.

KMS stage records additionally carry the deterministic work counters of
the incremental timing engine (see :mod:`repro.timing.incremental` and
``docs/TIMING.md``): ``arrival_relaxations`` / ``dist_relaxations``
(per-gate STA recomputations, forward and backward),
``paths_enumerated`` (longest paths popped from the enumerator),
``viability_checks_exact`` / ``viability_checks_prefiltered`` /
``cube_cache_hits`` (how each path check was resolved: SAT solve,
packed-simulation witness, or fingerprint-keyed cube cache), and
``paths_capped`` (iterations whose path enumeration hit
``max_longest_paths``).  These are exact functions of circuit + seed --
no wall-clock jitter -- which is what lets CI gate on them
(``benchmarks/compare_baseline.py``, ``kms`` perf-gate row).

Stages that simulate through the compiled kernel
(:mod:`repro.sim.kernel` -- fault grading in ``atpg``, the witness
prefilter inside ``kms``, fraig signature refinement) additionally carry
the kernel's work counters, attributed per stage by
:class:`repro.sim.kernel.SimWorkTracker` exactly like ``sat_calls``:
``gate_evals_good`` (gate evaluations in good-circuit packed
simulation), ``gate_evals_faulty`` (gate evaluations in event-driven
faulty cones), ``cone_cutoffs`` (cone frontier nodes whose good/faulty
difference word went to zero), and ``faults_dropped`` (faults removed
from an active list after detection).  Equally deterministic, equally
gateable (``benchmarks/compare_baseline.py``, ``sim`` perf-gate
row); cache hits replay
none of them.

``atpg`` stage records -- and ``kms`` records, via the cleanup phase --
carry the redundancy-proof engine's counters
(:data:`repro.atpg.proofengine.PROOF_COUNTERS`, see ``docs/ATPG.md``):
``faults_requalified`` / ``verdicts_carried`` (faults re-proved from
scratch vs served from the verdict cache after a removal),
``witness_drops`` (suspects settled by replaying another fault's test
witness through the compiled kernel), ``cnf_reuses`` /
``tseitin_builds`` (epoch SAT solvers reused vs freshly encoded),
``sat_proofs`` (assumption-gated SAT qualifications),
``podem_calls`` / ``podem_backtracks`` / ``podem_aborts`` (branch-and-
bound effort and budget exhaustions), and ``learned_kept`` /
``learned_dropped`` (epoch-solver learned-clause retention).  Exact
functions of circuit + seed, gated by
``benchmarks/compare_baseline.py`` against the committed
``BENCH_atpg_baseline.json``.
"""

from __future__ import annotations

import json
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

SCHEMA = "repro.engine.telemetry/1"

CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_OFF = "off"
CACHE_UNCACHEABLE = "uncacheable"


def now() -> float:
    """Monotonic timestamp for stage timing (the engine's one clock)."""
    return time.perf_counter()


@dataclass
class StageRecord:
    """One stage execution (or cache hit) of one job."""

    job: str
    stage: str
    label: str
    seconds: float
    cache: str = CACHE_UNCACHEABLE
    counters: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def executed(self) -> bool:
        """True when the stage actually ran (not served from cache)."""
        return self.cache != CACHE_HIT and self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job,
            "stage": self.stage,
            "label": self.label,
            "seconds": self.seconds,
            "cache": self.cache,
            "counters": dict(self.counters),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageRecord":
        return cls(
            job=data["job"],
            stage=data["stage"],
            label=data["label"],
            seconds=data["seconds"],
            cache=data["cache"],
            counters=dict(data.get("counters", {})),
            error=data.get("error"),
        )


class TelemetryStream:
    """Blocking iterator over records as they are appended.

    Produced by :meth:`Telemetry.stream`.  Backed by a thread-safe
    queue, so a consumer thread (e.g. the serve daemon forwarding
    NDJSON progress) can drain records while the run is still
    executing on another thread.  Iteration ends after :meth:`close`
    once the queue drains; ``get`` returns ``None`` on timeout.
    """

    _DONE = object()

    def __init__(self, telemetry: "Telemetry") -> None:
        self._telemetry = telemetry
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._closed = False

    def _push(self, record: StageRecord) -> None:
        if not self._closed:
            self._queue.put(record)

    def get(self, timeout: Optional[float] = None) -> Optional[StageRecord]:
        """Next record, or ``None`` on timeout / end of stream."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is TelemetryStream._DONE:
            return None
        return item

    def close(self) -> None:
        """Unsubscribe and unblock any pending iteration."""
        if not self._closed:
            self._closed = True
            self._telemetry.unsubscribe(self._push)
            self._queue.put(TelemetryStream._DONE)

    def __iter__(self) -> Iterator[StageRecord]:
        while True:
            item = self._queue.get()
            if item is TelemetryStream._DONE:
                return
            yield item


class Telemetry:
    """Append-only collection of stage records for one engine run.

    Live consumers can observe records as they land -- without waiting
    for end-of-run collection -- through two equivalent APIs:

    * :meth:`subscribe` registers a callback invoked (synchronously, on
      the appending thread) with every record added from then on;
    * :meth:`stream` returns a :class:`TelemetryStream`, a thread-safe
      blocking iterator fed by an internal subscription.

    Neither changes the stored records or the ``to_dict`` JSON schema.
    """

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        self.records: List[StageRecord] = []
        self._subscribers: List[Callable[[StageRecord], None]] = []

    def subscribe(
        self, callback: Callable[[StageRecord], None]
    ) -> Callable[[StageRecord], None]:
        """Call ``callback(record)`` for every record appended after
        this point.  Returns the callback (for ``unsubscribe``)."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[StageRecord], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def stream(self) -> TelemetryStream:
        """A live, thread-safe iterator over future records."""
        stream = TelemetryStream(self)
        self.subscribe(stream._push)
        return stream

    def _notify(self, record: StageRecord) -> None:
        for callback in list(self._subscribers):
            callback(record)

    def add(self, record: StageRecord) -> StageRecord:
        self.records.append(record)
        self._notify(record)
        return record

    def extend(self, records: Iterable[StageRecord]) -> None:
        for record in records:
            self.add(record)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache == CACHE_HIT)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if r.cache == CACHE_MISS)

    def executions(self, stage: Optional[str] = None) -> int:
        """Count of records where the stage body actually ran."""
        return sum(
            1
            for r in self.records
            if r.executed and (stage is None or r.stage == stage)
        )

    def job_seconds(self, job: str) -> float:
        return sum(r.seconds for r in self.records if r.job == job)

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def stage_executions(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out.setdefault(r.stage, 0)
            if r.executed:
                out[r.stage] += 1
        return out

    def counter_total(self, name: str) -> float:
        return sum(r.counters.get(name, 0) for r in self.records)

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "records": [r.to_dict() for r in self.records],
            "totals": {
                "jobs": len({r.job for r in self.records}),
                "records": len(self.records),
                "seconds": self.total_seconds(),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "errors": sum(1 for r in self.records if r.error),
                "sat_calls": self.counter_total("sat_calls"),
                "stage_executions": self.stage_executions(),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Telemetry":
        if data.get("schema") != SCHEMA:
            raise ValueError(f"not a telemetry dump: {data.get('schema')!r}")
        out = cls(meta=data.get("meta"))
        out.extend(StageRecord.from_dict(r) for r in data.get("records", []))
        return out

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> str:
        """Human-readable per-stage roll-up."""
        by_stage: Dict[str, List[StageRecord]] = {}
        for r in self.records:
            by_stage.setdefault(r.stage, []).append(r)
        header = (
            f"{'Stage':<12} {'Runs':>5} {'Exec':>5} {'Hits':>5} "
            f"{'Errors':>6} {'Seconds':>9} {'SAT':>7}"
        )
        lines = ["Engine telemetry", "=" * len(header), header,
                 "-" * len(header)]
        for stage in sorted(by_stage):
            recs = by_stage[stage]
            lines.append(
                f"{stage:<12} {len(recs):>5d} "
                f"{sum(1 for r in recs if r.executed):>5d} "
                f"{sum(1 for r in recs if r.cache == CACHE_HIT):>5d} "
                f"{sum(1 for r in recs if r.error):>6d} "
                f"{sum(r.seconds for r in recs):>9.2f} "
                f"{int(sum(r.counters.get('sat_calls', 0) for r in recs)):>7d}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"total {self.total_seconds():.2f}s over "
            f"{len({r.job for r in self.records})} jobs; "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses"
        )
        return "\n".join(lines)
