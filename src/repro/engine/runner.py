"""Stage-graph runner: pipelines per circuit, fan-out across circuits.

A :class:`Job` names a circuit (via the picklable factory registry) and
a pipeline of :class:`StageCall`\\ s, e.g. ``generate -> speed_up ->
atpg -> sense_delay -> kms -> sense_delay``.  :func:`run_jobs` executes
jobs either in-process (``jobs=1``, the debuggable path) or across a
``ProcessPoolExecutor``; both paths share :func:`run_pipeline`, so
parallel results are bit-identical to serial ones by construction.

Around every stage call the runner handles, uniformly:

* content-addressed caching -- the call is keyed by the fingerprint of
  its *input* circuit plus ``(stage, params)``, so a stage re-keys
  automatically when an upstream transformation changed anything, and
  two pipeline positions that happen to see the same circuit share one
  entry;
* wall-clock timing and SAT-call attribution into telemetry records;
* a per-stage timeout (SIGALRM-based, so a pathological circuit cannot
  hang a sweep) and retry-once semantics before the job is failed.

Worker processes rebuild their circuits from the factory spec and open
their own handle on the shared cache directory; the cache's atomic
writes make concurrent warm-up safe.
"""

from __future__ import annotations

import os
import signal
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..network import Circuit
from ..sat import SolveCallTracker
from ..sim.kernel import WORK_COUNTERS as SIM_WORK_COUNTERS
from ..sim.kernel import SimWorkTracker
from .cache import ResultCache
from .hashing import circuit_fingerprint
from .serialize import circuit_from_dict, circuit_to_dict
from .stages import StageOutcome, cacheable_params, get_stage
from .telemetry import (
    CACHE_HIT,
    CACHE_MISS,
    CACHE_OFF,
    CACHE_UNCACHEABLE,
    StageRecord,
    Telemetry,
    now,
)


class StageTimeout(Exception):
    """A stage exceeded the configured per-stage timeout."""


@dataclass(frozen=True)
class StageCall:
    """One pipeline position: a stage name, its params, a report label."""

    stage: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    @property
    def key(self) -> str:
        return self.label or self.stage

    def to_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "params": dict(self.params),
                "label": self.label}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageCall":
        return cls(data["stage"], dict(data.get("params", {})),
                   data.get("label"))


@dataclass
class Job:
    """One circuit's trip through a pipeline."""

    name: str
    factory: str
    params: Dict[str, Any] = field(default_factory=dict)
    pipeline: List[StageCall] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "factory": self.factory,
            "params": dict(self.params),
            "pipeline": [c.to_dict() for c in self.pipeline],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        return cls(
            data["name"],
            data["factory"],
            dict(data.get("params", {})),
            [StageCall.from_dict(c) for c in data.get("pipeline", [])],
        )


@dataclass
class EngineConfig:
    """Knobs shared by every job of a run.

    ``batch_sim`` selects the cross-circuit batched-simulation pre-pass
    (:mod:`repro.engine.batchsim`): ``None`` follows the process-wide
    ``REPRO_SIM_BATCH`` switch (on by default), ``False`` forces the
    per-circuit path (the A/B oracle), ``True`` forces the pre-pass on.
    Results are bit-identical either way; only the counters showing
    where simulation work happened move.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    stage_timeout: Optional[float] = None
    retries: int = 1
    batch_sim: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "stage_timeout": self.stage_timeout,
            "retries": self.retries,
            "batch_sim": self.batch_sim,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EngineConfig":
        return cls(**data)


@dataclass
class JobResult:
    """Everything one job produced.

    ``final_circuit`` (the serialized circuit that fell out of the last
    stage) is only populated when the pipeline ran with
    ``keep_final=True`` -- consumers like the serve daemon need the
    transformed netlist itself, while the bench sweeps only read
    payloads and would pay pickling cost across the pool for nothing.
    """

    name: str
    ok: bool
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    records: List[StageRecord] = field(default_factory=list)
    fingerprint: Optional[str] = None
    error: Optional[str] = None
    final_circuit: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "results": self.results,
            "records": [r.to_dict() for r in self.records],
            "fingerprint": self.fingerprint,
            "error": self.error,
            "final_circuit": self.final_circuit,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(
            name=data["name"],
            ok=data["ok"],
            results=data["results"],
            records=[StageRecord.from_dict(r) for r in data["records"]],
            fingerprint=data.get("fingerprint"),
            error=data.get("error"),
            final_circuit=data.get("final_circuit"),
        )


@dataclass
class RunReport:
    """All job results plus merged telemetry, in job submission order."""

    results: List[JobResult]
    telemetry: Telemetry

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


# ---------------------------------------------------------------------- #
# timeouts
# ---------------------------------------------------------------------- #

def _call_with_timeout(fn, timeout: Optional[float]):
    """Run ``fn()`` under a wall-clock limit.

    SIGALRM is only available on POSIX main threads; elsewhere the call
    runs unguarded (the pool path always lands on a worker's main
    thread, which is where runaway stages actually occur).
    """
    usable = (
        timeout is not None
        and timeout > 0
        and os.name == "posix"
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return fn()

    def _alarm(signum, frame):
        raise StageTimeout(f"stage exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------- #
# pipeline execution
# ---------------------------------------------------------------------- #

def _execute_call(
    call: StageCall,
    circuit: Optional[Circuit],
    ctx: Dict[str, Any],
    cache: ResultCache,
    config: EngineConfig,
    job_name: str,
    telemetry: Telemetry,
) -> StageOutcome:
    """Run one stage call with caching, timing, timeout, and retry.

    Raises the stage's final exception after retries are exhausted (the
    caller fails the job)."""
    stage = get_stage(call.stage)
    can_cache = stage.cacheable and cacheable_params(call.params)
    cache_state = (
        CACHE_UNCACHEABLE if not can_cache
        else (CACHE_OFF if not cache.enabled else None)
    )

    start = now()
    fingerprint = None
    if can_cache and cache.enabled:
        fingerprint = circuit_fingerprint(circuit)
        entry = cache.get(fingerprint, stage.name, call.params)
        if entry is not None:
            restored = (
                circuit_from_dict(entry["circuit"])
                if entry.get("circuit") is not None
                else circuit
            )
            # replay descriptive counters (gate counts, redundancies)
            # but not work counters -- this run did no SAT calls and
            # no gate evaluations.
            skip = ("sat_calls", "attempt") + SIM_WORK_COUNTERS
            counters = {
                k: v for k, v in entry.get("counters", {}).items()
                if k not in skip
            }
            telemetry.add(StageRecord(
                job=job_name,
                stage=stage.name,
                label=call.key,
                seconds=now() - start,
                cache=CACHE_HIT,
                counters=counters,
            ))
            return StageOutcome(
                restored, dict(entry["payload"]),
                changed=entry.get("circuit") is not None,
            )
        cache_state = CACHE_MISS

    attempts = max(1, config.retries + 1)
    last_exc: Optional[BaseException] = None
    tracker = SolveCallTracker()
    sim_tracker = SimWorkTracker()
    for attempt in range(attempts):
        attempt_start = now()
        tracker.reset()
        sim_tracker.reset()
        try:
            outcome = _call_with_timeout(
                lambda: stage.fn(circuit, call.params, ctx),
                config.stage_timeout,
            )
        except Exception as exc:
            last_exc = exc
            telemetry.add(StageRecord(
                job=job_name,
                stage=stage.name,
                label=call.key,
                seconds=now() - attempt_start,
                cache=cache_state or CACHE_UNCACHEABLE,
                counters={"sat_calls": tracker.calls,
                          "attempt": attempt + 1},
                error=f"{type(exc).__name__}: {exc}",
            ))
            continue
        counters = dict(outcome.counters)
        counters["sat_calls"] = tracker.calls
        # per-stage simulation-kernel work attribution, same
        # snapshot/delta pattern as the SAT call counter; only stages
        # that actually simulated carry the keys
        for name, value in sim_tracker.counters.items():
            if value:
                counters[name] = value
        if attempt:
            counters["attempt"] = attempt + 1
        telemetry.add(StageRecord(
            job=job_name,
            stage=stage.name,
            label=call.key,
            seconds=now() - attempt_start,
            cache=cache_state or CACHE_UNCACHEABLE,
            counters=counters,
        ))
        if cache_state == CACHE_MISS:
            cache.put(fingerprint, stage.name, call.params, {
                "payload": outcome.payload,
                "counters": counters,
                "circuit": (
                    circuit_to_dict(outcome.circuit)
                    if outcome.changed else None
                ),
            })
        return outcome
    assert last_exc is not None
    raise last_exc


def run_pipeline(
    circuit: Circuit,
    pipeline: List[StageCall],
    job_name: str = "job",
    cache: Optional[ResultCache] = None,
    config: Optional[EngineConfig] = None,
    telemetry: Optional[Telemetry] = None,
    keep_final: bool = False,
    prefilter: Optional[Any] = None,
) -> JobResult:
    """Run a pipeline over an already-built circuit, in-process.

    This is the shared core of the serial bench path, the ``jobs=1``
    engine path, and every pool worker.  ``prefilter`` (a
    :class:`repro.engine.batchsim.BatchPrefilter`) is exposed to stage
    bodies through ``ctx["batch_prefilter"]``."""
    from ..timing.hier import configure_model_store

    cache = cache if cache is not None else ResultCache(None)
    # Hierarchical-timing interface models are content-addressed stage
    # results; pointing the model store at this run's cache lets warm
    # sweeps reload extracted models from disk instead of re-deriving
    # them.  Each analysis still opens a fresh in-memory store, so
    # per-run counters stay a pure function of the analyzed circuit.
    configure_model_store(cache if cache.enabled else None)
    config = config if config is not None else EngineConfig()
    telemetry = telemetry if telemetry is not None else Telemetry()
    result = JobResult(
        name=job_name, ok=True,
        fingerprint=circuit_fingerprint(circuit),
    )
    ctx: Dict[str, Any] = {"generated": circuit, "job": job_name}
    if prefilter is not None:
        ctx["batch_prefilter"] = prefilter
    current = circuit
    for call in pipeline:
        try:
            outcome = _execute_call(
                call, current, ctx, cache, config, job_name, telemetry
            )
        except Exception as exc:
            result.ok = False
            result.error = f"{call.key}: {type(exc).__name__}: {exc}"
            break
        result.results[call.key] = outcome.payload
        current = outcome.circuit
    if keep_final and result.ok:
        result.final_circuit = circuit_to_dict(current)
    result.records = [r for r in telemetry.records if r.job == job_name]
    return result


def execute_job(
    job: Job,
    cache: Optional[ResultCache] = None,
    config: Optional[EngineConfig] = None,
    telemetry: Optional[Telemetry] = None,
    prefilter: Optional[Any] = None,
) -> JobResult:
    """Build the job's circuit from its factory spec and run its pipeline."""
    cache = cache if cache is not None else ResultCache(None)
    config = config if config is not None else EngineConfig()
    telemetry = telemetry if telemetry is not None else Telemetry()
    generate = StageCall(
        "generate", {"factory": job.factory, "params": job.params}
    )
    try:
        outcome = _execute_call(
            generate, None, {}, cache, config, job.name, telemetry
        )
    except Exception as exc:
        return JobResult(
            name=job.name, ok=False,
            records=[r for r in telemetry.records if r.job == job.name],
            error=f"generate: {type(exc).__name__}: {exc}",
        )
    result = run_pipeline(
        outcome.circuit, job.pipeline,
        job_name=job.name, cache=cache, config=config, telemetry=telemetry,
        prefilter=prefilter,
    )
    result.results.setdefault("generate", outcome.payload)
    result.records = [r for r in telemetry.records if r.job == job.name]
    return result


def _job_worker(job_data: Dict[str, Any],
                config_data: Dict[str, Any],
                prefilter_data: Optional[Dict[str, Any]] = None,
                ) -> Dict[str, Any]:
    """Pool entry point: primitives in, primitives out."""
    from .batchsim import BatchPrefilter

    job = Job.from_dict(job_data)
    config = EngineConfig.from_dict(config_data)
    cache = ResultCache(config.cache_dir)
    prefilter = (
        BatchPrefilter.from_dict(prefilter_data)
        if prefilter_data is not None else None
    )
    try:
        return execute_job(job, cache=cache, config=config,
                           prefilter=prefilter).to_dict()
    except Exception as exc:  # defensive: execute_job should not raise
        return JobResult(
            name=job.name, ok=False,
            error=f"worker: {type(exc).__name__}: {exc}\n"
                  f"{traceback.format_exc(limit=5)}",
        ).to_dict()


def _build_prefilter(
    jobs: List[Job], config: EngineConfig, telemetry: Telemetry
):
    """The sweep's cross-circuit batched-simulation pre-pass.

    When batch sim is on (``config.batch_sim``, defaulting to the
    process-wide ``REPRO_SIM_BATCH`` switch) and the sweep has more
    than one job, every classifying job's first-epoch fault prefilter
    is graded in one batched dispatch up front
    (:func:`repro.engine.batchsim.prefilter_from_jobs`); the result is
    injected into each pipeline's ``ctx`` -- in process on the serial
    path, via a primitives round-trip on the pool path.  The pre-pass
    gets its own telemetry record so the batched simulation work is
    attributed explicitly instead of vanishing from the per-stage
    counters.
    """
    from ..sim.batch import batch_enabled
    from .batchsim import prefilter_from_jobs

    on = config.batch_sim if config.batch_sim is not None else batch_enabled()
    if not on or len(jobs) <= 1:
        return None
    start = now()
    sim_tracker = SimWorkTracker()
    try:
        prefilter = prefilter_from_jobs(jobs)
    except Exception as exc:  # never fail a sweep over its accelerator
        telemetry.add(StageRecord(
            job="__sweep__", stage="batch_prefilter",
            label="batch_prefilter", seconds=now() - start,
            cache=CACHE_UNCACHEABLE,
            error=f"{type(exc).__name__}: {exc}",
        ))
        return None
    if prefilter is None:
        return None
    # Hand the record the *live* counter dict: hit/miss tallies only
    # accumulate while the jobs run, after this record is appended.
    counters = prefilter.counters
    for name, value in sim_tracker.counters.items():
        if value:
            counters[name] = value
    telemetry.add(StageRecord(
        job="__sweep__", stage="batch_prefilter", label="batch_prefilter",
        seconds=now() - start, cache=CACHE_UNCACHEABLE, counters=counters,
    ))
    return prefilter


def run_jobs(
    jobs: List[Job],
    config: Optional[EngineConfig] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Run every job and return results in submission order.

    ``config.jobs > 1`` fans out across a process pool; ``jobs=1`` stays
    in-process (same code path per job, so identical results -- and a
    debugger or profiler sees everything)."""
    config = config if config is not None else EngineConfig()
    telemetry = Telemetry(meta={**(meta or {}), **config.to_dict()})
    results: List[JobResult] = []
    if config.jobs <= 1 or len(jobs) <= 1:
        cache = ResultCache(config.cache_dir)
        prefilter = _build_prefilter(jobs, config, telemetry)
        for job in jobs:
            results.append(
                execute_job(job, cache=cache, config=config,
                            telemetry=telemetry, prefilter=prefilter)
            )
    else:
        workers = min(config.jobs, len(jobs))
        # The pre-pass runs once in the parent; workers rebuild the
        # prefilter from primitives so their lookups (and the work
        # counters those lookups shift) match the serial path exactly.
        prefilter = _build_prefilter(jobs, config, telemetry)
        prefilter_data = (
            prefilter.to_dict() if prefilter is not None else None
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_job_worker, job.to_dict(), config.to_dict(),
                            prefilter_data)
                for job in jobs
            ]
            for job, future in zip(jobs, futures):
                try:
                    results.append(JobResult.from_dict(future.result()))
                except Exception as exc:
                    results.append(JobResult(
                        name=job.name, ok=False,
                        error=f"pool: {type(exc).__name__}: {exc}",
                    ))
        for result in results:
            telemetry.extend(result.records)
    return RunReport(results=results, telemetry=telemetry)
