"""Declarative sweep definitions: the paper's experiments as pipelines.

A sweep is just a list of :class:`Job`\\ s; these builders encode the
repo's standing experiments so the CLI, the bench harness, CI, and the
examples all run the *same* jobs:

* :func:`table1_jobs` -- the paper's Table I: the four carry-skip
  configurations plus the MCNC-like suite (area-synthesized, then
  delay-optimized with an input-arrival skew, exactly
  ``repro.bench.optimized_mcnc``);
* :func:`scaling_jobs` -- the KMS runtime-scaling study over growing
  carry-skip adders;
* :func:`random_jobs` -- seeded random redundant circuits, for fuzzing
  sweeps that are reproducible run-to-run (the seed is threaded from the
  CLI into each generator spec).

:func:`rows_from_report` folds an engine run back into the bench
harness's :class:`~repro.bench.table1.Table1Row`, with wall time taken
from telemetry records instead of ad-hoc timers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .runner import EngineConfig, Job, RunReport, StageCall, run_jobs

#: Table I's carry-skip configurations (bits, block size).
CSA_SIZES: List[Tuple[int, int]] = [(2, 2), (4, 4), (8, 2), (8, 4)]

#: The scaling study's sizes, smallest first (benchmarks/test_scaling.py).
SCALING_SIZES: List[Tuple[int, int]] = [(2, 2), (4, 2), (8, 4), (8, 2)]

#: Table I delay models: csa rows zero the PI arrivals (the paper's
#: configuration), MCNC rows keep the skew that provoked the bypasses.
CSA_MODEL: Dict[str, Any] = {"kind": "unit", "use_arrival_times": False}
MCNC_MODEL: Dict[str, Any] = {"kind": "unit", "use_arrival_times": True}

#: Arrival skew applied to the first PI of each MCNC circuit before
#: delay optimization (see ``repro.bench.table1.optimized_mcnc``).
MCNC_LATE_ARRIVAL = 6.0


def table1_pipeline(
    model: Dict[str, Any],
    mode: str = "static",
    speedup_model: Optional[Dict[str, Any]] = None,
    verify: Optional[str] = None,
) -> List[StageCall]:
    """The Table I measurement pipeline for one circuit.

    ``speedup_model`` non-None prepends the MIS-II-style delay
    optimization (the MCNC flow); csa rows skip it.  ``verify`` appends
    an equivalence check of the final circuit against the generated one
    with the named engine (``"fraig"`` or ``"cnf"`` -- the A/B the CI
    telemetry job compares).
    """
    calls: List[StageCall] = []
    if speedup_model is not None:
        calls.append(StageCall("speed_up", {"model": speedup_model}))
    calls += [
        StageCall("atpg", {}),
        StageCall("sense_delay", {"model": model}, label="delay_initial"),
        StageCall("kms", {"model": model, "mode": mode}),
        StageCall("sense_delay", {"model": model}, label="delay_final"),
    ]
    if verify is not None:
        calls.append(StageCall("verify", {"method": verify}))
    return calls


def table1_jobs(
    which: str = "all",
    quick: bool = False,
    mode: str = "static",
    csa_sizes: Optional[Sequence[Tuple[int, int]]] = None,
    mcnc_names: Optional[Sequence[str]] = None,
    verify: Optional[str] = None,
) -> List[Job]:
    """Jobs reproducing Table I (or the requested slice of it)."""
    jobs: List[Job] = []
    if which in ("csa", "all"):
        sizes = list(csa_sizes if csa_sizes is not None else CSA_SIZES)
        if quick and csa_sizes is None:
            sizes = sizes[:2]
        for nbits, block in sizes:
            jobs.append(Job(
                name=f"csa {nbits}.{block}",
                factory="carry_skip_adder",
                params={"nbits": nbits, "block": block},
                pipeline=table1_pipeline(CSA_MODEL, mode, verify=verify),
            ))
    if which in ("mcnc", "all"):
        from ..circuits.mcnc import MCNC_NAMES

        names = list(mcnc_names if mcnc_names is not None else MCNC_NAMES)
        if quick and mcnc_names is None:
            names = ["misex1", "rd73", "z4ml"]
        for name in names:
            jobs.append(Job(
                name=name,
                factory="mcnc",
                params={"name": name, "late_arrival": MCNC_LATE_ARRIVAL},
                pipeline=table1_pipeline(
                    MCNC_MODEL, mode, speedup_model=MCNC_MODEL,
                    verify=verify,
                ),
            ))
    return jobs


def scaling_jobs(
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    mode: str = "static",
) -> List[Job]:
    """The KMS scaling study: redundancy identification + removal per
    carry-skip size."""
    jobs = []
    for nbits, block in (sizes if sizes is not None else SCALING_SIZES):
        jobs.append(Job(
            name=f"csa {nbits}.{block}",
            factory="carry_skip_adder",
            params={"nbits": nbits, "block": block},
            pipeline=[
                StageCall("atpg", {}),
                StageCall("kms", {"model": CSA_MODEL, "mode": mode}),
            ],
        ))
    return jobs


def random_jobs(
    count: int = 8,
    seed: int = 0,
    num_inputs: int = 5,
    num_gates: int = 15,
    mode: str = "static",
) -> List[Job]:
    """Seeded random-redundant-circuit sweep: job *i* uses ``seed + i``,
    so a run is reproducible given the base seed and trivially shardable."""
    jobs = []
    for i in range(count):
        jobs.append(Job(
            name=f"rand s{seed + i}",
            factory="random_redundant",
            params={
                "seed": seed + i,
                "num_inputs": num_inputs,
                "num_gates": num_gates,
            },
            pipeline=[
                StageCall("atpg", {}),
                StageCall(
                    "sense_delay", {"model": {"kind": "as_built"}},
                    label="delay_initial",
                ),
                StageCall("kms", {"model": {"kind": "as_built"},
                                  "mode": mode}),
                StageCall(
                    "sense_delay", {"model": {"kind": "as_built"}},
                    label="delay_final",
                ),
                StageCall("verify", {}),
            ],
        ))
    return jobs


#: fuzz_smoke is the CI-gated deterministic corpus: fixed seed, fixed
#: size, ~30 scenarios so the blocking gate stays fast.
FUZZ_SMOKE_SEED = 9000
FUZZ_SMOKE_COUNT = 30

#: fuzz_nightly default breadth (the nightly CI job passes fresh seeds).
FUZZ_NIGHTLY_COUNT = 1000


def fuzz_jobs(
    count: int,
    seed: int = 0,
    variant: str = "mix",
    num_inputs: int = 5,
    num_gates: int = 18,
    num_outputs: int = 2,
    plants: Optional[int] = None,
    oracle: bool = True,
    mode: str = "static",
) -> List[Job]:
    """Planted-redundancy grading sweep (see :mod:`repro.fuzz`): job *i*
    plants with seed ``seed + i`` and grades KMS/ProofEngine against the
    planted ground truth."""
    from ..fuzz.campaign import campaign_specs, job_for_spec

    specs = campaign_specs(
        count, seed=seed, variant=variant, num_inputs=num_inputs,
        num_gates=num_gates, num_outputs=num_outputs, plants=plants,
    )
    return [job_for_spec(spec, oracle=oracle, mode=mode) for spec in specs]


def fuzz_smoke_jobs() -> List[Job]:
    """The deterministic CI smoke corpus (fixed seed, ~30 scenarios)."""
    return fuzz_jobs(FUZZ_SMOKE_COUNT, seed=FUZZ_SMOKE_SEED)


def fuzz_nightly_jobs(
    seed: int, count: int = FUZZ_NIGHTLY_COUNT
) -> List[Job]:
    """The seed-parameterized nightly corpus (thousands of scenarios)."""
    return fuzz_jobs(count, seed=seed)


def rows_from_report(report: RunReport) -> List["Table1Row"]:
    """Fold ok jobs of a Table-I-shaped run into bench rows.

    Wall time comes from the job's telemetry records (cache hits cost
    their lookup time, so a warm run reports honest, tiny numbers)."""
    from ..bench.table1 import Table1Row
    from ..core import TableRow

    rows: List[Table1Row] = []
    for result in report.results:
        if not result.ok:
            continue
        kms_payload = result.results["kms"]
        rows.append(Table1Row(
            row=TableRow(
                name=result.name,
                redundancies=result.results["atpg"]["redundancies"],
                gates_initial=kms_payload["gates_initial"],
                gates_final=kms_payload["gates_final"],
                delay_initial=result.results["delay_initial"]["delay"],
                delay_final=result.results["delay_final"]["delay"],
            ),
            kms_iterations=kms_payload["iterations"],
            duplicated_gates=kms_payload["duplicated_gates"],
            seconds=sum(r.seconds for r in result.records),
        ))
    return rows


def run_table1(
    which: str = "all",
    quick: bool = False,
    mode: str = "static",
    config: Optional[EngineConfig] = None,
    verify: Optional[str] = None,
) -> RunReport:
    """Run the Table I sweep under the given engine configuration."""
    jobs = table1_jobs(which=which, quick=quick, mode=mode, verify=verify)
    return run_jobs(jobs, config=config,
                    meta={"sweep": "table1", "which": which,
                          "quick": quick, "mode": mode,
                          "verify": verify})
