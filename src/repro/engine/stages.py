"""The engine's stage and circuit-factory registries.

A *stage* is a pure function ``(circuit, params, ctx) -> StageOutcome``
over a circuit flowing through a pipeline.  Stages declare whether their
result may be cached; the runner handles fingerprinting, cache lookup,
timing, and SAT-call attribution around them, so stage bodies stay
algorithm-only.

``params`` must be JSON-able (they are part of the cache key) with one
escape hatch: a live :class:`DelayModel` may be passed under the key
``"_model"``, which makes that stage call uncacheable.  Cacheable calls
name their model declaratively, e.g. ``{"model": {"kind": "unit",
"use_arrival_times": False}}``.

The *factory* registry maps a picklable spec -- ``(factory name, params
dict)`` -- to a built circuit, so worker processes can construct their
own inputs instead of shipping circuit objects across the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..circuits import (
    carry_lookahead_adder,
    carry_skip_adder,
    mcnc_circuit,
    random_circuit,
    random_redundant_circuit,
    ripple_carry_adder,
)
from ..core import kms
from ..network import Circuit
from ..sat import check_equivalence
from ..synth import speed_up
from ..timing import (
    AsBuiltDelayModel,
    DelayModel,
    UnitDelayModel,
    sensitizable_delay,
    topological_delay,
)


@dataclass
class StageOutcome:
    """What one stage call produced.

    ``circuit`` flows into the next stage; ``payload`` is the JSON-able
    result recorded (and cached); ``changed`` marks a transforming stage
    whose output circuit must be serialized into the cache entry.
    """

    circuit: Circuit
    payload: Dict[str, Any]
    counters: Dict[str, float] = field(default_factory=dict)
    changed: bool = False


@dataclass(frozen=True)
class StageDef:
    """A registered stage."""

    name: str
    fn: Callable[[Circuit, Dict[str, Any], Dict[str, Any]], StageOutcome]
    cacheable: bool = True


# ---------------------------------------------------------------------- #
# delay-model encoding
# ---------------------------------------------------------------------- #

def model_from_params(params: Dict[str, Any]) -> DelayModel:
    """The delay model a stage call should use.

    ``params["_model"]`` (a live model object) wins; otherwise
    ``params["model"]`` is a declarative ``{"kind": ...}`` dict; absent
    both, delays as built on the circuit.
    """
    live = params.get("_model")
    if live is not None:
        return live
    spec = params.get("model")
    if spec is None:
        return AsBuiltDelayModel()
    kind = spec["kind"]
    if kind == "unit":
        return UnitDelayModel(
            use_arrival_times=bool(spec.get("use_arrival_times", True))
        )
    if kind == "as_built":
        return AsBuiltDelayModel()
    raise ValueError(f"unknown delay model kind {kind!r}")


def model_params(model: Optional[DelayModel]) -> Optional[Dict[str, Any]]:
    """Declarative encoding of a model, or ``None`` if it has none
    (caller must then pass the object via ``"_model"`` and forfeit
    caching)."""
    if model is None or type(model) is AsBuiltDelayModel:
        return {"kind": "as_built"}
    if type(model) is UnitDelayModel:
        return {
            "kind": "unit",
            "use_arrival_times": bool(model.use_arrival_times),
        }
    return None


def cacheable_params(params: Dict[str, Any]) -> bool:
    """A call is cacheable only when its params are fully declarative."""
    return "_model" not in params


# ---------------------------------------------------------------------- #
# circuit factories
# ---------------------------------------------------------------------- #

def _factory_mcnc(params: Dict[str, Any]) -> Circuit:
    circuit = mcnc_circuit(params["name"])
    late = params.get("late_arrival", 0.0)
    if late and circuit.inputs:
        circuit.set_input_arrival(circuit.inputs[0], late)
    return circuit


def _factory_fuzz_planted(params: Dict[str, Any]) -> Circuit:
    """Planted-redundancy scenario circuit (params = ScenarioSpec dict).

    Lazy import: repro.fuzz imports this module for its base-circuit
    factories."""
    from ..fuzz.grade import ScenarioSpec, build_scenario

    return build_scenario(ScenarioSpec.from_dict(params)).circuit


FACTORIES: Dict[str, Callable[[Dict[str, Any]], Circuit]] = {
    "carry_skip_adder": lambda p: carry_skip_adder(
        p["nbits"], p["block"], p.get("cin_arrival", 0.0)
    ),
    "ripple_carry_adder": lambda p: ripple_carry_adder(p["nbits"]),
    "carry_lookahead_adder": lambda p: carry_lookahead_adder(p["nbits"]),
    "mcnc": _factory_mcnc,
    "random": lambda p: random_circuit(
        num_inputs=p.get("num_inputs", 5),
        num_gates=p.get("num_gates", 20),
        num_outputs=p.get("num_outputs", 2),
        seed=p["seed"],
        max_arrival=p.get("max_arrival", 0.0),
    ),
    "random_redundant": lambda p: random_redundant_circuit(
        num_inputs=p.get("num_inputs", 5),
        num_gates=p.get("num_gates", 15),
        seed=p["seed"],
    ),
    "fuzz_planted": _factory_fuzz_planted,
}


def build_circuit(factory: str, params: Dict[str, Any]) -> Circuit:
    try:
        make = FACTORIES[factory]
    except KeyError:
        raise ValueError(
            f"unknown circuit factory {factory!r}; "
            f"choose from {sorted(FACTORIES)}"
        ) from None
    return make(params)


# ---------------------------------------------------------------------- #
# stage bodies
# ---------------------------------------------------------------------- #

def _stage_generate(
    circuit: Optional[Circuit], params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    """Build the pipeline's input circuit from its factory spec."""
    built = build_circuit(params["factory"], params.get("params", {}))
    return StageOutcome(
        built,
        {"gates": built.num_gates(), "inputs": len(built.inputs),
         "outputs": len(built.outputs)},
        changed=True,
    )


def _stage_speed_up(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    model = model_from_params(params)
    fast, stats = speed_up(circuit, model)
    return StageOutcome(
        fast,
        {
            "iterations": stats.iterations,
            "collapsed_outputs": list(stats.collapsed_outputs),
            "bypassed_inputs": list(stats.bypassed_inputs),
            "delay_before": stats.delay_before,
            "delay_after": stats.delay_after,
            "gates": fast.num_gates(),
        },
        counters={"gates_in": circuit.num_gates(),
                  "gates_out": fast.num_gates()},
        changed=True,
    )


def _stage_atpg(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    if params.get("incremental", True):
        from ..atpg import ProofEngine

        engine = ProofEngine(
            circuit,
            jobs=params.get("jobs"),
            prefilter=ctx.get("batch_prefilter"),
        )
        red = len(engine.redundant_faults())
        proof_counters = dict(engine.counters)
    else:
        from ..atpg import count_redundancies

        red = count_redundancies(circuit, incremental=False)
        proof_counters = {}
    return StageOutcome(
        circuit,
        {"redundancies": red},
        counters={"redundancies": red, "gates_in": circuit.num_gates(),
                  **proof_counters},
    )


def _stage_sense_delay(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    model = model_from_params(params)
    report = sensitizable_delay(circuit, model)
    return StageOutcome(
        circuit,
        {"delay": report.delay,
         "topological": topological_delay(circuit, model)},
    )


def _stage_kms(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    model = model_from_params(params)
    result = kms(
        circuit,
        mode=params.get("mode", "static"),
        model=model,
        incremental=bool(params.get("incremental", True)),
        prefilter=ctx.get("batch_prefilter"),
    )
    return StageOutcome(
        result.circuit,
        {
            "iterations": result.iterations,
            "duplicated_gates": result.duplicated_gates,
            "cleanup_steps": result.cleanup_steps,
            "gates_initial": circuit.num_gates(),
            "gates_final": result.circuit.num_gates(),
            "counters": dict(result.counters),
        },
        counters={"gates_in": circuit.num_gates(),
                  "gates_out": result.circuit.num_gates(),
                  **result.counters},
        changed=True,
    )


def _stage_fraig(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    """SAT-sweep the circuit through the AIG substrate.

    Structural hashing plus fraiging collapses functionally-equivalent
    internal nodes; the result converts back to a ``Circuit`` so any
    downstream stage (atpg, sense_delay, verify) is oblivious to the
    detour.  Cacheable: sweeping is deterministic in ``seed``."""
    from ..aig import aig_to_circuit, circuit_to_aig, fraig

    aig, _ = circuit_to_aig(circuit)
    ands_in = aig.num_ands(live_only=True)
    result = fraig(
        aig,
        seed=int(params.get("seed", 0)),
        words=int(params.get("words", 2)),
        conflict_limit=params.get("conflict_limit", 1000),
    )
    swept = aig_to_circuit(result.aig, name=circuit.name)
    return StageOutcome(
        swept,
        {
            "ands_in": ands_in,
            "ands_out": result.aig.num_ands(live_only=True),
            "gates_out": swept.num_gates(),
            **result.stats.to_dict(),
        },
        counters={
            "gates_in": circuit.num_gates(),
            "gates_out": swept.num_gates(),
            "ands_in": ands_in,
            "ands_out": result.aig.num_ands(live_only=True),
        },
        changed=True,
    )


def _stage_verify(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    """Equivalence check of the current circuit against the pipeline's
    generated input (uncacheable: it is the trust anchor).

    ``params["method"]`` picks the engine: ``"fraig"`` (default, see
    :mod:`repro.sat.equivalence`) or ``"cnf"`` (the miter baseline)."""
    baseline = ctx.get("generated")
    if baseline is None:
        raise ValueError("verify stage needs a generated baseline in ctx")
    method = params.get("method", "fraig")
    equivalent = check_equivalence(baseline, circuit, method=method).equivalent
    return StageOutcome(
        circuit,
        {"equivalent": equivalent, "method": method},
        counters={"equivalent": int(equivalent)},
    )


def _stage_fuzz_plant(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    """Insert planted redundancies into the flowing circuit.

    Unlike the ``fuzz_planted`` factory (which builds a whole scenario
    from a spec), this stage plants into *whatever circuit the pipeline
    carries* -- named benches, adders, post-speed_up netlists."""
    from ..fuzz.plant import plant_redundancies

    result = plant_redundancies(
        circuit,
        plants=int(params.get("plants", 3)),
        seed=int(params.get("seed", 0)),
        variant=params.get("variant", "neutral"),
        recipes=params.get("recipes"),
    )
    return StageOutcome(
        result.circuit,
        {
            "planted": result.planted_payload(),
            "plants": [p.to_dict() for p in result.plants],
            "gates_in": circuit.num_gates(),
            "gates_out": result.circuit.num_gates(),
        },
        counters={"planted": len(result.plants),
                  "gates_in": circuit.num_gates(),
                  "gates_out": result.circuit.num_gates()},
        changed=True,
    )


def _stage_fuzz_grade(
    circuit: Circuit, params: Dict[str, Any], ctx: Dict[str, Any]
) -> StageOutcome:
    """Differential grading of a planted scenario (see repro.fuzz.grade).

    The scenario is rebuilt from ``params["spec"]``; the flowing circuit
    (built by the ``fuzz_planted`` factory from the same spec) pins the
    expected fingerprint, so cross-process generator nondeterminism
    surfaces as a graded mismatch instead of silently skewing recall."""
    from ..fuzz.grade import ScenarioSpec, grade_scenario
    from .hashing import circuit_fingerprint

    payload = grade_scenario(
        ScenarioSpec.from_dict(params["spec"]),
        oracle=bool(params.get("oracle", True)),
        check_irredundant=bool(params.get("check_irredundant", True)),
        mode=params.get("mode", "static"),
        incremental=bool(params.get("incremental", True)),
        expect=circuit_fingerprint(circuit),
        prefilter=ctx.get("batch_prefilter"),
    )
    counters = {
        "planted": len(payload["planted"]),
        "proved": payload["proved"],
        "mismatches": len(payload["mismatches"]),
        "gates_final": payload["gates_final"],
        **payload["counters"],
    }
    return StageOutcome(circuit, payload, counters=counters)


STAGES: Dict[str, StageDef] = {
    "generate": StageDef("generate", _stage_generate, cacheable=False),
    "speed_up": StageDef("speed_up", _stage_speed_up),
    "atpg": StageDef("atpg", _stage_atpg),
    "sense_delay": StageDef("sense_delay", _stage_sense_delay),
    "kms": StageDef("kms", _stage_kms),
    "fraig": StageDef("fraig", _stage_fraig),
    "verify": StageDef("verify", _stage_verify, cacheable=False),
    "fuzz_plant": StageDef("fuzz_plant", _stage_fuzz_plant),
    "fuzz_grade": StageDef("fuzz_grade", _stage_fuzz_grade),
}


def get_stage(name: str) -> StageDef:
    try:
        return STAGES[name]
    except KeyError:
        raise ValueError(
            f"unknown stage {name!r}; choose from {sorted(STAGES)}"
        ) from None
