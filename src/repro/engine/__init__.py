"""Parallel experiment engine with content-addressed result caching.

The engine turns the repo's serial, uncached experiment loops into
declarative stage pipelines (*generate -> speed_up -> atpg -> kms ->
verify*) that fan out across circuits with a process pool and memoize
every cacheable stage on disk, keyed by a canonical fingerprint of the
stage's input circuit.  See ``docs/ENGINE.md`` for the stage graph, the
cache key scheme, and the telemetry schema.
"""

from .batchsim import BatchPrefilter, prefilter_from_jobs
from .cache import ResultCache, cache_key
from .hashing import circuit_fingerprint, gate_fingerprints
from .runner import (
    EngineConfig,
    Job,
    JobResult,
    RunReport,
    StageCall,
    StageTimeout,
    execute_job,
    run_jobs,
    run_pipeline,
)
from .serialize import circuit_from_dict, circuit_to_dict
from .stages import (
    FACTORIES,
    STAGES,
    StageDef,
    StageOutcome,
    build_circuit,
    get_stage,
    model_from_params,
    model_params,
)
from .sweep import (
    CSA_MODEL,
    FUZZ_SMOKE_COUNT,
    FUZZ_SMOKE_SEED,
    MCNC_MODEL,
    fuzz_jobs,
    fuzz_nightly_jobs,
    fuzz_smoke_jobs,
    random_jobs,
    rows_from_report,
    run_table1,
    scaling_jobs,
    table1_jobs,
    table1_pipeline,
)
from .telemetry import StageRecord, Telemetry

__all__ = [
    "BatchPrefilter",
    "CSA_MODEL",
    "EngineConfig",
    "FACTORIES",
    "Job",
    "JobResult",
    "MCNC_MODEL",
    "ResultCache",
    "RunReport",
    "STAGES",
    "StageCall",
    "StageDef",
    "StageOutcome",
    "StageRecord",
    "StageTimeout",
    "Telemetry",
    "build_circuit",
    "cache_key",
    "circuit_fingerprint",
    "circuit_from_dict",
    "circuit_to_dict",
    "FUZZ_SMOKE_COUNT",
    "FUZZ_SMOKE_SEED",
    "execute_job",
    "fuzz_jobs",
    "fuzz_nightly_jobs",
    "fuzz_smoke_jobs",
    "gate_fingerprints",
    "get_stage",
    "model_from_params",
    "model_params",
    "prefilter_from_jobs",
    "random_jobs",
    "rows_from_report",
    "run_jobs",
    "run_pipeline",
    "run_table1",
    "scaling_jobs",
    "table1_jobs",
    "table1_pipeline",
]
