"""repro: a full reproduction of Keutzer, Malik & Saldanha,
"Is Redundancy Necessary to Reduce Delay?" (DAC 1990 / TCAD 1991).

The headline API:

    from repro import kms, carry_skip_adder, verify_transformation

    csa = carry_skip_adder(8, 2)
    result = kms(csa)                       # irredundant, no slower
    report = verify_transformation(csa, result.circuit)
    assert report.ok

Subpackages: ``network`` (circuit DAG), ``sim`` (logic/event simulation),
``sat`` (CDCL + Tseitin), ``bdd`` (ROBDD), ``timing`` (STA, false paths,
viability), ``atpg`` (PODEM, SAT-ATPG, fault sim), ``twolevel``
(espresso-lite), ``synth`` (multilevel synthesis + timing optimization),
``core`` (the KMS algorithm), ``circuits`` (generators), ``io``
(BLIF/PLA), ``bench`` (table/figure regeneration).
"""

from .network import Builder, Circuit, GateType, decompose_complex_gates
from .core import kms, measure_delays, verify_transformation
from .circuits import (
    carry_lookahead_adder,
    carry_skip_adder,
    ripple_carry_adder,
)
from .atpg import count_redundancies, is_irredundant, remove_redundancies
from .seq import SequentialCircuit, kms_sequential
from .timing import (
    UnitDelayModel,
    sensitizable_delay,
    topological_delay,
    viability_delay,
)

__version__ = "1.0.0"

__all__ = [
    "Builder",
    "Circuit",
    "GateType",
    "SequentialCircuit",
    "UnitDelayModel",
    "kms_sequential",
    "__version__",
    "carry_lookahead_adder",
    "carry_skip_adder",
    "count_redundancies",
    "decompose_complex_gates",
    "is_irredundant",
    "kms",
    "measure_delays",
    "remove_redundancies",
    "ripple_carry_adder",
    "sensitizable_delay",
    "topological_delay",
    "verify_transformation",
    "viability_delay",
]
