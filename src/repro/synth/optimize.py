"""Area cleanup: structural hashing, sweeping, constant propagation.

`strash` merges structurally identical gates (same type, same fanin
multiset, same delay), the workhorse dedupe pass run after factoring
lowers each output separately.  `area_optimize` bundles the standard
cleanup pipeline.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..network import Circuit, GateType
from ..network.transform import propagate_constants, sweep


def strash(circuit: Circuit) -> int:
    """Merge structurally identical gates, in place.

    Two logic gates merge when they have the same type, the same delay,
    and the same multiset of (source gid, connection delay) fanins
    (order-insensitive for symmetric gates; all our simple gates are
    symmetric).  Returns the number of gates merged away.
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        table: Dict[Tuple, int] = {}
        for gid in circuit.topological_order():
            gate = circuit.gates.get(gid)
            if gate is None:
                continue
            if gate.gtype in (
                GateType.INPUT,
                GateType.OUTPUT,
            ):
                continue
            fanin_key = tuple(
                sorted(
                    (circuit.conns[c].src, circuit.conns[c].delay)
                    for c in gate.fanin
                )
            )
            key = (gate.gtype, gate.delay, fanin_key)
            canonical = table.get(key)
            if canonical is None:
                table[key] = gid
                continue
            # merge gid into canonical
            for cid in list(gate.fanout):
                circuit.move_connection_source(cid, canonical)
            circuit.remove_gate(gid)
            merged += 1
            changed = True
    return merged


def area_optimize(circuit: Circuit) -> Dict[str, int]:
    """Constant propagation + strash + sweep; returns per-pass stats."""
    stats = {
        "constants": propagate_constants(circuit)[0],
        "strash": strash(circuit),
        "sweep": sweep(circuit, collapse_buffers=True)[0],
    }
    return stats
